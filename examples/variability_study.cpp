// Variability study: use the library as a *measurement* tool rather than
// a scheduler — characterize how each proxy application's run time reacts
// to network and filesystem contention, and how visible that contention
// is in the synthesized LDMS counters and canary benchmarks.
//
// This is the §III story of the paper: shared-resource health is a
// meaningful, observable predictor of near-future application
// performance.
//
// Build & run:  ./build/examples/variability_study
#include <cstdio>
#include <vector>

#include "apps/execution.hpp"
#include "common/table.hpp"
#include "core/environment.hpp"

using namespace rush;

namespace {

/// Run one app at a controlled ambient congestion level and report its
/// run time plus what the telemetry saw right before launch.
struct Observation {
  double runtime_s = 0.0;
  double canary_allreduce_ms = 0.0;
  double mean_edge_util = 0.0;
};

Observation observe(const apps::AppProfile& app, double ambient_level, std::uint64_t seed) {
  core::Environment env(core::single_pod_config(seed));
  const auto& tree = env.tree();

  // Pin the ambient load on every edge uplink (no stochastic background).
  for (int e = 0; e < tree.num_edges(); ++e) {
    env.network().set_ambient_load(tree.edge_uplink(e),
                                   ambient_level * tree.config().edge_uplink_gbps);
  }

  // A 16-node placement straddling two edge switches.
  cluster::NodeSet nodes;
  for (int i = 24; i < 40; ++i) nodes.push_back(i);

  env.sampler().start();
  env.engine().run_until(300.0);  // fill the 5-minute counter window

  const auto canary = env.canary().run(nodes);
  double canary_mean = 0.0;
  for (double w : canary.allreduce_wait_s) canary_mean += w;
  canary_mean /= static_cast<double>(canary.allreduce_wait_s.size());

  Observation obs;
  obs.canary_allreduce_ms = canary_mean * 1000.0;
  obs.mean_edge_util = env.network().link_utilization(tree.edge_uplink(0));

  env.execution().launch(app, nodes, apps::ScalingMode::Strong,
                         [&obs](const apps::RunRecord& record) {
                           obs.runtime_s = record.duration_s;
                         });
  env.engine().run_until(env.engine().now() + 4.0 * 3600.0);
  return obs;
}

}  // namespace

int main() {
  const std::vector<double> levels{0.0, 0.3, 0.6, 0.8, 1.0};

  std::printf("Run-time response to ambient edge-uplink congestion\n");
  std::printf("(16-node jobs straddling two edge switches; deterministic ambient)\n\n");

  Table table({"app", "class", "util", "runtime (s)", "slowdown", "canary allreduce (ms)"});
  for (const apps::AppProfile& app : apps::proxy_apps()) {
    double baseline = 0.0;
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const Observation obs = observe(app, levels[i], 1234);
      if (i == 0) baseline = obs.runtime_s;
      table.add_row({i == 0 ? app.name : "",
                     i == 0 ? telemetry::workload_class_name(app.workload) : "",
                     Table::num(levels[i], 1), Table::num(obs.runtime_s, 1),
                     Table::num(obs.runtime_s / baseline, 2) + "x",
                     Table::num(obs.canary_allreduce_ms, 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading the table: network-heavy apps (Laghos, SWFFT, AMG) stretch the most;\n"
              "compute-bound apps (Kripke, PENNANT) barely move; the canary benchmark times\n"
              "rise with utilization *before* the job runs — that is the signal the RUSH\n"
              "predictor learns from.\n");
  return 0;
}
