// Model export / import: the paper's "pickled and exported for use in the
// scheduler" step. A predictor trained in one process can be saved as a
// text artifact and loaded by another (e.g., a live scheduler daemon).
//
// Build & run:  ./build/examples/model_export
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/collector.hpp"
#include "core/pipeline.hpp"

using namespace rush;

int main() {
  // Small in-situ collection.
  core::CollectorConfig cfg;
  cfg.days = 3;
  cfg.jobs_per_session = 56;
  cfg.seed = 11;
  core::LongitudinalCollector collector(cfg, core::single_pod_config());
  std::printf("collecting a 3-day corpus...\n");
  const core::Corpus corpus = collector.collect();
  const core::Labeler labeler(corpus);

  // Compare the four model families like the paper's Fig. 3 pipeline,
  // then train and export the winner.
  std::printf("comparing model families (leave-one-app-out CV)...\n");
  const auto scores = core::compare_models(corpus, labeler);
  for (const auto& s : scores)
    std::printf("  %-16s F1(all)=%.3f F1(job)=%.3f\n", s.model.c_str(), s.f1_all_nodes,
                s.f1_job_nodes);
  const std::string winner = core::best_model(scores);
  std::printf("selected model: %s\n", winner.c_str());

  core::TrainerConfig tc;
  tc.model_name = winner;
  const core::TrainedPredictor predictor = core::PredictorTrainer(tc).train(corpus, labeler);

  const char* path = "rush_predictor.model";
  {
    std::ofstream out(path);
    predictor.save(out);
  }
  std::printf("exported predictor to %s\n", path);

  // Reload (as the scheduler process would) and verify agreement.
  std::ifstream in(path);
  const core::TrainedPredictor loaded = core::TrainedPredictor::load(in);
  std::size_t agree = 0;
  for (const auto& sample : corpus.samples()) {
    const auto& features = loaded.scope() == telemetry::AggregationScope::AllNodes
                               ? sample.features_all
                               : sample.features_job;
    if (loaded.predict(features) == predictor.predict(features)) ++agree;
  }
  std::printf("reloaded predictor agrees on %zu/%zu corpus samples\n", agree, corpus.size());

  int fired = 0;
  for (const auto& sample : corpus.samples()) {
    if (loaded.predict(sample.features_all) == sched::VariabilityPrediction::Variation) ++fired;
  }
  std::printf("'variation' predictions on the corpus: %d (%0.1f%%)\n", fired,
              100.0 * fired / static_cast<double>(corpus.size()));
  return 0;
}
