// Quickstart: the whole RUSH pipeline in ~80 lines.
//
//   1. Collect a (small) longitudinal training corpus in-situ.
//   2. Train the variability predictor (AdaBoost over the 282 features).
//   3. Run the same workload under FCFS+EASY and under RUSH.
//   4. Compare variation counts and makespan.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/collector.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

using namespace rush;

int main() {
  // 1. Collect training data: 4 days of scheduled control-job sessions on
  //    a simulated 512-node pod with a noise job and background load.
  core::CollectorConfig collect_cfg;
  collect_cfg.days = 4;
  collect_cfg.jobs_per_session = 84;
  collect_cfg.seed = 1;
  core::LongitudinalCollector collector(collect_cfg, core::single_pod_config());
  std::printf("collecting %d days of control-job data...\n", collect_cfg.days);
  const core::Corpus corpus = collector.collect();
  std::printf("corpus: %zu samples\n", corpus.size());
  for (const auto& stats : corpus.app_stats()) {
    std::printf("  %-8s %3zu runs  mean %.0fs  sd %.0fs  max %.0fs\n", stats.app.c_str(),
                stats.runs, stats.mean_s, stats.stddev_s, stats.max_s);
  }

  // 2. Label (z-scores per app) and train the production predictor.
  core::ExperimentConfig exp_cfg;
  exp_cfg.trials_per_policy = 1;
  core::ExperimentRunner runner(corpus, exp_cfg);
  core::ExperimentSpec spec = core::experiment_spec(core::ExperimentId::ADAA);
  spec.num_jobs = 95;  // half-size workload keeps the example snappy
  std::printf("\ntraining the variability predictor (AdaBoost, 3 classes)...\n");
  const core::TrainedPredictor predictor = runner.train_predictor(spec);

  // 3. One paired trial: identical conditions, different policy.
  std::printf("running the workload under FCFS+EASY and under RUSH...\n");
  const core::TrialResult baseline = runner.run_trial(spec, /*use_rush=*/false, 7, nullptr);
  const core::TrialResult rush = runner.run_trial(spec, /*use_rush=*/true, 7, &predictor);

  // 4. Compare.
  const double var_base = core::mean_total_variation_runs({baseline}, runner.labeler());
  const double var_rush = core::mean_total_variation_runs({rush}, runner.labeler());
  std::printf("\n%-28s %12s %12s\n", "", "FCFS+EASY", "RUSH");
  std::printf("%-28s %12.1f %12.1f\n", "runs with variation", var_base, var_rush);
  std::printf("%-28s %11.0fs %11.0fs\n", "makespan", baseline.makespan_s, rush.makespan_s);
  std::printf("%-28s %12s %12llu\n", "Algorithm-2 delays", "-",
              static_cast<unsigned long long>(rush.total_skips));

  const auto base_summary = core::runtime_summaries({baseline});
  const auto rush_summary = core::runtime_summaries({rush});
  std::printf("\nper-app maximum run time (s):\n");
  for (const auto& [app, b] : base_summary) {
    std::printf("  %-8s %8.0f -> %8.0f\n", app.c_str(), b.max, rush_summary.at(app).max);
  }
  std::printf("\ndone. For paper-scale reproductions, see the bench/ binaries.\n");
  return 0;
}
