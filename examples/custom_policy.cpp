// Custom policy composition: the paper argues the RUSH modification is
// policy-agnostic — "the main and backfilling policies can be replaced
// with other queue ordering policies", e.g. Shortest Job First. This
// example runs the same workload under four schedulers:
//
//   FCFS+EASY        (paper baseline)        SJF+EASY
//   FCFS+EASY+RUSH   (paper system)          SJF+EASY+RUSH
//
// using a hand-written oracle (a simple utilization threshold instead of
// the trained model) to show the VariabilityOracle plug point.
//
// Build & run:  ./build/examples/custom_policy
#include <cstdio>

#include "apps/noise.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/environment.hpp"
#include "core/session.hpp"

using namespace rush;

namespace {

/// A rule-based oracle: predict variation when the candidate nodes' edge
/// uplinks are already hot. No ML — just the plug-in interface.
class ThresholdOracle final : public sched::VariabilityOracle {
 public:
  ThresholdOracle(core::Environment& env, double hot_utilization)
      : env_(env), hot_(hot_utilization) {}

  sched::VariabilityPrediction predict(const sched::Job&,
                                       const cluster::NodeSet& candidate_nodes) override {
    const auto& tree = env_.tree();
    double worst = 0.0;
    for (cluster::NodeId n : candidate_nodes) {
      worst = std::max(worst,
                       env_.network().link_utilization(tree.edge_uplink(tree.edge_of(n))));
    }
    if (worst > hot_) return sched::VariabilityPrediction::Variation;
    if (worst > 0.75 * hot_) return sched::VariabilityPrediction::LittleVariation;
    return sched::VariabilityPrediction::NoVariation;
  }

 private:
  core::Environment& env_;
  double hot_;
};

struct Outcome {
  double makespan_s = 0.0;
  double mean_wait_s = 0.0;
  double p95_slowdown = 0.0;
  std::uint64_t skips = 0;
};

Outcome run(const std::string& main_policy, bool use_rush, std::uint64_t seed) {
  core::Environment env(core::single_pod_config(seed));

  // Same experimental stage as the paper: noise job + background load.
  const cluster::NodeSet pod = env.pod_nodes();
  cluster::NodeSet noise_nodes;
  for (std::size_t i = 0; i < pod.size(); i += 16) noise_nodes.push_back(pod[i]);
  apps::NoiseJob noise(env.engine(), env.network(), noise_nodes, apps::NoiseConfig{},
                       env.rng_for(0x401CE));
  cluster::NodeSet job_nodes;
  for (cluster::NodeId n : pod)
    if (n % 16 != 0) job_nodes.push_back(n);
  cluster::NodeAllocator allocator(std::move(job_nodes));

  env.background().start();
  env.sampler().start();
  noise.start();

  ThresholdOracle oracle(env, 0.8);
  sched::SchedulerConfig sc;
  sc.rush_enabled = use_rush;

  core::SessionConfig session_cfg;
  session_cfg.apps = apps::proxy_app_names();
  session_cfg.num_jobs = 95;
  session_cfg.main_policy = main_policy;
  session_cfg.backfill_policy = main_policy;
  core::WorkloadSession session(env, allocator, session_cfg, sc,
                                use_rush ? &oracle : nullptr, env.rng_for(0x5EED));
  const core::TrialResult result = session.run();

  Outcome out;
  out.makespan_s = result.makespan_s;
  out.skips = result.total_skips;
  std::vector<double> slowdowns;
  double wait = 0.0;
  for (const auto& job : result.jobs) {
    wait += job.wait_s;
    slowdowns.push_back(job.slowdown);
  }
  out.mean_wait_s = wait / static_cast<double>(result.jobs.size());
  out.p95_slowdown = stats::quantile(slowdowns, 0.95);
  return out;
}

}  // namespace

int main() {
  std::printf("Composing RUSH with different queue ordering policies (95-job workload,\n"
              "rule-based threshold oracle instead of the trained model):\n\n");
  Table table({"scheduler", "makespan (s)", "mean wait (s)", "p95 slowdown", "delays"});
  for (const auto& [policy, rush_on, label] :
       {std::tuple{"fcfs", false, "FCFS+EASY"}, std::tuple{"fcfs", true, "FCFS+EASY+RUSH"},
        std::tuple{"sjf", false, "SJF+EASY"}, std::tuple{"sjf", true, "SJF+EASY+RUSH"}}) {
    const Outcome out = run(policy, rush_on, 2024);
    table.add_row({label, Table::num(out.makespan_s, 0), Table::num(out.mean_wait_s, 1),
                   Table::num(out.p95_slowdown, 2) + "x", std::to_string(out.skips)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("The RUSH Start() hook (Algorithm 2) composes with either ordering policy —\n"
              "it only changes when a launch is allowed, not how the queue is sorted.\n");
  return 0;
}
