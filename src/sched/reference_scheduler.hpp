// Pinned pre-optimization scheduler, kept for differential testing and
// as the measurable baseline of the incremental-core speedup.
//
// This is the straightforward reading of Algorithms 1–2 that shipped
// before the indexed-queue/incremental-timeline rewrite (DESIGN.md §14):
// jobs in a hash map, a linearly scanned ready queue, the reservation
// rebuilt by re-sorting every running job's end estimate on every pass,
// and a freshly allocated, fully sorted backfill candidate list. Every
// scheduling decision it makes is the identity contract the optimized
// sched/scheduler.* must reproduce byte-for-byte:
// tests/sched/test_differential.cpp drives both over randomized
// workloads, fault plans, and skip placements, and
// bench/bench_micro_sched.cpp derives the pass-latency speedup from the
// pair (like the per-node-sort reference trainer in bench_micro_ml).
//
// Do not optimize this class. Behavioral changes must land in both
// schedulers, differentially tested, or not at all.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/scheduler.hpp"

namespace rush::sched {

class ReferenceScheduler {
 public:
  using JobEventFn = std::function<void(const Job&)>;

  /// The oracle may be null unless rush_enabled. All references must
  /// outlive the scheduler.
  ReferenceScheduler(sim::Engine& engine, cluster::NodeAllocator& allocator,
                     apps::ExecutionModel& execution,
                     std::unique_ptr<QueuePolicyBase> main_policy,
                     std::unique_ptr<QueuePolicyBase> backfill_policy, SchedulerConfig config,
                     VariabilityOracle* oracle = nullptr);

  ReferenceScheduler(const ReferenceScheduler&) = delete;
  ReferenceScheduler& operator=(const ReferenceScheduler&) = delete;

  /// Submit a job now; triggers a scheduling pass.
  JobId submit(JobSpec spec);
  /// Submit at a future simulated time.
  JobId submit_at(sim::Time when, JobSpec spec);

  /// Optional hooks, fired on job start / completion. A null fn clears
  /// the hook, so every input is valid.
  // rush-analyze: allow(missing-expects)
  void on_start(JobEventFn fn) { start_hook_ = std::move(fn); }
  // rush-analyze: allow(missing-expects)
  void on_complete(JobEventFn fn) { complete_hook_ = std::move(fn); }

  [[nodiscard]] const Job& job(JobId id) const;
  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t running_count() const noexcept { return running_.size(); }
  [[nodiscard]] std::size_t completed_count() const noexcept { return completed_order_.size(); }
  [[nodiscard]] bool idle() const noexcept { return queue_.empty() && running_.empty(); }

  /// Ids of pending jobs in current queue order (head first).
  [[nodiscard]] std::vector<JobId> queued_jobs() const { return queue_; }
  /// All jobs ever submitted, in submission order.
  [[nodiscard]] std::vector<const Job*> all_jobs() const;
  /// Completed jobs in completion order.
  [[nodiscard]] std::vector<const Job*> completed_jobs() const;

  /// Duration from first submission to last completion; 0 before any
  /// completion.
  [[nodiscard]] double makespan() const noexcept;

  /// Total Algorithm-2 delays issued across all jobs.
  [[nodiscard]] std::uint64_t total_skips() const noexcept { return total_skips_; }
  [[nodiscard]] std::uint64_t passes_run() const noexcept { return passes_; }
  /// Jobs put back in the queue because a node crashed under them.
  [[nodiscard]] std::uint64_t total_requeues() const noexcept { return total_requeues_; }

  /// Run one scheduling pass now (normally driven by submit/complete).
  void schedule_pass();

 private:
  /// Outcome of trying to launch one queued job (Algorithm 2).
  enum class StartOutcome { Launched, Delayed, NoResources };

  StartOutcome try_start(JobId id, bool via_backfill);
  void launch(Job& job, cluster::NodeSet nodes, bool via_backfill);
  void handle_completion(JobId id, const apps::RunRecord& record);
  void handle_node_fault(const faults::NodeFaultEvent& ev);
  /// Abort + release + re-enqueue a running job whose node died.
  void requeue(JobId id, cluster::NodeId failed_node);
  void insert_in_queue(JobId id);
  void apply_skip_placement(JobId id);
  void arm_retry();

  struct Reservation {
    sim::Time at = 0.0;
    int spare_nodes = 0;  // nodes free at reservation time beyond the job's need
  };
  [[nodiscard]] Reservation compute_reservation(const Job& job) const;

  sim::Engine& engine_;
  cluster::NodeAllocator& allocator_;
  apps::ExecutionModel& execution_;
  std::unique_ptr<QueuePolicyBase> main_policy_;
  std::unique_ptr<QueuePolicyBase> backfill_policy_;
  SchedulerConfig config_;
  VariabilityOracle* oracle_;

  JobId next_id_ = 1;
  std::unordered_map<JobId, Job> jobs_;
  std::vector<JobId> submit_order_;
  std::vector<JobId> queue_;  // pending, in R1 order
  std::unordered_set<JobId> running_;
  std::vector<JobId> completed_order_;
  // Incremental makespan endpoints: min submit time seen / max end time
  // seen, so makespan() never rescans the job tables.
  double first_submit_s_ = std::numeric_limits<double>::max();
  double last_end_s_ = 0.0;
  std::uint64_t total_skips_ = 0;
  std::uint64_t passes_ = 0;
  std::uint64_t total_requeues_ = 0;
  bool in_pass_ = false;
  bool pass_requested_ = false;
  bool retry_armed_ = false;
  JobEventFn start_hook_;
  JobEventFn complete_hook_;

  // Cached observability instruments (owned by config_.metrics; all null
  // when no registry is attached).
  obs::Counter* metric_passes_ = nullptr;
  obs::Counter* metric_launches_ = nullptr;
  obs::Counter* metric_backfills_ = nullptr;
  obs::Counter* metric_skips_ = nullptr;
  obs::Counter* metric_requeues_ = nullptr;  // registered only with faults attached
  obs::Histogram* metric_queue_depth_ = nullptr;
  obs::Histogram* metric_slowdown_ = nullptr;
};

}  // namespace rush::sched
