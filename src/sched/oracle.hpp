// Variability oracle interface: the M(j, S) of Algorithm 2.
//
// The scheduler is decoupled from the ML pipeline through this interface;
// core/RushOracle implements it with the trained model over live
// telemetry, while tests plug in scripted oracles.
#pragma once

#include "cluster/topology.hpp"
#include "sched/job.hpp"

namespace rush::sched {

/// The production model's three output classes (paper §IV-A): run time
/// within 1.2 sigma of the application mean, between 1.2 and 1.5 sigma,
/// or beyond 1.5 sigma.
enum class VariabilityPrediction : std::uint8_t {
  NoVariation = 0,
  LittleVariation = 1,
  Variation = 2,
};

const char* prediction_name(VariabilityPrediction p) noexcept;

class VariabilityOracle {
 public:
  virtual ~VariabilityOracle() = default;

  /// Predict whether launching `job` right now on `candidate_nodes` would
  /// experience run-time variation.
  [[nodiscard]] virtual VariabilityPrediction predict(const Job& job,
                                                      const cluster::NodeSet& candidate_nodes) = 0;
};

}  // namespace rush::sched
