#include "sched/policy.hpp"

#include "common/error.hpp"

namespace rush::sched {

std::unique_ptr<QueuePolicyBase> make_policy(const std::string& name) {
  if (name == "fcfs") return std::make_unique<FcfsPolicy>();
  if (name == "sjf") return std::make_unique<SjfPolicy>();
  throw ParseError("unknown queue policy '" + name + "'");
}

}  // namespace rush::sched
