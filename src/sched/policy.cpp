#include "sched/policy.hpp"

#include <string>

#include "common/audit.hpp"
#include "common/error.hpp"

namespace rush::sched {

void audit_policy_order(const QueuePolicyBase& p, const Job& a, const Job& b) {
  const bool ab = p.before(a, b);
  const bool ba = p.before(b, a);
  RUSH_AUDIT_CHECK(!p.before(a, a), "policy '" + p.name() + "' is not irreflexive");
  RUSH_AUDIT_CHECK(!p.before(b, b), "policy '" + p.name() + "' is not irreflexive");
  RUSH_AUDIT_CHECK(!(ab && ba), "policy '" + p.name() + "' orders jobs " +
                                    std::to_string(a.id) + " and " + std::to_string(b.id) +
                                    " both ways");
  RUSH_AUDIT_CHECK(a.id == b.id || ab || ba,
                   "policy '" + p.name() + "' leaves the tie between jobs " +
                       std::to_string(a.id) + " and " + std::to_string(b.id) +
                       " unbroken (missing the job-id tie-break)");
}

std::unique_ptr<QueuePolicyBase> make_policy(const std::string& name) {
  if (name == "fcfs") return std::make_unique<FcfsPolicy>();
  if (name == "sjf") return std::make_unique<SjfPolicy>();
  throw ParseError("unknown queue policy '" + name + "'");
}

}  // namespace rush::sched
