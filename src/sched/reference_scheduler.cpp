// Pinned pre-optimization implementation — see reference_scheduler.hpp.
// The linear scans and per-pass sorts below are the point: they are the
// baseline bench_micro_sched measures the incremental core against, so
// rush_analyze's sched-linear-scan rule exempts this file by name.
#include "sched/reference_scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "faults/injector.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "obs/trace.hpp"

namespace rush::sched {

ReferenceScheduler::ReferenceScheduler(sim::Engine& engine, cluster::NodeAllocator& allocator,
                                       apps::ExecutionModel& execution,
                                       std::unique_ptr<QueuePolicyBase> main_policy,
                                       std::unique_ptr<QueuePolicyBase> backfill_policy,
                                       SchedulerConfig config, VariabilityOracle* oracle)
    : engine_(engine), allocator_(allocator), execution_(execution),
      main_policy_(std::move(main_policy)), backfill_policy_(std::move(backfill_policy)),
      config_(config), oracle_(oracle) {
  RUSH_EXPECTS(main_policy_ != nullptr);
  RUSH_EXPECTS(backfill_policy_ != nullptr);
  RUSH_EXPECTS(!config_.rush_enabled || oracle_ != nullptr);
  RUSH_EXPECTS(config_.retry_period_s > 0.0);
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    metric_passes_ = &m.counter("sched.passes");
    metric_launches_ = &m.counter("sched.launches");
    metric_backfills_ = &m.counter("sched.backfills");
    metric_skips_ = &m.counter("sched.skips");
    metric_queue_depth_ = &m.histogram("sched.queue_depth", 1.0, 16384.0,
                                       kQueueDepthBuckets, obs::HistogramScale::Log2);
    metric_slowdown_ = &m.histogram("sched.slowdown", 1.0, 3.0, 80);
  }
  if (config_.faults != nullptr) {
    // Registered only when faults are attached so a zero-fault run's
    // metrics output stays byte-identical to a build without faults.
    if (config_.metrics != nullptr)
      metric_requeues_ = &config_.metrics->counter("sched.fault_requeues");
    config_.faults->subscribe_node_events(
        [this](const faults::NodeFaultEvent& ev) { handle_node_fault(ev); });
  }
}

void ReferenceScheduler::insert_in_queue(JobId id) {
  const Job& job = jobs_.at(id);
  const auto pos = std::find_if(queue_.begin(), queue_.end(), [&](JobId other) {
    return main_policy_->before(job, jobs_.at(other));
  });
  queue_.insert(pos, id);
}

JobId ReferenceScheduler::submit(JobSpec spec) {
  RUSH_EXPECTS(spec.num_nodes > 0);
  RUSH_EXPECTS(spec.num_nodes <= allocator_.managed_count());
  RUSH_EXPECTS(spec.walltime_estimate_s > 0.0);
  const JobId id = next_id_++;
  Job job;
  job.id = id;
  job.spec = std::move(spec);
  job.submit_s = engine_.now();
  first_submit_s_ = std::min(first_submit_s_, job.submit_s);
  jobs_.emplace(id, std::move(job));
  submit_order_.push_back(id);
  insert_in_queue(id);
  if (config_.trace != nullptr) {
    const Job& j = jobs_.at(id);
    config_.trace->emit_job_submit(engine_.now(), j.id, j.app_name(), j.spec.num_nodes,
                                   j.spec.walltime_estimate_s);
  }
  schedule_pass();
  return id;
}

JobId ReferenceScheduler::submit_at(sim::Time when, JobSpec spec) {
  RUSH_EXPECTS(when >= engine_.now());
  // Reserve the id now so callers can correlate, but enqueue at `when`.
  const JobId id = next_id_++;
  Job job;
  job.id = id;
  job.spec = std::move(spec);
  RUSH_EXPECTS(job.spec.num_nodes > 0);
  RUSH_EXPECTS(job.spec.num_nodes <= allocator_.managed_count());
  RUSH_EXPECTS(job.spec.walltime_estimate_s > 0.0);
  jobs_.emplace(id, std::move(job));
  engine_.schedule_at(when, [this, id] {
    Job& j = jobs_.at(id);
    j.submit_s = engine_.now();
    first_submit_s_ = std::min(first_submit_s_, j.submit_s);
    submit_order_.push_back(id);
    insert_in_queue(id);
    if (config_.trace != nullptr)
      config_.trace->emit_job_submit(engine_.now(), j.id, j.app_name(), j.spec.num_nodes,
                                     j.spec.walltime_estimate_s);
    schedule_pass();
  });
  return id;
}

const Job& ReferenceScheduler::job(JobId id) const {
  const auto it = jobs_.find(id);
  RUSH_EXPECTS(it != jobs_.end());
  return it->second;
}

std::vector<const Job*> ReferenceScheduler::all_jobs() const {
  std::vector<const Job*> out;
  out.reserve(submit_order_.size());
  for (JobId id : submit_order_) out.push_back(&jobs_.at(id));
  return out;
}

std::vector<const Job*> ReferenceScheduler::completed_jobs() const {
  std::vector<const Job*> out;
  out.reserve(completed_order_.size());
  for (JobId id : completed_order_) out.push_back(&jobs_.at(id));
  return out;
}

double ReferenceScheduler::makespan() const noexcept {
  // first_submit_s_ / last_end_s_ are maintained at submission and
  // completion, so this is O(1) however many jobs ran.
  if (completed_order_.empty() || submit_order_.empty()) return 0.0;
  return last_end_s_ - first_submit_s_;
}

ReferenceScheduler::Reservation ReferenceScheduler::compute_reservation(const Job& job) const {
  // Expected frees, using user walltime estimates (clamped so overrunning
  // jobs free "now" at the earliest).
  std::vector<std::pair<sim::Time, int>> frees;
  frees.reserve(running_.size());
  const sim::Time now = engine_.now();
  // frees is fully sorted by (time, count) below, so the visit order
  // here cannot leak into the result
  // rush-analyze: allow(unordered-iter)
  for (JobId id : running_) {
    const Job& r = jobs_.at(id);
    const sim::Time end_est = std::max(now, r.start_s + r.spec.walltime_estimate_s);
    frees.emplace_back(end_est, static_cast<int>(r.nodes.size()));
  }
  std::sort(frees.begin(), frees.end());

  int free = allocator_.free_count();
  for (const auto& [t, n] : frees) {
    free += n;
    if (free >= job.spec.num_nodes)
      return Reservation{t, free - job.spec.num_nodes};
  }
  // Job fits the machine when idle (precondition on submit), so with no
  // running jobs we can only get here if free already sufficed — treat as
  // "now" (the caller only reaches this when the job did not fit, which
  // implies running jobs exist).
  return Reservation{now, std::max(0, free - job.spec.num_nodes)};
}

ReferenceScheduler::StartOutcome ReferenceScheduler::try_start(JobId id, bool via_backfill) {
  Job& job = jobs_.at(id);
  RUSH_ASSERT(job.state == JobState::Pending);

  // A recently delayed job stays delayed without re-running the model;
  // see SchedulerConfig::min_reconsider_interval_s.
  if (config_.rush_enabled && job.last_delay_s >= 0.0 &&
      engine_.now() - job.last_delay_s < config_.min_reconsider_interval_s) {
    return StartOutcome::Delayed;
  }

  auto nodes = allocator_.allocate(job.spec.num_nodes);
  if (!nodes) return StartOutcome::NoResources;

  // Algorithm 2: Start(j, Q, M, S, SkipTable).
  if (config_.rush_enabled && job.skip_count < job.spec.skip_threshold) {
    const VariabilityPrediction pred = oracle_->predict(job, *nodes);
    const bool delay =
        (pred == VariabilityPrediction::Variation && config_.delay_on_variation) ||
        (pred == VariabilityPrediction::LittleVariation && config_.delay_on_little_variation);
    if (delay) {
      allocator_.release(*nodes);
      ++job.skip_count;
      ++total_skips_;
      job.last_delay_s = engine_.now();
      if (metric_skips_) metric_skips_->inc();
      if (config_.trace != nullptr)
        config_.trace->emit_alg2_skip(engine_.now(), job.id, prediction_name(pred),
                                      job.skip_count, job.spec.skip_threshold);
      return StartOutcome::Delayed;
    }
  }

  launch(job, std::move(*nodes), via_backfill);
  return StartOutcome::Launched;
}

void ReferenceScheduler::launch(Job& job, cluster::NodeSet nodes, bool via_backfill) {
  const auto in_queue = std::find(queue_.begin(), queue_.end(), job.id);
  RUSH_ASSERT(in_queue != queue_.end());
  queue_.erase(in_queue);

  job.state = JobState::Running;
  job.start_s = engine_.now();
  job.nodes = std::move(nodes);
  job.backfilled = via_backfill;
  running_.insert(job.id);

  const JobId id = job.id;
  job.run_id = execution_.launch(job.spec.app, job.nodes, job.spec.scaling,
                                 [this, id](const apps::RunRecord& record) {
                                   handle_completion(id, record);
                                 });
  if (metric_launches_) metric_launches_->inc();
  if (via_backfill && metric_backfills_) metric_backfills_->inc();
  if (config_.trace != nullptr)
    config_.trace->emit_job_start(engine_.now(), job.id, job.wait_s(), via_backfill, job.nodes);
  if (start_hook_) start_hook_(job);
}

void ReferenceScheduler::handle_completion(JobId id, const apps::RunRecord& record) {
  Job& job = jobs_.at(id);
  RUSH_ASSERT(job.state == JobState::Running);
  allocator_.release(job.nodes);
  job.state = JobState::Completed;
  job.end_s = engine_.now();
  last_end_s_ = std::max(last_end_s_, job.end_s);
  job.record = record;
  running_.erase(id);
  completed_order_.push_back(id);
  if (metric_slowdown_) metric_slowdown_->record(record.slowdown());
  if (config_.trace != nullptr)
    config_.trace->emit_job_end(engine_.now(), job.id, job.runtime_s(), record.slowdown(),
                                job.skip_count);
  if (complete_hook_) complete_hook_(job);
  schedule_pass();
}

void ReferenceScheduler::handle_node_fault(const faults::NodeFaultEvent& ev) {
  if (ev.kind == faults::FaultKind::NodeRestore) {
    // A node outside the managed range restores nothing here; only
    // re-run the pass when the allocator actually got a node back.
    if (allocator_.set_available(ev.node, true)) schedule_pass();
    return;
  }

  const bool managed = allocator_.set_available(ev.node, false);
  if (ev.kind == faults::FaultKind::NodeDrain || !managed) return;

  // Crash: every running job holding the node loses its work and goes
  // back to the queue. Victims are collected first (requeue mutates
  // running_), then requeued in job-id order for determinism.
  std::vector<JobId> victims;
  // rush-analyze: allow(unordered-iter) victims are sorted before use
  for (JobId id : running_) {
    const Job& r = jobs_.at(id);
    if (std::binary_search(r.nodes.begin(), r.nodes.end(), ev.node)) victims.push_back(id);
  }
  std::sort(victims.begin(), victims.end());
  for (JobId id : victims) requeue(id, ev.node);
  if (!victims.empty()) schedule_pass();
}

void ReferenceScheduler::requeue(JobId id, cluster::NodeId failed_node) {
  Job& job = jobs_.at(id);
  RUSH_ASSERT(job.state == JobState::Running);
  execution_.abort(job.run_id);
  allocator_.release(job.nodes);
  running_.erase(id);

  job.state = JobState::Pending;
  job.nodes.clear();
  job.run_id = 0;
  job.start_s = -1.0;
  job.backfilled = false;
  job.last_delay_s = -1.0;  // a fresh placement deserves a fresh oracle look
  ++job.requeues;
  ++total_requeues_;
  if (metric_requeues_) metric_requeues_->inc();
  if (config_.trace != nullptr)
    config_.trace->emit_fault_job_requeue(engine_.now(), job.id, failed_node, job.requeues);
  insert_in_queue(id);
}

void ReferenceScheduler::apply_skip_placement(JobId id) {
  if (config_.skip_placement != SkipPlacement::AfterFront) return;
  // Pseudocode reading: "push j after front of Q".
  if (queue_.size() >= 2 && queue_.front() == id) std::swap(queue_[0], queue_[1]);
}

void ReferenceScheduler::arm_retry() {
  if (retry_armed_) return;
  retry_armed_ = true;
  engine_.schedule_after(config_.retry_period_s, [this] {
    retry_armed_ = false;
    schedule_pass();
  });
}

void ReferenceScheduler::schedule_pass() {
  if (in_pass_) {
    pass_requested_ = true;
    return;
  }
  in_pass_ = true;
  do {
    pass_requested_ = false;
    ++passes_;
    if (metric_passes_) metric_passes_->inc();
    if (metric_queue_depth_) metric_queue_depth_->record(static_cast<double>(queue_.size()));
    bool any_delayed = false;

    // Walk a snapshot: starts mutate queue_, and jobs delayed in this pass
    // must not be reconsidered until the next pass.
    const std::vector<JobId> snapshot = queue_;
    std::unordered_set<JobId> delayed_this_pass;

    for (std::size_t qi = 0; qi < snapshot.size(); ++qi) {
      const JobId id = snapshot[qi];
      const auto it = jobs_.find(id);
      RUSH_ASSERT(it != jobs_.end());
      Job& job = it->second;
      if (job.state != JobState::Pending) continue;

      if (allocator_.can_allocate(job.spec.num_nodes)) {
        const StartOutcome outcome = try_start(id, /*via_backfill=*/false);
        RUSH_ASSERT(outcome != StartOutcome::NoResources);
        if (outcome == StartOutcome::Delayed) {
          any_delayed = true;
          delayed_this_pass.insert(id);
          apply_skip_placement(id);
        }
        continue;
      }

      // Reservation for the first job that does not fit (Algorithm 1,
      // lines 7-16), then EASY backfill of the rest in R2 order.
      if (config_.enable_backfill) {
        const Reservation res = compute_reservation(job);
        std::vector<JobId> candidates;
        for (JobId c : queue_) {
          if (c == id || delayed_this_pass.contains(c)) continue;
          if (jobs_.at(c).state == JobState::Pending) candidates.push_back(c);
        }
        std::sort(candidates.begin(), candidates.end(), [&](JobId a, JobId b) {
          return backfill_policy_->before(jobs_.at(a), jobs_.at(b));
        });

        if (config_.trace != nullptr && config_.trace->enabled()) {
          // Allocation decision: head job's reservation plus the scored
          // backfill candidates (capped to keep records bounded).
          std::vector<obs::CandidateScore> scored;
          constexpr std::size_t kMaxScored = 8;
          scored.reserve(std::min(candidates.size(), kMaxScored));
          for (JobId c : candidates) {
            if (scored.size() >= kMaxScored) break;
            scored.push_back({c, backfill_policy_->score(jobs_.at(c))});
          }
          config_.trace->emit_alloc_decision(engine_.now(), id, res.at, scored);
        }

        int free_now = allocator_.free_count();
        int spare = res.spare_nodes;
        const sim::Time now = engine_.now();
        for (JobId c : candidates) {
          Job& cand = jobs_.at(c);
          if (cand.spec.num_nodes > free_now) continue;
          const bool ends_before_reservation =
              now + cand.spec.walltime_estimate_s <= res.at;
          const bool fits_in_spare = cand.spec.num_nodes <= spare;
          if (!ends_before_reservation && !fits_in_spare) continue;

          const StartOutcome outcome = try_start(c, /*via_backfill=*/true);
          if (outcome == StartOutcome::Launched) {
            free_now -= cand.spec.num_nodes;
            if (!ends_before_reservation) spare -= cand.spec.num_nodes;
          } else if (outcome == StartOutcome::Delayed) {
            any_delayed = true;
            delayed_this_pass.insert(c);
          }
        }
      }
      break;  // only the head non-fitting job gets a reservation
    }

    // Delayed jobs would deadlock if no completion ever triggers another
    // pass; re-arm a timer pass whenever any delay happened.
    if (any_delayed) arm_retry();
  } while (pass_requested_);
  in_pass_ = false;
}

}  // namespace rush::sched
