#include "sched/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/audit.hpp"
#include "common/error.hpp"
#include "faults/injector.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "obs/trace.hpp"

namespace rush::sched {

const char* prediction_name(VariabilityPrediction p) noexcept {
  switch (p) {
    case VariabilityPrediction::NoVariation:
      return "no-variation";
    case VariabilityPrediction::LittleVariation:
      return "little-variation";
    case VariabilityPrediction::Variation:
      return "variation";
  }
  return "?";
}

Scheduler::Scheduler(sim::Engine& engine, cluster::NodeAllocator& allocator,
                     apps::ExecutionModel& execution,
                     std::unique_ptr<QueuePolicyBase> main_policy,
                     std::unique_ptr<QueuePolicyBase> backfill_policy, SchedulerConfig config,
                     VariabilityOracle* oracle)
    : engine_(engine), allocator_(allocator), execution_(execution),
      main_policy_(std::move(main_policy)), backfill_policy_(std::move(backfill_policy)),
      config_(config), oracle_(oracle) {
  RUSH_EXPECTS(main_policy_ != nullptr);
  RUSH_EXPECTS(backfill_policy_ != nullptr);
  RUSH_EXPECTS(!config_.rush_enabled || oracle_ != nullptr);
  RUSH_EXPECTS(config_.retry_period_s > 0.0);
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    metric_passes_ = &m.counter("sched.passes");
    metric_launches_ = &m.counter("sched.launches");
    metric_backfills_ = &m.counter("sched.backfills");
    metric_skips_ = &m.counter("sched.skips");
    metric_queue_depth_ = &m.histogram("sched.queue_depth", 1.0, 16384.0,
                                       kQueueDepthBuckets, obs::HistogramScale::Log2);
    metric_slowdown_ = &m.histogram("sched.slowdown", 1.0, 3.0, 80);
  }
  if (config_.faults != nullptr) {
    // Registered only when faults are attached so a zero-fault run's
    // metrics output stays byte-identical to a build without faults.
    if (config_.metrics != nullptr)
      metric_requeues_ = &config_.metrics->counter("sched.fault_requeues");
    config_.faults->subscribe_node_events(
        [this](const faults::NodeFaultEvent& ev) { handle_node_fault(ev); });
  }
}

Scheduler::~Scheduler() = default;

void Scheduler::audit_queue_insert(std::vector<JobId>::const_iterator pos,
                                   const Job& job) const {
  // Spot-check the ordering contract (policy.hpp) at the insertion
  // point: predecessor strictly before the new job would contradict the
  // upper_bound position only if the comparator misbehaves, and the new
  // job must relate deterministically to both neighbors.
  if (pos != queue_.cbegin()) audit_policy_order(*main_policy_, job_ref(*(pos - 1)), job);
  if (pos != queue_.cend()) audit_policy_order(*main_policy_, job, job_ref(*pos));
}

void Scheduler::insert_in_queue(JobId id) {
  const Job& job = job_ref(id);
  if (queue_unsorted_) {
    // AfterFront regime: the head pair is out of policy order, so binary
    // search is invalid. The reference linear walk is the semantics both
    // regimes must produce.
    // rush-analyze: allow(sched-linear-scan) sorted invariant suspended
    const auto pos = std::find_if(queue_.begin(), queue_.end(), [&](JobId other) {
      return main_policy_->before(job, job_ref(other));
    });
    queue_.insert(pos, id);
    return;
  }
  // queue_ is sorted by main policy: the reference "before the first
  // element the new job precedes" position is exactly upper_bound.
  const auto pos =
      std::upper_bound(queue_.begin(), queue_.end(), job, [&](const Job& j, JobId other) {
        return main_policy_->before(j, job_ref(other));
      });
  RUSH_AUDIT_HOOK(audit_queue_insert(pos, job));
  queue_.insert(pos, id);
}

void Scheduler::erase_from_queue(JobId id) {
  if (queue_unsorted_) {
    // rush-analyze: allow(sched-linear-scan) sorted invariant suspended
    const auto it = std::find(queue_.begin(), queue_.end(), id);
    RUSH_ASSERT(it != queue_.end());
    queue_.erase(it);
  } else {
    const Job& job = job_ref(id);
    // Land at the start of the job's policy-equivalence class, then walk
    // it (size 1 for a total order, which the audit hooks enforce).
    auto it =
        std::lower_bound(queue_.begin(), queue_.end(), job, [&](JobId other, const Job& j) {
          return main_policy_->before(job_ref(other), j);
        });
    while (it != queue_.end() && *it != id) ++it;
    RUSH_ASSERT(it != queue_.end());
    queue_.erase(it);
  }
  // A one-element queue is trivially sorted again.
  if (queue_.size() <= 1) queue_unsorted_ = false;
}

JobId Scheduler::submit(JobSpec spec) {
  RUSH_EXPECTS(spec.num_nodes > 0);
  RUSH_EXPECTS(spec.num_nodes <= allocator_.managed_count());
  RUSH_EXPECTS(spec.walltime_estimate_s > 0.0);
  const JobId id = next_id_++;
  jobs_.emplace_back();
  delayed_pass_.push_back(0);
  Job& job = jobs_.back();
  job.id = id;
  job.spec = std::move(spec);
  job.submit_s = engine_.now();
  RUSH_ASSERT(jobs_.size() == id);  // ids stay dense: id == table slot + 1
  first_submit_s_ = std::min(first_submit_s_, job.submit_s);
  submit_order_.push_back(id);
  insert_in_queue(id);
  if (config_.trace != nullptr) {
    const Job& j = job_ref(id);
    config_.trace->emit_job_submit(engine_.now(), j.id, j.app_name(), j.spec.num_nodes,
                                   j.spec.walltime_estimate_s);
  }
  schedule_pass();
  return id;
}

JobId Scheduler::submit_at(sim::Time when, JobSpec spec) {
  RUSH_EXPECTS(when >= engine_.now());
  // Validate before the id is allocated: the table must stay dense, so a
  // rejected spec may not leave a hole behind a consumed id.
  RUSH_EXPECTS(spec.num_nodes > 0);
  RUSH_EXPECTS(spec.num_nodes <= allocator_.managed_count());
  RUSH_EXPECTS(spec.walltime_estimate_s > 0.0);
  // Reserve the id now so callers can correlate, but enqueue at `when`.
  const JobId id = next_id_++;
  jobs_.emplace_back();
  delayed_pass_.push_back(0);
  Job& job = jobs_.back();
  job.id = id;
  job.spec = std::move(spec);
  RUSH_ASSERT(jobs_.size() == id);
  engine_.schedule_at(when, [this, id] {
    Job& j = job_ref(id);
    j.submit_s = engine_.now();
    first_submit_s_ = std::min(first_submit_s_, j.submit_s);
    submit_order_.push_back(id);
    insert_in_queue(id);
    if (config_.trace != nullptr)
      config_.trace->emit_job_submit(engine_.now(), j.id, j.app_name(), j.spec.num_nodes,
                                     j.spec.walltime_estimate_s);
    schedule_pass();
  });
  return id;
}

const Job& Scheduler::job(JobId id) const {
  RUSH_EXPECTS(id >= 1 && id <= jobs_.size());
  return jobs_[id - 1];
}

std::vector<const Job*> Scheduler::all_jobs() const {
  std::vector<const Job*> out;
  out.reserve(submit_order_.size());
  for (JobId id : submit_order_) out.push_back(&job_ref(id));
  return out;
}

std::vector<const Job*> Scheduler::completed_jobs() const {
  std::vector<const Job*> out;
  out.reserve(completed_order_.size());
  for (JobId id : completed_order_) out.push_back(&job_ref(id));
  return out;
}

double Scheduler::makespan() const noexcept {
  // first_submit_s_ / last_end_s_ are maintained at submission and
  // completion, so this is O(1) however many jobs ran.
  if (completed_order_.empty() || submit_order_.empty()) return 0.0;
  return last_end_s_ - first_submit_s_;
}

void Scheduler::timeline_insert(sim::Time end_est, int count) {
  const std::pair<sim::Time, int> e{end_est, count};
  timeline_.insert(std::upper_bound(timeline_.begin(), timeline_.end(), e), e);
}

void Scheduler::timeline_erase(sim::Time end_est, int count) {
  const std::pair<sim::Time, int> e{end_est, count};
  const auto it = std::lower_bound(timeline_.begin(), timeline_.end(), e);
  RUSH_ASSERT(it != timeline_.end() && *it == e);
  timeline_.erase(it);
}

Scheduler::Reservation Scheduler::compute_reservation(const Job& job) const {
  // The timeline already holds every running job's (walltime-estimate
  // end, node count) in sorted order. The reference sorts the *clamped*
  // ends (max(now, end)): entries whose estimate has already passed all
  // re-key to (now, count), which keeps them a prefix but orders them by
  // count among themselves — so only that prefix's counts need sorting
  // here, into a reused scratch buffer.
  const sim::Time now = engine_.now();
  const int need = job.spec.num_nodes;
  int free = allocator_.free_count();

  const std::pair<sim::Time, int> pivot{now, std::numeric_limits<int>::max()};
  const auto split = std::upper_bound(timeline_.begin(), timeline_.end(), pivot);

  clamped_counts_.clear();
  for (auto it = timeline_.begin(); it != split; ++it) clamped_counts_.push_back(it->second);
  std::sort(clamped_counts_.begin(), clamped_counts_.end());
  for (const int n : clamped_counts_) {
    free += n;
    if (free >= need) return Reservation{now, free - need};
  }
  for (auto it = split; it != timeline_.end(); ++it) {
    free += it->second;
    if (free >= need) return Reservation{it->first, free - need};
  }
  // Job fits the machine when idle (precondition on submit), so with no
  // running jobs we can only get here if free already sufficed — treat as
  // "now" (the caller only reaches this when the job did not fit, which
  // implies running jobs exist).
  return Reservation{now, std::max(0, free - need)};
}

Scheduler::StartOutcome Scheduler::try_start(JobId id, bool via_backfill) {
  Job& job = job_ref(id);
  RUSH_ASSERT(job.state == JobState::Pending);

  // A recently delayed job stays delayed without re-running the model;
  // see SchedulerConfig::min_reconsider_interval_s.
  if (config_.rush_enabled && job.last_delay_s >= 0.0 &&
      engine_.now() - job.last_delay_s < config_.min_reconsider_interval_s) {
    return StartOutcome::Delayed;
  }

  auto nodes = allocator_.allocate(job.spec.num_nodes);
  if (!nodes) return StartOutcome::NoResources;

  // Algorithm 2: Start(j, Q, M, S, SkipTable).
  if (config_.rush_enabled && job.skip_count < job.spec.skip_threshold) {
    const VariabilityPrediction pred = oracle_->predict(job, *nodes);
    const bool delay =
        (pred == VariabilityPrediction::Variation && config_.delay_on_variation) ||
        (pred == VariabilityPrediction::LittleVariation && config_.delay_on_little_variation);
    if (delay) {
      allocator_.release(*nodes);
      ++job.skip_count;
      ++total_skips_;
      job.last_delay_s = engine_.now();
      if (metric_skips_) metric_skips_->inc();
      if (config_.trace != nullptr)
        config_.trace->emit_alg2_skip(engine_.now(), job.id, prediction_name(pred),
                                      job.skip_count, job.spec.skip_threshold);
      return StartOutcome::Delayed;
    }
  }

  launch(job, std::move(*nodes), via_backfill);
  return StartOutcome::Launched;
}

void Scheduler::launch(Job& job, cluster::NodeSet nodes, bool via_backfill) {
  erase_from_queue(job.id);

  job.state = JobState::Running;
  job.start_s = engine_.now();
  job.nodes = std::move(nodes);
  job.backfilled = via_backfill;
  running_.insert(std::lower_bound(running_.begin(), running_.end(), job.id), job.id);
  timeline_insert(job.start_s + job.spec.walltime_estimate_s,
                  static_cast<int>(job.nodes.size()));

  const JobId id = job.id;
  job.run_id = execution_.launch(job.spec.app, job.nodes, job.spec.scaling,
                                 [this, id](const apps::RunRecord& record) {
                                   handle_completion(id, record);
                                 });
  if (metric_launches_) metric_launches_->inc();
  if (via_backfill && metric_backfills_) metric_backfills_->inc();
  if (config_.trace != nullptr)
    config_.trace->emit_job_start(engine_.now(), job.id, job.wait_s(), via_backfill, job.nodes);
  if (start_hook_) start_hook_(job);
}

void Scheduler::handle_completion(JobId id, const apps::RunRecord& record) {
  Job& job = job_ref(id);
  RUSH_ASSERT(job.state == JobState::Running);
  allocator_.release(job.nodes);
  timeline_erase(job.start_s + job.spec.walltime_estimate_s,
                 static_cast<int>(job.nodes.size()));
  job.state = JobState::Completed;
  job.end_s = engine_.now();
  last_end_s_ = std::max(last_end_s_, job.end_s);
  job.record = record;
  const auto run_it = std::lower_bound(running_.begin(), running_.end(), id);
  RUSH_ASSERT(run_it != running_.end() && *run_it == id);
  running_.erase(run_it);
  completed_order_.push_back(id);
  if (metric_slowdown_) metric_slowdown_->record(record.slowdown());
  if (config_.trace != nullptr)
    config_.trace->emit_job_end(engine_.now(), job.id, job.runtime_s(), record.slowdown(),
                                job.skip_count);
  if (complete_hook_) complete_hook_(job);
  schedule_pass();
}

void Scheduler::handle_node_fault(const faults::NodeFaultEvent& ev) {
  if (ev.kind == faults::FaultKind::NodeRestore) {
    // A node outside the managed range restores nothing here; only
    // re-run the pass when the allocator actually got a node back.
    if (allocator_.set_available(ev.node, true)) schedule_pass();
    return;
  }

  const bool managed = allocator_.set_available(ev.node, false);
  if (ev.kind == faults::FaultKind::NodeDrain || !managed) return;

  // Crash: every running job holding the node loses its work and goes
  // back to the queue. Victims are collected first (requeue mutates
  // running_); running_ is sorted by id, so the requeue order is the
  // deterministic job-id order already.
  std::vector<JobId> victims;
  // running_ is a sorted vector in this scheduler; the flagged name is
  // the reference scheduler's set. rush-analyze: allow(unordered-iter)
  for (JobId id : running_) {
    const Job& r = job_ref(id);
    if (std::binary_search(r.nodes.begin(), r.nodes.end(), ev.node)) victims.push_back(id);
  }
  for (JobId id : victims) requeue(id, ev.node);
  if (!victims.empty()) schedule_pass();
}

void Scheduler::requeue(JobId id, cluster::NodeId failed_node) {
  Job& job = job_ref(id);
  RUSH_ASSERT(job.state == JobState::Running);
  execution_.abort(job.run_id);
  allocator_.release(job.nodes);
  timeline_erase(job.start_s + job.spec.walltime_estimate_s,
                 static_cast<int>(job.nodes.size()));
  const auto run_it = std::lower_bound(running_.begin(), running_.end(), id);
  RUSH_ASSERT(run_it != running_.end() && *run_it == id);
  running_.erase(run_it);

  job.state = JobState::Pending;
  job.nodes.clear();
  job.run_id = 0;
  job.start_s = -1.0;
  job.backfilled = false;
  job.last_delay_s = -1.0;  // a fresh placement deserves a fresh oracle look
  ++job.requeues;
  ++total_requeues_;
  if (metric_requeues_) metric_requeues_->inc();
  if (config_.trace != nullptr)
    config_.trace->emit_fault_job_requeue(engine_.now(), job.id, failed_node, job.requeues);
  insert_in_queue(id);
}

void Scheduler::apply_skip_placement(JobId id) {
  if (config_.skip_placement != SkipPlacement::AfterFront) return;
  // Pseudocode reading: "push j after front of Q".
  if (queue_.size() >= 2 && queue_.front() == id) {
    std::swap(queue_[0], queue_[1]);
    // The new head is policy-later than its neighbor: drop to the
    // linear-walk regime until the queue drains (erase_from_queue
    // clears the flag at size <= 1).
    queue_unsorted_ = true;
  }
}

void Scheduler::arm_retry() {
  if (retry_armed_) return;
  retry_armed_ = true;
  engine_.schedule_after(config_.retry_period_s, [this] {
    retry_armed_ = false;
    schedule_pass();
  });
}

// rush: noalloc
void Scheduler::schedule_pass() {
  if (in_pass_) {
    pass_requested_ = true;
    return;
  }
  in_pass_ = true;
  do {
    pass_requested_ = false;
    ++passes_;
    if (metric_passes_) metric_passes_->inc();
    if (metric_queue_depth_) metric_queue_depth_->record(static_cast<double>(queue_.size()));
    bool any_delayed = false;

    // Walk a snapshot: starts mutate queue_, and jobs delayed in this pass
    // must not be reconsidered until the next pass. The snapshot and
    // candidate buffers are member scratch so steady-state passes reuse
    // their capacity instead of allocating.
    pass_snapshot_ = queue_;

    for (std::size_t qi = 0; qi < pass_snapshot_.size(); ++qi) {
      const JobId id = pass_snapshot_[qi];
      Job& job = job_ref(id);
      if (job.state != JobState::Pending) continue;

      if (allocator_.can_allocate(job.spec.num_nodes)) {
        const StartOutcome outcome = try_start(id, /*via_backfill=*/false);
        RUSH_ASSERT(outcome != StartOutcome::NoResources);
        if (outcome == StartOutcome::Delayed) {
          any_delayed = true;
          delayed_pass_[id - 1] = passes_;
          apply_skip_placement(id);
        }
        continue;
      }

      // Reservation for the first job that does not fit (Algorithm 1,
      // lines 7-16), then EASY backfill of the rest in R2 order.
      if (config_.enable_backfill) {
        const Reservation res = compute_reservation(job);
        const int free_at_start = allocator_.free_count();
        const bool tracing = config_.trace != nullptr && config_.trace->enabled();

        // Candidates that can never launch this pass (wider than the
        // current free count, which only shrinks below) are dropped up
        // front — unless tracing, where the scored top-8 must be drawn
        // from the full candidate list as the reference does.
        candidates_.clear();
        for (JobId c : queue_) {
          if (c == id || delayed_pass_[c - 1] == passes_) continue;
          const Job& cj = job_ref(c);
          if (cj.state != JobState::Pending) continue;
          if (!tracing && cj.spec.num_nodes > free_at_start) continue;
          candidates_.push_back(c);
        }
        const auto r2_before = [&](JobId a, JobId b) {
          return backfill_policy_->before(job_ref(a), job_ref(b));
        };

        if (tracing) {
          // Allocation decision: head job's reservation plus the scored
          // backfill candidates (capped to keep records bounded). A
          // partial sort to the cap is the full sort's prefix because
          // queue policies are total orders (policy.hpp).
          constexpr std::size_t kMaxScored = 8;
          const std::size_t k = std::min(candidates_.size(), kMaxScored);
          std::partial_sort(candidates_.begin(),
                            candidates_.begin() + static_cast<std::ptrdiff_t>(k),
                            candidates_.end(), r2_before);
          scored_.clear();
          for (std::size_t i = 0; i < k; ++i)
            scored_.push_back({candidates_[i], backfill_policy_->score(job_ref(candidates_[i]))});
          config_.trace->emit_alloc_decision(engine_.now(), id, res.at, scored_);
          // Now drop the never-launchable candidates before the walk.
          std::erase_if(candidates_, [&](JobId c) {
            return job_ref(c).spec.num_nodes > free_at_start;
          });
        }
        std::sort(candidates_.begin(), candidates_.end(), r2_before);

        int free_now = free_at_start;
        int spare = res.spare_nodes;
        const sim::Time now = engine_.now();
        for (JobId c : candidates_) {
          Job& cand = job_ref(c);
          if (cand.spec.num_nodes > free_now) continue;
          const bool ends_before_reservation =
              now + cand.spec.walltime_estimate_s <= res.at;
          const bool fits_in_spare = cand.spec.num_nodes <= spare;
          if (!ends_before_reservation && !fits_in_spare) continue;

          const StartOutcome outcome = try_start(c, /*via_backfill=*/true);
          if (outcome == StartOutcome::Launched) {
            free_now -= cand.spec.num_nodes;
            if (!ends_before_reservation) spare -= cand.spec.num_nodes;
          } else if (outcome == StartOutcome::Delayed) {
            any_delayed = true;
            delayed_pass_[c - 1] = passes_;
          }
        }
      }
      break;  // only the head non-fitting job gets a reservation
    }

    // Delayed jobs would deadlock if no completion ever triggers another
    // pass; re-arm a timer pass whenever any delay happened.
    if (any_delayed) arm_retry();
  } while (pass_requested_);
  in_pass_ = false;
}

}  // namespace rush::sched
