// Batch scheduler: FCFS(+EASY) baseline and the RUSH modification.
//
// Algorithm 1 (paper §IV-B): each scheduling pass walks the queue in R1
// order, starting every job that fits; the first job that does not fit
// gets a reservation at the earliest time enough nodes free up, and the
// remaining jobs are EASY-backfilled in R2 order if they neither exceed
// the free nodes nor delay the reservation.
//
// Algorithm 2: Start(j) consults the variability oracle when RUSH is
// enabled; a job predicted to vary (and still under its skip threshold)
// is put back on the queue instead of launched. The skipped job keeps its
// place at the head of the queue ("remains at the top", the prose
// reading) or moves one slot back ("push after front", the pseudocode
// reading) depending on SkipPlacement.
//
// Incremental core (DESIGN.md §14): this is the optimized scheduler. A
// pass is O(work done) rather than O(state held):
//  - jobs live in a dense table indexed by JobId (ids are allocated
//    densely from 1 by this scheduler), so every lookup is an array
//    index instead of a hash probe;
//  - the ready queue is kept sorted in main-policy order, so inserts are
//    a binary search (O(log n) policy evaluations) and the launch-path
//    erase is a binary search instead of a linear std::find;
//  - running jobs' walltime-estimate end times are maintained in a
//    sorted reservation timeline updated on launch/completion/requeue,
//    so compute_reservation no longer re-sorts every running job each
//    pass;
//  - per-pass containers (queue snapshot, backfill candidates, trace
//    scores) are member scratch buffers, and "delayed this pass" is a
//    pass-numbered stamp per job, so a steady-state pass that launches
//    nothing performs no allocation at all.
// Every scheduling decision — launch order, node assignments, trace
// bytes — is byte-identical to the pinned pre-optimization
// ReferenceScheduler (sched/reference_scheduler.hpp); the differential
// suite in tests/sched/test_differential.cpp enforces that, and
// bench/bench_micro_sched.cpp measures the resulting pass latency and
// allocation counts against it.
#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "apps/execution.hpp"
#include "cluster/allocator.hpp"
#include "sched/job.hpp"
#include "sched/oracle.hpp"
#include "sched/policy.hpp"

namespace rush::faults {
class FaultInjector;
struct NodeFaultEvent;
}  // namespace rush::faults

namespace rush::obs {
class Counter;
class EventTrace;
class Histogram;
class MetricsRegistry;
struct CandidateScore;
}  // namespace rush::obs

namespace rush::sched {

enum class SkipPlacement : std::uint8_t { Front, AfterFront };

/// Bucket count of the sched.queue_depth histogram: a Log2 layout over
/// [1, 16384) at two buckets per octave. The old shape was uniform
/// [0, 256) x 64, which clipped every deeper queue into one overflow
/// bucket; the geometric layout keeps relative resolution out to 16k
/// jobs while depth 0 lands in the (exactly counted) underflow bucket.
inline constexpr std::size_t kQueueDepthBuckets = 28;

struct SchedulerConfig {
  bool enable_backfill = true;  // EASY
  /// Consult the oracle in Start() (Algorithm 2). Requires an oracle.
  bool rush_enabled = false;
  /// Predictions that cause a delay ("variation labels" in Algorithm 2).
  bool delay_on_little_variation = false;
  bool delay_on_variation = true;
  SkipPlacement skip_placement = SkipPlacement::Front;
  /// A pass that delays jobs while nothing is running re-arms itself
  /// after this long so delayed jobs cannot stall the system.
  double retry_period_s = 30.0;
  /// Minimum spacing between oracle evaluations for one job. Scheduling
  /// passes can fire every few seconds under churn; within this window a
  /// previously delayed job stays delayed without re-running the model
  /// (and without consuming another skip), so the skip threshold spans a
  /// congestion episode rather than a burst of scheduler passes.
  double min_reconsider_interval_s = 90.0;
  /// Optional observability sinks (either may stay null, costing one
  /// branch per emit point): job lifecycle / allocation-decision /
  /// Algorithm-2 skip records go to `trace`; queue-depth and slowdown
  /// distributions plus pass/launch counters go to `metrics`. Both must
  /// outlive the scheduler.
  obs::EventTrace* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional fault injector (faults/injector.hpp). When set, the
  /// scheduler subscribes to its node events: a crash takes the node out
  /// of the allocator and requeues the job running on it, a drain only
  /// excludes the node from future placements, a restore returns it.
  /// Must outlive the scheduler. Null (the default) leaves scheduling
  /// behavior byte-identical to a fault-free build.
  faults::FaultInjector* faults = nullptr;
};

class Scheduler {
 public:
  using JobEventFn = std::function<void(const Job&)>;

  /// The oracle may be null unless rush_enabled. All references must
  /// outlive the scheduler.
  Scheduler(sim::Engine& engine, cluster::NodeAllocator& allocator,
            apps::ExecutionModel& execution, std::unique_ptr<QueuePolicyBase> main_policy,
            std::unique_ptr<QueuePolicyBase> backfill_policy, SchedulerConfig config,
            VariabilityOracle* oracle = nullptr);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  // Out of line: the scratch buffers hold forward-declared trace types.
  ~Scheduler();

  /// Submit a job now; triggers a scheduling pass.
  JobId submit(JobSpec spec);
  /// Submit at a future simulated time.
  JobId submit_at(sim::Time when, JobSpec spec);

  /// Optional hooks, fired on job start / completion. A null fn clears
  /// the hook, so every input is valid.
  // rush-analyze: allow(missing-expects)
  void on_start(JobEventFn fn) { start_hook_ = std::move(fn); }
  // rush-analyze: allow(missing-expects)
  void on_complete(JobEventFn fn) { complete_hook_ = std::move(fn); }

  [[nodiscard]] const Job& job(JobId id) const;
  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t running_count() const noexcept { return running_.size(); }
  [[nodiscard]] std::size_t completed_count() const noexcept { return completed_order_.size(); }
  [[nodiscard]] bool idle() const noexcept { return queue_.empty() && running_.empty(); }

  /// Ids of pending jobs in current queue order (head first).
  [[nodiscard]] std::vector<JobId> queued_jobs() const { return queue_; }
  /// All jobs ever submitted, in submission order.
  [[nodiscard]] std::vector<const Job*> all_jobs() const;
  /// Completed jobs in completion order.
  [[nodiscard]] std::vector<const Job*> completed_jobs() const;

  /// Duration from first submission to last completion; 0 before any
  /// completion.
  [[nodiscard]] double makespan() const noexcept;

  /// Total Algorithm-2 delays issued across all jobs.
  [[nodiscard]] std::uint64_t total_skips() const noexcept { return total_skips_; }
  [[nodiscard]] std::uint64_t passes_run() const noexcept { return passes_; }
  /// Jobs put back in the queue because a node crashed under them.
  [[nodiscard]] std::uint64_t total_requeues() const noexcept { return total_requeues_; }

  /// Run one scheduling pass now (normally driven by submit/complete).
  void schedule_pass();

 private:
  /// Outcome of trying to launch one queued job (Algorithm 2).
  enum class StartOutcome { Launched, Delayed, NoResources };

  StartOutcome try_start(JobId id, bool via_backfill);
  void launch(Job& job, cluster::NodeSet nodes, bool via_backfill);
  void handle_completion(JobId id, const apps::RunRecord& record);
  void handle_node_fault(const faults::NodeFaultEvent& ev);
  /// Abort + release + re-enqueue a running job whose node died.
  void requeue(JobId id, cluster::NodeId failed_node);
  void insert_in_queue(JobId id);
  /// Removes a launching job from queue_ (binary search in the sorted
  /// regime, linear in the AfterFront-unsorted regime).
  void erase_from_queue(JobId id);
  void apply_skip_placement(JobId id);
  void arm_retry();

  /// Table access by dense id; the public job() validates and throws.
  [[nodiscard]] Job& job_ref(JobId id) noexcept { return jobs_[id - 1]; }
  [[nodiscard]] const Job& job_ref(JobId id) const noexcept { return jobs_[id - 1]; }

  /// Reservation-timeline bookkeeping: one (walltime-estimate end, node
  /// count) entry per running job, kept sorted by that pair.
  void timeline_insert(sim::Time end_est, int count);
  void timeline_erase(sim::Time end_est, int count);

  /// RUSH_AUDIT hook: checks the main policy behaves as a strict weak
  /// ordering (with a deterministic total order across distinct ids)
  /// against the insertion point's neighbors. See policy.hpp.
  void audit_queue_insert(std::vector<JobId>::const_iterator pos, const Job& job) const;

  struct Reservation {
    sim::Time at = 0.0;
    int spare_nodes = 0;  // nodes free at reservation time beyond the job's need
  };
  [[nodiscard]] Reservation compute_reservation(const Job& job) const;

  sim::Engine& engine_;
  cluster::NodeAllocator& allocator_;
  apps::ExecutionModel& execution_;
  std::unique_ptr<QueuePolicyBase> main_policy_;
  std::unique_ptr<QueuePolicyBase> backfill_policy_;
  SchedulerConfig config_;
  VariabilityOracle* oracle_;

  JobId next_id_ = 1;
  // Dense job table: jobs_[id - 1]. Ids are handed out sequentially by
  // submit/submit_at, and a deque gives stable references across growth,
  // so a JobId is a direct index for the scheduler's whole lifetime.
  std::deque<Job> jobs_;
  std::vector<JobId> submit_order_;
  // Pending jobs in R1 order. Invariant: sorted by main_policy_ (which
  // makes insert/erase binary searches) except while queue_unsorted_ —
  // see apply_skip_placement.
  std::vector<JobId> queue_;
  // SkipPlacement::AfterFront swaps the head pair, putting a
  // policy-later job in front: binary search is off the table until the
  // queue drains to a single element. While set, queue ops fall back to
  // the reference linear walk, which is exactly the legacy semantics.
  bool queue_unsorted_ = false;
  std::vector<JobId> running_;  // sorted by id
  // (start_s + walltime_estimate_s, node count) per running job, sorted.
  // compute_reservation walks this instead of re-sorting running_.
  std::vector<std::pair<sim::Time, int>> timeline_;
  std::vector<JobId> completed_order_;
  // delayed_pass_[id - 1] == passes_ marks "delayed in the current
  // pass" without a per-pass set allocation.
  std::vector<std::uint64_t> delayed_pass_;
  // Incremental makespan endpoints: min submit time seen / max end time
  // seen, so makespan() never rescans the job tables.
  double first_submit_s_ = std::numeric_limits<double>::max();
  double last_end_s_ = 0.0;
  std::uint64_t total_skips_ = 0;
  std::uint64_t passes_ = 0;
  std::uint64_t total_requeues_ = 0;
  bool in_pass_ = false;
  bool pass_requested_ = false;
  bool retry_armed_ = false;
  JobEventFn start_hook_;
  JobEventFn complete_hook_;

  // Per-pass scratch, reused so a steady-state pass allocates nothing.
  // schedule_pass is non-reentrant (in_pass_ guard), so one set suffices.
  std::vector<JobId> pass_snapshot_;
  std::vector<JobId> candidates_;
  mutable std::vector<int> clamped_counts_;  // compute_reservation is const
  std::vector<obs::CandidateScore> scored_;

  // Cached observability instruments (owned by config_.metrics; all null
  // when no registry is attached).
  obs::Counter* metric_passes_ = nullptr;
  obs::Counter* metric_launches_ = nullptr;
  obs::Counter* metric_backfills_ = nullptr;
  obs::Counter* metric_skips_ = nullptr;
  obs::Counter* metric_requeues_ = nullptr;  // registered only with faults attached
  obs::Histogram* metric_queue_depth_ = nullptr;
  obs::Histogram* metric_slowdown_ = nullptr;
};

}  // namespace rush::sched
