// Batch job model.
#pragma once

#include <cstdint>
#include <string>

#include "apps/profiler.hpp"
#include "apps/profiles.hpp"
#include "cluster/topology.hpp"
#include "sim/types.hpp"

namespace rush::sched {

using JobId = std::uint64_t;

enum class JobState : std::uint8_t { Pending, Running, Completed };

/// What the user submits.
struct JobSpec {
  apps::AppProfile app;
  int num_nodes = 16;
  apps::ScalingMode scaling = apps::ScalingMode::Strong;
  /// User-provided run time limit; drives EASY reservations. The paper
  /// notes users over-estimate — the workload generator models that.
  double walltime_estimate_s = 0.0;
  /// Per-job starvation bound (paper §IV-B uses 10 globally but notes the
  /// parameter "could be extended to be per-job").
  int skip_threshold = 10;
};

struct Job {
  JobId id = 0;
  JobSpec spec;
  JobState state = JobState::Pending;
  sim::Time submit_s = 0.0;
  sim::Time start_s = -1.0;
  sim::Time end_s = -1.0;
  cluster::NodeSet nodes;  // valid while Running/Completed
  std::uint64_t run_id = 0;
  int skip_count = 0;       // times RUSH delayed this job (Algorithm 2)
  sim::Time last_delay_s = -1.0;  // when the oracle last delayed this job
  bool backfilled = false;        // started via the EASY backfill path
  int requeues = 0;         // times a node crash sent this job back to the queue
  apps::RunRecord record;   // filled on completion

  [[nodiscard]] const std::string& app_name() const noexcept { return spec.app.name; }
  [[nodiscard]] double wait_s() const noexcept {
    return start_s >= 0.0 ? start_s - submit_s : -1.0;
  }
  [[nodiscard]] double runtime_s() const noexcept {
    return (state == JobState::Completed) ? end_s - start_s : -1.0;
  }
};

}  // namespace rush::sched
