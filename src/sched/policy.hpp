// Queue ordering policies (the R1 / R2 inputs of Algorithm 1).
//
// Mirrors the Flux class structure the paper modifies: a
// queue_policy_base_t-style interface with FCFS and SJF orderings. The
// RUSH behaviour itself is not an ordering — it lives in the scheduler's
// Start() hook (Algorithm 2) — so any pair of these policies composes
// with it, exactly as the paper claims.
#pragma once

#include <memory>
#include <string>

#include "sched/job.hpp"

namespace rush::sched {

class QueuePolicyBase {
 public:
  virtual ~QueuePolicyBase() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Strict weak ordering: true when `a` should run before `b`.
  [[nodiscard]] virtual bool before(const Job& a, const Job& b) const = 0;
  /// Scalar priority key behind `before` (smaller runs earlier), recorded
  /// in allocation-decision trace events. Defaulted so external policies
  /// that only define an ordering keep compiling.
  [[nodiscard]] virtual double score(const Job& job) const {
    (void)job;
    return 0.0;
  }
};

/// First-come first-served: submit time, job id as tie-break.
class FcfsPolicy final : public QueuePolicyBase {
 public:
  [[nodiscard]] std::string name() const override { return "fcfs"; }
  [[nodiscard]] bool before(const Job& a, const Job& b) const override {
    if (a.submit_s != b.submit_s) return a.submit_s < b.submit_s;
    return a.id < b.id;
  }
  [[nodiscard]] double score(const Job& job) const override { return job.submit_s; }
};

/// Shortest job first by user walltime estimate.
class SjfPolicy final : public QueuePolicyBase {
 public:
  [[nodiscard]] std::string name() const override { return "sjf"; }
  [[nodiscard]] bool before(const Job& a, const Job& b) const override {
    if (a.spec.walltime_estimate_s != b.spec.walltime_estimate_s)
      return a.spec.walltime_estimate_s < b.spec.walltime_estimate_s;
    return a.id < b.id;
  }
  [[nodiscard]] double score(const Job& job) const override {
    return job.spec.walltime_estimate_s;
  }
};

std::unique_ptr<QueuePolicyBase> make_policy(const std::string& name);

}  // namespace rush::sched
