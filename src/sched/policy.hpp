// Queue ordering policies (the R1 / R2 inputs of Algorithm 1).
//
// Mirrors the Flux class structure the paper modifies: a
// queue_policy_base_t-style interface with FCFS and SJF orderings. The
// RUSH behaviour itself is not an ordering — it lives in the scheduler's
// Start() hook (Algorithm 2) — so any pair of these policies composes
// with it, exactly as the paper claims.
#pragma once

#include <memory>
#include <string>

#include "sched/job.hpp"

namespace rush::sched {

class QueuePolicyBase {
 public:
  virtual ~QueuePolicyBase() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// True when `a` should run before `b`.
  ///
  /// Ordering contract: `before` must be a strict weak ordering
  /// (irreflexive, asymmetric, transitive) — the scheduler keeps its
  /// ready queue sorted by it and binary-searches insert/erase
  /// positions, which misordering would silently corrupt. It must
  /// further be a *total* order across distinct jobs: break every tie
  /// deterministically on `a.id < b.id` (ids are unique and stable), as
  /// FcfsPolicy and SjfPolicy do. The tie-break is what makes queue
  /// order, backfill candidate order, and therefore every scheduling
  /// decision reproducible across runs and scheduler implementations.
  /// Debug/RUSH_AUDIT builds spot-check both properties on the pairs the
  /// scheduler actually compares (see audit_policy_order); a policy that
  /// leaves ties unbroken throws AuditError there.
  [[nodiscard]] virtual bool before(const Job& a, const Job& b) const = 0;
  /// Scalar priority key behind `before` (smaller runs earlier), recorded
  /// in allocation-decision trace events. Defaulted so external policies
  /// that only define an ordering keep compiling.
  [[nodiscard]] virtual double score(const Job& job) const {
    (void)job;
    return 0.0;
  }
};

/// First-come first-served: submit time, job id as tie-break.
class FcfsPolicy final : public QueuePolicyBase {
 public:
  [[nodiscard]] std::string name() const override { return "fcfs"; }
  [[nodiscard]] bool before(const Job& a, const Job& b) const override {
    if (a.submit_s != b.submit_s) return a.submit_s < b.submit_s;
    return a.id < b.id;
  }
  [[nodiscard]] double score(const Job& job) const override { return job.submit_s; }
};

/// Shortest job first by user walltime estimate.
class SjfPolicy final : public QueuePolicyBase {
 public:
  [[nodiscard]] std::string name() const override { return "sjf"; }
  [[nodiscard]] bool before(const Job& a, const Job& b) const override {
    if (a.spec.walltime_estimate_s != b.spec.walltime_estimate_s)
      return a.spec.walltime_estimate_s < b.spec.walltime_estimate_s;
    return a.id < b.id;
  }
  [[nodiscard]] double score(const Job& job) const override {
    return job.spec.walltime_estimate_s;
  }
};

std::unique_ptr<QueuePolicyBase> make_policy(const std::string& name);

/// Audit helper for the ordering contract on `before` (see
/// QueuePolicyBase): verifies irreflexivity, asymmetry, and the
/// deterministic id tie-break (distinct ids must order one way or the
/// other) on one concrete pair, throwing AuditError on violation. Always
/// compiled — tests call it directly; the scheduler hooks it into queue
/// inserts via RUSH_AUDIT_HOOK so RUSH_AUDIT=OFF builds pay nothing.
void audit_policy_order(const QueuePolicyBase& p, const Job& a, const Job& b);

}  // namespace rush::sched
