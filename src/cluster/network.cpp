#include "cluster/network.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "cluster/congestion.hpp"
#include "common/audit.hpp"
#include "common/error.hpp"

namespace rush::cluster {

NetworkModel::NetworkModel(const FatTree& tree) : tree_(tree) {
  ambient_.assign(static_cast<std::size_t>(tree_.num_links()), 0.0);
  loads_.assign(ambient_.size(), 0.0);
}

void NetworkModel::mark_dirty() noexcept {
  dirty_ = true;
  ++generation_;
}

void NetworkModel::add_source(SourceId id, NodeSet nodes, double per_node_gbps,
                              TrafficPattern pattern) {
  RUSH_EXPECTS(valid_node_set(tree_, nodes));
  RUSH_EXPECTS(per_node_gbps >= 0.0);
  RUSH_EXPECTS(!sources_.contains(id));
  sources_.emplace(id, TrafficSource{std::move(nodes), per_node_gbps, pattern});
  mark_dirty();
}

void NetworkModel::set_rate(SourceId id, double per_node_gbps) {
  RUSH_EXPECTS(per_node_gbps >= 0.0);
  auto it = sources_.find(id);
  RUSH_EXPECTS(it != sources_.end());
  if (it->second.per_node_gbps == per_node_gbps) return;
  it->second.per_node_gbps = per_node_gbps;
  mark_dirty();
}

void NetworkModel::remove_source(SourceId id) {
  const auto erased = sources_.erase(id);
  RUSH_EXPECTS(erased == 1);
  mark_dirty();
}

bool NetworkModel::has_source(SourceId id) const noexcept { return sources_.contains(id); }

void NetworkModel::set_ambient_load(LinkId link, double gbps) {
  RUSH_EXPECTS(link >= 0 && link < tree_.num_links());
  RUSH_EXPECTS(gbps >= 0.0);
  if (ambient_[static_cast<std::size_t>(link)] == gbps) return;
  ambient_[static_cast<std::size_t>(link)] = gbps;
  mark_dirty();
}

void NetworkModel::map_flows(const TrafficSource& src, std::vector<LinkShare>& out) const {
  const double r = src.per_node_gbps;
  const auto n = src.nodes.size();
  if (r <= 0.0) return;
  if (n < 2 && src.pattern != TrafficPattern::Gateway) return;

  // Every member pushes its full injection through its own access link.
  for (NodeId u : src.nodes) out.push_back({tree_.node_link(u), r});

  switch (src.pattern) {
    case TrafficPattern::AllToAll: {
      // Count members per edge switch and per pod; the fraction of a
      // node's traffic leaving its edge (pod) is the fraction of peers
      // outside it.
      std::unordered_map<int, int> per_edge;
      std::unordered_map<int, int> per_pod;
      for (NodeId u : src.nodes) {
        ++per_edge[tree_.edge_of(u)];
        ++per_pod[tree_.pod_of(u)];
      }
      const double m = static_cast<double>(n - 1);
      for (const auto& [edge, count] : per_edge) {
        const double outside = static_cast<double>(n - static_cast<std::size_t>(count));
        if (outside > 0.0)
          out.push_back({tree_.edge_uplink(edge), static_cast<double>(count) * r * outside / m});
      }
      for (const auto& [pod, count] : per_pod) {
        const double outside = static_cast<double>(n - static_cast<std::size_t>(count));
        if (outside > 0.0)
          out.push_back({tree_.pod_uplink(pod), static_cast<double>(count) * r * outside / m});
      }
      break;
    }
    case TrafficPattern::NearestNeighbor:
    case TrafficPattern::Ring: {
      // Each node splits its injection between its two neighbours in
      // allocation order; only pairs that straddle an edge (pod) boundary
      // load the respective uplinks.
      auto add_pair = [&](NodeId u, NodeId v) {
        const double half = r / 2.0;
        const int eu = tree_.edge_of(u);
        const int ev = tree_.edge_of(v);
        if (eu != ev) {
          out.push_back({tree_.edge_uplink(eu), half});
          out.push_back({tree_.edge_uplink(ev), half});
          const int pu = tree_.pod_of(u);
          const int pv = tree_.pod_of(v);
          if (pu != pv) {
            out.push_back({tree_.pod_uplink(pu), half});
            out.push_back({tree_.pod_uplink(pv), half});
          }
        }
      };
      for (std::size_t i = 0; i + 1 < n; ++i) add_pair(src.nodes[i], src.nodes[i + 1]);
      if (src.pattern == TrafficPattern::Ring && n > 2) add_pair(src.nodes.back(), src.nodes.front());
      break;
    }
    case TrafficPattern::Gateway: {
      // Traffic leaves the pod entirely: each node loads its edge uplink
      // and its pod uplink with its full injection.
      std::unordered_map<int, double> per_edge;
      std::unordered_map<int, double> per_pod;
      for (NodeId u : src.nodes) {
        per_edge[tree_.edge_of(u)] += r;
        per_pod[tree_.pod_of(u)] += r;
      }
      for (const auto& [edge, load] : per_edge) out.push_back({tree_.edge_uplink(edge), load});
      for (const auto& [pod, load] : per_pod) out.push_back({tree_.pod_uplink(pod), load});
      break;
    }
  }
}

void NetworkModel::recompute() const {
  loads_ = ambient_;
  std::vector<LinkShare> shares;
  for (const auto& [id, src] : sources_) {
    shares.clear();
    map_flows(src, shares);
    for (const LinkShare& s : shares) loads_[static_cast<std::size_t>(s.link)] += s.gbps;
  }
  dirty_ = false;
  RUSH_AUDIT_HOOK(audit_invariants());
}

void NetworkModel::audit_invariants() const {
  RUSH_AUDIT_CHECK(ambient_.size() == static_cast<std::size_t>(tree_.num_links()), "");
  RUSH_AUDIT_CHECK(loads_.size() == ambient_.size(), "per-link load vector resized");
  for (const auto& [id, src] : sources_) {
    RUSH_AUDIT_CHECK(src.per_node_gbps >= 0.0,
                     "source " + std::to_string(id) + " has negative rate");
  }
  if (dirty_) return;  // loads_ is stale by design until the next recompute
  // Conservation: accumulated link load == ambient + sum of source demands.
  std::vector<double> expected = ambient_;
  std::vector<LinkShare> shares;
  for (const auto& [id, src] : sources_) {
    shares.clear();
    map_flows(src, shares);
    for (const LinkShare& s : shares) expected[static_cast<std::size_t>(s.link)] += s.gbps;
  }
  for (std::size_t l = 0; l < expected.size(); ++l) {
    RUSH_AUDIT_CHECK(loads_[l] >= 0.0, "negative load on link " + std::to_string(l));
    const double tol = 1e-9 * std::max(1.0, std::abs(expected[l]));
    RUSH_AUDIT_CHECK(std::abs(loads_[l] - expected[l]) <= tol,
                     "link " + std::to_string(l) + " load " + std::to_string(loads_[l]) +
                         " != demand sum " + std::to_string(expected[l]));
  }
}

double NetworkModel::worst_over_links(const std::vector<LinkShare>& shares,
                                      const std::vector<double>& loads) const {
  double worst_util = 0.0;
  for (const LinkShare& s : shares) {
    const double cap = tree_.link_capacity_gbps(s.link);
    const double util = loads[static_cast<std::size_t>(s.link)] / cap;
    worst_util = std::max(worst_util, util);
  }
  return congestion_slowdown(worst_util);
}

double NetworkModel::slowdown(SourceId id) const {
  auto it = sources_.find(id);
  RUSH_EXPECTS(it != sources_.end());
  if (dirty_) recompute();
  std::vector<LinkShare> shares;
  map_flows(it->second, shares);
  return worst_over_links(shares, loads_);
}

double NetworkModel::probe_slowdown(const NodeSet& nodes, double per_node_gbps,
                                    TrafficPattern pattern) const {
  RUSH_EXPECTS(valid_node_set(tree_, nodes));
  if (dirty_) recompute();
  TrafficSource probe{nodes, per_node_gbps, pattern};
  std::vector<LinkShare> shares;
  map_flows(probe, shares);
  // The probe's own traffic must count toward the load it experiences:
  // aggregate its per-link shares, then evaluate against loads + self.
  std::unordered_map<LinkId, double> self;
  for (const LinkShare& s : shares) self[s.link] += s.gbps;
  double worst_util = 0.0;
  for (const auto& [link, own] : self) {
    const double cap = tree_.link_capacity_gbps(link);
    const double util = (loads_[static_cast<std::size_t>(link)] + own) / cap;
    worst_util = std::max(worst_util, util);
  }
  return congestion_slowdown(worst_util);
}

double NetworkModel::link_load_gbps(LinkId link) const {
  RUSH_EXPECTS(link >= 0 && link < tree_.num_links());
  if (dirty_) recompute();
  return loads_[static_cast<std::size_t>(link)];
}

double NetworkModel::link_utilization(LinkId link) const {
  return link_load_gbps(link) / tree_.link_capacity_gbps(link);
}

double NetworkModel::node_xmit_gbps(NodeId node) const {
  return link_load_gbps(tree_.node_link(node));
}

double NetworkModel::node_recv_gbps(NodeId node) const {
  // Symmetric patterns: a node receives as much as it sends.
  return link_load_gbps(tree_.node_link(node));
}

}  // namespace rush::cluster
