#include "cluster/network.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/congestion.hpp"
#include "common/audit.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace rush::cluster {

void NetworkModel::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_probes_ = nullptr;
    metric_rebuilds_ = nullptr;
    return;
  }
  metric_probes_ = &metrics->counter("net.probe_calls");
  metric_rebuilds_ = &metrics->counter("net.rebuilds");
}

NetworkModel::NetworkModel(const FatTree& tree) : tree_(tree) {
  ambient_.assign(static_cast<std::size_t>(tree_.num_links()), 0.0);
  loads_.assign(ambient_.size(), 0.0);
  health_.assign(ambient_.size(), 1.0);
  edge_acc_.assign(static_cast<std::size_t>(tree_.num_edges()), 0.0);
  pod_acc_.assign(static_cast<std::size_t>(tree_.num_pods()), 0.0);
  touched_edges_.reserve(edge_acc_.size());
  touched_pods_.reserve(pod_acc_.size());
}

void NetworkModel::bump_generation() noexcept { ++generation_; }

void NetworkModel::aggregate_shares(std::vector<LinkShare>& shares) {
  std::sort(shares.begin(), shares.end(),
            [](const LinkShare& a, const LinkShare& b) { return a.link < b.link; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < shares.size();) {
    LinkShare merged = shares[i];
    for (++i; i < shares.size() && shares[i].link == merged.link; ++i) merged.gbps += shares[i].gbps;
    shares[out++] = merged;
  }
  shares.resize(out);
}

void NetworkModel::apply_shares(const std::vector<LinkShare>& unit_shares, double scale) {
  for (const LinkShare& s : unit_shares) {
    double& load = loads_[static_cast<std::size_t>(s.link)];
    load += scale * s.gbps;
    // The true load is a sum of non-negative terms; anything below zero is
    // cancellation residue from the delta chain.
    if (load < 0.0) load = 0.0;
  }
}

void NetworkModel::note_delta() {
  if (++deltas_since_rebuild_ >= kRebuildPeriod) rebuild();
}

void NetworkModel::add_source(SourceId id, NodeSet nodes, double per_node_gbps,
                              TrafficPattern pattern) {
  RUSH_EXPECTS(valid_node_set(tree_, nodes));
  RUSH_EXPECTS(per_node_gbps >= 0.0);
  RUSH_EXPECTS(!sources_.contains(id));
  SourceState state;
  state.src = TrafficSource{std::move(nodes), per_node_gbps, pattern};
  map_flows(state.src.nodes, 1.0, pattern, state.unit_shares);
  aggregate_shares(state.unit_shares);
  const auto& inserted = sources_.emplace(id, std::move(state)).first->second;
  apply_shares(inserted.unit_shares, per_node_gbps);
  bump_generation();
  note_delta();
  RUSH_AUDIT_HOOK(audit_invariants());
}

void NetworkModel::set_rate(SourceId id, double per_node_gbps) {
  RUSH_EXPECTS(per_node_gbps >= 0.0);
  auto it = sources_.find(id);
  RUSH_EXPECTS(it != sources_.end());
  const double old_rate = it->second.src.per_node_gbps;
  if (old_rate == per_node_gbps) return;
  it->second.src.per_node_gbps = per_node_gbps;
  apply_shares(it->second.unit_shares, per_node_gbps - old_rate);
  bump_generation();
  note_delta();
  RUSH_AUDIT_HOOK(audit_invariants());
}

void NetworkModel::remove_source(SourceId id) {
  auto it = sources_.find(id);
  RUSH_EXPECTS(it != sources_.end());
  apply_shares(it->second.unit_shares, -it->second.src.per_node_gbps);
  sources_.erase(it);
  bump_generation();
  note_delta();
  RUSH_AUDIT_HOOK(audit_invariants());
}

bool NetworkModel::has_source(SourceId id) const noexcept { return sources_.contains(id); }

void NetworkModel::set_ambient_load(LinkId link, double gbps) {
  RUSH_EXPECTS(link >= 0 && link < tree_.num_links());
  RUSH_EXPECTS(gbps >= 0.0);
  const auto l = static_cast<std::size_t>(link);
  if (ambient_[l] == gbps) return;
  double& load = loads_[l];
  load += gbps - ambient_[l];
  if (load < 0.0) load = 0.0;
  ambient_[l] = gbps;
  bump_generation();
  note_delta();
  RUSH_AUDIT_HOOK(audit_invariants());
}

void NetworkModel::set_link_health(LinkId link, double factor) {
  RUSH_EXPECTS(link >= 0 && link < tree_.num_links());
  RUSH_EXPECTS(factor > 0.0 && factor <= 1.0);
  const auto l = static_cast<std::size_t>(link);
  if (health_[l] == factor) return;
  health_[l] = factor;
  bump_generation();
  RUSH_AUDIT_HOOK(audit_invariants());
}

double NetworkModel::link_health(LinkId link) const {
  RUSH_EXPECTS(link >= 0 && link < tree_.num_links());
  return health_[static_cast<std::size_t>(link)];
}

void NetworkModel::map_flows(const NodeSet& nodes, double per_node_gbps, TrafficPattern pattern,
                             std::vector<LinkShare>& out) const {
  const double r = per_node_gbps;
  const auto n = nodes.size();
  if (r <= 0.0) return;
  if (n < 2 && pattern != TrafficPattern::Gateway) return;

  // Every member pushes its full injection through its own access link.
  for (NodeId u : nodes) out.push_back({tree_.node_link(u), r});

  switch (pattern) {
    case TrafficPattern::AllToAll: {
      // Count members per edge switch and per pod; the fraction of a
      // node's traffic leaving its edge (pod) is the fraction of peers
      // outside it. Dense scratch accumulators + touched lists keep this
      // allocation-free (probe_slowdown runs it on every placement probe).
      for (NodeId u : nodes) {
        const auto e = static_cast<std::size_t>(tree_.edge_of(u));
        const auto p = static_cast<std::size_t>(tree_.pod_of(u));
        if (edge_acc_[e] == 0.0) touched_edges_.push_back(static_cast<int>(e));
        if (pod_acc_[p] == 0.0) touched_pods_.push_back(static_cast<int>(p));
        edge_acc_[e] += 1.0;
        pod_acc_[p] += 1.0;
      }
      const double m = static_cast<double>(n - 1);
      for (const int edge : touched_edges_) {
        const double count = edge_acc_[static_cast<std::size_t>(edge)];
        const double outside = static_cast<double>(n) - count;
        if (outside > 0.0) out.push_back({tree_.edge_uplink(edge), count * r * outside / m});
        edge_acc_[static_cast<std::size_t>(edge)] = 0.0;
      }
      for (const int pod : touched_pods_) {
        const double count = pod_acc_[static_cast<std::size_t>(pod)];
        const double outside = static_cast<double>(n) - count;
        if (outside > 0.0) out.push_back({tree_.pod_uplink(pod), count * r * outside / m});
        pod_acc_[static_cast<std::size_t>(pod)] = 0.0;
      }
      touched_edges_.clear();
      touched_pods_.clear();
      break;
    }
    case TrafficPattern::NearestNeighbor:
    case TrafficPattern::Ring: {
      // Each node splits its injection between its two neighbours in
      // allocation order; only pairs that straddle an edge (pod) boundary
      // load the respective uplinks.
      auto add_pair = [&](NodeId u, NodeId v) {
        const double half = r / 2.0;
        const int eu = tree_.edge_of(u);
        const int ev = tree_.edge_of(v);
        if (eu != ev) {
          out.push_back({tree_.edge_uplink(eu), half});
          out.push_back({tree_.edge_uplink(ev), half});
          const int pu = tree_.pod_of(u);
          const int pv = tree_.pod_of(v);
          if (pu != pv) {
            out.push_back({tree_.pod_uplink(pu), half});
            out.push_back({tree_.pod_uplink(pv), half});
          }
        }
      };
      for (std::size_t i = 0; i + 1 < n; ++i) add_pair(nodes[i], nodes[i + 1]);
      if (pattern == TrafficPattern::Ring && n > 2) add_pair(nodes.back(), nodes.front());
      break;
    }
    case TrafficPattern::Gateway: {
      // Traffic leaves the pod entirely: each node loads its edge uplink
      // and its pod uplink with its full injection.
      for (NodeId u : nodes) {
        const auto e = static_cast<std::size_t>(tree_.edge_of(u));
        const auto p = static_cast<std::size_t>(tree_.pod_of(u));
        if (edge_acc_[e] == 0.0) touched_edges_.push_back(static_cast<int>(e));
        if (pod_acc_[p] == 0.0) touched_pods_.push_back(static_cast<int>(p));
        edge_acc_[e] += r;
        pod_acc_[p] += r;
      }
      for (const int edge : touched_edges_) {
        out.push_back({tree_.edge_uplink(edge), edge_acc_[static_cast<std::size_t>(edge)]});
        edge_acc_[static_cast<std::size_t>(edge)] = 0.0;
      }
      for (const int pod : touched_pods_) {
        out.push_back({tree_.pod_uplink(pod), pod_acc_[static_cast<std::size_t>(pod)]});
        pod_acc_[static_cast<std::size_t>(pod)] = 0.0;
      }
      touched_edges_.clear();
      touched_pods_.clear();
      break;
    }
  }
}

void NetworkModel::rebuild() {
  if (metric_rebuilds_) metric_rebuilds_->inc();
  loads_ = ambient_;
  for (const auto& [id, state] : sources_) {
    for (const LinkShare& s : state.unit_shares)
      loads_[static_cast<std::size_t>(s.link)] += state.src.per_node_gbps * s.gbps;
  }
  deltas_since_rebuild_ = 0;
  RUSH_AUDIT_HOOK(audit_invariants());
}

void NetworkModel::audit_invariants() const {
  RUSH_AUDIT_CHECK(ambient_.size() == static_cast<std::size_t>(tree_.num_links()), "");
  RUSH_AUDIT_CHECK(loads_.size() == ambient_.size(), "per-link load vector resized");
  RUSH_AUDIT_CHECK(health_.size() == ambient_.size(), "per-link health vector resized");
  for (std::size_t l = 0; l < health_.size(); ++l)
    RUSH_AUDIT_CHECK(health_[l] > 0.0 && health_[l] <= 1.0,
                     "link " + std::to_string(l) + " health outside (0, 1]");
  // Differential check: the incremental loads_ must match a from-scratch
  // rebuild, and every cached unit-share vector must match a fresh flow
  // mapping of its source's shape.
  std::vector<double> expected = ambient_;
  std::vector<LinkShare> shares;
  for (const auto& [id, state] : sources_) {
    RUSH_AUDIT_CHECK(state.src.per_node_gbps >= 0.0,
                     "source " + std::to_string(id) + " has negative rate");
    shares.clear();
    map_flows(state.src.nodes, 1.0, state.src.pattern, shares);
    aggregate_shares(shares);
    RUSH_AUDIT_CHECK(shares.size() == state.unit_shares.size(),
                     "source " + std::to_string(id) + " cached share count drifted");
    for (std::size_t i = 0; i < shares.size(); ++i) {
      const double tol = 1e-9 * std::max(1.0, std::abs(shares[i].gbps));
      RUSH_AUDIT_CHECK(shares[i].link == state.unit_shares[i].link &&
                           std::abs(shares[i].gbps - state.unit_shares[i].gbps) <= tol,
                       "source " + std::to_string(id) + " cached share for link " +
                           std::to_string(state.unit_shares[i].link) + " drifted");
      expected[static_cast<std::size_t>(shares[i].link)] +=
          state.src.per_node_gbps * shares[i].gbps;
    }
  }
  for (std::size_t l = 0; l < expected.size(); ++l) {
    RUSH_AUDIT_CHECK(loads_[l] >= 0.0, "negative load on link " + std::to_string(l));
    const double tol = 1e-9 * std::max(1.0, std::abs(expected[l]));
    RUSH_AUDIT_CHECK(std::abs(loads_[l] - expected[l]) <= tol,
                     "link " + std::to_string(l) + " load " + std::to_string(loads_[l]) +
                         " != demand sum " + std::to_string(expected[l]));
  }
}

double NetworkModel::worst_over_links(const std::vector<LinkShare>& shares,
                                      const std::vector<double>& loads) const {
  double worst_util = 0.0;
  for (const LinkShare& s : shares) {
    const double util = loads[static_cast<std::size_t>(s.link)] / effective_capacity(s.link);
    worst_util = std::max(worst_util, util);
  }
  return congestion_slowdown(worst_util);
}

double NetworkModel::slowdown(SourceId id) const {
  auto it = sources_.find(id);
  RUSH_EXPECTS(it != sources_.end());
  // A silent source traverses no links (its cached shares are unit-rate,
  // but its live contribution — and exposure — is zero).
  if (it->second.src.per_node_gbps <= 0.0) return congestion_slowdown(0.0);
  return worst_over_links(it->second.unit_shares, loads_);
}

double NetworkModel::probe_slowdown(const NodeSet& nodes, double per_node_gbps,
                                    TrafficPattern pattern) const {
  RUSH_EXPECTS(valid_node_set(tree_, nodes));
  if (metric_probes_) metric_probes_->inc();
  scratch_shares_.clear();
  map_flows(nodes, per_node_gbps, pattern, scratch_shares_);
  // The probe's own traffic must count toward the load it experiences:
  // aggregate its per-link shares, then evaluate against loads + self.
  aggregate_shares(scratch_shares_);
  double worst_util = 0.0;
  for (const LinkShare& s : scratch_shares_) {
    const double util =
        (loads_[static_cast<std::size_t>(s.link)] + s.gbps) / effective_capacity(s.link);
    worst_util = std::max(worst_util, util);
  }
  return congestion_slowdown(worst_util);
}

double NetworkModel::link_load_gbps(LinkId link) const {
  RUSH_EXPECTS(link >= 0 && link < tree_.num_links());
  return loads_[static_cast<std::size_t>(link)];
}

double NetworkModel::link_utilization(LinkId link) const {
  return link_load_gbps(link) / effective_capacity(link);
}

double NetworkModel::node_xmit_gbps(NodeId node) const {
  return link_load_gbps(tree_.node_link(node));
}

double NetworkModel::node_recv_gbps(NodeId node) const {
  // Symmetric patterns: a node receives as much as it sends.
  return link_load_gbps(tree_.node_link(node));
}

}  // namespace rush::cluster
