// Node allocation over an arbitrary managed subset of the cluster.
//
// The scheduler asks for `k` nodes; the allocator prefers a contiguous run
// (which tends to stay under few edge switches, like a locality-aware
// resource matcher) and falls back to the lowest-indexed free nodes when
// fragmentation prevents a contiguous placement.
#pragma once

#include <optional>

#include "cluster/topology.hpp"

namespace rush::cluster {

struct AuditTestPeer;  // test-only state corruption (tests/audit)

class NodeAllocator {
 public:
  /// Manages exactly the nodes in `managed` (sorted, unique). This is how
  /// the paper's 512-node single-pod reservation is expressed: construct
  /// the allocator over `tree.nodes_in_pod(p)`.
  explicit NodeAllocator(NodeSet managed);

  /// All nodes of the given count, or nullopt if not enough are free.
  [[nodiscard]] std::optional<NodeSet> allocate(int count);

  /// Releases previously allocated nodes. It is an error to free a node
  /// that is not currently allocated by this allocator.
  void release(const NodeSet& nodes);

  [[nodiscard]] bool can_allocate(int count) const noexcept;
  [[nodiscard]] int free_count() const noexcept { return free_count_; }
  [[nodiscard]] int managed_count() const noexcept { return static_cast<int>(managed_.size()); }
  [[nodiscard]] bool is_free(NodeId node) const;
  [[nodiscard]] const NodeSet& managed_nodes() const noexcept { return managed_; }

  /// Re-derives the allocation bitmap bookkeeping and throws AuditError on
  /// corruption: managed_ stays sorted/unique, the bitmap stays parallel
  /// to it, and free_count_ equals the number of set bits. Called
  /// automatically after allocate/release in RUSH_AUDIT builds.
  void audit_invariants() const;

 private:
  friend struct AuditTestPeer;
  [[nodiscard]] std::optional<std::size_t> find_index(NodeId node) const noexcept;

  NodeSet managed_;         // sorted
  std::vector<bool> free_;  // parallel to managed_
  int free_count_ = 0;
};

}  // namespace rush::cluster
