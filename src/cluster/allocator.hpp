// Node allocation over an arbitrary managed subset of the cluster.
//
// The scheduler asks for `k` nodes; the allocator prefers a contiguous run
// (which tends to stay under few edge switches, like a locality-aware
// resource matcher) and falls back to the lowest-indexed free nodes when
// fragmentation prevents a contiguous placement.
//
// Storage is three word-level (uint64_t) bitsets parallel to the managed
// set — free / allocated / out-of-service — so the contiguous-run search
// advances a whole word per iteration (countr_zero over bit transitions)
// and free accounting is popcount, instead of the bit-at-a-time
// std::vector<bool> walk this replaced. Placement order is exactly the
// slot-index order of the old scan: the first window of `k` consecutive
// free slots, else the lowest-indexed free slots
// (tests/cluster/test_allocator.cpp pins this differentially against a
// reference bitmap implementation).
//
// Nodes can be taken out of service (crash or drain, see faults/): an
// out-of-service node is never handed to a new allocation. If it is
// allocated when it goes out, it stays bound to its job until release —
// the scheduler decides whether that job dies (crash) or finishes
// (drain) — and then parks instead of returning to the free pool.
#pragma once

#include <cstdint>
#include <optional>

#include "cluster/topology.hpp"

namespace rush::cluster {

struct AuditTestPeer;  // test-only state corruption (tests/audit)

class NodeAllocator {
 public:
  /// Manages exactly the nodes in `managed` (sorted, unique). This is how
  /// the paper's 512-node single-pod reservation is expressed: construct
  /// the allocator over `tree.nodes_in_pod(p)`.
  explicit NodeAllocator(NodeSet managed);

  /// All nodes of the given count, or nullopt if not enough are free.
  [[nodiscard]] std::optional<NodeSet> allocate(int count);

  /// Releases previously allocated nodes. It is an error to free a node
  /// that is not currently allocated by this allocator. Out-of-service
  /// nodes park instead of rejoining the free pool.
  void release(const NodeSet& nodes);

  /// Take a node out of service (`available == false`) or return it
  /// (`true`). Returns false — and does nothing — when `node` is not
  /// managed here, so callers can broadcast cluster-wide fault events.
  /// Idempotent in both directions.
  bool set_available(NodeId node, bool available);
  [[nodiscard]] bool is_available(NodeId node) const;

  [[nodiscard]] bool can_allocate(int count) const noexcept;
  [[nodiscard]] int free_count() const noexcept { return free_count_; }
  [[nodiscard]] int managed_count() const noexcept { return static_cast<int>(managed_.size()); }
  /// Managed nodes currently out of service.
  [[nodiscard]] int unavailable_count() const noexcept;
  [[nodiscard]] bool is_free(NodeId node) const;
  [[nodiscard]] const NodeSet& managed_nodes() const noexcept { return managed_; }

  /// Re-derives the allocation bitset bookkeeping and throws AuditError on
  /// corruption: managed_ stays sorted/unique, the word bitsets stay
  /// parallel to it with no stray bits past the managed count, free_count_
  /// equals the free popcount, and every slot is in exactly one of the
  /// free / allocated / parked-out states (free == !allocated && !out).
  /// Called automatically after every mutation in RUSH_AUDIT builds.
  void audit_invariants() const;

 private:
  friend struct AuditTestPeer;
  [[nodiscard]] std::optional<std::size_t> find_index(NodeId node) const noexcept;

  [[nodiscard]] bool test(const std::vector<std::uint64_t>& words,
                          std::size_t slot) const noexcept {
    return (words[slot >> 6] >> (slot & 63)) & 1u;
  }
  static void set_bit(std::vector<std::uint64_t>& words, std::size_t slot) noexcept {
    words[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
  static void clear_bit(std::vector<std::uint64_t>& words, std::size_t slot) noexcept {
    words[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }

  /// First slot >= `from` whose free bit is set, or the managed count.
  [[nodiscard]] std::size_t next_free(std::size_t from) const noexcept;
  /// First slot >= `from` whose free bit is clear, or the managed count.
  [[nodiscard]] std::size_t next_used(std::size_t from) const noexcept;
  /// Marks [begin, end) allocated and appends the managed node ids.
  void take_run(std::size_t begin, std::size_t end, NodeSet& out);

  NodeSet managed_;  // sorted
  // Parallel word bitsets over managed_ slots; bits past managed_.size()
  // in the last word stay zero.
  std::vector<std::uint64_t> free_;       // available for new placements
  std::vector<std::uint64_t> allocated_;  // bound to a live allocation
  std::vector<std::uint64_t> out_;        // out of service (crash/drain)
  int free_count_ = 0;
};

}  // namespace rush::cluster
