// Shared parallel-filesystem (Lustre-like) contention model.
//
// The filesystem is a single shared bandwidth pool (the aggregate OST
// bandwidth). Clients (jobs, the background workload) register demand;
// when total demand exceeds capacity every client slows by the
// oversubscription factor. Per-node demand is tracked so the
// lustre_client-style counters can be synthesized per host.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cluster/topology.hpp"

namespace rush::cluster {

class LustreModel {
 public:
  /// `aggregate_gbps` is the total filesystem bandwidth shared by all
  /// clients. Requires > 0.
  explicit LustreModel(double aggregate_gbps);

  /// Register an I/O client: a job doing `per_node_gbps` of combined
  /// read+write traffic on each node in `nodes`. `read_fraction` splits
  /// the demand for counter synthesis.
  void add_client(SourceId id, NodeSet nodes, double per_node_gbps, double read_fraction = 0.5);
  void set_rate(SourceId id, double per_node_gbps);
  void remove_client(SourceId id);
  [[nodiscard]] bool has_client(SourceId id) const noexcept;

  /// Demand from unmodeled users, added directly to the pool.
  void set_ambient_demand(double gbps);

  [[nodiscard]] double total_demand_gbps() const noexcept;
  [[nodiscard]] double capacity_gbps() const noexcept { return capacity_; }

  /// Oversubscription factor every client currently experiences (>= 1).
  [[nodiscard]] double slowdown() const noexcept;

  /// Achieved (post-contention) per-node rates on a host, for counters.
  [[nodiscard]] double node_read_gbps(NodeId node) const;
  [[nodiscard]] double node_write_gbps(NodeId node) const;

  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

 private:
  struct Client {
    NodeSet nodes;
    double per_node_gbps;
    double read_fraction;
  };

  void rebuild_node_demand() const;

  double capacity_;
  double ambient_ = 0.0;
  std::unordered_map<SourceId, Client> clients_;
  std::uint64_t generation_ = 0;

  mutable bool node_demand_dirty_ = true;
  mutable std::unordered_map<NodeId, double> node_read_;
  mutable std::unordered_map<NodeId, double> node_write_;
};

}  // namespace rush::cluster
