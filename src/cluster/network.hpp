// Flow-level network contention model over the fat-tree.
//
// Each traffic source (a job's communication phase, the noise job, or
// ambient background traffic) injects a per-node rate with an all-to-all
// pattern across its node set. Flows are mapped onto the three link
// classes and per-link loads accumulated; a source's slowdown is the
// worst oversubscription (load / capacity, clamped at 1) over any link
// it traverses — the standard max-congestion approximation.
//
// Loads are maintained incrementally: every source caches its aggregated
// per-link shares at unit rate (shares are linear in `per_node_gbps`), so
// add_source / remove_source / set_rate apply an O(|own links|) delta to
// the per-link totals and set_ambient_load applies a single-link delta.
// No mutation ever triggers a full recomputation; `rebuild()` remains as
// the float-drift renormalization fallback and runs automatically every
// `kRebuildPeriod` deltas. A generation counter bumps on every mutation
// so observers (telemetry, job execution) can invalidate caches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/topology.hpp"

namespace rush::obs {
class Counter;
class MetricsRegistry;
}  // namespace rush::obs

namespace rush::cluster {

/// Communication pattern of a traffic source. The pattern decides how much
/// of a node's injected traffic stays below its edge switch versus crossing
/// uplinks.
enum class TrafficPattern : std::uint8_t {
  AllToAll,         // uniform all-to-all (SWFFT, noise job)
  NearestNeighbor,  // halo exchange: traffic goes to adjacent allocated nodes
  Ring,             // each node talks to two neighbours in allocation order
  Gateway,          // node -> I/O gateway beyond the pod (Lustre traffic);
                    // every node's traffic crosses its edge and pod uplinks
};

struct TrafficSource {
  NodeSet nodes;
  double per_node_gbps = 0.0;
  TrafficPattern pattern = TrafficPattern::AllToAll;
};

struct NetworkAuditTestPeer;  // test-only state corruption (tests/audit)

class NetworkModel {
 public:
  explicit NetworkModel(const FatTree& tree);

  /// Register a traffic source. `nodes` must be a valid node set; ids must
  /// be unique among live sources. O(|nodes| log |nodes|).
  void add_source(SourceId id, NodeSet nodes, double per_node_gbps,
                  TrafficPattern pattern = TrafficPattern::AllToAll);
  /// Change the injection rate of an existing source. O(|own links|).
  void set_rate(SourceId id, double per_node_gbps);
  /// O(|own links|).
  void remove_source(SourceId id);
  [[nodiscard]] bool has_source(SourceId id) const noexcept;

  /// Ambient load injected directly onto a link by traffic outside the
  /// modeled jobs (system daemons, other users). Overwrites prior value.
  /// O(1).
  void set_ambient_load(LinkId link, double gbps);

  /// Degrade (or restore) a link: its effective capacity becomes
  /// `factor * nominal`, factor in (0, 1], 1 = healthy. Driven by
  /// faults::FaultInjector; flows are not re-routed, they simply see the
  /// smaller capacity in every congestion query, which reroutes work in
  /// effect (placement probes and the execution model steer around the
  /// hot link). O(1); bumps the generation so observers re-evaluate.
  void set_link_health(LinkId link, double factor);
  [[nodiscard]] double link_health(LinkId link) const;

  /// Worst oversubscription factor (>= 1) over links used by the source.
  /// O(|own links|) over the source's cached shares.
  [[nodiscard]] double slowdown(SourceId id) const;

  /// Slowdown a *hypothetical* source with this shape would see right now.
  /// Used by the MPI canary benchmarks and by the scheduler when probing a
  /// candidate allocation. Does not mutate the model and performs no heap
  /// allocation once the internal scratch buffer is warm.
  [[nodiscard]] double probe_slowdown(const NodeSet& nodes, double per_node_gbps,
                                      TrafficPattern pattern = TrafficPattern::AllToAll) const;

  [[nodiscard]] double link_load_gbps(LinkId link) const;
  [[nodiscard]] double link_utilization(LinkId link) const;

  /// Traffic through a node's access link (its own injection + ambient),
  /// feeding the sysclassib-style counters.
  [[nodiscard]] double node_xmit_gbps(NodeId node) const;
  [[nodiscard]] double node_recv_gbps(NodeId node) const;

  /// Bumps on every mutation; observers use it to invalidate caches.
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

  /// Publish model counters (probe calls, drift rebuilds) into an
  /// observability registry. Null detaches; the probe path pays one null
  /// check + add when attached and nothing else.
  void set_metrics(obs::MetricsRegistry* metrics);  // rush-analyze: allow(missing-expects) null detaches

  [[nodiscard]] const FatTree& tree() const noexcept { return tree_; }

  /// Recompute every per-link load from scratch (ambient + every live
  /// source's shares). Never needed for correctness — the mutation paths
  /// keep `loads_` current — but bounds floating-point drift from long
  /// delta chains (it runs automatically every kRebuildPeriod deltas) and
  /// lets benchmarks compare the incremental path against the full
  /// recomputation it replaced.
  void rebuild();

  /// Deltas applied between automatic renormalizing rebuilds.
  static constexpr std::uint64_t kRebuildPeriod = 4096;

  /// Differential load conservation: independently re-maps every live
  /// source's flows onto the link classes and checks that both the cached
  /// per-source share vectors and the incrementally maintained per-link
  /// loads equal that from-scratch rebuild (and that no load or rate is
  /// negative). Throws AuditError on any mismatch. Called automatically
  /// after every mutation in RUSH_AUDIT builds.
  void audit_invariants() const;

 private:
  friend struct NetworkAuditTestPeer;
  struct LinkShare {
    LinkId link;
    double gbps;
  };
  struct SourceState {
    TrafficSource src;
    /// Aggregated per-link shares at per_node_gbps == 1, sorted by link,
    /// one entry per distinct link. The live contribution of the source is
    /// `src.per_node_gbps * unit_shares`.
    std::vector<LinkShare> unit_shares;
  };

  void bump_generation() noexcept;
  /// Maps one source shape's flows to per-link loads. Appends to `out`.
  void map_flows(const NodeSet& nodes, double per_node_gbps, TrafficPattern pattern,
                 std::vector<LinkShare>& out) const;
  /// Sorts `shares` by link and merges duplicate links in place.
  static void aggregate_shares(std::vector<LinkShare>& shares);
  /// loads_[link] += scale * share for every share; clamps the tiny
  /// negative residue float cancellation can leave behind.
  void apply_shares(const std::vector<LinkShare>& unit_shares, double scale);
  /// Counts one applied delta; renormalizes via rebuild() every
  /// kRebuildPeriod deltas.
  void note_delta();
  [[nodiscard]] double worst_over_links(const std::vector<LinkShare>& shares,
                                        const std::vector<double>& loads) const;

  [[nodiscard]] double effective_capacity(LinkId link) const {
    return tree_.link_capacity_gbps(link) * health_[static_cast<std::size_t>(link)];
  }

  const FatTree& tree_;
  std::unordered_map<SourceId, SourceState> sources_;
  std::vector<double> ambient_;  // per-link ambient gbps
  std::vector<double> loads_;    // per-link total gbps, always current
  std::vector<double> health_;   // per-link capacity factor, 1 = healthy
  std::uint64_t generation_ = 0;
  std::uint64_t deltas_since_rebuild_ = 0;
  obs::Counter* metric_probes_ = nullptr;    // owned by the attached registry
  obs::Counter* metric_rebuilds_ = nullptr;

  // Flow-mapping scratch, preallocated to the topology's edge/pod counts
  // so steady-state probes never allocate; mutable because probes are
  // logically const. `*_acc_` entries are zero outside map_flows; the
  // touched lists record which entries a call dirtied.
  mutable std::vector<LinkShare> scratch_shares_;
  mutable std::vector<double> edge_acc_;
  mutable std::vector<double> pod_acc_;
  mutable std::vector<int> touched_edges_;
  mutable std::vector<int> touched_pods_;
};

}  // namespace rush::cluster
