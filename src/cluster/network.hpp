// Flow-level network contention model over the fat-tree.
//
// Each traffic source (a job's communication phase, the noise job, or
// ambient background traffic) injects a per-node rate with an all-to-all
// pattern across its node set. Flows are mapped onto the three link
// classes and per-link loads accumulated; a source's slowdown is the
// worst oversubscription (load / capacity, clamped at 1) over any link
// it traverses — the standard max-congestion approximation.
//
// Loads are recomputed lazily: mutations mark the model dirty and bump a
// generation counter that observers (telemetry, job execution) can use to
// invalidate caches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/topology.hpp"

namespace rush::cluster {

/// Communication pattern of a traffic source. The pattern decides how much
/// of a node's injected traffic stays below its edge switch versus crossing
/// uplinks.
enum class TrafficPattern : std::uint8_t {
  AllToAll,         // uniform all-to-all (SWFFT, noise job)
  NearestNeighbor,  // halo exchange: traffic goes to adjacent allocated nodes
  Ring,             // each node talks to two neighbours in allocation order
  Gateway,          // node -> I/O gateway beyond the pod (Lustre traffic);
                    // every node's traffic crosses its edge and pod uplinks
};

struct TrafficSource {
  NodeSet nodes;
  double per_node_gbps = 0.0;
  TrafficPattern pattern = TrafficPattern::AllToAll;
};

struct NetworkAuditTestPeer;  // test-only state corruption (tests/audit)

class NetworkModel {
 public:
  explicit NetworkModel(const FatTree& tree);

  /// Register a traffic source. `nodes` must be a valid node set; ids must
  /// be unique among live sources.
  void add_source(SourceId id, NodeSet nodes, double per_node_gbps,
                  TrafficPattern pattern = TrafficPattern::AllToAll);
  /// Change the injection rate of an existing source.
  void set_rate(SourceId id, double per_node_gbps);
  void remove_source(SourceId id);
  [[nodiscard]] bool has_source(SourceId id) const noexcept;

  /// Ambient load injected directly onto a link by traffic outside the
  /// modeled jobs (system daemons, other users). Overwrites prior value.
  void set_ambient_load(LinkId link, double gbps);

  /// Worst oversubscription factor (>= 1) over links used by the source.
  [[nodiscard]] double slowdown(SourceId id) const;

  /// Slowdown a *hypothetical* source with this shape would see right now.
  /// Used by the MPI canary benchmarks and by the scheduler when probing a
  /// candidate allocation. Does not mutate the model.
  [[nodiscard]] double probe_slowdown(const NodeSet& nodes, double per_node_gbps,
                                      TrafficPattern pattern = TrafficPattern::AllToAll) const;

  [[nodiscard]] double link_load_gbps(LinkId link) const;
  [[nodiscard]] double link_utilization(LinkId link) const;

  /// Traffic through a node's access link (its own injection + ambient),
  /// feeding the sysclassib-style counters.
  [[nodiscard]] double node_xmit_gbps(NodeId node) const;
  [[nodiscard]] double node_recv_gbps(NodeId node) const;

  /// Bumps on every mutation; observers use it to invalidate caches.
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

  [[nodiscard]] const FatTree& tree() const noexcept { return tree_; }

  /// Per-link load conservation: independently re-maps every live source's
  /// flows onto the link classes and checks that the cached per-link loads
  /// equal ambient + the sum of those shares (and that no load or rate is
  /// negative). Throws AuditError on any mismatch. Called automatically
  /// after every recompute in RUSH_AUDIT builds.
  void audit_invariants() const;

 private:
  friend struct NetworkAuditTestPeer;
  struct LinkShare {
    LinkId link;
    double gbps;
  };

  void mark_dirty() noexcept;
  void recompute() const;
  /// Maps one source's flows to per-link loads. Appends to `out`.
  void map_flows(const TrafficSource& src, std::vector<LinkShare>& out) const;
  [[nodiscard]] double worst_over_links(const std::vector<LinkShare>& shares,
                                        const std::vector<double>& loads) const;

  const FatTree& tree_;
  std::unordered_map<SourceId, TrafficSource> sources_;
  std::vector<double> ambient_;  // per-link ambient gbps
  std::uint64_t generation_ = 0;

  mutable bool dirty_ = true;
  mutable std::vector<double> loads_;  // per-link total gbps
};

}  // namespace rush::cluster
