#include "cluster/allocator.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "common/audit.hpp"
#include "common/error.hpp"

namespace rush::cluster {

namespace {
constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};

std::size_t word_count(std::size_t slots) { return (slots + 63) / 64; }
}  // namespace

NodeAllocator::NodeAllocator(NodeSet managed) : managed_(std::move(managed)) {
  RUSH_EXPECTS(!managed_.empty());
  RUSH_EXPECTS(std::is_sorted(managed_.begin(), managed_.end()));
  RUSH_EXPECTS(std::adjacent_find(managed_.begin(), managed_.end()) == managed_.end());
  const std::size_t words = word_count(managed_.size());
  free_.assign(words, kAllOnes);
  allocated_.assign(words, 0);
  out_.assign(words, 0);
  // Clear the tail past the managed count so popcounts and run scans
  // never see phantom slots.
  if (const std::size_t tail = managed_.size() & 63; tail != 0) {
    free_.back() = kAllOnes >> (64 - tail);
  }
  free_count_ = static_cast<int>(managed_.size());
}

std::optional<std::size_t> NodeAllocator::find_index(NodeId node) const noexcept {
  const auto it = std::lower_bound(managed_.begin(), managed_.end(), node);
  if (it == managed_.end() || *it != node) return std::nullopt;
  return static_cast<std::size_t>(it - managed_.begin());
}

bool NodeAllocator::can_allocate(int count) const noexcept {
  return count > 0 && count <= free_count_;
}

std::size_t NodeAllocator::next_free(std::size_t from) const noexcept {
  const std::size_t n = managed_.size();
  if (from >= n) return n;
  std::size_t w = from >> 6;
  std::uint64_t word = free_[w] >> (from & 63);
  if (word != 0) return from + static_cast<std::size_t>(std::countr_zero(word));
  for (++w; w < free_.size(); ++w) {
    if (free_[w] != 0) {
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(free_[w]));
    }
  }
  return n;
}

std::size_t NodeAllocator::next_used(std::size_t from) const noexcept {
  const std::size_t n = managed_.size();
  if (from >= n) return n;
  // Scan the complement: a clear free bit is a used (or tail) slot. Tail
  // bits are zero in free_, so the complement finds them; callers only
  // care about positions up to n, which std::min restores.
  std::size_t w = from >> 6;
  std::uint64_t word = ~free_[w] >> (from & 63);
  if (word != 0) {
    return std::min(n, from + static_cast<std::size_t>(std::countr_zero(word)));
  }
  for (++w; w < free_.size(); ++w) {
    if (~free_[w] != 0) {
      return std::min(n, (w << 6) + static_cast<std::size_t>(std::countr_zero(~free_[w])));
    }
  }
  return n;
}

void NodeAllocator::take_run(std::size_t begin, std::size_t end, NodeSet& out) {
  for (std::size_t i = begin; i < end; ++i) {
    clear_bit(free_, i);
    set_bit(allocated_, i);
    out.push_back(managed_[i]);
  }
}

std::optional<NodeSet> NodeAllocator::allocate(int count) {
  RUSH_EXPECTS(count > 0);
  if (count > free_count_) return std::nullopt;
  const auto need = static_cast<std::size_t>(count);

  // First fit contiguous: the earliest window of `count` consecutive free
  // slots, i.e. the first maximal free run at least that long. Each run
  // boundary is found with a word-level transition scan.
  const std::size_t n = managed_.size();
  std::size_t cursor = 0;
  while (cursor < n) {
    const std::size_t start = next_free(cursor);
    if (start >= n) break;
    const std::size_t end = next_used(start);
    if (end - start >= need) {
      NodeSet out;
      out.reserve(need);
      take_run(start, start + need, out);
      free_count_ -= count;
      RUSH_AUDIT_HOOK(audit_invariants());
      return out;
    }
    cursor = end;
  }

  // Fragmented fallback: lowest-indexed free slots.
  NodeSet out;
  out.reserve(need);
  std::size_t cursor2 = 0;
  while (out.size() < need) {
    const std::size_t start = next_free(cursor2);
    const std::size_t end = std::min(next_used(start), start + (need - out.size()));
    RUSH_ASSERT(start < n);
    take_run(start, end, out);
    cursor2 = end;
  }
  free_count_ -= count;
  RUSH_AUDIT_HOOK(audit_invariants());
  return out;
}

void NodeAllocator::audit_invariants() const {
  RUSH_AUDIT_CHECK(std::is_sorted(managed_.begin(), managed_.end()), "");
  RUSH_AUDIT_CHECK(std::adjacent_find(managed_.begin(), managed_.end()) == managed_.end(),
                   "duplicate managed node");
  const std::size_t words = word_count(managed_.size());
  RUSH_AUDIT_CHECK(free_.size() == words && allocated_.size() == words && out_.size() == words,
                   "bitset not parallel to managed set");
  int actually_free = 0;
  for (std::size_t w = 0; w < words; ++w) {
    actually_free += std::popcount(free_[w]);
    // Exactly one state per slot: free == !allocated && !out, and no
    // bits past the managed count.
    std::uint64_t valid = kAllOnes;
    if (w == words - 1) {
      if (const std::size_t tail = managed_.size() & 63; tail != 0) {
        valid = kAllOnes >> (64 - tail);
      }
    }
    RUSH_AUDIT_CHECK(((free_[w] | allocated_[w] | out_[w]) & ~valid) == 0,
                     "stray bits past the managed count in word " + std::to_string(w));
    RUSH_AUDIT_CHECK((free_[w] & (allocated_[w] | out_[w])) == 0,
                     "word " + std::to_string(w) + " state bits inconsistent");
    RUSH_AUDIT_CHECK((free_[w] | allocated_[w] | out_[w]) == valid,
                     "word " + std::to_string(w) + " has a slot in no state");
  }
  RUSH_AUDIT_CHECK(free_count_ == actually_free,
                   "free_count_=" + std::to_string(free_count_) + " but bitset has " +
                       std::to_string(actually_free) + " free bits");
}

void NodeAllocator::release(const NodeSet& nodes) {
  for (NodeId n : nodes) {
    const auto idx = find_index(n);
    RUSH_EXPECTS(idx.has_value());
    RUSH_EXPECTS(test(allocated_, *idx));
    clear_bit(allocated_, *idx);
    // An out-of-service node parks instead of rejoining the free pool;
    // set_available(node, true) brings it back.
    if (!test(out_, *idx)) {
      set_bit(free_, *idx);
      ++free_count_;
    }
  }
  RUSH_AUDIT_HOOK(audit_invariants());
}

bool NodeAllocator::set_available(NodeId node, bool available) {
  const auto idx = find_index(node);
  if (!idx.has_value()) return false;
  if (test(out_, *idx) != available) return true;  // already in the requested state
  if (available) {
    clear_bit(out_, *idx);
    if (!test(allocated_, *idx)) {
      set_bit(free_, *idx);
      ++free_count_;
    }
  } else {
    set_bit(out_, *idx);
    if (test(free_, *idx)) {
      clear_bit(free_, *idx);
      --free_count_;
    }
  }
  RUSH_AUDIT_HOOK(audit_invariants());
  return true;
}

bool NodeAllocator::is_available(NodeId node) const {
  const auto idx = find_index(node);
  RUSH_EXPECTS(idx.has_value());
  return !test(out_, *idx);
}

int NodeAllocator::unavailable_count() const noexcept {
  int total = 0;
  for (const std::uint64_t w : out_) total += std::popcount(w);
  return total;
}

bool NodeAllocator::is_free(NodeId node) const {
  const auto idx = find_index(node);
  RUSH_EXPECTS(idx.has_value());
  return test(free_, idx.value());
}

}  // namespace rush::cluster
