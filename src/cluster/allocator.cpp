#include "cluster/allocator.hpp"

#include <algorithm>

#include "common/audit.hpp"
#include "common/error.hpp"

namespace rush::cluster {

NodeAllocator::NodeAllocator(NodeSet managed) : managed_(std::move(managed)) {
  RUSH_EXPECTS(!managed_.empty());
  RUSH_EXPECTS(std::is_sorted(managed_.begin(), managed_.end()));
  RUSH_EXPECTS(std::adjacent_find(managed_.begin(), managed_.end()) == managed_.end());
  free_.assign(managed_.size(), true);
  allocated_.assign(managed_.size(), false);
  out_.assign(managed_.size(), false);
  free_count_ = static_cast<int>(managed_.size());
}

std::optional<std::size_t> NodeAllocator::find_index(NodeId node) const noexcept {
  const auto it = std::lower_bound(managed_.begin(), managed_.end(), node);
  if (it == managed_.end() || *it != node) return std::nullopt;
  return static_cast<std::size_t>(it - managed_.begin());
}

bool NodeAllocator::can_allocate(int count) const noexcept {
  return count > 0 && count <= free_count_;
}

std::optional<NodeSet> NodeAllocator::allocate(int count) {
  RUSH_EXPECTS(count > 0);
  if (count > free_count_) return std::nullopt;
  const auto need = static_cast<std::size_t>(count);

  // First fit contiguous: a run of `count` consecutive free slots.
  std::size_t run_start = 0;
  std::size_t run_len = 0;
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i]) {
      if (run_len == 0) run_start = i;
      if (++run_len == need) {
        NodeSet out;
        out.reserve(need);
        for (std::size_t j = run_start; j <= i; ++j) {
          free_[j] = false;
          allocated_[j] = true;
          out.push_back(managed_[j]);
        }
        free_count_ -= count;
        RUSH_AUDIT_HOOK(audit_invariants());
        return out;
      }
    } else {
      run_len = 0;
    }
  }

  // Fragmented fallback: lowest-indexed free slots.
  NodeSet out;
  out.reserve(need);
  for (std::size_t i = 0; i < free_.size() && out.size() < need; ++i) {
    if (free_[i]) {
      free_[i] = false;
      allocated_[i] = true;
      out.push_back(managed_[i]);
    }
  }
  RUSH_ASSERT(out.size() == need);
  free_count_ -= count;
  RUSH_AUDIT_HOOK(audit_invariants());
  return out;
}

void NodeAllocator::audit_invariants() const {
  RUSH_AUDIT_CHECK(std::is_sorted(managed_.begin(), managed_.end()), "");
  RUSH_AUDIT_CHECK(std::adjacent_find(managed_.begin(), managed_.end()) == managed_.end(),
                   "duplicate managed node");
  RUSH_AUDIT_CHECK(free_.size() == managed_.size() && allocated_.size() == managed_.size() &&
                       out_.size() == managed_.size(),
                   "bitmap not parallel to managed set");
  const auto actually_free = std::count(free_.begin(), free_.end(), true);
  RUSH_AUDIT_CHECK(free_count_ == static_cast<int>(actually_free),
                   "free_count_=" + std::to_string(free_count_) + " but bitmap has " +
                       std::to_string(actually_free) + " free bits");
  for (std::size_t i = 0; i < free_.size(); ++i) {
    RUSH_AUDIT_CHECK(free_[i] == (!allocated_[i] && !out_[i]),
                     "slot " + std::to_string(i) + " state bits inconsistent");
  }
}

void NodeAllocator::release(const NodeSet& nodes) {
  for (NodeId n : nodes) {
    const auto idx = find_index(n);
    RUSH_EXPECTS(idx.has_value());
    RUSH_EXPECTS(allocated_[*idx]);
    allocated_[*idx] = false;
    // An out-of-service node parks instead of rejoining the free pool;
    // set_available(node, true) brings it back.
    if (!out_[*idx]) {
      free_[*idx] = true;
      ++free_count_;
    }
  }
  RUSH_AUDIT_HOOK(audit_invariants());
}

bool NodeAllocator::set_available(NodeId node, bool available) {
  const auto idx = find_index(node);
  if (!idx.has_value()) return false;
  if (out_[*idx] != available) return true;  // already in the requested state
  if (available) {
    out_[*idx] = false;
    if (!allocated_[*idx]) {
      free_[*idx] = true;
      ++free_count_;
    }
  } else {
    out_[*idx] = true;
    if (free_[*idx]) {
      free_[*idx] = false;
      --free_count_;
    }
  }
  RUSH_AUDIT_HOOK(audit_invariants());
  return true;
}

bool NodeAllocator::is_available(NodeId node) const {
  const auto idx = find_index(node);
  RUSH_EXPECTS(idx.has_value());
  return !out_[*idx];
}

int NodeAllocator::unavailable_count() const noexcept {
  return static_cast<int>(std::count(out_.begin(), out_.end(), true));
}

bool NodeAllocator::is_free(NodeId node) const {
  const auto idx = find_index(node);
  RUSH_EXPECTS(idx.has_value());
  return free_[*idx];
}

}  // namespace rush::cluster
