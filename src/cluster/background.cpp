#include "cluster/background.hpp"

#include <algorithm>
#include <cmath>

#include "sim/engine.hpp"

#include "common/error.hpp"

namespace rush::cluster {

namespace {
constexpr double kTwoPi = 6.28318530717958647692;
}

BackgroundLoad::BackgroundLoad(sim::Engine& engine, NetworkModel& net, LustreModel& lustre,
                               BackgroundConfig config, Rng rng)
    : engine_(engine), net_(net), lustre_(lustre), config_(config), rng_(rng) {
  RUSH_EXPECTS(config_.update_period_s > 0.0);
  RUSH_EXPECTS(config_.day_length_s > 0.0);
  const auto& tree = net_.tree();
  pods_.resize(static_cast<std::size_t>(tree.num_pods()));
  net_levels_.assign(pods_.size(), 0.0);
  for (auto& pod : pods_) {
    pod.edge_jitter.resize(static_cast<std::size_t>(tree.config().edges_per_pod));
    for (auto& j : pod.edge_jitter) j = rng_.uniform(0.8, 1.2);
  }
}

void BackgroundLoad::start() {
  if (running_) return;
  running_ = true;
  task_ = engine_.schedule_periodic(engine_.now(), config_.update_period_s, [this] { update(); });
}

void BackgroundLoad::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(task_);
}

void BackgroundLoad::add_storm(const Storm& storm) {
  RUSH_EXPECTS(storm.end > storm.start);
  storms_.push_back(storm);
}

double BackgroundLoad::storm_boost(sim::Time now, bool io) const noexcept {
  double boost = 0.0;
  for (const Storm& s : storms_)
    if (now >= s.start && now < s.end) boost += io ? s.io_intensity : s.net_intensity;
  return boost;
}

double BackgroundLoad::advance_pod(PodState& state, sim::Time now) {
  state.ar1 = config_.net_ar1_rho * state.ar1 + rng_.normal(0.0, config_.net_ar1_sigma);
  if (now >= state.incident_until) {
    state.incident_intensity = 0.0;
    const double p_incident =
        config_.incidents_per_day * config_.update_period_s / config_.day_length_s;
    if (rng_.bernoulli(p_incident)) {
      // Lognormal duration with the configured mean: mean = exp(mu + s^2/2).
      const double sigma = 0.6;
      const double mu = std::log(config_.incident_mean_duration_s) - sigma * sigma / 2.0;
      state.incident_until = now + rng_.lognormal(mu, sigma);
      state.incident_intensity =
          rng_.uniform(config_.incident_intensity_lo, config_.incident_intensity_hi);
    }
  }
  const double diurnal =
      config_.net_diurnal_amplitude * std::sin(kTwoPi * now / config_.day_length_s);
  const double level = config_.net_base + diurnal + state.ar1 + state.incident_intensity +
                       storm_boost(now, /*io=*/false);
  return std::clamp(level, 0.0, 2.0);
}

void BackgroundLoad::update() {
  const sim::Time now = engine_.now();
  const auto& tree = net_.tree();
  const auto& cfg = tree.config();

  for (int pod = 0; pod < tree.num_pods(); ++pod) {
    auto& state = pods_[static_cast<std::size_t>(pod)];
    const double level = advance_pod(state, now);
    net_levels_[static_cast<std::size_t>(pod)] = level;
    for (int e = 0; e < cfg.edges_per_pod; ++e) {
      const int edge = pod * cfg.edges_per_pod + e;
      const double jitter = state.edge_jitter[static_cast<std::size_t>(e)];
      net_.set_ambient_load(tree.edge_uplink(edge), level * cfg.edge_uplink_gbps * jitter);
    }
    net_.set_ambient_load(tree.pod_uplink(pod),
                          level * cfg.pod_uplink_gbps * config_.pod_uplink_share);
  }

  // Filesystem demand, global.
  io_ar1_ = config_.io_ar1_rho * io_ar1_ + rng_.normal(0.0, config_.io_ar1_sigma);
  if (now >= io_incident_until_) {
    io_incident_intensity_ = 0.0;
    const double p_incident =
        config_.io_incidents_per_day * config_.update_period_s / config_.day_length_s;
    if (rng_.bernoulli(p_incident)) {
      const double sigma = 0.6;
      const double mu = std::log(config_.incident_mean_duration_s) - sigma * sigma / 2.0;
      io_incident_until_ = now + rng_.lognormal(mu, sigma);
      io_incident_intensity_ =
          rng_.uniform(config_.io_incident_intensity_lo, config_.io_incident_intensity_hi);
    }
  }
  const double io_diurnal =
      config_.io_diurnal_amplitude * std::sin(kTwoPi * now / config_.day_length_s + 1.3);
  io_level_ = std::clamp(config_.io_base + io_diurnal + io_ar1_ + io_incident_intensity_ +
                             storm_boost(now, /*io=*/true),
                         0.0, 2.5);
  lustre_.set_ambient_demand(io_level_ * lustre_.capacity_gbps());
}

double BackgroundLoad::current_net_level(int pod) const {
  RUSH_EXPECTS(pod >= 0 && pod < static_cast<int>(net_levels_.size()));
  return net_levels_[static_cast<std::size_t>(pod)];
}

}  // namespace rush::cluster
