// Ambient background load generator.
//
// Stands in for "everything else running on the machine": the other
// ~2,400 Quartz nodes' users, system daemons, and filesystem traffic.
// Produces per-pod network load and global filesystem demand with
//
//   level(t) = base + diurnal sine + AR(1) noise + Poisson incidents
//              + scheduled storms
//
// Scheduled storms model events like the mid-December congestion spike
// visible in Fig. 1 of the paper. Levels are expressed as fractions of
// link capacity and are re-applied to the NetworkModel/LustreModel on a
// periodic simulation event.
#pragma once

#include <vector>

#include "cluster/lustre.hpp"
#include "cluster/network.hpp"
#include "common/rng.hpp"
#include "sim/types.hpp"

namespace rush::cluster {

struct BackgroundConfig {
  double update_period_s = 60.0;
  double day_length_s = 86400.0;

  // Network level (fraction of edge-uplink capacity), per pod.
  double net_base = 0.12;
  double net_diurnal_amplitude = 0.08;
  double net_ar1_rho = 0.95;
  double net_ar1_sigma = 0.035;
  double pod_uplink_share = 0.6;  // fraction of the pod level hitting its uplink

  // Random congestion incidents (per pod).
  double incidents_per_day = 0.4;
  double incident_mean_duration_s = 2400.0;
  double incident_intensity_lo = 0.35;
  double incident_intensity_hi = 0.95;

  // Filesystem demand (fraction of aggregate Lustre capacity), global.
  double io_base = 0.15;
  double io_diurnal_amplitude = 0.10;
  double io_ar1_rho = 0.95;
  double io_ar1_sigma = 0.04;
  double io_incidents_per_day = 0.25;
  double io_incident_intensity_lo = 0.4;
  double io_incident_intensity_hi = 1.1;
};

/// A deliberate, scheduled contention event (e.g., the mid-December spike).
struct Storm {
  sim::Time start = 0.0;
  sim::Time end = 0.0;
  double net_intensity = 0.0;  // added to every pod's network level
  double io_intensity = 0.0;   // added to the filesystem level
};

class BackgroundLoad {
 public:
  BackgroundLoad(sim::Engine& engine, NetworkModel& net, LustreModel& lustre,
                 BackgroundConfig config, Rng rng);

  /// Begin periodic updates (idempotent); first update fires immediately.
  void start();
  /// Stop updating (ambient loads keep their last values).
  void stop();

  void add_storm(const Storm& storm);

  /// Force one update at the current sim time (also called periodically).
  void update();

  [[nodiscard]] double current_net_level(int pod) const;
  [[nodiscard]] double current_io_level() const noexcept { return io_level_; }

 private:
  struct PodState {
    double ar1 = 0.0;
    sim::Time incident_until = -1.0;
    double incident_intensity = 0.0;
    std::vector<double> edge_jitter;  // static per-edge multiplier
  };

  [[nodiscard]] double storm_boost(sim::Time now, bool io) const noexcept;
  double advance_pod(PodState& state, sim::Time now);

  sim::Engine& engine_;
  NetworkModel& net_;
  LustreModel& lustre_;
  BackgroundConfig config_;
  Rng rng_;

  std::vector<PodState> pods_;
  std::vector<double> net_levels_;
  double io_ar1_ = 0.0;
  sim::Time io_incident_until_ = -1.0;
  double io_incident_intensity_ = 0.0;
  double io_level_ = 0.0;
  std::vector<Storm> storms_;
  sim::EventId task_ = 0;
  bool running_ = false;
};

}  // namespace rush::cluster
