// Shared congestion-delay curve.
//
// Real fabrics and filesystems degrade well before 100% utilization
// (queueing delay, credit stalls, incast). The curve below is calibrated
// so that
//   u <= 0.4  ->  ~1.0x   (healthy)
//   u  = 0.7  ->  ~1.2x
//   u  = 0.9  ->  ~1.6x
//   u  = 1.0  ->  ~1.95x
//   u  > 1    ->  linear in u (throughput-limited regime)
// which reproduces the 1x-3x run-time inflation range the paper observes
// (Fig. 1). The function is monotone, so "max slowdown over links" equals
// "slowdown of max utilization".
#pragma once

#include <cmath>

namespace rush::cluster {

inline double congestion_slowdown(double utilization) noexcept {
  if (utilization <= 0.0) return 1.0;
  constexpr double kA = 0.95;
  constexpr double kB = 4.4;
  if (utilization <= 1.0) return 1.0 + kA * std::pow(utilization, kB);
  // Beyond saturation every flow gets capacity/load of its demand.
  const double at_one = 1.0 + kA;
  return at_one + 2.0 * (utilization - 1.0);
}

}  // namespace rush::cluster
