#include "cluster/lustre.hpp"

#include <algorithm>

#include "cluster/congestion.hpp"
#include "common/error.hpp"

namespace rush::cluster {

LustreModel::LustreModel(double aggregate_gbps) : capacity_(aggregate_gbps) {
  RUSH_EXPECTS(aggregate_gbps > 0.0);
}

void LustreModel::add_client(SourceId id, NodeSet nodes, double per_node_gbps,
                             double read_fraction) {
  RUSH_EXPECTS(!nodes.empty());
  RUSH_EXPECTS(per_node_gbps >= 0.0);
  RUSH_EXPECTS(read_fraction >= 0.0 && read_fraction <= 1.0);
  RUSH_EXPECTS(!clients_.contains(id));
  clients_.emplace(id, Client{std::move(nodes), per_node_gbps, read_fraction});
  node_demand_dirty_ = true;
  ++generation_;
}

void LustreModel::set_rate(SourceId id, double per_node_gbps) {
  RUSH_EXPECTS(per_node_gbps >= 0.0);
  auto it = clients_.find(id);
  RUSH_EXPECTS(it != clients_.end());
  if (it->second.per_node_gbps == per_node_gbps) return;
  it->second.per_node_gbps = per_node_gbps;
  node_demand_dirty_ = true;
  ++generation_;
}

void LustreModel::remove_client(SourceId id) {
  const auto erased = clients_.erase(id);
  RUSH_EXPECTS(erased == 1);
  node_demand_dirty_ = true;
  ++generation_;
}

bool LustreModel::has_client(SourceId id) const noexcept { return clients_.contains(id); }

void LustreModel::set_ambient_demand(double gbps) {
  RUSH_EXPECTS(gbps >= 0.0);
  if (ambient_ == gbps) return;
  ambient_ = gbps;
  ++generation_;
}

double LustreModel::total_demand_gbps() const noexcept {
  double total = ambient_;
  for (const auto& [id, c] : clients_)
    total += c.per_node_gbps * static_cast<double>(c.nodes.size());
  return total;
}

double LustreModel::slowdown() const noexcept {
  return congestion_slowdown(total_demand_gbps() / capacity_);
}

void LustreModel::rebuild_node_demand() const {
  node_read_.clear();
  node_write_.clear();
  for (const auto& [id, c] : clients_) {
    for (NodeId n : c.nodes) {
      node_read_[n] += c.per_node_gbps * c.read_fraction;
      node_write_[n] += c.per_node_gbps * (1.0 - c.read_fraction);
    }
  }
  node_demand_dirty_ = false;
}

double LustreModel::node_read_gbps(NodeId node) const {
  if (node_demand_dirty_) rebuild_node_demand();
  const auto it = node_read_.find(node);
  if (it == node_read_.end()) return 0.0;
  // Achieved rate: demanded rate divided by the oversubscription factor.
  return it->second / slowdown();
}

double LustreModel::node_write_gbps(NodeId node) const {
  if (node_demand_dirty_) rebuild_node_demand();
  const auto it = node_write_.find(node);
  if (it == node_write_.end()) return 0.0;
  return it->second / slowdown();
}

}  // namespace rush::cluster
