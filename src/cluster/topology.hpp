// Three-level fat-tree topology model (Quartz-like).
//
// Nodes attach to edge switches; edge switches aggregate into pods; pods
// connect through the core. Contention is modeled at three link classes:
//
//   node link   — one per compute node (node <-> edge switch)
//   edge uplink — one per edge switch (edge <-> pod aggregation)
//   pod uplink  — one per pod (aggregation <-> core)
//
// This is the minimal structure that reproduces the contention behaviour
// the paper exploits: a noisy all-to-all job sharing edge switches with an
// application job congests the shared edge uplinks and slows the
// application's communication phases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rush::cluster {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

/// Identifier shared by traffic sources and filesystem clients; in
/// practice this is the scheduler's job id.
using SourceId = std::uint64_t;

/// Sorted set of node ids (jobs never share nodes, so sets are disjoint).
using NodeSet = std::vector<NodeId>;

// All bandwidth fields are in gigaBYTES per second.
struct FatTreeConfig {
  int pods = 6;
  int edges_per_pod = 16;
  int nodes_per_edge = 32;
  double node_link_gbps = 12.5;    // ~100 Gb/s Omni-Path endpoint
  double edge_uplink_gbps = 25.0;  // heavily tapered edge (contention point)
  double pod_uplink_gbps = 100.0;

  [[nodiscard]] int total_nodes() const noexcept { return pods * edges_per_pod * nodes_per_edge; }
  [[nodiscard]] int total_edges() const noexcept { return pods * edges_per_pod; }
};

enum class LinkKind : std::uint8_t { NodeLink, EdgeUplink, PodUplink };

class FatTree {
 public:
  explicit FatTree(FatTreeConfig config);

  [[nodiscard]] const FatTreeConfig& config() const noexcept { return config_; }
  [[nodiscard]] int num_nodes() const noexcept { return config_.total_nodes(); }
  [[nodiscard]] int num_edges() const noexcept { return config_.total_edges(); }
  [[nodiscard]] int num_pods() const noexcept { return config_.pods; }
  [[nodiscard]] int num_links() const noexcept {
    return num_nodes() + num_edges() + num_pods();
  }

  [[nodiscard]] int edge_of(NodeId node) const;
  [[nodiscard]] int pod_of(NodeId node) const;
  [[nodiscard]] NodeSet nodes_in_pod(int pod) const;
  [[nodiscard]] NodeSet nodes_in_edge(int edge) const;

  [[nodiscard]] LinkId node_link(NodeId node) const;
  [[nodiscard]] LinkId edge_uplink(int edge) const;
  [[nodiscard]] LinkId pod_uplink(int pod) const;

  [[nodiscard]] LinkKind link_kind(LinkId link) const;
  [[nodiscard]] double link_capacity_gbps(LinkId link) const;
  [[nodiscard]] std::string link_name(LinkId link) const;

  /// Hostname-style label ("quartz0042") used as the telemetry index.
  [[nodiscard]] std::string hostname(NodeId node) const;

 private:
  FatTreeConfig config_;
};

/// True if `nodes` is sorted, unique, and within [0, num_nodes).
bool valid_node_set(const FatTree& tree, const NodeSet& nodes) noexcept;

}  // namespace rush::cluster
