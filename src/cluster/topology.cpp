#include "cluster/topology.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace rush::cluster {

FatTree::FatTree(FatTreeConfig config) : config_(config) {
  RUSH_EXPECTS(config_.pods > 0);
  RUSH_EXPECTS(config_.edges_per_pod > 0);
  RUSH_EXPECTS(config_.nodes_per_edge > 0);
  RUSH_EXPECTS(config_.node_link_gbps > 0.0);
  RUSH_EXPECTS(config_.edge_uplink_gbps > 0.0);
  RUSH_EXPECTS(config_.pod_uplink_gbps > 0.0);
}

int FatTree::edge_of(NodeId node) const {
  RUSH_EXPECTS(node >= 0 && node < num_nodes());
  return node / config_.nodes_per_edge;
}

int FatTree::pod_of(NodeId node) const {
  RUSH_EXPECTS(node >= 0 && node < num_nodes());
  return node / (config_.nodes_per_edge * config_.edges_per_pod);
}

NodeSet FatTree::nodes_in_pod(int pod) const {
  RUSH_EXPECTS(pod >= 0 && pod < num_pods());
  const int per_pod = config_.nodes_per_edge * config_.edges_per_pod;
  NodeSet out;
  out.reserve(static_cast<std::size_t>(per_pod));
  for (int i = 0; i < per_pod; ++i) out.push_back(static_cast<NodeId>(pod * per_pod + i));
  return out;
}

NodeSet FatTree::nodes_in_edge(int edge) const {
  RUSH_EXPECTS(edge >= 0 && edge < num_edges());
  NodeSet out;
  out.reserve(static_cast<std::size_t>(config_.nodes_per_edge));
  for (int i = 0; i < config_.nodes_per_edge; ++i)
    out.push_back(static_cast<NodeId>(edge * config_.nodes_per_edge + i));
  return out;
}

LinkId FatTree::node_link(NodeId node) const {
  RUSH_EXPECTS(node >= 0 && node < num_nodes());
  return node;
}

LinkId FatTree::edge_uplink(int edge) const {
  RUSH_EXPECTS(edge >= 0 && edge < num_edges());
  return num_nodes() + edge;
}

LinkId FatTree::pod_uplink(int pod) const {
  RUSH_EXPECTS(pod >= 0 && pod < num_pods());
  return num_nodes() + num_edges() + pod;
}

LinkKind FatTree::link_kind(LinkId link) const {
  RUSH_EXPECTS(link >= 0 && link < num_links());
  if (link < num_nodes()) return LinkKind::NodeLink;
  if (link < num_nodes() + num_edges()) return LinkKind::EdgeUplink;
  return LinkKind::PodUplink;
}

double FatTree::link_capacity_gbps(LinkId link) const {
  switch (link_kind(link)) {
    case LinkKind::NodeLink:
      return config_.node_link_gbps;
    case LinkKind::EdgeUplink:
      return config_.edge_uplink_gbps;
    case LinkKind::PodUplink:
      return config_.pod_uplink_gbps;
  }
  return 0.0;  // unreachable
}

std::string FatTree::link_name(LinkId link) const {
  char buf[48];
  switch (link_kind(link)) {
    case LinkKind::NodeLink:
      std::snprintf(buf, sizeof(buf), "node%04d", link);
      break;
    case LinkKind::EdgeUplink:
      std::snprintf(buf, sizeof(buf), "edge%03d-up", link - num_nodes());
      break;
    case LinkKind::PodUplink:
      std::snprintf(buf, sizeof(buf), "pod%02d-up", link - num_nodes() - num_edges());
      break;
  }
  return buf;
}

std::string FatTree::hostname(NodeId node) const {
  RUSH_EXPECTS(node >= 0 && node < num_nodes());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "quartz%04d", node);
  return buf;
}

bool valid_node_set(const FatTree& tree, const NodeSet& nodes) noexcept {
  if (nodes.empty()) return false;
  NodeId prev = -1;
  for (NodeId n : nodes) {
    if (n <= prev || n >= tree.num_nodes()) return false;
    prev = n;
  }
  return true;
}

}  // namespace rush::cluster
