#include "telemetry/schema.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace rush::telemetry {

namespace {

using T = CounterTable;
using K = SignalKind;

// 22 sysclassib + 34 opa_info + 34 lustre_client = 90 counters.
// Gains put values in plausible native units (bytes, packets, calls).
constexpr std::array<CounterDef, 90> kSchema = {{
    // --- sysclassib: InfiniBand endpoint counters (22) ---
    {T::SysClassIb, "port_xmit_data", K::NodeXmit, 1.0e9, 0.0, 0.02},
    {T::SysClassIb, "port_rcv_data", K::NodeRecv, 1.0e9, 0.0, 0.02},
    {T::SysClassIb, "port_xmit_packets", K::NodeXmit, 2.5e5, 10.0, 0.03},
    {T::SysClassIb, "port_rcv_packets", K::NodeRecv, 2.5e5, 10.0, 0.03},
    {T::SysClassIb, "port_xmit_wait", K::EdgeWait, 5.0e6, 0.0, 0.10},
    {T::SysClassIb, "port_xmit_discards", K::EdgeWait, 1.0e3, 0.0, 0.25},
    {T::SysClassIb, "port_rcv_errors", K::ErrorRate, 20.0, 0.0, 0.5},
    {T::SysClassIb, "unicast_xmit_packets", K::NodeXmit, 2.0e5, 5.0, 0.03},
    {T::SysClassIb, "unicast_rcv_packets", K::NodeRecv, 2.0e5, 5.0, 0.03},
    {T::SysClassIb, "multicast_xmit_packets", K::NodeXmit, 5.0e3, 1.0, 0.10},
    {T::SysClassIb, "multicast_rcv_packets", K::NodeRecv, 5.0e3, 1.0, 0.10},
    {T::SysClassIb, "symbol_error", K::ErrorRate, 2.0, 0.0, 0.8},
    {T::SysClassIb, "link_error_recovery", K::ErrorRate, 0.5, 0.0, 1.0},
    {T::SysClassIb, "link_downed", K::Constant, 0.0, 0.01, 1.0},
    {T::SysClassIb, "port_rcv_remote_physical_errors", K::ErrorRate, 1.0, 0.0, 0.9},
    {T::SysClassIb, "port_rcv_switch_relay_errors", K::EdgeWait, 50.0, 0.0, 0.4},
    {T::SysClassIb, "VL15_dropped", K::EdgeWait, 10.0, 0.0, 0.5},
    {T::SysClassIb, "excessive_buffer_overrun_errors", K::EdgeWait, 5.0, 0.0, 0.6},
    {T::SysClassIb, "local_link_integrity_errors", K::ErrorRate, 0.8, 0.0, 1.0},
    {T::SysClassIb, "port_rcv_constraint_errors", K::Constant, 0.0, 0.02, 1.0},
    {T::SysClassIb, "port_xmit_constraint_errors", K::Constant, 0.0, 0.02, 1.0},
    {T::SysClassIb, "link_integrity_errors", K::ErrorRate, 0.6, 0.0, 1.0},

    // --- opa_info: Omni-Path switch counters (34) ---
    {T::OpaInfo, "portXmitData", K::EdgeUtil, 8.0e9, 0.0, 0.02},
    {T::OpaInfo, "portRcvData", K::EdgeUtil, 8.0e9, 0.0, 0.02},
    {T::OpaInfo, "portXmitPkts", K::EdgeUtil, 2.0e6, 20.0, 0.03},
    {T::OpaInfo, "portRcvPkts", K::EdgeUtil, 2.0e6, 20.0, 0.03},
    {T::OpaInfo, "portMulticastXmitPkts", K::EdgeUtil, 1.0e4, 2.0, 0.15},
    {T::OpaInfo, "portMulticastRcvPkts", K::EdgeUtil, 1.0e4, 2.0, 0.15},
    {T::OpaInfo, "linkErrorRecovery", K::ErrorRate, 0.5, 0.0, 1.0},
    {T::OpaInfo, "linkDowned", K::Constant, 0.0, 0.01, 1.0},
    {T::OpaInfo, "portRcvErrors", K::ErrorRate, 15.0, 0.0, 0.5},
    {T::OpaInfo, "portRcvRemotePhysicalErrors", K::ErrorRate, 1.0, 0.0, 0.9},
    {T::OpaInfo, "portRcvSwitchRelayErrors", K::EdgeWait, 40.0, 0.0, 0.4},
    {T::OpaInfo, "portXmitDiscards", K::EdgeWait, 800.0, 0.0, 0.3},
    {T::OpaInfo, "portXmitConstraintErrors", K::Constant, 0.0, 0.02, 1.0},
    {T::OpaInfo, "portRcvConstraintErrors", K::Constant, 0.0, 0.02, 1.0},
    {T::OpaInfo, "localLinkIntegrityErrors", K::ErrorRate, 0.7, 0.0, 1.0},
    {T::OpaInfo, "excessiveBufferOverrunErrors", K::EdgeWait, 4.0, 0.0, 0.6},
    {T::OpaInfo, "fmConfigErrors", K::Constant, 0.0, 0.01, 1.0},
    {T::OpaInfo, "portXmitWait", K::EdgeWait, 8.0e6, 0.0, 0.08},
    {T::OpaInfo, "swPortCongestion", K::EdgeWait, 2.0e5, 0.0, 0.12},
    {T::OpaInfo, "portRcvFECN", K::EdgeWait, 5.0e3, 0.0, 0.2},
    {T::OpaInfo, "portRcvBECN", K::EdgeWait, 5.0e3, 0.0, 0.2},
    {T::OpaInfo, "portXmitTimeCong", K::EdgeWait, 1.0e6, 0.0, 0.15},
    {T::OpaInfo, "portXmitWastedBW", K::EdgeWait, 3.0e5, 0.0, 0.2},
    {T::OpaInfo, "portXmitWaitData", K::EdgeWait, 6.0e6, 0.0, 0.1},
    {T::OpaInfo, "portRcvBubble", K::EdgeUtil, 1.0e5, 0.0, 0.2},
    {T::OpaInfo, "portMarkFECN", K::EdgeWait, 2.0e3, 0.0, 0.3},
    {T::OpaInfo, "uncorrectableErrors", K::ErrorRate, 0.3, 0.0, 1.2},
    {T::OpaInfo, "linkQualityIndicator", K::Constant, 0.0, 5.0, 0.01},
    {T::OpaInfo, "rcvRateGbps", K::PodUtil, 400.0, 0.0, 0.05},
    {T::OpaInfo, "xmitRateGbps", K::PodUtil, 400.0, 0.0, 0.05},
    {T::OpaInfo, "bufferOccupancy", K::EdgeUtil, 100.0, 2.0, 0.1},
    {T::OpaInfo, "creditReturnDelay", K::EdgeWait, 5.0e4, 10.0, 0.15},
    {T::OpaInfo, "vlArbHeadBlocked", K::EdgeWait, 1.0e3, 0.0, 0.25},
    {T::OpaInfo, "adaptiveRoutingEvents", K::PodUtil, 500.0, 0.0, 0.3},

    // --- lustre_client: Lustre client metrics (34) ---
    {T::LustreClient, "open", K::IoRead, 2.0e3, 5.0, 0.2},
    {T::LustreClient, "close", K::IoRead, 2.0e3, 5.0, 0.2},
    {T::LustreClient, "mknod", K::Constant, 0.0, 0.5, 0.8},
    {T::LustreClient, "link", K::Constant, 0.0, 0.2, 1.0},
    {T::LustreClient, "unlink", K::IoWrite, 100.0, 0.5, 0.5},
    {T::LustreClient, "mkdir", K::Constant, 0.0, 0.3, 1.0},
    {T::LustreClient, "rmdir", K::Constant, 0.0, 0.2, 1.0},
    {T::LustreClient, "rename", K::Constant, 0.0, 0.3, 1.0},
    {T::LustreClient, "getattr", K::IoRead, 5.0e3, 20.0, 0.2},
    {T::LustreClient, "setattr", K::IoWrite, 500.0, 2.0, 0.3},
    {T::LustreClient, "getxattr", K::IoRead, 1.0e3, 5.0, 0.3},
    {T::LustreClient, "setxattr", K::Constant, 0.0, 0.5, 1.0},
    {T::LustreClient, "statfs", K::Constant, 0.0, 1.0, 0.5},
    {T::LustreClient, "sync", K::IoWrite, 50.0, 0.2, 0.5},
    {T::LustreClient, "read_calls", K::IoRead, 1.0e5, 10.0, 0.05},
    {T::LustreClient, "write_calls", K::IoWrite, 1.0e5, 10.0, 0.05},
    {T::LustreClient, "read_bytes", K::IoRead, 1.0e9, 0.0, 0.03},
    {T::LustreClient, "write_bytes", K::IoWrite, 1.0e9, 0.0, 0.03},
    {T::LustreClient, "osc_read_calls", K::IoRead, 8.0e4, 5.0, 0.05},
    {T::LustreClient, "osc_read_bytes", K::IoRead, 9.5e8, 0.0, 0.03},
    {T::LustreClient, "osc_write_calls", K::IoWrite, 8.0e4, 5.0, 0.05},
    {T::LustreClient, "osc_write_bytes", K::IoWrite, 9.5e8, 0.0, 0.03},
    {T::LustreClient, "dirty_pages_hits", K::IoWrite, 5.0e4, 100.0, 0.1},
    {T::LustreClient, "dirty_pages_misses", K::IoPressure, 2.0e4, 10.0, 0.2},
    {T::LustreClient, "ioctl", K::Constant, 0.0, 2.0, 0.5},
    {T::LustreClient, "fsync", K::IoWrite, 30.0, 0.1, 0.6},
    {T::LustreClient, "seek", K::IoRead, 2.0e3, 5.0, 0.3},
    {T::LustreClient, "readdir", K::Constant, 0.0, 3.0, 0.5},
    {T::LustreClient, "truncate", K::IoWrite, 20.0, 0.1, 0.8},
    {T::LustreClient, "flock", K::Constant, 0.0, 0.5, 1.0},
    {T::LustreClient, "brw_read", K::IoRead, 7.0e8, 0.0, 0.04},
    {T::LustreClient, "brw_write", K::IoWrite, 7.0e8, 0.0, 0.04},
    {T::LustreClient, "cache_hit_ratio", K::IoPressure, -40.0, 95.0, 0.03},
    {T::LustreClient, "rpc_in_flight", K::IoPressure, 64.0, 4.0, 0.1},
}};

const char* table_prefix(CounterTable table) noexcept {
  switch (table) {
    case CounterTable::SysClassIb:
      return "sysclassib";
    case CounterTable::OpaInfo:
      return "opa_info";
    case CounterTable::LustreClient:
      return "lustre_client";
  }
  return "?";
}

}  // namespace

std::span<const CounterDef> counter_schema() noexcept { return kSchema; }

std::size_t num_counters() noexcept { return kSchema.size(); }

std::size_t counters_in_table(CounterTable table) noexcept {
  std::size_t n = 0;
  for (const auto& def : kSchema)
    if (def.table == table) ++n;
  return n;
}

std::string qualified_name(const CounterDef& def) {
  return std::string(table_prefix(def.table)) + "." + def.name;
}

double synth_value(const CounterDef& def, const NodeSignals& s, Rng& rng) noexcept {
  // Congestion "knee": wait/discard style counters only light up once the
  // shared link is meaningfully loaded, like their hardware counterparts.
  constexpr double kCongestionKnee = 0.55;

  double signal = 0.0;
  switch (def.kind) {
    case SignalKind::NodeXmit:
      signal = s.xmit_gbps;
      break;
    case SignalKind::NodeRecv:
      signal = s.recv_gbps;
      break;
    case SignalKind::EdgeUtil:
      signal = s.edge_util;
      break;
    case SignalKind::PodUtil:
      signal = s.pod_util;
      break;
    case SignalKind::EdgeWait:
      signal = std::max(0.0, s.edge_util - kCongestionKnee);
      break;
    case SignalKind::IoRead:
      signal = s.io_read_gbps;
      break;
    case SignalKind::IoWrite:
      signal = s.io_write_gbps;
      break;
    case SignalKind::IoPressure:
      signal = s.io_pressure;
      break;
    case SignalKind::ErrorRate:
      // Rare integer events; rate rises mildly with congestion.
      return static_cast<double>(rng.poisson(def.gain * 0.02 * (0.2 + s.edge_util)));
    case SignalKind::Constant:
      signal = 0.0;
      break;
  }
  const double clean = def.base + def.gain * signal;
  const double jitter = 1.0 + def.noise * rng.normal();
  return std::max(0.0, clean * jitter);
}

}  // namespace rush::telemetry
