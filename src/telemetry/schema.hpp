// Counter schema mirroring Table I of the paper.
//
// Three LDMS-style counter tables are synthesized per node:
//   sysclassib    — 22 InfiniBand endpoint counters
//   opa_info      — 34 Omni-Path switch counters
//   lustre_client — 34 Lustre client metrics
//
// Real LDMS counters are measurements of hidden congestion state; here
// each counter is a deterministic function (plus jitter) of the simulated
// state that *causes* slowdowns (link loads, filesystem pressure), so the
// statistical coupling the paper's ML models learn is preserved.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace rush::telemetry {

enum class CounterTable : std::uint8_t { SysClassIb, OpaInfo, LustreClient };

/// What simulated signal a counter is derived from.
enum class SignalKind : std::uint8_t {
  NodeXmit,    // node access-link transmit rate (GB/s)
  NodeRecv,    // node access-link receive rate (GB/s)
  EdgeUtil,    // utilization of the node's edge uplink [0, ~2]
  PodUtil,     // utilization of the node's pod uplink
  EdgeWait,    // congestion indicator: max(0, edge_util - knee)
  IoRead,      // achieved Lustre read rate on the node (GB/s)
  IoWrite,     // achieved Lustre write rate on the node (GB/s)
  IoPressure,  // filesystem oversubscription - 1 (>= 0)
  ErrorRate,   // rare errors, rate grows with edge utilization
  Constant,    // mostly-static counter (pure noise floor)
};

struct CounterDef {
  CounterTable table;
  const char* name;
  SignalKind kind;
  double gain;   // scales the signal into counter units
  double base;   // additive offset
  double noise;  // relative jitter (stddev as a fraction of the value)
};

/// The full 90-counter schema (22 + 34 + 34), fixed order.
std::span<const CounterDef> counter_schema() noexcept;

std::size_t num_counters() noexcept;
std::size_t counters_in_table(CounterTable table) noexcept;
std::string qualified_name(const CounterDef& def);

/// Per-node signal snapshot the sampler extracts once per node per tick.
struct NodeSignals {
  double xmit_gbps = 0.0;
  double recv_gbps = 0.0;
  double edge_util = 0.0;
  double pod_util = 0.0;
  double io_read_gbps = 0.0;
  double io_write_gbps = 0.0;
  double io_pressure = 0.0;
};

/// Synthesize one counter value from the node's signals.
double synth_value(const CounterDef& def, const NodeSignals& signals, Rng& rng) noexcept;

}  // namespace rush::telemetry
