// Periodic counter sampler (the LDMS daemon stand-in).
//
// Every `period_s` of simulated time it snapshots the network/filesystem
// state for each managed node, synthesizes the 90-counter frame, and
// appends it to the CounterStore. Sampling can be paused when no consumer
// needs data (the longitudinal collector fast-forwards between control
// jobs), which keeps multi-month simulations cheap.
#pragma once

#include "cluster/lustre.hpp"
#include "cluster/network.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "telemetry/store.hpp"

namespace rush::telemetry {

struct SamplerConfig {
  double period_s = 30.0;
};

class CounterSampler {
 public:
  CounterSampler(sim::Engine& engine, const cluster::NetworkModel& net,
                 const cluster::LustreModel& lustre, CounterStore& store, SamplerConfig config,
                 Rng rng);

  /// Begin periodic sampling; the first frame is captured immediately.
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Capture one frame right now regardless of running state.
  void sample_now();

 private:
  sim::Engine& engine_;
  const cluster::NetworkModel& net_;
  const cluster::LustreModel& lustre_;
  CounterStore& store_;
  SamplerConfig config_;
  Rng rng_;
  sim::EventId task_ = 0;
  bool running_ = false;
  std::vector<float> scratch_;
};

}  // namespace rush::telemetry
