// Periodic counter sampler (the LDMS daemon stand-in).
//
// Every `period_s` of simulated time it snapshots the network/filesystem
// state for each managed node, synthesizes the 90-counter frame, and
// appends it to the CounterStore. Sampling can be paused when no consumer
// needs data (the longitudinal collector fast-forwards between control
// jobs), which keeps multi-month simulations cheap.
#pragma once

#include <functional>
#include <span>

#include "cluster/lustre.hpp"
#include "cluster/network.hpp"
#include "common/rng.hpp"
#include "sim/types.hpp"
#include "telemetry/store.hpp"

namespace rush::obs {
class EventTrace;
class Histogram;
class MetricsRegistry;
}  // namespace rush::obs

namespace rush::telemetry {

struct SamplerConfig {
  double period_s = 30.0;
  /// A max-congestion episode starts when the worst fabric-link
  /// utilization seen by a frame crosses this and ends when it falls
  /// back below; episode records go to the attached EventTrace.
  double episode_util_threshold = 0.9;
};

class CounterSampler {
 public:
  CounterSampler(sim::Engine& engine, const cluster::NetworkModel& net,
                 const cluster::LustreModel& lustre, CounterStore& store, SamplerConfig config,
                 Rng rng);

  /// Begin periodic sampling; the first frame is captured immediately.
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Capture one frame right now regardless of running state.
  void sample_now();

  /// Attach observability sinks: per-frame worst-utilization histogram
  /// and frame counter into `metrics`, max-congestion episode records
  /// into `trace`. Either may be null (that side detaches), so all
  /// inputs are valid.
  void set_obs(obs::EventTrace* trace, obs::MetricsRegistry* metrics);

  /// Fault-injection hooks (installed by faults::FaultInjector). The
  /// drop filter runs before a frame is synthesized: returning true
  /// discards the whole tick — the daemon was down, so no values are
  /// synthesized (no RNG draws) and the store gets a gap. The corrupt
  /// mutator runs on the synthesized node-major values just before they
  /// reach the store. Either hook may be empty (that hook detaches).
  using FrameDropFilter = std::function<bool(sim::Time)>;
  using FrameCorruptFn = std::function<void(sim::Time, const cluster::NodeSet&, std::span<float>)>;
  void set_fault_hooks(FrameDropFilter drop, FrameCorruptFn corrupt);

 private:
  sim::Engine& engine_;
  const cluster::NetworkModel& net_;
  const cluster::LustreModel& lustre_;
  CounterStore& store_;
  SamplerConfig config_;
  Rng rng_;
  sim::EventId task_ = 0;
  bool running_ = false;
  std::vector<float> scratch_;
  FrameDropFilter drop_filter_;
  FrameCorruptFn corrupt_fn_;

  obs::EventTrace* trace_ = nullptr;
  obs::Histogram* metric_worst_util_ = nullptr;  // owned by the registry
  // Episode tracking across frames (see SamplerConfig threshold).
  bool in_episode_ = false;
  double episode_start_s_ = 0.0;
  double episode_peak_ = 0.0;
  cluster::LinkId episode_link_ = -1;
};

}  // namespace rush::telemetry
