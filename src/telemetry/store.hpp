// Time-indexed counter storage (the "Sonar/Cassandra" stand-in).
//
// Frames are appended by the sampler: one frame per sampling tick holding
// every managed node's counter values (node-major, float to halve memory).
// Frame timestamps are non-decreasing (enforced in add_frame), so window
// queries binary-search the frame index instead of scanning it. Per-frame
// all-node aggregates and running prefix sums are precomputed: whole-
// machine window means cost O(counters) and min/max merge only the frames
// inside the window. Old frames are evicted once `capacity_frames` is
// exceeded — the prefix base carries across eviction, and the pipeline
// only ever looks back one aggregation window.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include "cluster/topology.hpp"
#include "sim/types.hpp"

namespace rush::telemetry {

struct AuditTestPeer;  // test-only state corruption (tests/audit)

/// min/max/mean of one counter over a (nodes x time) window.
struct Agg {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

class CounterStore {
 public:
  /// `managed` lists the nodes frames will cover (sorted, unique);
  /// `num_counters` values are stored per node per frame.
  CounterStore(cluster::NodeSet managed, std::size_t num_counters, std::size_t capacity_frames);

  /// Append one frame at time `t` (must be >= the previous frame's time).
  /// `values` is node-major: values[node_index * num_counters + counter].
  ///
  /// Non-finite readings (a corrupted sampler, see faults/) are
  /// quarantined at ingest: each NaN/inf is stored as 0 and counted on
  /// the frame, so aggregates and prefix sums stay finite while
  /// corrupt_frames_in() keeps the corruption detectable downstream.
  void add_frame(sim::Time t, std::span<const float> values);

  [[nodiscard]] std::size_t num_counters() const noexcept { return num_counters_; }
  [[nodiscard]] const cluster::NodeSet& managed_nodes() const noexcept { return managed_; }
  [[nodiscard]] std::size_t frame_count() const noexcept { return frames_.size(); }
  [[nodiscard]] std::size_t frames_in(sim::Time t0, sim::Time t1) const noexcept;
  /// Timestamp of the newest retained frame; frame_count() must be > 0.
  [[nodiscard]] sim::Time latest_time() const;
  /// Frames with t in [t0, t1] that had at least one reading quarantined
  /// at ingest (see add_frame).
  [[nodiscard]] std::size_t corrupt_frames_in(sim::Time t0, sim::Time t1) const noexcept;
  /// Monotonic content version: bumped by every add_frame and clear.
  /// Lets consumers (the oracle's counter-feature cache) detect that a
  /// window query over unchanged content must return unchanged results.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

  /// Per-counter aggregates over frames with t in [t0, t1] and the given
  /// nodes (must all be managed). Returns num_counters() entries; returns
  /// zeros if the window holds no frames.
  [[nodiscard]] std::vector<Agg> aggregate_nodes(sim::Time t0, sim::Time t1,
                                                 const cluster::NodeSet& nodes) const;

  /// Same, over every managed node, using the precomputed per-frame
  /// aggregates (cheap regardless of node count).
  [[nodiscard]] std::vector<Agg> aggregate_all(sim::Time t0, sim::Time t1) const;

  /// Variants writing into caller-owned storage of size num_counters();
  /// values are identical to the vector forms. Both are steady-state
  /// allocation-free (the nodes variant reuses a member scratch for node
  /// indices); the '// rush: noalloc' contract on the definitions is
  /// enforced by rush_analyze.
  void aggregate_nodes_into(sim::Time t0, sim::Time t1, const cluster::NodeSet& nodes,
                            std::span<Agg> out) const;
  void aggregate_all_into(sim::Time t0, sim::Time t1, std::span<Agg> out) const;

  /// Most recent value of one counter on one node; 0 if no frames.
  [[nodiscard]] double latest(cluster::NodeId node, std::size_t counter) const;

  void clear();

  /// Time-index ordering and frame-shape audit: frame timestamps must be
  /// non-decreasing front to back, every frame must hold exactly
  /// managed x counters values, each frame's precomputed per-counter
  /// aggregates must match a fresh recomputation from the raw values, and
  /// the running prefix sums must chain (each frame's prefix equals its
  /// predecessor's — or the eviction base — plus its own sum). Throws
  /// AuditError on corruption. Called automatically after every add_frame
  /// in RUSH_AUDIT builds.
  void audit_invariants() const;

 private:
  friend struct AuditTestPeer;
  struct Frame {
    sim::Time t;
    std::uint32_t corrupt_values = 0;    // readings quarantined at ingest
    std::vector<float> values;           // managed x counters, node-major
    std::vector<float> all_min, all_max;  // per counter
    std::vector<double> all_sum;          // per counter (for exact means)
    std::vector<double> prefix_sum;       // per counter, cumulative all_sum
                                          // over every frame ever added up
                                          // to and including this one
  };

  [[nodiscard]] std::size_t node_index(cluster::NodeId node) const;
  /// [first, last) deque indices of frames with t in [t0, t1].
  [[nodiscard]] std::pair<std::size_t, std::size_t> window_bounds(sim::Time t0,
                                                                  sim::Time t1) const noexcept;

  cluster::NodeSet managed_;
  std::size_t num_counters_;
  std::size_t capacity_frames_;
  std::uint64_t revision_ = 0;
  std::deque<Frame> frames_;
  /// prefix_sum of the most recently evicted frame (zeros before any
  /// eviction): the base the front frame's prefix chains from.
  std::vector<double> evicted_prefix_;
  /// Node-index scratch for aggregate_nodes_into: grows to the largest
  /// query's node count once, then steady-state allocation-free.
  mutable std::vector<std::size_t> node_idx_scratch_;
};

}  // namespace rush::telemetry
