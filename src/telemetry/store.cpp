#include "telemetry/store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/audit.hpp"
#include "common/error.hpp"

namespace rush::telemetry {

CounterStore::CounterStore(cluster::NodeSet managed, std::size_t num_counters,
                           std::size_t capacity_frames)
    : managed_(std::move(managed)), num_counters_(num_counters),
      capacity_frames_(capacity_frames) {
  RUSH_EXPECTS(!managed_.empty());
  RUSH_EXPECTS(std::is_sorted(managed_.begin(), managed_.end()));
  RUSH_EXPECTS(num_counters_ > 0);
  RUSH_EXPECTS(capacity_frames_ > 0);
  evicted_prefix_.assign(num_counters_, 0.0);
}

std::size_t CounterStore::node_index(cluster::NodeId node) const {
  const auto it = std::lower_bound(managed_.begin(), managed_.end(), node);
  RUSH_EXPECTS(it != managed_.end() && *it == node);
  return static_cast<std::size_t>(it - managed_.begin());
}

std::pair<std::size_t, std::size_t> CounterStore::window_bounds(sim::Time t0,
                                                                sim::Time t1) const noexcept {
  // Timestamps are non-decreasing (add_frame precondition), so the window
  // is a contiguous run found by binary search.
  const auto lo = std::lower_bound(frames_.begin(), frames_.end(), t0,
                                   [](const Frame& f, sim::Time v) { return f.t < v; });
  const auto hi = std::upper_bound(lo, frames_.end(), t1,
                                   [](sim::Time v, const Frame& f) { return v < f.t; });
  return {static_cast<std::size_t>(lo - frames_.begin()),
          static_cast<std::size_t>(hi - frames_.begin())};
}

void CounterStore::add_frame(sim::Time t, std::span<const float> values) {
  RUSH_EXPECTS(values.size() == managed_.size() * num_counters_);
  RUSH_EXPECTS(frames_.empty() || t >= frames_.back().t);

  Frame frame;
  frame.t = t;
  // Quarantine non-finite readings at ingest: store 0 and count them, so
  // every aggregate below (and the prefix-sum chain the audit checks)
  // stays finite while the corruption remains visible to
  // corrupt_frames_in() consumers.
  frame.values.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float v = values[i];
    if (std::isfinite(v)) {
      frame.values[i] = v;
    } else {
      frame.values[i] = 0.0f;
      ++frame.corrupt_values;
    }
  }
  frame.all_min.assign(num_counters_, std::numeric_limits<float>::max());
  frame.all_max.assign(num_counters_, std::numeric_limits<float>::lowest());
  frame.all_sum.assign(num_counters_, 0.0);
  const float* row = frame.values.data();
  for (std::size_t n = 0; n < managed_.size(); ++n, row += num_counters_) {
    for (std::size_t c = 0; c < num_counters_; ++c) {
      const float v = row[c];
      frame.all_min[c] = std::min(frame.all_min[c], v);
      frame.all_max[c] = std::max(frame.all_max[c], v);
      frame.all_sum[c] += static_cast<double>(v);
    }
  }
  const std::vector<double>& base =
      frames_.empty() ? evicted_prefix_ : frames_.back().prefix_sum;
  frame.prefix_sum.resize(num_counters_);
  for (std::size_t c = 0; c < num_counters_; ++c)
    frame.prefix_sum[c] = base[c] + frame.all_sum[c];
  frames_.push_back(std::move(frame));
  while (frames_.size() > capacity_frames_) {
    evicted_prefix_ = std::move(frames_.front().prefix_sum);
    frames_.pop_front();
  }
  ++revision_;
  RUSH_AUDIT_HOOK(audit_invariants());
}

void CounterStore::audit_invariants() const {
  RUSH_AUDIT_CHECK(frames_.size() <= capacity_frames_, "eviction fell behind");
  RUSH_AUDIT_CHECK(evicted_prefix_.size() == num_counters_, "eviction base shape");
  const Frame* prev = nullptr;
  for (const Frame& f : frames_) {
    if (prev != nullptr) {
      RUSH_AUDIT_CHECK(prev->t <= f.t, "frame at t=" + std::to_string(f.t) +
                                           " behind predecessor t=" + std::to_string(prev->t));
    }
    RUSH_AUDIT_CHECK(f.values.size() == managed_.size() * num_counters_, "frame shape");
    RUSH_AUDIT_CHECK(f.all_min.size() == num_counters_ && f.all_max.size() == num_counters_ &&
                         f.all_sum.size() == num_counters_ && f.prefix_sum.size() == num_counters_,
                     "aggregate shape");
    // Prefix chain: each frame extends its predecessor (or the eviction
    // base) by exactly its own per-counter sums.
    const std::vector<double>& base = prev != nullptr ? prev->prefix_sum : evicted_prefix_;
    for (std::size_t c = 0; c < num_counters_; ++c) {
      const double expect = base[c] + f.all_sum[c];
      const double tol = 1e-9 * std::max(1.0, std::abs(expect));
      RUSH_AUDIT_CHECK(std::abs(f.prefix_sum[c] - expect) <= tol,
                       "broken prefix chain for counter " + std::to_string(c) + " at t=" +
                           std::to_string(f.t));
    }
    prev = &f;
  }
  if (frames_.empty()) return;
  // Recomputing aggregates for every frame on every hook would be
  // quadratic; older frames were audited when they were newest.
  const Frame& f = frames_.back();
  for (std::size_t c = 0; c < num_counters_; ++c) {
    float mn = std::numeric_limits<float>::max();
    float mx = std::numeric_limits<float>::lowest();
    double sum = 0.0;
    for (std::size_t n = 0; n < managed_.size(); ++n) {
      const float v = f.values[n * num_counters_ + c];
      // Ingest quarantine replaces non-finite readings, so stored values
      // are finite by construction.
      RUSH_AUDIT_CHECK(std::isfinite(v), "non-finite stored value escaped ingest quarantine");
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      sum += static_cast<double>(v);
    }
    RUSH_AUDIT_CHECK(f.all_min[c] == mn && f.all_max[c] == mx,
                     "stale min/max aggregate for counter " + std::to_string(c));
    const double tol = 1e-9 * std::max(1.0, std::abs(sum));
    RUSH_AUDIT_CHECK(std::abs(f.all_sum[c] - sum) <= tol,
                     "stale sum aggregate for counter " + std::to_string(c));
  }
}

std::size_t CounterStore::frames_in(sim::Time t0, sim::Time t1) const noexcept {
  const auto [lo, hi] = window_bounds(t0, t1);
  return hi - lo;
}

sim::Time CounterStore::latest_time() const {
  RUSH_EXPECTS(!frames_.empty());
  return frames_.back().t;
}

std::size_t CounterStore::corrupt_frames_in(sim::Time t0, sim::Time t1) const noexcept {
  const auto [lo, hi] = window_bounds(t0, t1);
  std::size_t count = 0;
  for (std::size_t fi = lo; fi < hi; ++fi)
    if (frames_[fi].corrupt_values > 0) ++count;
  return count;
}

std::vector<Agg> CounterStore::aggregate_nodes(sim::Time t0, sim::Time t1,
                                               const cluster::NodeSet& nodes) const {
  std::vector<Agg> out(num_counters_);
  aggregate_nodes_into(t0, t1, nodes, out);
  return out;
}

// rush: noalloc
void CounterStore::aggregate_nodes_into(sim::Time t0, sim::Time t1,
                                        const cluster::NodeSet& nodes,
                                        std::span<Agg> out) const {
  RUSH_EXPECTS(out.size() == num_counters_);
  node_idx_scratch_.clear();
  node_idx_scratch_.reserve(nodes.size());
  for (cluster::NodeId n : nodes) node_idx_scratch_.push_back(node_index(n));
  const std::vector<std::size_t>& idx = node_idx_scratch_;

  const auto [lo, hi] = window_bounds(t0, t1);
  const std::size_t samples = hi - lo;
  if (samples == 0 || idx.empty()) {
    std::fill(out.begin(), out.end(), Agg{});
    return;
  }

  // Accumulate straight into the output fields: min/max in place, the
  // running sum parked in `.mean` until the final division.
  for (Agg& a : out)
    a = Agg{std::numeric_limits<double>::max(), std::numeric_limits<double>::lowest(), 0.0};
  for (std::size_t fi = lo; fi < hi; ++fi) {
    const Frame& f = frames_[fi];
    for (const std::size_t ni : idx) {
      const float* row = f.values.data() + ni * num_counters_;
      for (std::size_t c = 0; c < num_counters_; ++c) {
        const double v = static_cast<double>(row[c]);
        out[c].min = std::min(out[c].min, v);
        out[c].max = std::max(out[c].max, v);
        out[c].mean += v;
      }
    }
  }
  const double denom = static_cast<double>(samples) * static_cast<double>(idx.size());
  for (Agg& a : out) a.mean /= denom;
}

std::vector<Agg> CounterStore::aggregate_all(sim::Time t0, sim::Time t1) const {
  std::vector<Agg> out(num_counters_);
  aggregate_all_into(t0, t1, out);
  return out;
}

// rush: noalloc
void CounterStore::aggregate_all_into(sim::Time t0, sim::Time t1, std::span<Agg> out) const {
  RUSH_EXPECTS(out.size() == num_counters_);
  const auto [lo, hi] = window_bounds(t0, t1);
  const std::size_t samples = hi - lo;
  if (samples == 0) {
    std::fill(out.begin(), out.end(), Agg{});
    return;
  }

  // Sums come from the running prefixes in O(counters); min/max are not
  // prefix-decomposable, so they merge the per-frame aggregates of just
  // the frames inside the window.
  for (Agg& a : out)
    a = Agg{std::numeric_limits<double>::max(), std::numeric_limits<double>::lowest(), 0.0};
  for (std::size_t fi = lo; fi < hi; ++fi) {
    const Frame& f = frames_[fi];
    for (std::size_t c = 0; c < num_counters_; ++c) {
      out[c].min = std::min(out[c].min, static_cast<double>(f.all_min[c]));
      out[c].max = std::max(out[c].max, static_cast<double>(f.all_max[c]));
    }
  }
  const std::vector<double>& base =
      lo == 0 ? evicted_prefix_ : frames_[lo - 1].prefix_sum;
  const double denom = static_cast<double>(samples) * static_cast<double>(managed_.size());
  for (std::size_t c = 0; c < num_counters_; ++c)
    out[c].mean = (frames_[hi - 1].prefix_sum[c] - base[c]) / denom;
}

double CounterStore::latest(cluster::NodeId node, std::size_t counter) const {
  RUSH_EXPECTS(counter < num_counters_);
  if (frames_.empty()) return 0.0;
  const Frame& f = frames_.back();
  return static_cast<double>(f.values[node_index(node) * num_counters_ + counter]);
}

void CounterStore::clear() {
  frames_.clear();
  evicted_prefix_.assign(num_counters_, 0.0);
  ++revision_;
}

}  // namespace rush::telemetry
