#include "telemetry/canary.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace rush::telemetry {

MpiCanary::MpiCanary(const cluster::NetworkModel& net, CanaryConfig config, Rng rng)
    : net_(net), config_(config), rng_(rng) {
  RUSH_EXPECTS(config_.message_mb > 0.0);
  RUSH_EXPECTS(config_.ring_iterations > 0);
  RUSH_EXPECTS(config_.allreduce_iterations > 0);
  RUSH_EXPECTS(config_.probe_gbps > 0.0);
}

std::array<double, 9> CanaryResult::features() const {
  auto agg = [](const std::vector<double>& v, std::array<double, 9>& out, std::size_t base) {
    out[base + 0] = stats::min(v);
    out[base + 1] = stats::max(v);
    out[base + 2] = stats::mean(v);
  };
  std::array<double, 9> out{};
  agg(send_wait_s, out, 0);
  agg(recv_wait_s, out, 3);
  agg(allreduce_wait_s, out, 6);
  return out;
}

CanaryResult MpiCanary::run(const cluster::NodeSet& nodes) {
  CanaryResult result;
  run_into(nodes, result);
  return result;
}

// rush: noalloc
void MpiCanary::run_into(const cluster::NodeSet& nodes, CanaryResult& result) {
  RUSH_EXPECTS(!nodes.empty());
  const std::size_t n = nodes.size();
  result.send_wait_s.assign(n, 0.0);
  result.recv_wait_s.assign(n, 0.0);
  result.allreduce_wait_s.assign(n, 0.0);
  if (n < 2) return;

  const double message_gb = config_.message_mb / 1000.0;
  const double link_gbps = net_.tree().config().node_link_gbps;

  // Ring: the token crosses every node once per iteration; each node's
  // send blocks for (message / effective bandwidth) per iteration.
  const double ring_slow =
      net_.probe_slowdown(nodes, config_.probe_gbps, cluster::TrafficPattern::Ring);
  const double ring_hop_s = message_gb / (link_gbps / ring_slow);

  // AllReduce (ring algorithm): each node moves ~2*(n-1)/n message sizes.
  const double ar_slow =
      net_.probe_slowdown(nodes, config_.probe_gbps, cluster::TrafficPattern::AllToAll);
  const double ar_volume_gb = 2.0 * message_gb * static_cast<double>(n - 1) /
                              static_cast<double>(n);
  const double ar_iter_s = ar_volume_gb / (link_gbps / ar_slow);

  for (std::size_t i = 0; i < n; ++i) {
    const double j_send = std::max(0.1, 1.0 + config_.jitter * rng_.normal());
    const double j_recv = std::max(0.1, 1.0 + config_.jitter * rng_.normal());
    const double j_ar = std::max(0.1, 1.0 + config_.jitter * rng_.normal());
    result.send_wait_s[i] = config_.ring_iterations * ring_hop_s * j_send;
    // A ring receive waits for the whole upstream chain on the first
    // iteration, so receive waits run slightly longer than sends.
    result.recv_wait_s[i] = config_.ring_iterations * ring_hop_s * 1.15 * j_recv;
    result.allreduce_wait_s[i] = config_.allreduce_iterations * ar_iter_s * j_ar;
  }
}

}  // namespace rush::telemetry
