#include "telemetry/features.hpp"

#include <limits>

#include "common/error.hpp"
#include "telemetry/schema.hpp"

namespace rush::telemetry {

const char* workload_class_name(WorkloadClass cls) noexcept {
  switch (cls) {
    case WorkloadClass::Compute:
      return "compute";
    case WorkloadClass::Network:
      return "network";
    case WorkloadClass::Io:
      return "io";
  }
  return "?";
}

FeatureAssembler::FeatureAssembler(const CounterStore& store, double window_s)
    : store_(store), window_s_(window_s) {
  RUSH_EXPECTS(window_s_ > 0.0);
  RUSH_EXPECTS(store_.num_counters() * 3 == kCounterFeatures);
}

const std::vector<std::string>& FeatureAssembler::feature_names() {
  // The schema is fixed at compile time, so the ~300 string builds only
  // need to happen on the first call.
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    out.reserve(kNumFeatures);
    for (const CounterDef& def : counter_schema()) {
      const std::string q = qualified_name(def);
      out.push_back("min_" + q);
      out.push_back("max_" + q);
      out.push_back("mean_" + q);
    }
    for (const char* bench : {"send", "recv", "allreduce"}) {
      for (const char* agg : {"min", "max", "mean"}) {
        out.push_back(std::string("canary_") + bench + "_" + agg);
      }
    }
    out.emplace_back("class_compute");
    out.emplace_back("class_network");
    out.emplace_back("class_io");
    RUSH_ASSERT(out.size() == kNumFeatures);
    return out;
  }();
  return names;
}

std::vector<double> FeatureAssembler::assemble(sim::Time now, AggregationScope scope,
                                               const cluster::NodeSet& job_nodes,
                                               const CanaryResult& canary,
                                               WorkloadClass cls) const {
  std::vector<double> out(kNumFeatures);
  std::vector<Agg> agg_scratch(store_.num_counters());
  assemble_into(now, scope, job_nodes, canary, cls, out, agg_scratch);
  return out;
}

// rush: noalloc
void FeatureAssembler::assemble_into(sim::Time now, AggregationScope scope,
                                     const cluster::NodeSet& job_nodes,
                                     const CanaryResult& canary, WorkloadClass cls,
                                     std::span<double> out, std::span<Agg> agg_scratch) const {
  RUSH_EXPECTS(out.size() == kNumFeatures);
  counters_into(now, scope, job_nodes, out.first(kCounterFeatures), agg_scratch);
  tail_into(canary, cls, out.subspan(kCounterFeatures));
}

void FeatureAssembler::counters_into(sim::Time now, AggregationScope scope,
                                     const cluster::NodeSet& job_nodes, std::span<double> out,
                                     std::span<Agg> agg_scratch) const {
  RUSH_EXPECTS(out.size() == kCounterFeatures);
  RUSH_EXPECTS(agg_scratch.size() == store_.num_counters());
  const sim::Time t0 = now - window_s_;
  if (scope == AggregationScope::AllNodes) {
    store_.aggregate_all_into(t0, now, agg_scratch);
  } else {
    store_.aggregate_nodes_into(t0, now, job_nodes, agg_scratch);
  }
  std::size_t i = 0;
  for (const Agg& a : agg_scratch) {
    out[i++] = a.min;
    out[i++] = a.max;
    out[i++] = a.mean;
  }
}

StalenessReport FeatureAssembler::staleness(sim::Time now) const noexcept {
  StalenessReport report;
  if (store_.frame_count() == 0) {
    report.newest_frame_age_s = std::numeric_limits<double>::infinity();
    return report;
  }
  const sim::Time t0 = now - window_s_;
  report.newest_frame_age_s = now - store_.latest_time();
  report.frames_in_window = store_.frames_in(t0, now);
  report.corrupt_frames_in_window = store_.corrupt_frames_in(t0, now);
  return report;
}

void FeatureAssembler::tail_into(const CanaryResult& canary, WorkloadClass cls,
                                 std::span<double> out) {
  RUSH_EXPECTS(out.size() == kCanaryFeatures + kClassFeatures);
  std::size_t i = 0;
  for (double f : canary.features()) out[i++] = f;
  out[i++] = cls == WorkloadClass::Compute ? 1.0 : 0.0;
  out[i++] = cls == WorkloadClass::Network ? 1.0 : 0.0;
  out[i++] = cls == WorkloadClass::Io ? 1.0 : 0.0;
}

}  // namespace rush::telemetry
