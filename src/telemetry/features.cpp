#include "telemetry/features.hpp"

#include "common/error.hpp"
#include "telemetry/schema.hpp"

namespace rush::telemetry {

const char* workload_class_name(WorkloadClass cls) noexcept {
  switch (cls) {
    case WorkloadClass::Compute:
      return "compute";
    case WorkloadClass::Network:
      return "network";
    case WorkloadClass::Io:
      return "io";
  }
  return "?";
}

FeatureAssembler::FeatureAssembler(const CounterStore& store, double window_s)
    : store_(store), window_s_(window_s) {
  RUSH_EXPECTS(window_s_ > 0.0);
  RUSH_EXPECTS(store_.num_counters() * 3 == kCounterFeatures);
}

std::vector<std::string> FeatureAssembler::feature_names() {
  std::vector<std::string> names;
  names.reserve(kNumFeatures);
  for (const CounterDef& def : counter_schema()) {
    const std::string q = qualified_name(def);
    names.push_back("min_" + q);
    names.push_back("max_" + q);
    names.push_back("mean_" + q);
  }
  for (const char* bench : {"send", "recv", "allreduce"}) {
    for (const char* agg : {"min", "max", "mean"}) {
      names.push_back(std::string("canary_") + bench + "_" + agg);
    }
  }
  names.emplace_back("class_compute");
  names.emplace_back("class_network");
  names.emplace_back("class_io");
  RUSH_ASSERT(names.size() == kNumFeatures);
  return names;
}

std::vector<double> FeatureAssembler::assemble(sim::Time now, AggregationScope scope,
                                               const cluster::NodeSet& job_nodes,
                                               const CanaryResult& canary,
                                               WorkloadClass cls) const {
  const sim::Time t0 = now - window_s_;
  const std::vector<Agg> aggs = scope == AggregationScope::AllNodes
                                    ? store_.aggregate_all(t0, now)
                                    : store_.aggregate_nodes(t0, now, job_nodes);

  std::vector<double> out;
  out.reserve(kNumFeatures);
  for (const Agg& a : aggs) {
    out.push_back(a.min);
    out.push_back(a.max);
    out.push_back(a.mean);
  }
  for (double f : canary.features()) out.push_back(f);
  out.push_back(cls == WorkloadClass::Compute ? 1.0 : 0.0);
  out.push_back(cls == WorkloadClass::Network ? 1.0 : 0.0);
  out.push_back(cls == WorkloadClass::Io ? 1.0 : 0.0);
  RUSH_ASSERT(out.size() == kNumFeatures);
  return out;
}

}  // namespace rush::telemetry
