#include "telemetry/sampler.hpp"

#include "common/error.hpp"
#include "telemetry/schema.hpp"

namespace rush::telemetry {

CounterSampler::CounterSampler(sim::Engine& engine, const cluster::NetworkModel& net,
                               const cluster::LustreModel& lustre, CounterStore& store,
                               SamplerConfig config, Rng rng)
    : engine_(engine), net_(net), lustre_(lustre), store_(store), config_(config), rng_(rng) {
  RUSH_EXPECTS(config_.period_s > 0.0);
  RUSH_EXPECTS(store_.num_counters() == num_counters());
  scratch_.resize(store_.managed_nodes().size() * store_.num_counters());
}

void CounterSampler::start() {
  if (running_) return;
  running_ = true;
  task_ = engine_.schedule_periodic(engine_.now(), config_.period_s, [this] { sample_now(); });
}

void CounterSampler::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(task_);
}

void CounterSampler::sample_now() {
  const auto schema = counter_schema();
  const auto& tree = net_.tree();
  const auto& nodes = store_.managed_nodes();
  const double io_pressure = lustre_.slowdown() - 1.0;

  float* out = scratch_.data();
  for (cluster::NodeId node : nodes) {
    NodeSignals s;
    s.xmit_gbps = net_.node_xmit_gbps(node);
    s.recv_gbps = net_.node_recv_gbps(node);
    s.edge_util = net_.link_utilization(tree.edge_uplink(tree.edge_of(node)));
    s.pod_util = net_.link_utilization(tree.pod_uplink(tree.pod_of(node)));
    s.io_read_gbps = lustre_.node_read_gbps(node);
    s.io_write_gbps = lustre_.node_write_gbps(node);
    s.io_pressure = io_pressure;
    for (const CounterDef& def : schema)
      *out++ = static_cast<float>(synth_value(def, s, rng_));
  }
  store_.add_frame(engine_.now(), scratch_);
}

}  // namespace rush::telemetry
