#include "telemetry/sampler.hpp"

#include <utility>

#include "common/error.hpp"
#include "sim/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/schema.hpp"

namespace rush::telemetry {

CounterSampler::CounterSampler(sim::Engine& engine, const cluster::NetworkModel& net,
                               const cluster::LustreModel& lustre, CounterStore& store,
                               SamplerConfig config, Rng rng)
    : engine_(engine), net_(net), lustre_(lustre), store_(store), config_(config), rng_(rng) {
  RUSH_EXPECTS(config_.period_s > 0.0);
  RUSH_EXPECTS(store_.num_counters() == num_counters());
  scratch_.resize(store_.managed_nodes().size() * store_.num_counters());
}

void CounterSampler::start() {
  if (running_) return;
  running_ = true;
  task_ = engine_.schedule_periodic(engine_.now(), config_.period_s, [this] { sample_now(); });
}

void CounterSampler::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(task_);
}

void CounterSampler::set_obs(obs::EventTrace* trace, obs::MetricsRegistry* metrics) {
  trace_ = trace;
  metric_worst_util_ =
      metrics ? &metrics->histogram("telemetry.max_link_util", 0.0, 2.0, 40) : nullptr;
}

// rush-analyze: allow(missing-expects) empty hooks detach
void CounterSampler::set_fault_hooks(FrameDropFilter drop, FrameCorruptFn corrupt) {
  drop_filter_ = std::move(drop);
  corrupt_fn_ = std::move(corrupt);
}

void CounterSampler::sample_now() {
  // A dropped frame never synthesizes: the daemon was down, so its RNG
  // draws never happen and the store keeps a gap for this tick.
  if (drop_filter_ && drop_filter_(engine_.now())) return;
  const auto schema = counter_schema();
  const auto& tree = net_.tree();
  const auto& nodes = store_.managed_nodes();
  const double io_pressure = lustre_.slowdown() - 1.0;

  // Worst fabric utilization this frame and the link responsible — the
  // signal behind max-congestion episode records.
  double worst_util = 0.0;
  cluster::LinkId worst_link = -1;

  float* out = scratch_.data();
  for (cluster::NodeId node : nodes) {
    NodeSignals s;
    const cluster::LinkId edge_link = tree.edge_uplink(tree.edge_of(node));
    const cluster::LinkId pod_link = tree.pod_uplink(tree.pod_of(node));
    s.xmit_gbps = net_.node_xmit_gbps(node);
    s.recv_gbps = net_.node_recv_gbps(node);
    s.edge_util = net_.link_utilization(edge_link);
    s.pod_util = net_.link_utilization(pod_link);
    if (s.edge_util > worst_util) {
      worst_util = s.edge_util;
      worst_link = edge_link;
    }
    if (s.pod_util > worst_util) {
      worst_util = s.pod_util;
      worst_link = pod_link;
    }
    s.io_read_gbps = lustre_.node_read_gbps(node);
    s.io_write_gbps = lustre_.node_write_gbps(node);
    s.io_pressure = io_pressure;
    for (const CounterDef& def : schema)
      *out++ = static_cast<float>(synth_value(def, s, rng_));
  }
  if (corrupt_fn_) corrupt_fn_(engine_.now(), nodes, std::span<float>(scratch_));
  store_.add_frame(engine_.now(), scratch_);

  if (metric_worst_util_) metric_worst_util_->record(worst_util);
  if (in_episode_) {
    if (worst_util > episode_peak_) {
      episode_peak_ = worst_util;
      episode_link_ = worst_link;
    }
    if (worst_util < config_.episode_util_threshold) {
      if (trace_)
        trace_->emit_congestion_episode(engine_.now(), episode_start_s_, episode_link_,
                                        episode_peak_);
      in_episode_ = false;
    }
  } else if (worst_util >= config_.episode_util_threshold) {
    in_episode_ = true;
    episode_start_s_ = engine_.now();
    episode_peak_ = worst_util;
    episode_link_ = worst_link;
  }
}

}  // namespace rush::telemetry
