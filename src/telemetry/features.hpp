// Feature assembly (paper §III-D, Table I).
//
// One sample = 282 features:
//   270  counter aggregates: min/max/mean of each of the 90 counters over
//        the aggregation window (5 minutes by default), reduced jointly
//        over time and nodes
//     9  MPI canary benchmark aggregates
//     3  workload-class one-hot (compute / network / I/O intensive)
//
// Two aggregation scopes are supported, mirroring the paper's comparison:
// over all managed nodes, or only over the nodes exclusive to the job.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "telemetry/canary.hpp"
#include "telemetry/store.hpp"

namespace rush::telemetry {

/// Coarse workload type, provided with each job (paper §III-B: one-hot
/// "compute, network, and I/O intensive").
enum class WorkloadClass : std::uint8_t { Compute, Network, Io };

const char* workload_class_name(WorkloadClass cls) noexcept;

enum class AggregationScope : std::uint8_t { AllNodes, JobNodes };

/// Health of the counter features at a point in time: how old the newest
/// telemetry frame is and how much of the aggregation window is present
/// and trustworthy. Consumed by degraded-mode logic (core::RushOracle)
/// to decide when counter features cannot be trusted.
struct StalenessReport {
  /// Age of the newest retained frame; +inf when the store is empty.
  double newest_frame_age_s = 0.0;
  /// Frames inside the look-back window [now - window_s, now].
  std::size_t frames_in_window = 0;
  /// Window frames that carried quarantined (non-finite) readings.
  std::size_t corrupt_frames_in_window = 0;
};

class FeatureAssembler {
 public:
  static constexpr std::size_t kCounterFeatures = 270;
  static constexpr std::size_t kCanaryFeatures = 9;
  static constexpr std::size_t kClassFeatures = 3;
  static constexpr std::size_t kNumFeatures =
      kCounterFeatures + kCanaryFeatures + kClassFeatures;  // 282

  /// `window_s` is the look-back duration for counter aggregation
  /// (5 minutes in the paper's training data).
  explicit FeatureAssembler(const CounterStore& store, double window_s = 300.0);

  /// Names for all 282 features, in assembly order
  /// ("min_sysclassib.port_xmit_data", ..., "canary_send_min", ...,
  ///  "class_compute", ...). Built once and cached (the schema is fixed
  ///  at compile time); callers that copied the returned vector still do.
  [[nodiscard]] static const std::vector<std::string>& feature_names();

  /// Build the feature vector for a job about to run on `job_nodes` at
  /// time `now`, given the canary results and the job's workload class.
  [[nodiscard]] std::vector<double> assemble(sim::Time now, AggregationScope scope,
                                             const cluster::NodeSet& job_nodes,
                                             const CanaryResult& canary,
                                             WorkloadClass cls) const;

  /// Same vector written into caller-owned storage: `out` has
  /// kNumFeatures entries, `agg_scratch` has store().num_counters()
  /// entries reused for the window aggregation.
  void assemble_into(sim::Time now, AggregationScope scope, const cluster::NodeSet& job_nodes,
                     const CanaryResult& canary, WorkloadClass cls, std::span<double> out,
                     std::span<Agg> agg_scratch) const;

  /// The 270 counter-aggregate features only (the cacheable prefix of an
  /// assembled vector): min/max/mean per counter into `out`.
  void counters_into(sim::Time now, AggregationScope scope, const cluster::NodeSet& job_nodes,
                     std::span<double> out, std::span<Agg> agg_scratch) const;

  /// The 12 trailing features (9 canary aggregates + 3-way class
  /// one-hot) into `out`.
  static void tail_into(const CanaryResult& canary, WorkloadClass cls, std::span<double> out);

  /// Staleness of the counter features as of `now` (see StalenessReport).
  [[nodiscard]] StalenessReport staleness(sim::Time now) const noexcept;

  [[nodiscard]] double window_s() const noexcept { return window_s_; }
  [[nodiscard]] const CounterStore& store() const noexcept { return store_; }

 private:
  const CounterStore& store_;
  double window_s_;
};

}  // namespace rush::telemetry
