// Simulated MPI canary benchmarks (paper §III-C).
//
// Right before a job is launched (and during data collection), two small
// MPI benchmarks are "run" on the candidate nodes: a ring send/recv that
// passes a 100 MB token for ten iterations, and an AllReduce on 100 MB of
// data for five iterations. mpiP-style per-node wait times on Send, Recv,
// and AllReduce are recorded; their min/max/mean over the nodes become
// nine features.
//
// The simulation computes wait times from the network model's current
// congestion along the probed nodes' links, plus per-node jitter. The
// probes are treated as instantaneous (they do not advance simulated time
// or inject lasting load) — a documented simplification, matching the
// paper's choice of message sizes "not enough to cause significant
// communication overhead".
#pragma once

#include <array>
#include <vector>

#include "cluster/network.hpp"
#include "common/rng.hpp"

namespace rush::telemetry {

struct CanaryConfig {
  double message_mb = 100.0;
  int ring_iterations = 10;
  int allreduce_iterations = 5;
  double probe_gbps = 0.8;  // transient per-node injection during the probe
  double jitter = 0.08;     // relative per-node noise
};

struct CanaryResult {
  std::vector<double> send_wait_s;       // per node
  std::vector<double> recv_wait_s;       // per node
  std::vector<double> allreduce_wait_s;  // per node

  /// [send min,max,mean, recv min,max,mean, allreduce min,max,mean]
  [[nodiscard]] std::array<double, 9> features() const;
};

class MpiCanary {
 public:
  MpiCanary(const cluster::NetworkModel& net, CanaryConfig config, Rng rng);

  /// Run both benchmarks on `nodes` (>= 2 nodes for meaningful traffic;
  /// a single node yields near-zero waits).
  [[nodiscard]] CanaryResult run(const cluster::NodeSet& nodes);
  /// Same probe written into caller-owned storage (vectors reuse their
  /// capacity); identical wait values and RNG draws as run().
  void run_into(const cluster::NodeSet& nodes, CanaryResult& out);

 private:
  const cluster::NetworkModel& net_;
  CanaryConfig config_;
  Rng rng_;
};

}  // namespace rush::telemetry
