// Proxy application performance models (paper §III-B).
//
// The seven proxy apps (Kripke, AMG, Laghos, SWFFT, PENNANT, sw4lite,
// LBANN) are modeled analytically: a base run time at a reference node
// count split into compute / network / I/O channels, per-node traffic
// rates, a communication pattern, scaling laws, and intrinsic run-to-run
// noise. Channel fractions and sensitivities are chosen so the per-app
// variation structure matches the paper's observations (Laghos and LBANN
// most variation-prone; Kripke and PENNANT mostly compute-bound).
#pragma once

#include <optional>
#include <span>
#include <string>

#include "cluster/network.hpp"
#include "telemetry/features.hpp"

namespace rush::apps {

struct AppProfile {
  std::string name;
  telemetry::WorkloadClass workload = telemetry::WorkloadClass::Compute;

  // Uncontended run time at `ref_nodes`, split by channel (fractions sum
  // to 1). The network/I-O channels stretch under contention.
  double base_runtime_s = 600.0;
  int ref_nodes = 16;
  double compute_frac = 0.7;
  double network_frac = 0.25;
  double io_frac = 0.05;

  // Resource demand while running.
  double net_gbps_per_node = 1.0;
  double io_gbps_per_node = 0.05;
  cluster::TrafficPattern pattern = cluster::TrafficPattern::NearestNeighbor;
  double io_read_fraction = 0.5;

  // Scaling laws (relative to ref_nodes).
  double serial_fraction = 0.05;   // Amdahl, strong scaling
  double comm_scale_exponent = 0.4;  // T_net multiplier: (n/ref)^exponent
  // Weak scaling: per-node work constant; communication still grows.
  double weak_comm_exponent = 0.5;

  // Intrinsic (non-contention) run-to-run noise: lognormal sigma.
  double noise_sigma = 0.015;
};

/// Channel durations for a specific node count and scaling mode.
struct ChannelTimes {
  double compute_s = 0.0;
  double network_s = 0.0;
  double io_s = 0.0;
  [[nodiscard]] double total() const noexcept { return compute_s + network_s + io_s; }
};

enum class ScalingMode : std::uint8_t { Strong, Weak };

/// Uncontended channel times when running on `nodes` nodes.
ChannelTimes scaled_channels(const AppProfile& app, int nodes, ScalingMode mode);

/// The seven-app catalog, fixed order (Kripke, AMG, Laghos, SWFFT,
/// PENNANT, sw4lite, LBANN).
std::span<const AppProfile> proxy_apps();

/// Look up an app by name; nullopt if unknown.
std::optional<AppProfile> find_app(const std::string& name);

/// Names in catalog order, convenient for reports.
std::vector<std::string> proxy_app_names();

}  // namespace rush::apps
