#include "apps/execution.hpp"

#include <algorithm>
#include <cmath>

#include "sim/engine.hpp"

#include "common/error.hpp"

namespace rush::apps {

ExecutionModel::ExecutionModel(sim::Engine& engine, cluster::NetworkModel& net,
                               cluster::LustreModel& lustre, ExecutionConfig config, Rng rng)
    : engine_(engine), net_(net), lustre_(lustre), config_(config), rng_(rng) {
  RUSH_EXPECTS(config_.reevaluate_period_s > 0.0);
  RUSH_EXPECTS(config_.os_noise >= 0.0);
}

ExecutionModel::~ExecutionModel() {
  // Deregister any still-running jobs' traffic so shared models owned by
  // a longer-lived scope are not left with dangling sources.
  for (auto& [id, job] : running_) {
    engine_.cancel(job.completion_event);
    if (net_.has_source(comm_source(id))) net_.remove_source(comm_source(id));
    if (net_.has_source(gateway_source(id))) net_.remove_source(gateway_source(id));
    if (lustre_.has_client(id)) lustre_.remove_client(id);
  }
  if (ticking_) engine_.cancel(tick_);
}

void ExecutionModel::start() {
  if (ticking_) return;
  ticking_ = true;
  tick_ = engine_.schedule_periodic(engine_.now() + config_.reevaluate_period_s,
                                    config_.reevaluate_period_s, [this] { reevaluate_all(); });
}

void ExecutionModel::stop() {
  if (!ticking_) return;
  ticking_ = false;
  engine_.cancel(tick_);
}

ExecutionModel::RunId ExecutionModel::launch(const AppProfile& app, cluster::NodeSet nodes,
                                             ScalingMode scaling, CompletionFn on_complete) {
  RUSH_EXPECTS(!nodes.empty());
  const RunId id = next_run_id_++;

  const ChannelTimes channels = scaled_channels(app, static_cast<int>(nodes.size()), scaling);
  const double base_total = channels.total();
  RUSH_ASSERT(base_total > 0.0);

  Running job;
  job.record.run_id = id;
  job.record.app = app.name;
  job.record.workload = app.workload;
  job.record.nodes = nodes;
  job.record.node_count = static_cast<int>(nodes.size());
  job.record.scaling = scaling;
  job.record.start_s = engine_.now();
  job.record.base_total_s = base_total;
  // Intrinsic (non-contention) run-to-run noise.
  job.record.uncontended_s = base_total * rng_.lognormal(0.0, app.noise_sigma);
  job.remaining_work = job.record.uncontended_s;
  job.last_update = engine_.now();
  job.fc = channels.compute_s / base_total;
  job.fn = channels.network_s / base_total;
  job.fio = channels.io_s / base_total;
  job.net_gbps = app.net_gbps_per_node;
  job.io_gbps = app.io_gbps_per_node;
  job.pattern = app.pattern;
  job.on_complete = std::move(on_complete);

  if (job.net_gbps > 0.0 && job.fn > 0.0)
    net_.add_source(comm_source(id), nodes, job.net_gbps * job.fn, job.pattern);
  if (job.io_gbps > 0.0 && job.fio > 0.0) {
    const double io_rate = job.io_gbps * job.fio;
    net_.add_source(gateway_source(id), nodes, io_rate, cluster::TrafficPattern::Gateway);
    lustre_.add_client(id, nodes, io_rate, app.io_read_fraction);
  }

  auto [it, inserted] = running_.emplace(id, std::move(job));
  RUSH_ASSERT(inserted);
  refresh(id, it->second);
  // The new job's traffic changed everyone else's contention.
  for (auto& [other_id, other] : running_)
    if (other_id != id) refresh(other_id, other);
  start();
  return id;
}

double ExecutionModel::current_rate(RunId id, const Running& job) const {
  double sn = 1.0;
  if (net_.has_source(comm_source(id))) sn = net_.slowdown(comm_source(id));
  double sio = 1.0;
  if (lustre_.has_client(id)) {
    sio = lustre_.slowdown();
    if (net_.has_source(gateway_source(id)))
      sio = std::max(sio, net_.slowdown(gateway_source(id)));
  }
  // Constant OS interference floor; per-run stochastic noise is already
  // baked into uncontended_s at launch.
  const double denom = job.fc + job.fn * sn + job.fio * sio + config_.os_noise;
  return 1.0 / denom;
}

void ExecutionModel::refresh(RunId id, Running& job) {
  const sim::Time now = engine_.now();
  const double elapsed = now - job.last_update;
  if (elapsed > 0.0) job.remaining_work = std::max(0.0, job.remaining_work - elapsed * job.rate);
  job.last_update = now;
  job.rate = current_rate(id, job);
  RUSH_ASSERT(job.rate > 0.0);

  if (job.completion_event != 0) engine_.cancel(job.completion_event);
  const sim::Time finish = now + job.remaining_work / job.rate;
  job.completion_event = engine_.schedule_at(finish, [this, id] { complete(id); });
}

void ExecutionModel::reevaluate_all() {
  for (auto& [id, job] : running_) refresh(id, job);
}

void ExecutionModel::abort(RunId id) {
  auto it = running_.find(id);
  RUSH_EXPECTS(it != running_.end());
  engine_.cancel(it->second.completion_event);
  running_.erase(it);

  if (net_.has_source(comm_source(id))) net_.remove_source(comm_source(id));
  if (net_.has_source(gateway_source(id))) net_.remove_source(gateway_source(id));
  if (lustre_.has_client(id)) lustre_.remove_client(id);

  // Survivors speed up now that the aborted job's traffic is gone.
  for (auto& [other_id, other] : running_) refresh(other_id, other);
  if (running_.empty()) stop();
}

sim::Time ExecutionModel::projected_end(RunId id) const {
  const auto it = running_.find(id);
  RUSH_EXPECTS(it != running_.end());
  const Running& job = it->second;
  const double done_since = (engine_.now() - job.last_update) * job.rate;
  const double remaining = std::max(0.0, job.remaining_work - done_since);
  return engine_.now() + remaining / job.rate;
}

void ExecutionModel::complete(RunId id) {
  auto it = running_.find(id);
  RUSH_ASSERT(it != running_.end());
  Running job = std::move(it->second);
  running_.erase(it);

  if (net_.has_source(comm_source(id))) net_.remove_source(comm_source(id));
  if (net_.has_source(gateway_source(id))) net_.remove_source(gateway_source(id));
  if (lustre_.has_client(id)) lustre_.remove_client(id);

  job.record.end_s = engine_.now();
  job.record.duration_s = job.record.end_s - job.record.start_s;

  // Remaining jobs speed up now that this one's traffic is gone.
  for (auto& [other_id, other] : running_) refresh(other_id, other);
  if (running_.empty()) stop();

  if (job.on_complete) job.on_complete(job.record);
}

}  // namespace rush::apps
