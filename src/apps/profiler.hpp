// Run records and their collection (the HPCToolkit/Hatchet stand-in).
//
// The paper profiles every control-job run and extracts the inclusive
// time of the main compute region; here the execution model reports one
// RunRecord per completed run and the Profiler accumulates them for
// labeling and reporting.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/profiles.hpp"
#include "cluster/topology.hpp"
#include "sim/types.hpp"

namespace rush::apps {

struct RunRecord {
  std::uint64_t run_id = 0;
  std::string app;
  telemetry::WorkloadClass workload = telemetry::WorkloadClass::Compute;
  cluster::NodeSet nodes;
  int node_count = 0;
  ScalingMode scaling = ScalingMode::Strong;
  sim::Time start_s = 0.0;
  sim::Time end_s = 0.0;
  double duration_s = 0.0;     // end - start (the measured "main region")
  double uncontended_s = 0.0;  // channel total incl. intrinsic noise
  double base_total_s = 0.0;   // channel total without noise

  /// Contention-induced inflation over the ideal run.
  [[nodiscard]] double slowdown() const noexcept {
    return uncontended_s > 0.0 ? duration_s / uncontended_s : 1.0;
  }
};

class Profiler {
 public:
  void record(RunRecord rec);

  [[nodiscard]] const std::vector<RunRecord>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t count() const noexcept { return records_.size(); }

  /// Durations of every run of one application, in record order.
  [[nodiscard]] std::vector<double> durations_for(const std::string& app) const;

  /// Distinct application names seen, in first-seen order.
  [[nodiscard]] std::vector<std::string> apps_seen() const;

  void clear();

 private:
  std::vector<RunRecord> records_;
};

}  // namespace rush::apps
