// The experiment noise job (paper §VI-A).
//
// "A noise job that runs on 1/16th of the nodes in the experiment that
// continuously sends variable amounts of all-to-all traffic on the
// network." The rate is re-drawn periodically from a uniform range, with
// occasional bursts toward the top of the range so congestion episodes
// come and go during an experiment.
#pragma once

#include "cluster/network.hpp"
#include "common/rng.hpp"
#include "sim/types.hpp"

namespace rush::apps {

struct NoiseConfig {
  double rate_lo_gbps = 0.5;
  double rate_hi_gbps = 12.0;
  double change_period_s = 60.0;
  /// Chance per redraw of entering a sustained burst episode. While
  /// bursting, the rate stays in the top quarter of the range for a
  /// lognormal-distributed duration. Episodes are long relative to a job
  /// run (~10 min vs ~5 min) — congestion visible at schedule time is
  /// what makes the prediction problem tractable, and persistence is
  /// what makes delaying a job worthwhile.
  double burst_start_probability = 0.02;
  double burst_mean_duration_s = 900.0;
};

class NoiseJob {
 public:
  /// `nodes` should be spread across edge switches (the experiment harness
  /// picks every k-th node) so the all-to-all traffic actually crosses
  /// shared uplinks.
  NoiseJob(sim::Engine& engine, cluster::NetworkModel& net, cluster::NodeSet nodes,
           NoiseConfig config, Rng rng);
  ~NoiseJob();

  NoiseJob(const NoiseJob&) = delete;
  NoiseJob& operator=(const NoiseJob&) = delete;

  void start();
  void stop();

  [[nodiscard]] double current_rate_gbps() const noexcept { return rate_; }
  [[nodiscard]] bool bursting() const noexcept { return burst_until_ > 0.0; }
  [[nodiscard]] const cluster::NodeSet& nodes() const noexcept { return nodes_; }

  /// Source id the noise traffic is registered under.
  static constexpr cluster::SourceId kSourceId = 1ULL << 62;

 private:
  void redraw();

  sim::Engine& engine_;
  cluster::NetworkModel& net_;
  cluster::NodeSet nodes_;
  NoiseConfig config_;
  Rng rng_;
  double rate_ = 0.0;
  sim::Time burst_until_ = 0.0;  // > 0 while a burst episode is active
  sim::EventId task_ = 0;
  bool running_ = false;
};

}  // namespace rush::apps
