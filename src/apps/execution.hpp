// Contention-aware job execution model.
//
// A running job's progress rate depends on the current state of the
// shared resources: with channel weights (fc, fn, fio) summing to 1 and
// instantaneous network / filesystem slowdowns Sn, Sio,
//
//   rate(t) = 1 / (fc + fn * Sn(t) + fio * Sio(t) + os_noise)
//
// Remaining work (measured in uncontended seconds) is integrated
// piecewise: whenever the running set changes — and on a periodic tick to
// capture background/noise level changes — each job's remaining work is
// advanced at the old rate and its completion event rescheduled at the
// new rate. The measured run time is therefore the uncontended time
// stretched by the congestion the job actually lived through, which is
// exactly the variation signal the paper's pipeline studies.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "apps/profiler.hpp"
#include "cluster/lustre.hpp"
#include "cluster/network.hpp"
#include "common/rng.hpp"
#include "sim/types.hpp"

namespace rush::apps {

struct ExecutionConfig {
  double reevaluate_period_s = 15.0;
  double os_noise = 0.004;  // scale of per-interval OS interference
};

class ExecutionModel {
 public:
  using RunId = std::uint64_t;
  using CompletionFn = std::function<void(const RunRecord&)>;

  ExecutionModel(sim::Engine& engine, cluster::NetworkModel& net, cluster::LustreModel& lustre,
                 ExecutionConfig config, Rng rng);
  ~ExecutionModel();

  ExecutionModel(const ExecutionModel&) = delete;
  ExecutionModel& operator=(const ExecutionModel&) = delete;

  /// Launch `app` on `nodes` now. `on_complete` fires (at most once) when
  /// the job finishes; it receives the filled RunRecord.
  RunId launch(const AppProfile& app, cluster::NodeSet nodes, ScalingMode scaling,
               CompletionFn on_complete);

  /// Kill a running job (a node died under it, see faults/): its traffic
  /// sources are deregistered, its completion event cancelled, and its
  /// `on_complete` never fires — the caller decides what happens to the
  /// job (the scheduler requeues it).
  void abort(RunId id);

  [[nodiscard]] std::size_t running_count() const noexcept { return running_.size(); }
  [[nodiscard]] bool is_running(RunId id) const noexcept { return running_.contains(id); }

  /// Expected completion time of a running job under *current* contention.
  [[nodiscard]] sim::Time projected_end(RunId id) const;

  /// Begin the periodic re-evaluation tick (idempotent). launch() starts
  /// it automatically.
  void start();
  void stop();

 private:
  struct Running {
    RunRecord record;
    double remaining_work = 0.0;  // uncontended seconds left
    sim::Time last_update = 0.0;
    double rate = 1.0;
    double fc = 1.0, fn = 0.0, fio = 0.0;
    double net_gbps = 0.0, io_gbps = 0.0;
    cluster::TrafficPattern pattern = cluster::TrafficPattern::NearestNeighbor;
    sim::EventId completion_event = 0;
    CompletionFn on_complete;
  };

  [[nodiscard]] static cluster::SourceId comm_source(RunId id) noexcept { return id; }
  [[nodiscard]] static cluster::SourceId gateway_source(RunId id) noexcept {
    return id | (1ULL << 63);
  }

  [[nodiscard]] double current_rate(RunId id, const Running& job) const;
  /// Advance work at the old rate, recompute the rate, reschedule completion.
  void refresh(RunId id, Running& job);
  void reevaluate_all();
  void complete(RunId id);

  sim::Engine& engine_;
  cluster::NetworkModel& net_;
  cluster::LustreModel& lustre_;
  ExecutionConfig config_;
  Rng rng_;
  RunId next_run_id_ = 1;
  std::unordered_map<RunId, Running> running_;
  sim::EventId tick_ = 0;
  bool ticking_ = false;
};

}  // namespace rush::apps
