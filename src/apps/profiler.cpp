#include "apps/profiler.hpp"

#include <algorithm>

namespace rush::apps {

void Profiler::record(RunRecord rec) { records_.push_back(std::move(rec)); }

std::vector<double> Profiler::durations_for(const std::string& app) const {
  std::vector<double> out;
  for (const RunRecord& r : records_)
    if (r.app == app) out.push_back(r.duration_s);
  return out;
}

std::vector<std::string> Profiler::apps_seen() const {
  std::vector<std::string> out;
  for (const RunRecord& r : records_)
    if (std::find(out.begin(), out.end(), r.app) == out.end()) out.push_back(r.app);
  return out;
}

void Profiler::clear() { records_.clear(); }

}  // namespace rush::apps
