#include "apps/noise.hpp"

#include <cmath>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace rush::apps {

NoiseJob::NoiseJob(sim::Engine& engine, cluster::NetworkModel& net, cluster::NodeSet nodes,
                   NoiseConfig config, Rng rng)
    : engine_(engine), net_(net), nodes_(std::move(nodes)), config_(config), rng_(rng) {
  RUSH_EXPECTS(nodes_.size() >= 2);
  RUSH_EXPECTS(config_.rate_lo_gbps >= 0.0);
  RUSH_EXPECTS(config_.rate_hi_gbps >= config_.rate_lo_gbps);
  RUSH_EXPECTS(config_.change_period_s > 0.0);
}

NoiseJob::~NoiseJob() { stop(); }

void NoiseJob::start() {
  if (running_) return;
  running_ = true;
  rate_ = rng_.uniform(config_.rate_lo_gbps, config_.rate_hi_gbps);
  net_.add_source(kSourceId, nodes_, rate_, cluster::TrafficPattern::AllToAll);
  task_ = engine_.schedule_periodic(engine_.now() + config_.change_period_s,
                                    config_.change_period_s, [this] { redraw(); });
}

void NoiseJob::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(task_);
  net_.remove_source(kSourceId);
}

void NoiseJob::redraw() {
  const sim::Time now = engine_.now();
  const double span = config_.rate_hi_gbps - config_.rate_lo_gbps;
  if (burst_until_ > 0.0 && now >= burst_until_) burst_until_ = 0.0;

  if (burst_until_ <= 0.0 && rng_.bernoulli(config_.burst_start_probability)) {
    const double sigma = 0.5;
    const double mu = std::log(config_.burst_mean_duration_s) - sigma * sigma / 2.0;
    burst_until_ = now + rng_.lognormal(mu, sigma);
  }

  if (burst_until_ > 0.0) {
    // Sustained episode in the top quarter of the range.
    rate_ = rng_.uniform(config_.rate_lo_gbps + 0.75 * span, config_.rate_hi_gbps);
  } else {
    // Calm: low half of the range.
    rate_ = rng_.uniform(config_.rate_lo_gbps, config_.rate_lo_gbps + 0.5 * span);
  }
  net_.set_rate(kSourceId, rate_);
}

}  // namespace rush::apps
