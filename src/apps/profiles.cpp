#include "apps/profiles.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"

namespace rush::apps {

namespace {

using WC = telemetry::WorkloadClass;
using TP = cluster::TrafficPattern;

AppProfile make(std::string name, WC cls, double base_s, double fc, double fn, double fio,
                double net_rate, double io_rate, TP pattern, double serial, double comm_exp,
                double weak_exp, double noise) {
  AppProfile p;
  p.name = std::move(name);
  p.workload = cls;
  p.base_runtime_s = base_s;
  p.compute_frac = fc;
  p.network_frac = fn;
  p.io_frac = fio;
  p.net_gbps_per_node = net_rate;
  p.io_gbps_per_node = io_rate;
  p.pattern = pattern;
  p.serial_fraction = serial;
  p.comm_scale_exponent = comm_exp;
  p.weak_comm_exponent = weak_exp;
  p.noise_sigma = noise;
  return p;
}

// Channel fractions and rates are tuned so the per-app variation ordering
// matches the paper's Figs. 1, 5, and 6: Laghos and LBANN most
// variation-prone, sw4lite close behind, Kripke and PENNANT mostly
// compute-bound with small spread.
const std::array<AppProfile, 7>& catalog() {
  static const std::array<AppProfile, 7> apps = {
      // name      class        base    fc    fn    fio   net  io    pattern             ser   cexp  wexp  noise
      make("Kripke", WC::Compute, 170.0, 0.80, 0.18, 0.02, 0.22, 0.02, TP::NearestNeighbor, 0.04, 0.30, 0.35, 0.012),
      make("AMG", WC::Network, 150.0, 0.52, 0.43, 0.05, 0.30, 0.03, TP::AllToAll, 0.08, 0.45, 0.55, 0.015),
      make("Laghos", WC::Network, 200.0, 0.42, 0.53, 0.05, 0.45, 0.03, TP::AllToAll, 0.10, 0.50, 0.60, 0.018),
      make("SWFFT", WC::Network, 140.0, 0.40, 0.55, 0.05, 0.38, 0.02, TP::AllToAll, 0.06, 0.55, 0.65, 0.015),
      make("PENNANT", WC::Compute, 160.0, 0.76, 0.21, 0.03, 0.20, 0.02, TP::NearestNeighbor, 0.05, 0.30, 0.35, 0.012),
      make("sw4lite", WC::Network, 190.0, 0.50, 0.35, 0.15, 0.35, 0.25, TP::NearestNeighbor, 0.07, 0.40, 0.45, 0.015),
      make("LBANN", WC::Io, 210.0, 0.45, 0.28, 0.27, 0.33, 0.50, TP::AllToAll, 0.09, 0.45, 0.50, 0.020),
  };
  return apps;
}

}  // namespace

std::span<const AppProfile> proxy_apps() { return catalog(); }

std::optional<AppProfile> find_app(const std::string& name) {
  for (const AppProfile& app : catalog())
    if (app.name == name) return app;
  return std::nullopt;
}

std::vector<std::string> proxy_app_names() {
  std::vector<std::string> names;
  names.reserve(catalog().size());
  for (const AppProfile& app : catalog()) names.push_back(app.name);
  return names;
}

ChannelTimes scaled_channels(const AppProfile& app, int nodes, ScalingMode mode) {
  RUSH_EXPECTS(nodes > 0);
  const double ratio = static_cast<double>(nodes) / static_cast<double>(app.ref_nodes);
  const double base_c = app.base_runtime_s * app.compute_frac;
  const double base_n = app.base_runtime_s * app.network_frac;
  const double base_io = app.base_runtime_s * app.io_frac;

  ChannelTimes t;
  switch (mode) {
    case ScalingMode::Strong:
      // Amdahl for compute; communication grows with node count.
      t.compute_s = base_c * (app.serial_fraction + (1.0 - app.serial_fraction) / ratio);
      t.network_s = base_n * std::pow(ratio, app.comm_scale_exponent);
      t.io_s = base_io / ratio;  // fixed total I/O volume spread over nodes
      break;
    case ScalingMode::Weak:
      // Per-node work constant; collectives still grow with node count.
      t.compute_s = base_c;
      t.network_s = base_n * std::pow(ratio, app.weak_comm_exponent);
      t.io_s = base_io;
      break;
  }
  return t;
}

}  // namespace rush::apps
