#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace rush {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }
double RunningStats::sample_stddev() const noexcept { return std::sqrt(sample_variance()); }
double RunningStats::min() const noexcept { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const noexcept { return n_ == 0 ? 0.0 : max_; }

namespace stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min(std::span<const double> xs) noexcept {
  double m = std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::min(m, x);
  return xs.empty() ? 0.0 : m;
}

double max(std::span<const double> xs) noexcept {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  return xs.empty() ? 0.0 : m;
}

double quantile(std::span<const double> xs, double q) {
  RUSH_EXPECTS(!xs.empty());
  RUSH_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v.front();
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double zscore(double x, std::span<const double> xs) noexcept {
  const double sd = sample_stddev(xs);
  if (sd <= 0.0) return 0.0;
  return (x - mean(xs)) / sd;
}

}  // namespace stats

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  RUSH_EXPECTS(hi > lo);
  RUSH_EXPECTS(bins > 0);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width);
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  RUSH_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  RUSH_EXPECTS(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  RUSH_EXPECTS(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = stats::min(xs);
  s.max = stats::max(xs);
  s.q1 = stats::quantile(xs, 0.25);
  s.median = stats::median(xs);
  s.q3 = stats::quantile(xs, 0.75);
  s.mean = stats::mean(xs);
  return s;
}

}  // namespace rush
