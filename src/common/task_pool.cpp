#include "common/task_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/error.hpp"

namespace rush {

namespace {
/// Set for the lifetime of every pool-owned thread; nested dispatches
/// check it to run inline instead of re-entering the queue.
thread_local bool t_pool_worker = false;
}  // namespace

/// One parallel_for_indexed dispatch. All fields are guarded by the
/// owning pool's mu_ — claiming under the lock keeps the bookkeeping
/// trivially race-free, and the per-index bodies this repo dispatches
/// (whole trials, tree fits, CV folds) dwarf a mutex acquisition.
struct TaskPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t claimed = 0;  // next index to hand out
  std::size_t done = 0;     // bodies that returned (or threw)
  bool aborted = false;     // first exception stops further claims
  std::exception_ptr error;

  [[nodiscard]] bool exhausted() const noexcept { return aborted || claimed >= n; }
  [[nodiscard]] bool finished() const noexcept { return exhausted() && done == claimed; }
};

TaskPool::TaskPool(int jobs) : jobs_(jobs) {
  RUSH_EXPECTS(jobs >= 1);
  threads_.reserve(static_cast<std::size_t>(jobs - 1));
  for (int i = 0; i < jobs - 1; ++i) threads_.emplace_back([this] { worker_loop(); });
}

TaskPool::~TaskPool() {
  {
    const std::scoped_lock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool TaskPool::on_worker_thread() noexcept { return t_pool_worker; }

int TaskPool::default_jobs() {
  if (const char* env = std::getenv("RUSH_JOBS"); env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed >= 1 ? static_cast<int>(parsed) : 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

void TaskPool::worker_loop() {
  t_pool_worker = true;
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    const std::shared_ptr<Batch> batch = queue_.front();
    work_on(batch, lock);
  }
}

void TaskPool::work_on(const std::shared_ptr<Batch>& batch, std::unique_lock<std::mutex>& lock) {
  while (!batch->exhausted()) {
    const std::size_t index = batch->claimed++;
    lock.unlock();
    std::exception_ptr err;
    try {
      (*batch->body)(index);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    ++batch->done;
    if (err) {
      if (!batch->error) batch->error = err;
      batch->aborted = true;
    }
  }
  // Retire the exhausted batch so idle workers move on to queued work
  // (or back to sleep) instead of respinning on it.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == batch) {
      queue_.erase(it);
      break;
    }
  }
  if (batch->finished()) done_cv_.notify_all();
}

void TaskPool::parallel_for_indexed(std::size_t n,
                                    const std::function<void(std::size_t)>& body) {
  RUSH_EXPECTS(body != nullptr);
  if (n == 0) return;
  if (jobs_ <= 1 || n == 1 || t_pool_worker) {
    // Serial pool, trivial batch, or nested dispatch from a worker: run
    // inline. Identical results by the independence contract.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->body = &body;
  std::unique_lock lock(mu_);
  queue_.push_back(batch);
  work_cv_.notify_all();
  work_on(batch, lock);  // the caller is a participant, not just a waiter
  done_cv_.wait(lock, [&] { return batch->finished(); });
  if (batch->error) {
    const std::exception_ptr err = batch->error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

namespace {

std::atomic<int> g_shared_jobs_request{0};  // 0 = use default_jobs()
std::atomic<bool> g_shared_pool_built{false};

}  // namespace

TaskPool& shared_pool() {
  static TaskPool pool = [] {
    g_shared_pool_built.store(true);
    const int requested = g_shared_jobs_request.load();
    return TaskPool(requested >= 1 ? requested : TaskPool::default_jobs());
  }();
  return pool;
}

void set_shared_jobs(int jobs) {
  RUSH_EXPECTS(jobs >= 1);
  if (g_shared_pool_built.load()) {
    RUSH_EXPECTS(shared_pool().jobs() == jobs);
    return;
  }
  g_shared_jobs_request.store(jobs);
}

void parallel_for_indexed(int jobs, std::size_t n,
                          const std::function<void(std::size_t)>& body) {
  if (jobs == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (jobs <= 0) {
    shared_pool().parallel_for_indexed(n, body);
    return;
  }
  TaskPool dedicated(jobs);
  dedicated.parallel_for_indexed(n, body);
}

}  // namespace rush
