// Fixed-width ASCII table rendering for bench/report output.
//
// The bench binaries print paper-style tables; this keeps their formatting
// consistent and testable.
#pragma once

#include <string>
#include <vector>

namespace rush {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with a fixed precision so report output is stable across platforms.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row. Must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Number formatting helpers for cell construction.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t r, std::size_t c) const;

  /// Renders with a header rule, e.g.
  ///   app     | runs | max (s)
  ///   --------+------+--------
  ///   Laghos  |   27 |  412.30
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rush
