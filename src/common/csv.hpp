// Minimal CSV writing/reading used to persist datasets and experiment
// results so external tooling (plotting scripts) can consume them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rush {

/// Streams rows of cells as RFC-4180-ish CSV (quotes cells containing
/// commas, quotes, or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);
  void write_numeric_row(const std::vector<double>& values, int precision = 9);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& os_;
};

/// Parses CSV text into rows of string cells. Handles quoted cells and
/// embedded commas/newlines; throws ParseError on unterminated quotes.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace rush
