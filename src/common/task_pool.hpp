// Deterministic task-pool parallelism (the repo's single concurrency
// entry point — rush_analyze's raw-thread rule keeps std::thread and
// OpenMP out of every other translation unit).
//
// A TaskPool is a fixed set of worker threads plus the calling thread.
// Its one primitive, parallel_for_indexed(n, body), runs body(i) exactly
// once for every i in [0, n) and returns when all of them finished. The
// determinism contract is structural, not temporal: bodies must be
// mutually independent — each writes only state owned by its own index
// (results[i]), and any randomness is drawn from seeds prepared *before*
// the dispatch (the pattern Forest::fit established). Under that
// contract the results are bit-identical for every worker count,
// including the inline serial path, because the same pure function runs
// over the same index set; only wall-clock changes.
//
// Nesting is safe and cheap: a parallel_for_indexed issued from inside a
// worker runs its loop inline on that worker (no new threads, no
// deadlock), so composed layers — experiments fanning out trials, trials
// fitting forests — degrade gracefully instead of oversubscribing.
//
// Exceptions: the first exception thrown by any body aborts the batch
// (indices not yet claimed are skipped) and is rethrown on the calling
// thread once in-flight bodies drain.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rush {

class TaskPool {
 public:
  /// A pool of `jobs` participants: jobs - 1 worker threads plus the
  /// thread that calls parallel_for_indexed. jobs == 1 spawns nothing
  /// and runs every dispatch inline (the strictly serial path).
  explicit TaskPool(int jobs);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total participants (worker threads + caller).
  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Run body(i) for every i in [0, n); returns once all completed.
  /// Deterministic under the independence contract above. Safe to call
  /// concurrently from several threads and from inside pool workers
  /// (nested dispatches run inline).
  void parallel_for_indexed(std::size_t n, const std::function<void(std::size_t)>& body);

  /// True on a thread owned by *any* TaskPool (used to inline nested
  /// dispatches).
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// Default parallelism: $RUSH_JOBS when set (clamped to >= 1), else
  /// std::thread::hardware_concurrency(), else 1.
  [[nodiscard]] static int default_jobs();

 private:
  struct Batch;

  void worker_loop();
  /// Claim-and-run loop shared by workers and the dispatching caller.
  /// `lock` holds mu_ on entry and exit.
  void work_on(const std::shared_ptr<Batch>& batch, std::unique_lock<std::mutex>& lock);

  int jobs_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stopping
  std::condition_variable done_cv_;  // dispatchers: batch finished
  // rush: guarded_by(mu_)
  std::deque<std::shared_ptr<Batch>> queue_;
  // rush: guarded_by(mu_)
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// The process-wide pool shared by layers with no jobs knob of their own
/// (ml tree fitting, cross-validation folds). Sized on first use:
/// set_shared_jobs() if called, else TaskPool::default_jobs().
TaskPool& shared_pool();

/// Fix the shared pool's size. Must run before the first shared_pool()
/// call (bench drivers invoke it while parsing --jobs); throws once the
/// pool exists with a different size.
void set_shared_jobs(int jobs);

/// Dispatch-by-policy helper used by layers with a jobs config field:
///   jobs == 1  -> inline serial loop (no pool, no threads)
///   jobs <= 0  -> the shared pool (RUSH_JOBS / hardware default)
///   jobs >  1  -> a dedicated pool of that width for this call, giving
///                 real concurrency even when the shared pool is narrow
///                 (differential and TSan tests rely on this).
void parallel_for_indexed(int jobs, std::size_t n,
                          const std::function<void(std::size_t)>& body);

}  // namespace rush
