#include "common/strings.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace rush::str {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' || s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

double to_double(std::string_view s) {
  const std::string tmp(trim(s));
  if (tmp.empty()) throw ParseError("empty numeric field");
  char* end = nullptr;
  const double v = std::strtod(tmp.c_str(), &end);
  if (end != tmp.c_str() + tmp.size()) throw ParseError("malformed double: '" + tmp + "'");
  return v;
}

long long to_int(std::string_view s) {
  const std::string tmp(trim(s));
  if (tmp.empty()) throw ParseError("empty integer field");
  char* end = nullptr;
  const long long v = std::strtoll(tmp.c_str(), &end, 10);
  if (end != tmp.c_str() + tmp.size()) throw ParseError("malformed integer: '" + tmp + "'");
  return v;
}

std::string format_duration(double seconds) {
  const bool negative = seconds < 0;
  double s = std::abs(seconds);
  const auto hours = static_cast<long long>(s / 3600.0);
  s -= static_cast<double>(hours) * 3600.0;
  const auto minutes = static_cast<long long>(s / 60.0);
  s -= static_cast<double>(minutes) * 60.0;
  char buf[96];
  if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldh%lldm%.0fs", negative ? "-" : "", hours, minutes, s);
  } else if (minutes > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldm%.1fs", negative ? "-" : "", minutes, s);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.2fs", negative ? "-" : "", s);
  }
  return buf;
}

}  // namespace rush::str
