#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace rush {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RUSH_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  RUSH_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  RUSH_EXPECTS(r < rows_.size());
  RUSH_EXPECTS(c < headers_.size());
  return rows_[r][c];
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << " | ";
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace rush
