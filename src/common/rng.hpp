// Deterministic random number generation.
//
// Every stochastic component in RUSH owns its own Rng stream, seeded from a
// master seed via split(). This keeps experiments bit-reproducible while
// letting components evolve independently (adding a draw in one component
// does not perturb another component's stream).
#pragma once

#include <cstdint>
#include <vector>

namespace rush {

/// xoshiro256** PRNG with splitmix64 seeding.
///
/// Satisfies UniformRandomBitGenerator so it can drive <random>
/// distributions, but the common draws are provided as members to keep
/// results stable across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Derive an independent child stream. Deterministic in (parent state, tag).
  [[nodiscard]] Rng split(std::uint64_t tag) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;
  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) noexcept;
  /// Poisson draw (Knuth for small means, normal approximation for large).
  std::uint64_t poisson(double mean) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rush
