#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rush {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t tag) noexcept {
  // Mix the tag with fresh output so children with distinct tags (or drawn
  // at distinct points in the parent stream) are independent.
  const std::uint64_t a = next();
  const std::uint64_t b = next();
  std::uint64_t mix = a ^ (tag * 0x9e3779b97f4a7c15ULL) ^ rotl(b, 23);
  return Rng(splitmix64(mix));
}

double Rng::uniform() noexcept {
  // 53-bit mantissa method: uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Lemire-style rejection-free-enough mapping; bias is negligible for the
  // ranges used here, but use rejection to keep draws exact.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large means, clamped at zero.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) noexcept {
  if (k > n) k = n;
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace rush
