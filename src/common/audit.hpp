// Runtime invariant auditing (layer 3 of the correctness harness).
//
// Each hot subsystem (sim/engine, cluster/allocator, cluster/network,
// telemetry/store) exposes an `audit_invariants()` method that re-derives
// its internal state from first principles and throws AuditError on any
// mismatch. The methods are always compiled (they are cold code and tests
// call them directly), but the automatic hooks on every mutation are only
// active when the build sets RUSH_AUDIT_ENABLED (CMake option RUSH_AUDIT,
// on in the asan-ubsan preset) — a RUSH_AUDIT=OFF build pays nothing.
#pragma once

#include <stdexcept>
#include <string>

namespace rush {

/// Thrown when a runtime audit finds corrupted internal state. Distinct
/// from InvariantError so tests can tell "auditor fired" apart from an
/// ordinary RUSH_ASSERT.
class AuditError : public std::logic_error {
 public:
  explicit AuditError(const std::string& what) : std::logic_error(what) {}
};

namespace audit {

/// True when mutation hooks run automatically (RUSH_AUDIT=ON build).
[[nodiscard]] constexpr bool enabled() noexcept {
#if defined(RUSH_AUDIT_ENABLED) && RUSH_AUDIT_ENABLED
  return true;
#else
  return false;
#endif
}

namespace detail {
[[noreturn]] inline void audit_failure(const char* check, const char* file, int line,
                                       const std::string& what) {
  std::string msg = std::string("audit failed: ") + check + " at " + file + ":" +
                    std::to_string(line);
  if (!what.empty()) msg += " (" + what + ")";
  throw AuditError(msg);
}
}  // namespace detail

}  // namespace audit
}  // namespace rush

/// Verify one audited condition; `detail` is any expression convertible to
/// std::string appended to the error message (pass "" when there is
/// nothing useful to add).
#define RUSH_AUDIT_CHECK(expr, msg) \
  ((expr) ? (void)0 : ::rush::audit::detail::audit_failure(#expr, __FILE__, __LINE__, (msg)))

/// Expands to `expr` in RUSH_AUDIT builds and to nothing otherwise. Used
/// to wire `audit_invariants()` into mutating paths at zero cost when off.
#if defined(RUSH_AUDIT_ENABLED) && RUSH_AUDIT_ENABLED
#define RUSH_AUDIT_HOOK(expr) ((void)(expr))
#else
#define RUSH_AUDIT_HOOK(expr) ((void)0)
#endif
