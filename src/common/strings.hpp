// Small string utilities shared across modules (no external deps).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rush::str {

std::vector<std::string> split(std::string_view s, char delim);
std::string join(const std::vector<std::string>& parts, std::string_view delim);
std::string_view trim(std::string_view s) noexcept;
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Strict numeric parses; throw ParseError on malformed input.
double to_double(std::string_view s);
long long to_int(std::string_view s);

/// "1h2m3s"-style duration rendering for report output (input in seconds).
std::string format_duration(double seconds);

}  // namespace rush::str
