// Streaming and batch statistics used throughout the telemetry, labeling,
// and reporting layers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rush {

/// Welford-style streaming accumulator for count/mean/variance/min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void clear() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  /// Mean of added values; 0 when empty.
  [[nodiscard]] double mean() const noexcept;
  /// Population variance; 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample (Bessel-corrected) variance; 0 when fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sample_stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers over a span of samples.
namespace stats {

double mean(std::span<const double> xs) noexcept;
double variance(std::span<const double> xs) noexcept;         // population
double sample_stddev(std::span<const double> xs) noexcept;    // Bessel-corrected
double min(std::span<const double> xs) noexcept;
double max(std::span<const double> xs) noexcept;
double median(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1]. Requires non-empty input.
double quantile(std::span<const double> xs, double q);

/// Z-score of x against the sample mean/stddev of xs. Returns 0 when the
/// spread is degenerate (stddev == 0).
double zscore(double x, std::span<const double> xs) noexcept;

}  // namespace stats

/// Fixed-bin histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Five-number summary plus mean, for box-plot style reporting (Figs. 6-8).
struct Summary {
  std::size_t n = 0;
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace rush
