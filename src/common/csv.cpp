#include "common/csv.hpp"

#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace rush {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::write_numeric_row(const std::vector<double>& values, int precision) {
  char buf[64];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os_ << ',';
    std::snprintf(buf, sizeof(buf), "%.*g", precision, values[i]);
    os_ << buf;
  }
  os_ << '\n';
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        cell_started = true;  // the next cell exists even if empty
        break;
      case '\n':
        end_row();
        break;
      case '\r':
        break;  // tolerate CRLF
      default:
        cell += ch;
        cell_started = true;
        break;
    }
  }
  if (in_quotes) throw ParseError("unterminated quoted CSV cell");
  if (cell_started || !cell.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace rush
