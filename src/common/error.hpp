// Error handling primitives shared across the RUSH libraries.
//
// The library follows the C++ Core Guidelines: preconditions are checked
// with RUSH_EXPECTS (throws on violation, so tests can assert on misuse)
// and internal invariants with RUSH_ASSERT.
#pragma once

#include <stdexcept>
#include <string>

namespace rush {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant does not hold (a library bug).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on malformed external input (serialized models, CSV, config).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void precondition_failure(const char* expr, const char* file, int line) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " + file + ":" +
                          std::to_string(line));
}
[[noreturn]] inline void invariant_failure(const char* expr, const char* file, int line) {
  throw InvariantError(std::string("invariant failed: ") + expr + " at " + file + ":" +
                       std::to_string(line));
}
}  // namespace detail

}  // namespace rush

#define RUSH_EXPECTS(expr) \
  ((expr) ? (void)0 : ::rush::detail::precondition_failure(#expr, __FILE__, __LINE__))
#define RUSH_ASSERT(expr) \
  ((expr) ? (void)0 : ::rush::detail::invariant_failure(#expr, __FILE__, __LINE__))
