#include "core/report.hpp"

#include "common/error.hpp"

namespace rush::core {

namespace {

bool match(const JobOutcome& job, int node_count_filter) {
  return node_count_filter == 0 || job.node_count == node_count_filter;
}

}  // namespace

std::map<std::string, double> mean_variation_runs(const std::vector<TrialResult>& trials,
                                                  const Labeler& labeler,
                                                  int node_count_filter) {
  RUSH_EXPECTS(!trials.empty());
  std::map<std::string, double> totals;
  for (const TrialResult& trial : trials) {
    for (const JobOutcome& job : trial.jobs) {
      if (!match(job, node_count_filter)) continue;
      totals.try_emplace(job.app, 0.0);
      if (labeler.knows_app(job.app) && labeler.is_variation(job.app, job.runtime_s))
        totals[job.app] += 1.0;
    }
  }
  for (auto& [app, total] : totals) total /= static_cast<double>(trials.size());
  return totals;
}

double mean_total_variation_runs(const std::vector<TrialResult>& trials, const Labeler& labeler,
                                 int node_count_filter) {
  double total = 0.0;
  for (const auto& [app, count] : mean_variation_runs(trials, labeler, node_count_filter))
    total += count;
  return total;
}

std::vector<double> runtimes_for(const std::vector<TrialResult>& trials, const std::string& app,
                                 int node_count_filter) {
  std::vector<double> out;
  for (const TrialResult& trial : trials)
    for (const JobOutcome& job : trial.jobs)
      if (job.app == app && match(job, node_count_filter)) out.push_back(job.runtime_s);
  return out;
}

std::map<std::string, Summary> runtime_summaries(const std::vector<TrialResult>& trials,
                                                 int node_count_filter) {
  std::map<std::string, std::vector<double>> pooled;
  for (const TrialResult& trial : trials)
    for (const JobOutcome& job : trial.jobs)
      if (match(job, node_count_filter)) pooled[job.app].push_back(job.runtime_s);
  std::map<std::string, Summary> out;
  for (const auto& [app, runtimes] : pooled) out[app] = summarize(runtimes);
  return out;
}

double mean_makespan(const std::vector<TrialResult>& trials) {
  RUSH_EXPECTS(!trials.empty());
  double total = 0.0;
  for (const TrialResult& trial : trials) total += trial.makespan_s;
  return total / static_cast<double>(trials.size());
}

std::map<std::string, double> mean_wait_times(const std::vector<TrialResult>& trials,
                                              bool exclude_initial) {
  std::map<std::string, RunningStats> acc;
  for (const TrialResult& trial : trials) {
    for (const JobOutcome& job : trial.jobs) {
      if (exclude_initial && job.submitted_at_start) continue;
      acc[job.app].add(job.wait_s);
    }
  }
  std::map<std::string, double> out;
  for (const auto& [app, stats] : acc) out[app] = stats.mean();
  return out;
}

std::map<std::string, double> max_runtime_improvement(const std::vector<TrialResult>& baseline,
                                                      const std::vector<TrialResult>& rush,
                                                      int node_count_filter) {
  const auto base = runtime_summaries(baseline, node_count_filter);
  const auto opt = runtime_summaries(rush, node_count_filter);
  std::map<std::string, double> out;
  for (const auto& [app, base_summary] : base) {
    const auto it = opt.find(app);
    if (it == opt.end() || base_summary.max <= 0.0) continue;
    out[app] = 100.0 * (base_summary.max - it->second.max) / base_summary.max;
  }
  return out;
}

}  // namespace rush::core
