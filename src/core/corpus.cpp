#include "core/corpus.hpp"

#include <algorithm>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"

namespace rush::core {

void Corpus::add(CollectedSample sample) {
  RUSH_EXPECTS(sample.features_all.size() == telemetry::FeatureAssembler::kNumFeatures);
  RUSH_EXPECTS(sample.features_job.size() == telemetry::FeatureAssembler::kNumFeatures);
  RUSH_EXPECTS(sample.runtime_s > 0.0);
  samples_.push_back(std::move(sample));
}

void Corpus::append(Corpus other) {
  samples_.insert(samples_.end(), std::make_move_iterator(other.samples_.begin()),
                  std::make_move_iterator(other.samples_.end()));
  other.samples_.clear();
}

std::vector<std::string> Corpus::app_names() const {
  std::vector<std::string> out;
  for (const auto& s : samples_)
    if (std::find(out.begin(), out.end(), s.app) == out.end()) out.push_back(s.app);
  return out;
}

std::vector<AppStats> Corpus::app_stats() const {
  std::vector<AppStats> out;
  for (const std::string& app : app_names()) out.push_back(stats_for(app));
  return out;
}

AppStats Corpus::stats_for(const std::string& app) const {
  RunningStats acc;
  for (const auto& s : samples_)
    if (s.app == app) acc.add(s.runtime_s);
  RUSH_EXPECTS(acc.count() > 0);
  AppStats stats;
  stats.app = app;
  stats.runs = acc.count();
  stats.mean_s = acc.mean();
  stats.stddev_s = acc.sample_stddev();
  stats.min_s = acc.min();
  stats.max_s = acc.max();
  return stats;
}

Corpus Corpus::filter_apps(const std::vector<std::string>& apps) const {
  Corpus out;
  for (const auto& s : samples_)
    if (std::find(apps.begin(), apps.end(), s.app) != apps.end()) out.samples_.push_back(s);
  return out;
}

void Corpus::to_csv(std::ostream& os) const {
  CsvWriter writer(os);
  std::vector<std::string> header{"app", "app_index", "workload", "node_count", "start_s",
                                  "runtime_s"};
  const auto names = telemetry::FeatureAssembler::feature_names();
  for (const auto& n : names) header.push_back("all_" + n);
  for (const auto& n : names) header.push_back("job_" + n);
  writer.write_row(header);

  for (const auto& s : samples_) {
    std::vector<std::string> row;
    row.reserve(header.size());
    row.push_back(s.app);
    row.push_back(std::to_string(s.app_index));
    row.push_back(std::to_string(static_cast<int>(s.workload)));
    row.push_back(std::to_string(s.node_count));
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6f", s.start_s);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.9g", s.runtime_s);
    row.emplace_back(buf);
    for (double v : s.features_all) {
      std::snprintf(buf, sizeof(buf), "%.9g", v);
      row.emplace_back(buf);
    }
    for (double v : s.features_job) {
      std::snprintf(buf, sizeof(buf), "%.9g", v);
      row.emplace_back(buf);
    }
    writer.write_row(row);
  }
}

Corpus Corpus::from_csv(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const auto rows = parse_csv(buffer.str());
  if (rows.empty()) throw ParseError("empty corpus CSV");

  constexpr std::size_t kF = telemetry::FeatureAssembler::kNumFeatures;
  const std::size_t expected_cols = 6 + 2 * kF;
  if (rows.front().size() != expected_cols)
    throw ParseError("corpus CSV has wrong column count");

  Corpus out;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& cells = rows[i];
    if (cells.size() != expected_cols)
      throw ParseError("corpus CSV row " + std::to_string(i) + " has wrong arity");
    CollectedSample s;
    s.app = cells[0];
    s.app_index = static_cast<int>(str::to_int(cells[1]));
    s.workload = static_cast<telemetry::WorkloadClass>(str::to_int(cells[2]));
    s.node_count = static_cast<int>(str::to_int(cells[3]));
    s.start_s = str::to_double(cells[4]);
    s.runtime_s = str::to_double(cells[5]);
    s.features_all.resize(kF);
    s.features_job.resize(kF);
    for (std::size_t f = 0; f < kF; ++f) s.features_all[f] = str::to_double(cells[6 + f]);
    for (std::size_t f = 0; f < kF; ++f) s.features_job[f] = str::to_double(cells[6 + kF + f]);
    out.add(std::move(s));
  }
  return out;
}

}  // namespace rush::core
