#include "core/session.hpp"

#include "common/error.hpp"

namespace rush::core {

WorkloadSession::WorkloadSession(Environment& env, cluster::NodeAllocator& allocator,
                                 SessionConfig config, sched::SchedulerConfig sched_config,
                                 sched::VariabilityOracle* oracle, Rng rng)
    : env_(env), config_(std::move(config)), rng_(rng),
      scheduler_(env.engine(), allocator, env.execution(),
                 sched::make_policy(config_.main_policy),
                 sched::make_policy(config_.backfill_policy), sched_config, oracle) {
  RUSH_EXPECTS(!config_.apps.empty());
  RUSH_EXPECTS(config_.num_jobs > 0);
  RUSH_EXPECTS(!config_.node_counts.empty());
  RUSH_EXPECTS(config_.initial_fraction >= 0.0 && config_.initial_fraction <= 1.0);
  RUSH_EXPECTS(config_.submit_window_s > 0.0);
  RUSH_EXPECTS(config_.walltime_factor_hi >= config_.walltime_factor_lo);
  RUSH_EXPECTS(config_.walltime_factor_lo >= 1.0);
}

TrialResult WorkloadSession::run() {
  const sim::Time t0 = env_.engine().now();

  if (start_hook_) scheduler_.on_start(start_hook_);
  if (complete_hook_) scheduler_.on_complete(complete_hook_);

  // Plan the job mix: cycle over (app x node_count), then shuffle.
  struct PlannedJob {
    std::string app;
    int nodes;
    double submit_dt;
  };
  std::vector<PlannedJob> planned;
  planned.reserve(static_cast<std::size_t>(config_.num_jobs));
  for (int i = 0; i < config_.num_jobs; ++i) {
    PlannedJob pj;
    pj.app = config_.apps[static_cast<std::size_t>(i) % config_.apps.size()];
    pj.nodes = config_.node_counts[(static_cast<std::size_t>(i) / config_.apps.size()) %
                                   config_.node_counts.size()];
    pj.submit_dt = 0.0;
    planned.push_back(pj);
  }
  rng_.shuffle(planned);
  const auto initial = static_cast<std::size_t>(config_.initial_fraction *
                                                static_cast<double>(config_.num_jobs));
  for (std::size_t i = initial; i < planned.size(); ++i)
    planned[i].submit_dt = rng_.uniform(1.0, config_.submit_window_s);

  std::vector<sched::JobId> ids;
  ids.reserve(planned.size());
  for (const PlannedJob& pj : planned) {
    const auto app = apps::find_app(pj.app);
    RUSH_EXPECTS(app.has_value());
    sched::JobSpec spec;
    spec.app = *app;
    spec.num_nodes = pj.nodes;
    spec.scaling = config_.scaling;
    const double expected = apps::scaled_channels(*app, pj.nodes, config_.scaling).total();
    spec.walltime_estimate_s =
        expected * rng_.uniform(config_.walltime_factor_lo, config_.walltime_factor_hi);
    spec.skip_threshold = config_.skip_threshold;
    ids.push_back(scheduler_.submit_at(t0 + pj.submit_dt, spec));
  }

  while (scheduler_.completed_count() < ids.size()) {
    if (env_.engine().now() - t0 >= config_.max_session_s) break;
    env_.engine().run_until(env_.engine().now() + config_.drive_step_s);
  }

  TrialResult result;
  result.makespan_s = scheduler_.makespan();
  result.total_skips = scheduler_.total_skips();
  result.fault_requeues = scheduler_.total_requeues();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const sched::Job& job = scheduler_.job(ids[i]);
    RUSH_ASSERT(job.state == sched::JobState::Completed);
    JobOutcome out;
    out.app = job.app_name();
    out.node_count = job.spec.num_nodes;
    out.submit_s = job.submit_s - t0;
    out.wait_s = job.wait_s();
    out.runtime_s = job.runtime_s();
    out.slowdown = job.record.slowdown();
    out.submitted_at_start = i < initial;
    out.backfilled = job.backfilled;
    out.skips = job.skip_count;
    out.requeues = job.requeues;
    result.jobs.push_back(std::move(out));
  }
  return result;
}

}  // namespace rush::core
