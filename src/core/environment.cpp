#include "core/environment.hpp"

#include "common/error.hpp"
#include "telemetry/schema.hpp"

namespace rush::core {

EnvironmentConfig single_pod_config(std::uint64_t seed) {
  EnvironmentConfig cfg;
  cfg.tree.pods = 1;
  cfg.tree.edges_per_pod = 16;
  cfg.tree.nodes_per_edge = 32;
  cfg.seed = seed;
  return cfg;
}

Environment::Environment(EnvironmentConfig config)
    : config_(config), master_rng_(config.seed) {
  RUSH_EXPECTS(config_.telemetry_pod >= 0 && config_.telemetry_pod < config_.tree.pods);
  tree_ = std::make_unique<cluster::FatTree>(config_.tree);
  network_ = std::make_unique<cluster::NetworkModel>(*tree_);
  lustre_ = std::make_unique<cluster::LustreModel>(config_.lustre_gbps);
  background_ = std::make_unique<cluster::BackgroundLoad>(engine_, *network_, *lustre_,
                                                          config_.background, rng_for(0xBACD));
  store_ = std::make_unique<telemetry::CounterStore>(tree_->nodes_in_pod(config_.telemetry_pod),
                                                     telemetry::num_counters(),
                                                     config_.store_capacity_frames);
  sampler_ = std::make_unique<telemetry::CounterSampler>(engine_, *network_, *lustre_, *store_,
                                                         config_.sampler, rng_for(0x5A3B));
  canary_ = std::make_unique<telemetry::MpiCanary>(*network_, config_.canary, rng_for(0xCA4A));
  features_ = std::make_unique<telemetry::FeatureAssembler>(*store_, config_.feature_window_s);
  execution_ = std::make_unique<apps::ExecutionModel>(engine_, *network_, *lustre_,
                                                      config_.execution, rng_for(0xE8EC));
}

void Environment::attach_obs(obs::EventTrace* trace, obs::MetricsRegistry* metrics) {
  engine_.set_metrics(metrics);
  network_->set_metrics(metrics);
  sampler_->set_obs(trace, metrics);
}

cluster::NodeSet Environment::pod_nodes() const {
  return tree_->nodes_in_pod(config_.telemetry_pod);
}

}  // namespace rush::core
