// One scheduled workload session: the shared machinery behind both the
// scheduling experiments (§VI-A) and in-situ training data collection.
//
// A session submits a randomized job mix to a fresh scheduler instance on
// an existing simulation environment (20% at session start, the rest
// uniformly over a submission window), drives the engine until the queue
// drains, and reports per-job outcomes. Hooks fire at job start and
// completion so the collector can sample features at exactly the decision
// points the scheduler will later face — eliminating covariate shift
// between training and deployment.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/allocator.hpp"
#include "core/environment.hpp"
#include "sched/scheduler.hpp"

namespace rush::core {

/// One job's observable outcome within a session/trial.
struct JobOutcome {
  std::string app;
  int node_count = 16;
  double submit_s = 0.0;  // relative to session start
  double wait_s = 0.0;
  double runtime_s = 0.0;
  /// Contention inflation actually experienced (duration / uncontended).
  double slowdown = 1.0;
  bool submitted_at_start = false;  // part of the initial 20%
  bool backfilled = false;
  int skips = 0;
  int requeues = 0;  // node-crash restarts (nonzero only in fault runs)
};

struct TrialResult {
  std::string policy;  // "fcfs-easy" or "rush"
  std::uint64_t seed = 0;
  std::vector<JobOutcome> jobs;
  double makespan_s = 0.0;
  std::uint64_t total_skips = 0;
  std::uint64_t oracle_evaluations = 0;
  /// Degraded-mode totals; both stay 0 unless a fault plan was active.
  std::uint64_t fault_requeues = 0;
  std::uint64_t oracle_fallbacks = 0;
  /// Per-minute probes (only when requested): noise-job rate is owned by
  /// the caller; these record worst edge utilization and running jobs.
  std::vector<double> probe_noise_rate;
  std::vector<double> probe_max_edge_util;
  std::vector<double> probe_running_jobs;
};

struct SessionConfig {
  std::vector<std::string> apps;  // cycled over; must be non-empty
  int num_jobs = 190;
  std::vector<int> node_counts = {16};
  apps::ScalingMode scaling = apps::ScalingMode::Strong;
  double submit_window_s = 1200.0;
  double initial_fraction = 0.2;
  double walltime_factor_lo = 1.3;
  double walltime_factor_hi = 2.0;
  int skip_threshold = 10;
  std::string main_policy = "fcfs";
  std::string backfill_policy = "fcfs";
  /// Hard wall (relative to session start) against stuck sessions.
  double max_session_s = 6.0 * 3600.0;
  double drive_step_s = 60.0;
};

class WorkloadSession {
 public:
  using JobHook = std::function<void(const sched::Job&)>;

  /// `oracle` may be null unless sched_config.rush_enabled. All
  /// references must outlive run().
  WorkloadSession(Environment& env, cluster::NodeAllocator& allocator, SessionConfig config,
                  sched::SchedulerConfig sched_config, sched::VariabilityOracle* oracle,
                  Rng rng);

  void on_start(JobHook fn) { start_hook_ = std::move(fn); }
  void on_complete(JobHook fn) { complete_hook_ = std::move(fn); }

  /// Submit the workload (relative to the environment's current time) and
  /// drive the engine until every job completes. Returns outcomes in
  /// submission-plan order.
  TrialResult run();

  [[nodiscard]] const sched::Scheduler& scheduler() const noexcept { return scheduler_; }

 private:
  Environment& env_;
  SessionConfig config_;
  Rng rng_;
  sched::Scheduler scheduler_;
  JobHook start_hook_;
  JobHook complete_hook_;
};

}  // namespace rush::core
