// Scheduling experiments (paper §VI-A, Table II).
//
// Each experiment mimics a typical HPC workload inside a single-pod
// 512-node reservation: a noise job occupies 1/16 of the nodes and sends
// variable all-to-all traffic; 20% of the job queue is submitted at t=0
// and the rest uniformly over 20 minutes; trials are run five times per
// policy (FCFS+EASY control vs. RUSH) with paired seeds.
#pragma once

#include <string>
#include <vector>

#include "apps/noise.hpp"
#include "core/collector.hpp"
#include "core/pipeline.hpp"
#include "core/rush_oracle.hpp"
#include "core/session.hpp"
#include "faults/plan.hpp"
#include "sched/scheduler.hpp"

namespace rush::obs {
class EventTrace;
class MetricsRegistry;
}  // namespace rush::obs

namespace rush::core {

enum class ExperimentId : std::uint8_t { ADAA, ADPA, PDPA, WS, SS };

struct ExperimentSpec {
  ExperimentId id = ExperimentId::ADAA;
  std::string code;         // "ADAA"
  std::string name;         // "All Data All Apps"
  std::string description;  // Table II row text
  std::vector<std::string> run_apps;    // workload applications
  std::vector<std::string> train_apps;  // ML training apps; empty = all
  int num_jobs = 190;
  std::vector<int> node_counts = {16};
  apps::ScalingMode scaling = apps::ScalingMode::Strong;
};

/// The five Table II experiments with the paper's parameters.
ExperimentSpec experiment_spec(ExperimentId id);
std::vector<ExperimentSpec> all_experiments();

struct ExperimentResult {
  ExperimentSpec spec;
  std::vector<TrialResult> baseline;  // FCFS+EASY
  std::vector<TrialResult> rush;
};

struct ExperimentConfig {
  int trials_per_policy = 5;
  std::uint64_t seed = 7;
  double submit_window_s = 1200.0;   // paper: 20 minutes
  double initial_fraction = 0.2;     // paper: 20% at t=0
  int noise_node_stride = 16;        // 512/16 = 32 noise nodes, 2 per edge
  apps::NoiseConfig noise;
  /// User walltime over-estimation factor range.
  double walltime_factor_lo = 1.3;
  double walltime_factor_hi = 2.0;
  /// Scheduler knobs shared by both policies.
  sched::SkipPlacement skip_placement = sched::SkipPlacement::Front;
  bool delay_on_little_variation = false;
  int skip_threshold = 10;
  std::string main_policy = "fcfs";
  std::string backfill_policy = "fcfs";
  /// Record per-minute utilization probes into TrialResult (diagnostics).
  bool record_probe = false;
  /// Hard wall so a bugged trial cannot spin forever.
  double max_sim_s = 6.0 * 3600.0;
  /// Trial-level parallelism for run(): 1 = strictly serial; 0 = the
  /// shared task pool (RUSH_JOBS / hardware default); N > 1 = a
  /// dedicated N-wide pool. Every trial owns its Environment and seeds
  /// are mixed up front, so results are bit-identical for any value
  /// (the determinism differential test pins this).
  int jobs = 0;
  /// Optional observability sinks threaded through every layer of each
  /// trial (environment, scheduler, oracle). Null disables; both must
  /// outlive the runner. Under jobs != 1 each trial emits into its own
  /// buffered trace, absorbed into `trace` in deterministic trial order;
  /// `metrics` is internally synchronized and shared directly.
  obs::EventTrace* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Fault plan injected into every trial (faults/plan.hpp; event times
  /// are relative to trial start, which is t=0 on the trial's private
  /// engine). Empty (the default) constructs no injector at all, so the
  /// zero-fault path is byte-identical to a build without faults. Trials
  /// with a non-empty plan must never be served from a results cache.
  faults::FaultPlan fault_plan;
  /// Degraded-mode oracle knobs (only consulted when fault_plan is
  /// non-empty).
  OracleFallback oracle_fallback = OracleFallback::Fcfs;
  double oracle_max_counter_age_s = 120.0;
};

class ExperimentRunner {
 public:
  /// `training_corpus` supplies both the predictor training data and the
  /// per-app reference statistics used to count variation runs.
  ExperimentRunner(Corpus training_corpus, ExperimentConfig config = {});

  [[nodiscard]] ExperimentResult run(const ExperimentSpec& spec);

  /// One trial with explicit policy selection; exposed for tests and the
  /// ablation benches. `predictor` is required when `use_rush`.
  [[nodiscard]] TrialResult run_trial(const ExperimentSpec& spec, bool use_rush,
                                      std::uint64_t trial_seed,
                                      const TrainedPredictor* predictor) const;

  /// Labeler over the full training corpus (the variation-count baseline).
  [[nodiscard]] const Labeler& labeler() const noexcept { return labeler_; }
  [[nodiscard]] const Corpus& corpus() const noexcept { return corpus_; }
  [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }

  /// Train the predictor an experiment needs (honors spec.train_apps).
  [[nodiscard]] TrainedPredictor train_predictor(const ExperimentSpec& spec) const;

 private:
  /// run_trial with explicit observability sinks (the parallel path
  /// hands every trial its own buffered trace instead of config_.trace).
  [[nodiscard]] TrialResult run_trial_with_sinks(const ExperimentSpec& spec, bool use_rush,
                                                 std::uint64_t trial_seed,
                                                 const TrainedPredictor* predictor,
                                                 obs::EventTrace* trace,
                                                 obs::MetricsRegistry* metrics) const;

  Corpus corpus_;
  ExperimentConfig config_;
  Labeler labeler_;
};

}  // namespace rush::core
