// Live oracle wiring the trained predictor into the scheduler.
//
// Mirrors the paper's implementation (§V-B): when the scheduler is about
// to run a job, a "script" runs the MPI canaries on the candidate nodes,
// reads the recent counter window, assembles the feature vector, and
// evaluates the exported model; the scheduler turns the prediction into a
// launch-or-delay decision (Algorithm 2).
#pragma once

#include "core/environment.hpp"
#include "core/pipeline.hpp"
#include "sched/oracle.hpp"

namespace rush::obs {
class EventTrace;
}  // namespace rush::obs

namespace rush::core {

class RushOracle final : public sched::VariabilityOracle {
 public:
  /// All references must outlive the oracle.
  RushOracle(Environment& env, const TrainedPredictor& predictor);

  [[nodiscard]] sched::VariabilityPrediction predict(
      const sched::Job& job, const cluster::NodeSet& candidate_nodes) override;

  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evaluations_; }

  /// Record every predict() call (label + feature hash) into `trace`.
  /// Null detaches, so all inputs are valid.
  // rush-lint: allow(missing-expects)
  void set_trace(obs::EventTrace* trace) noexcept { trace_ = trace; }

 private:
  Environment& env_;
  const TrainedPredictor& predictor_;
  std::uint64_t evaluations_ = 0;
  obs::EventTrace* trace_ = nullptr;
};

}  // namespace rush::core
