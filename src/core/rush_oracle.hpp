// Live oracle wiring the trained predictor into the scheduler.
//
// Mirrors the paper's implementation (§V-B): when the scheduler is about
// to run a job, a "script" runs the MPI canaries on the candidate nodes,
// reads the recent counter window, assembles the feature vector, and
// evaluates the exported model; the scheduler turns the prediction into a
// launch-or-delay decision (Algorithm 2).
//
// Degraded mode (docs/fault-injection.md): with a FaultInjector attached,
// predict() first checks whether its inputs are trustworthy — canary
// probes lost, counter window stale, or counters corrupted — and if not,
// refuses to evaluate the model and returns a fallback label instead of a
// prediction built from bad data.
#pragma once

#include <array>
#include <cstdint>

#include "core/environment.hpp"
#include "core/pipeline.hpp"
#include "sched/oracle.hpp"

namespace rush::faults {
class FaultInjector;
}  // namespace rush::faults

namespace rush::obs {
class Counter;
class EventTrace;
class MetricsRegistry;
}  // namespace rush::obs

namespace rush::core {

/// What the oracle answers when it cannot trust its inputs.
enum class OracleFallback : std::uint8_t {
  /// Predict NoVariation: Algorithm 2 never delays, so the scheduler
  /// degrades to plain FCFS(+EASY) ordering.
  Fcfs,
  /// Repeat the last healthy prediction with a one-step confidence
  /// haircut (Variation -> LittleVariation -> NoVariation): a cautious
  /// memory of recent congestion that decays toward FCFS.
  LastKnownGood,
};

/// Degraded-mode wiring; default (null injector) disables every check so
/// the healthy path is untouched.
struct OracleDegradedConfig {
  const faults::FaultInjector* faults = nullptr;
  /// Counter window older than this is "stale" and triggers fallback.
  double max_counter_age_s = 120.0;
  OracleFallback fallback = OracleFallback::Fcfs;
};

class RushOracle final : public sched::VariabilityOracle {
 public:
  /// All references must outlive the oracle.
  RushOracle(Environment& env, const TrainedPredictor& predictor,
             OracleDegradedConfig degraded = {});

  [[nodiscard]] sched::VariabilityPrediction predict(
      const sched::Job& job, const cluster::NodeSet& candidate_nodes) override;

  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evaluations_; }
  /// Counter-aggregate cache statistics (see CounterCacheEntry).
  [[nodiscard]] std::uint64_t counter_cache_hits() const noexcept { return cache_hits_; }
  [[nodiscard]] std::uint64_t counter_cache_misses() const noexcept { return cache_misses_; }
  /// predict() calls answered by the degraded-mode fallback.
  [[nodiscard]] std::uint64_t fallbacks() const noexcept { return fallbacks_; }

  /// Record every predict() call (label + feature hash) into `trace`.
  /// Null detaches, so all inputs are valid.
  // rush-analyze: allow(missing-expects)
  void set_trace(obs::EventTrace* trace) noexcept { trace_ = trace; }
  /// Register the oracle's metrics. The fallback counter exists only when
  /// a fault injector is attached, so a zero-fault run's metrics output
  /// is unchanged. Null detaches.
  // rush-analyze: allow(missing-expects)
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  /// One cached run of the 270 counter-aggregate features. The window
  /// query is pure in (event time, store content, node set) — the canary
  /// and class features are NOT cached: the canary consumes RNG draws and
  /// must re-run every call. A scheduler pass probing several jobs at one
  /// event time against the same store revision hits after the first
  /// probe. AllNodes-scope entries keep `nodes` empty (the aggregation
  /// ignores the job's nodes).
  struct CounterCacheEntry {
    bool valid = false;
    sim::Time now = 0.0;
    std::uint64_t revision = 0;
    cluster::NodeSet nodes;        // exact-compare key; empty for AllNodes
    std::vector<double> counters;  // kCounterFeatures values
  };

  /// Non-null reason string when degraded-mode checks reject the current
  /// inputs; null when healthy (or no injector is attached).
  [[nodiscard]] const char* degraded_reason(sim::Time now) const noexcept;
  [[nodiscard]] sched::VariabilityPrediction fall_back(const sched::Job& job, sim::Time now_s,
                                                       const char* reason);

  Environment& env_;
  const TrainedPredictor& predictor_;
  OracleDegradedConfig degraded_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t fallbacks_ = 0;
  sched::VariabilityPrediction last_good_ = sched::VariabilityPrediction::NoVariation;
  obs::EventTrace* trace_ = nullptr;
  obs::Counter* metric_fallbacks_ = nullptr;

  // Steady-state buffers: sized once in the constructor, reused by every
  // predict() so the hot path touches no allocator.
  telemetry::CanaryResult canary_buf_;
  std::vector<double> features_;          // full assembled vector (282)
  std::vector<telemetry::Agg> agg_scratch_;
  TrainedPredictor::PredictScratch predict_scratch_;
  std::array<CounterCacheEntry, 4> cache_;
  std::size_t cache_next_slot_ = 0;
};

}  // namespace rush::core
