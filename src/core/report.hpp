// Result aggregation helpers behind the paper's figures.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/experiment.hpp"

namespace rush::core {

/// Mean number of runs per trial whose run time exceeds the variation
/// threshold (z > 1.5 against the training-corpus app statistics), per
/// application — the metric of Figs. 4-5. Only jobs matching
/// `node_count_filter` (0 = any) are counted.
std::map<std::string, double> mean_variation_runs(const std::vector<TrialResult>& trials,
                                                  const Labeler& labeler,
                                                  int node_count_filter = 0);

/// Total variation runs across all apps, averaged over trials (the
/// "17 -> 4" headline number).
double mean_total_variation_runs(const std::vector<TrialResult>& trials, const Labeler& labeler,
                                 int node_count_filter = 0);

/// Run-time distribution per app (Figs. 6-7) or per (app, node count)
/// (Fig. 8), pooled across trials.
std::map<std::string, Summary> runtime_summaries(const std::vector<TrialResult>& trials,
                                                 int node_count_filter = 0);

/// Pooled run times for one app / node-count filter.
std::vector<double> runtimes_for(const std::vector<TrialResult>& trials, const std::string& app,
                                 int node_count_filter = 0);

/// Mean makespan across trials (Fig. 10).
double mean_makespan(const std::vector<TrialResult>& trials);

/// Mean wait time per app (Fig. 11). When `exclude_initial`, jobs
/// submitted at t=0 are ignored (the paper plots only the later 80%).
std::map<std::string, double> mean_wait_times(const std::vector<TrialResult>& trials,
                                              bool exclude_initial = true);

/// Percent improvement of RUSH over baseline in max run time per app
/// (Fig. 9): 100 * (max_base - max_rush) / max_base.
std::map<std::string, double> max_runtime_improvement(const std::vector<TrialResult>& baseline,
                                                      const std::vector<TrialResult>& rush,
                                                      int node_count_filter = 0);

}  // namespace rush::core
