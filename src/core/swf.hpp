// Standard Workload Format (SWF) export.
//
// The Parallel Workloads Archive's SWF is the lingua franca of scheduler
// research: one line per job with 18 whitespace-separated fields. Trials
// exported here can be fed to existing SWF analysis and simulation tools,
// and the paper's own related work (Carastan-Santos et al., Naghshnejad
// et al.) evaluates on SWF traces.
//
// Field mapping (1-based, per the SWF standard; -1 where not applicable):
//    1 job number        — submission index within the trial
//    2 submit time       — seconds from trial start
//    3 wait time         — seconds
//    4 run time          — seconds
//    5 allocated procs   — nodes * cores_per_node
//    8 requested procs   — same as allocated (RUSH jobs are rigid)
//    9 requested time    — the user walltime estimate is not kept in
//                          JobOutcome, so the runtime upper bound is used
//   11 status            — 1 (completed)
//   14 queue number      — 1 (single queue)
//   15 partition         — 1 + skip count (RUSH delays, an extension)
#pragma once

#include <iosfwd>

#include "core/session.hpp"

namespace rush::core {

struct SwfOptions {
  int cores_per_node = 32;
  /// Free-text header comments (each written as "; <line>").
  std::vector<std::string> comments;
};

/// Write one trial as an SWF trace. Jobs appear in submission order.
void write_swf(const TrialResult& trial, std::ostream& os, const SwfOptions& options = {});

/// Minimal SWF job record parsed back from a trace (the fields this
/// library emits meaningfully).
struct SwfJob {
  long long job_number = 0;
  double submit_s = 0.0;
  double wait_s = 0.0;
  double run_s = 0.0;
  long long procs = 0;
  int status = 0;
  int skips = 0;
};

/// Parse the job lines of an SWF stream (comment lines are skipped).
/// Throws ParseError on malformed records.
std::vector<SwfJob> read_swf(std::istream& is);

}  // namespace rush::core
