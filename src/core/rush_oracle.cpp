#include "core/rush_oracle.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace rush::core {

RushOracle::RushOracle(Environment& env, const TrainedPredictor& predictor)
    : env_(env), predictor_(predictor) {
  RUSH_EXPECTS(predictor.ready());
}

sched::VariabilityPrediction RushOracle::predict(const sched::Job& job,
                                                 const cluster::NodeSet& candidate_nodes) {
  ++evaluations_;
  const auto canary = env_.canary().run(candidate_nodes);
  const auto features =
      env_.features().assemble(env_.engine().now(), predictor_.scope(), candidate_nodes, canary,
                               job.spec.app.workload);
  const auto pred = predictor_.predict(features);
  if (trace_ != nullptr)
    trace_->emit_predict(env_.engine().now(), job.id, sched::prediction_name(pred),
                         obs::feature_hash(features));
  return pred;
}

}  // namespace rush::core
