#include "core/rush_oracle.hpp"

#include <algorithm>
#include <span>

#include "common/error.hpp"
#include "faults/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rush::core {

RushOracle::RushOracle(Environment& env, const TrainedPredictor& predictor,
                       OracleDegradedConfig degraded)
    : env_(env), predictor_(predictor), degraded_(degraded),
      features_(telemetry::FeatureAssembler::kNumFeatures, 0.0),
      agg_scratch_(env.store().num_counters()) {
  RUSH_EXPECTS(predictor.ready());
  RUSH_EXPECTS(degraded_.max_counter_age_s > 0.0);
}

void RushOracle::set_metrics(obs::MetricsRegistry* metrics) {
  metric_fallbacks_ = (metrics != nullptr && degraded_.faults != nullptr)
                          ? &metrics->counter("oracle.fallbacks")
                          : nullptr;
}

const char* RushOracle::degraded_reason(sim::Time now) const noexcept {
  if (degraded_.faults == nullptr) return nullptr;
  if (degraded_.faults->canary_timed_out(now)) return "canary-timeout";
  const telemetry::StalenessReport st = env_.features().staleness(now);
  if (st.newest_frame_age_s > degraded_.max_counter_age_s) return "stale-counters";
  if (st.corrupt_frames_in_window > 0) return "corrupt-counters";
  return nullptr;
}

sched::VariabilityPrediction RushOracle::fall_back(const sched::Job& job, sim::Time now_s,
                                                   const char* reason) {
  ++fallbacks_;
  if (metric_fallbacks_) metric_fallbacks_->inc();
  sched::VariabilityPrediction out = sched::VariabilityPrediction::NoVariation;
  if (degraded_.fallback == OracleFallback::LastKnownGood) {
    // One-step confidence haircut on the last healthy prediction.
    switch (last_good_) {
      case sched::VariabilityPrediction::Variation:
        out = sched::VariabilityPrediction::LittleVariation;
        break;
      case sched::VariabilityPrediction::LittleVariation:
      case sched::VariabilityPrediction::NoVariation:
        out = sched::VariabilityPrediction::NoVariation;
        break;
    }
  }
  if (trace_ != nullptr)
    trace_->emit_fault_oracle_fallback(now_s, job.id, reason, sched::prediction_name(out));
  return out;
}

sched::VariabilityPrediction RushOracle::predict(const sched::Job& job,
                                                 const cluster::NodeSet& candidate_nodes) {
  ++evaluations_;
  // Degraded mode: refuse untrustworthy inputs before the canary runs.
  // Skipping the canary shifts later RNG draws, which is acceptable
  // only because this branch can fire solely in fault-injected runs
  // (degraded_.faults attached AND a fault window active) — the
  // zero-fault byte-identity guarantee is untouched.
  const sim::Time now_s = env_.engine().now();
  if (const char* reason = degraded_reason(now_s); reason != nullptr)
    return fall_back(job, now_s, reason);

  // The canary always runs on the healthy path: its per-node jitter
  // consumes RNG draws, so skipping it on a cache hit would shift every
  // later draw in the simulation.
  env_.canary().run_into(candidate_nodes, canary_buf_);

  const std::uint64_t revision = env_.store().revision();
  const bool scoped = predictor_.scope() == telemetry::AggregationScope::JobNodes;
  const std::span<double> counters(features_.data(),
                                   telemetry::FeatureAssembler::kCounterFeatures);

  CounterCacheEntry* hit = nullptr;
  for (CounterCacheEntry& e : cache_) {
    if (e.valid && e.now == now_s && e.revision == revision &&
        (scoped ? e.nodes == candidate_nodes : e.nodes.empty())) {
      hit = &e;
      break;
    }
  }
  if (hit != nullptr) {
    ++cache_hits_;
    std::copy(hit->counters.begin(), hit->counters.end(), counters.begin());
  } else {
    ++cache_misses_;
    env_.features().counters_into(now_s, predictor_.scope(), candidate_nodes, counters,
                                  agg_scratch_);
    CounterCacheEntry& slot = cache_[cache_next_slot_];
    cache_next_slot_ = (cache_next_slot_ + 1) % cache_.size();
    slot.valid = true;
    slot.now = now_s;
    slot.revision = revision;
    if (scoped) {
      slot.nodes = candidate_nodes;
    } else {
      slot.nodes.clear();
    }
    slot.counters.assign(counters.begin(), counters.end());
  }

  telemetry::FeatureAssembler::tail_into(
      canary_buf_, job.spec.app.workload,
      std::span<double>(features_).subspan(telemetry::FeatureAssembler::kCounterFeatures));

  const auto pred = predictor_.predict(features_, predict_scratch_);
  last_good_ = pred;  // LastKnownGood fallback seed
  if (trace_ != nullptr)
    trace_->emit_predict(now_s, job.id, sched::prediction_name(pred),
                         obs::feature_hash(features_));
  return pred;
}

}  // namespace rush::core
