#include "core/rush_oracle.hpp"

#include <algorithm>
#include <span>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace rush::core {

RushOracle::RushOracle(Environment& env, const TrainedPredictor& predictor)
    : env_(env), predictor_(predictor),
      features_(telemetry::FeatureAssembler::kNumFeatures, 0.0),
      agg_scratch_(env.store().num_counters()) {
  RUSH_EXPECTS(predictor.ready());
}

sched::VariabilityPrediction RushOracle::predict(const sched::Job& job,
                                                 const cluster::NodeSet& candidate_nodes) {
  ++evaluations_;
  // The canary always runs: its per-node jitter consumes RNG draws, so
  // skipping it on a cache hit would shift every later draw in the
  // simulation.
  env_.canary().run_into(candidate_nodes, canary_buf_);

  const sim::Time now_s = env_.engine().now();
  const std::uint64_t revision = env_.store().revision();
  const bool scoped = predictor_.scope() == telemetry::AggregationScope::JobNodes;
  const std::span<double> counters(features_.data(),
                                   telemetry::FeatureAssembler::kCounterFeatures);

  CounterCacheEntry* hit = nullptr;
  for (CounterCacheEntry& e : cache_) {
    if (e.valid && e.now == now_s && e.revision == revision &&
        (scoped ? e.nodes == candidate_nodes : e.nodes.empty())) {
      hit = &e;
      break;
    }
  }
  if (hit != nullptr) {
    ++cache_hits_;
    std::copy(hit->counters.begin(), hit->counters.end(), counters.begin());
  } else {
    ++cache_misses_;
    env_.features().counters_into(now_s, predictor_.scope(), candidate_nodes, counters,
                                  agg_scratch_);
    CounterCacheEntry& slot = cache_[cache_next_slot_];
    cache_next_slot_ = (cache_next_slot_ + 1) % cache_.size();
    slot.valid = true;
    slot.now = now_s;
    slot.revision = revision;
    if (scoped) {
      slot.nodes = candidate_nodes;
    } else {
      slot.nodes.clear();
    }
    slot.counters.assign(counters.begin(), counters.end());
  }

  telemetry::FeatureAssembler::tail_into(
      canary_buf_, job.spec.app.workload,
      std::span<double>(features_).subspan(telemetry::FeatureAssembler::kCounterFeatures));

  const auto pred = predictor_.predict(features_, predict_scratch_);
  if (trace_ != nullptr)
    trace_->emit_predict(now_s, job.id, sched::prediction_name(pred),
                         obs::feature_hash(features_));
  return pred;
}

}  // namespace rush::core
