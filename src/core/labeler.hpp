// Variation labeling (paper §IV-A).
//
// Labels are z-scores of a run's time against its application's run-time
// distribution:
//   binary      — 1 ("variation") when z > 1.5, else 0; used for model
//                 and feature selection;
//   three-class — 0 (z <= 1.2), 1 (1.2 < z <= 1.5), 2 (z > 1.5); used by
//                 the exported production model.
// Labels are per-application (each app's own mean/stddev) but the models
// train on all applications together.
#pragma once

#include <string>
#include <unordered_map>

#include "core/corpus.hpp"
#include "ml/dataset.hpp"

namespace rush::core {

struct LabelThresholds {
  double little_sigma = 1.2;
  double variation_sigma = 1.5;
};

class Labeler {
 public:
  /// Baseline statistics come from `reference` (usually the corpus
  /// itself; the experiment evaluation reuses the training-corpus stats).
  explicit Labeler(const Corpus& reference, LabelThresholds thresholds = {});

  /// Z-score of a run time for one application. Returns 0 when the app's
  /// spread is degenerate.
  [[nodiscard]] double zscore(const std::string& app, double runtime_s) const;

  [[nodiscard]] int binary_label(const std::string& app, double runtime_s) const;
  [[nodiscard]] int three_class_label(const std::string& app, double runtime_s) const;

  /// Whether a run counts as "significant variation" (the metric behind
  /// Figs. 4-5).
  [[nodiscard]] bool is_variation(const std::string& app, double runtime_s) const {
    return binary_label(app, runtime_s) == 1;
  }

  /// Datasets over a corpus (not necessarily the reference corpus): rows
  /// in sample order, group = app_index.
  [[nodiscard]] ml::Dataset binary_dataset(const Corpus& corpus,
                                           telemetry::AggregationScope scope) const;
  [[nodiscard]] ml::Dataset three_class_dataset(const Corpus& corpus,
                                                telemetry::AggregationScope scope) const;

  [[nodiscard]] const LabelThresholds& thresholds() const noexcept { return thresholds_; }
  [[nodiscard]] bool knows_app(const std::string& app) const noexcept {
    return stats_.contains(app);
  }

 private:
  [[nodiscard]] ml::Dataset make_dataset(const Corpus& corpus, telemetry::AggregationScope scope,
                                         bool three_class) const;

  LabelThresholds thresholds_;
  std::unordered_map<std::string, AppStats> stats_;
};

}  // namespace rush::core
