// CSV persistence for experiment results.
//
// Several figures are views over the same experiments (ADAA feeds Figs. 5,
// 6, 10, and 11), so the bench harness caches each experiment's trials on
// disk and regenerates figures from the cache.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "core/experiment.hpp"

namespace rush::core {

void save_trials_csv(const std::vector<TrialResult>& trials, std::ostream& os);
std::vector<TrialResult> load_trials_csv(std::istream& is);

void save_experiment(const ExperimentResult& result, const std::filesystem::path& path);
/// Loads a previously saved experiment; the spec is re-derived from `spec`
/// (only trial data is persisted). Throws ParseError on malformed files.
ExperimentResult load_experiment(const ExperimentSpec& spec, const std::filesystem::path& path);

/// Cache wrapper: load `path` if present and well-formed, else run the
/// experiment via `runner` and persist it.
ExperimentResult run_or_load_experiment(ExperimentRunner& runner, const ExperimentSpec& spec,
                                        const std::filesystem::path& path);

/// Default cache location: $RUSH_CACHE_DIR or the current directory.
std::filesystem::path default_experiment_cache(const std::string& code);

}  // namespace rush::core
