// The variability predictor module (paper §IV-A, Fig. 2 left half).
//
// Model selection: the four classifier families (Extra Trees, Decision
// Forest, KNN, AdaBoost) are compared by mean F1 under
// leave-one-application-out cross-validation on binary labels, for both
// aggregation scopes (Fig. 3). Feature selection: recursive feature
// elimination on the winning model. The exported production predictor is
// retrained on three output classes and carries its scaler-free feature
// subset, scope, and label thresholds, and can be saved/loaded (the
// paper's "pickled and exported" step).
#pragma once

#include <iosfwd>
#include <memory>

#include "core/labeler.hpp"
#include "ml/classifier.hpp"
#include "ml/rfe.hpp"
#include "ml/validation.hpp"
#include "sched/oracle.hpp"

namespace rush::core {

/// One bar pair of Fig. 3.
struct ModelScore {
  std::string model;
  double f1_all_nodes = 0.0;
  double f1_job_nodes = 0.0;
  double accuracy_all_nodes = 0.0;
  double accuracy_job_nodes = 0.0;
};

/// The four model families compared in the paper, by registry name.
std::vector<std::string> candidate_model_names();

/// Leave-one-app-out F1 comparison over binary labels (Fig. 3 data).
std::vector<ModelScore> compare_models(const Corpus& corpus, const Labeler& labeler);

/// Best model name by all-node-scope F1 (paper: AdaBoost wins).
std::string best_model(const std::vector<ModelScore>& scores);

/// A fitted production model plus everything needed to apply it online.
class TrainedPredictor {
 public:
  TrainedPredictor() = default;

  /// Reusable buffers for the steady-state predict path; a caller that
  /// keeps one across calls avoids all per-prediction allocation (the
  /// underlying ensembles predict via their compiled planes).
  struct PredictScratch {
    std::vector<double> reduced;
    std::vector<double> proba;
  };

  /// Predict from a full 282-feature vector (the selected subset is
  /// applied internally). Returns the three-class prediction.
  [[nodiscard]] sched::VariabilityPrediction predict(std::span<const double> features) const;
  /// Same prediction using caller-owned scratch buffers.
  [[nodiscard]] sched::VariabilityPrediction predict(std::span<const double> features,
                                                     PredictScratch& scratch) const;

  [[nodiscard]] bool ready() const noexcept { return model_ != nullptr; }
  [[nodiscard]] telemetry::AggregationScope scope() const noexcept { return scope_; }
  /// Minimum ensemble vote share needed to emit "variation" (lower votes
  /// downgrade to "little variation"); 0 disables the gate.
  [[nodiscard]] double variation_confidence() const noexcept { return variation_confidence_; }
  [[nodiscard]] const std::vector<std::size_t>& selected_features() const noexcept {
    return selected_;
  }
  [[nodiscard]] const ml::Classifier& model() const;
  [[nodiscard]] const LabelThresholds& thresholds() const noexcept { return thresholds_; }

  void save(std::ostream& os) const;
  static TrainedPredictor load(std::istream& is);

 private:
  friend class PredictorTrainer;
  std::unique_ptr<ml::Classifier> model_;
  std::vector<std::size_t> selected_;  // indices into the 282 features
  telemetry::AggregationScope scope_ = telemetry::AggregationScope::JobNodes;
  LabelThresholds thresholds_;
  double variation_confidence_ = 0.0;
};

struct TrainerConfig {
  /// Registry name of the model family; empty = pick by compare_models.
  std::string model_name = "adaboost";
  telemetry::AggregationScope scope = telemetry::AggregationScope::AllNodes;
  /// Run recursive feature elimination before the final fit.
  bool run_rfe = false;
  ml::RfeConfig rfe;
  /// Weight samples inversely to class frequency when fitting the
  /// production model. Variation is rare (imbalanced labels, §VI-B);
  /// without this the boosted ensemble underfits the minority class and
  /// the scheduler misses most congestion episodes.
  bool balance_classes = true;
  /// Confidence gate on "variation" outputs (see
  /// TrainedPredictor::variation_confidence).
  double variation_confidence = 0.36;
  LabelThresholds thresholds;
};

class PredictorTrainer {
 public:
  explicit PredictorTrainer(TrainerConfig config = {});

  /// Train the production three-class predictor on `corpus`, labeled by
  /// `labeler` (which may be built from a different reference corpus —
  /// that is how PDPA trains on a four-app subset).
  [[nodiscard]] TrainedPredictor train(const Corpus& corpus, const Labeler& labeler) const;

 private:
  TrainerConfig config_;
};

}  // namespace rush::core
