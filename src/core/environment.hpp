// One-stop simulation environment.
//
// Bundles the engine, fat-tree, contention models, telemetry stack, and
// execution model with consistent seeding so the collector, experiment
// runner, examples, and benches do not each re-wire the world.
#pragma once

#include <memory>

#include "apps/execution.hpp"
#include "cluster/allocator.hpp"
#include "cluster/background.hpp"
#include "cluster/lustre.hpp"
#include "cluster/network.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "telemetry/canary.hpp"
#include "telemetry/features.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/store.hpp"

namespace rush::obs {
class EventTrace;
class MetricsRegistry;
}  // namespace rush::obs

namespace rush::core {

struct EnvironmentConfig {
  cluster::FatTreeConfig tree;
  double lustre_gbps = 480.0;  // aggregate filesystem bandwidth
  cluster::BackgroundConfig background;
  telemetry::SamplerConfig sampler;
  telemetry::CanaryConfig canary;
  apps::ExecutionConfig execution;
  /// Counter history window retained by the store, in sampler periods.
  std::size_t store_capacity_frames = 40;
  /// Feature aggregation window (paper: 5 minutes).
  double feature_window_s = 300.0;
  /// Pod whose nodes the telemetry store covers (the "reservation").
  int telemetry_pod = 0;
  std::uint64_t seed = 2022;
};

/// Quartz-like single-pod default used by the paper's experiments:
/// 512 nodes (16 edge switches x 32 nodes) in one pod.
EnvironmentConfig single_pod_config(std::uint64_t seed = 2022);

class Environment {
 public:
  explicit Environment(EnvironmentConfig config);

  [[nodiscard]] const EnvironmentConfig& config() const noexcept { return config_; }

  sim::Engine& engine() noexcept { return engine_; }
  cluster::FatTree& tree() noexcept { return *tree_; }
  cluster::NetworkModel& network() noexcept { return *network_; }
  cluster::LustreModel& lustre() noexcept { return *lustre_; }
  cluster::BackgroundLoad& background() noexcept { return *background_; }
  telemetry::CounterStore& store() noexcept { return *store_; }
  telemetry::CounterSampler& sampler() noexcept { return *sampler_; }
  telemetry::MpiCanary& canary() noexcept { return *canary_; }
  telemetry::FeatureAssembler& features() noexcept { return *features_; }
  apps::ExecutionModel& execution() noexcept { return *execution_; }

  /// Deterministic child RNG for a named component.
  [[nodiscard]] Rng rng_for(std::uint64_t tag) { return master_rng_.split(tag); }

  /// Attach observability sinks to every layer the environment owns
  /// (engine event counters, network probe/rebuild counters, sampler
  /// congestion episodes). Either pointer may be null (that side
  /// detaches), so all inputs are valid; both must outlive the
  /// environment or be detached first.
  // rush-analyze: allow(missing-expects)
  void attach_obs(obs::EventTrace* trace, obs::MetricsRegistry* metrics);

  /// Nodes of the telemetry pod (the experiment reservation).
  [[nodiscard]] cluster::NodeSet pod_nodes() const;

 private:
  EnvironmentConfig config_;
  Rng master_rng_;
  sim::Engine engine_;
  std::unique_ptr<cluster::FatTree> tree_;
  std::unique_ptr<cluster::NetworkModel> network_;
  std::unique_ptr<cluster::LustreModel> lustre_;
  std::unique_ptr<cluster::BackgroundLoad> background_;
  std::unique_ptr<telemetry::CounterStore> store_;
  std::unique_ptr<telemetry::CounterSampler> sampler_;
  std::unique_ptr<telemetry::MpiCanary> canary_;
  std::unique_ptr<telemetry::FeatureAssembler> features_;
  std::unique_ptr<apps::ExecutionModel> execution_;
};

}  // namespace rush::core
