#include "core/collector.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/task_pool.hpp"

namespace rush::core {

LongitudinalCollector::LongitudinalCollector(CollectorConfig config, EnvironmentConfig env_config)
    : config_(std::move(config)), env_config_(env_config) {
  RUSH_EXPECTS(config_.days > 0);
  RUSH_EXPECTS(config_.sessions_per_day > 0);
  RUSH_EXPECTS(config_.jobs_per_session > 0);
  RUSH_EXPECTS(config_.nodes_per_job > 0);
  RUSH_EXPECTS(config_.session_start_hi_s >= config_.session_start_lo_s);
  RUSH_EXPECTS(config_.shards >= 1);
  // Tie the environment's stochastic state to the collection seed so the
  // whole campaign is one reproducible unit.
  env_config_.seed = config_.seed ^ 0x9e3779b97f4a7c15ULL;
}

Corpus LongitudinalCollector::collect() {
  const int shards = std::min(config_.shards, config_.days);
  if (shards <= 1) return collect_days(0, config_.days, env_config_.seed);

  // Each shard is an independent in-situ campaign over its day slice;
  // results land by shard index, so the merged corpus is identical for
  // any worker count — only the shard count shapes the data.
  std::vector<Corpus> parts(static_cast<std::size_t>(shards));
  parallel_for_indexed(config_.jobs, static_cast<std::size_t>(shards), [&](std::size_t s) {
    const int lo = static_cast<int>(static_cast<std::size_t>(config_.days) * s /
                                    static_cast<std::size_t>(shards));
    const int hi = static_cast<int>(static_cast<std::size_t>(config_.days) * (s + 1) /
                                    static_cast<std::size_t>(shards));
    const std::uint64_t shard_seed = Rng(env_config_.seed).split(0x5A4D + s).next();
    parts[s] = collect_days(lo, hi, shard_seed);
  });

  Corpus merged;
  for (Corpus& part : parts) merged.append(std::move(part));
  return merged;
}

Corpus LongitudinalCollector::collect_days(int day_begin, int day_end,
                                           std::uint64_t env_seed) const {
  EnvironmentConfig shard_env_config = env_config_;
  shard_env_config.seed = env_seed;
  Environment env(shard_env_config);
  auto rng = env.rng_for(0xC011EC7);

  std::vector<std::string> app_names = config_.apps;
  if (app_names.empty()) app_names = apps::proxy_app_names();
  std::unordered_map<std::string, int> app_index;
  for (std::size_t i = 0; i < app_names.size(); ++i)
    app_index.emplace(app_names[i], static_cast<int>(i));

  const double day = 86400.0;
  const int shard_days = day_end - day_begin;
  const double campaign_s = static_cast<double>(config_.days) * day;
  if (config_.storm_days > 0.0) {
    // The storm sits on the full-campaign timeline; a shard sees only the
    // part overlapping its day slice, shifted into shard-local time. The
    // final slice is open-ended so the full-campaign call (0, days)
    // reproduces the legacy unclipped storm exactly.
    const double slice_lo = static_cast<double>(day_begin) * day;
    const double slice_hi = day_end == config_.days
                                ? std::numeric_limits<double>::infinity()
                                : static_cast<double>(day_end) * day;
    const double global_start = campaign_s * config_.storm_at_fraction;
    const double global_end = global_start + config_.storm_days * day;
    const double lo = std::max(global_start, slice_lo);
    const double hi = std::min(global_end, slice_hi);
    if (lo < hi) {
      cluster::Storm storm;
      storm.start = lo - slice_lo;
      storm.end = hi - slice_lo;
      storm.net_intensity = config_.storm_net_intensity;
      storm.io_intensity = config_.storm_io_intensity;
      env.background().add_storm(storm);
    }
  }
  env.background().start();

  // Noise job on every stride-th pod node, running for the whole campaign.
  const cluster::NodeSet pod = env.pod_nodes();
  cluster::NodeSet noise_nodes;
  std::unique_ptr<apps::NoiseJob> noise;
  if (config_.with_noise_job) {
    for (std::size_t i = 0; i < pod.size();
         i += static_cast<std::size_t>(config_.noise_node_stride))
      noise_nodes.push_back(pod[i]);
    noise = std::make_unique<apps::NoiseJob>(env.engine(), env.network(), noise_nodes,
                                             config_.noise, env.rng_for(0x401CE));
    noise->start();
  }

  // Jobs are allocated from the remaining nodes; the allocator persists
  // across sessions (every session drains fully).
  cluster::NodeSet job_nodes;
  for (cluster::NodeId n : pod)
    if (!std::binary_search(noise_nodes.begin(), noise_nodes.end(), n)) job_nodes.push_back(n);
  cluster::NodeAllocator allocator(std::move(job_nodes));

  Corpus corpus;
  for (int d = 0; d < shard_days; ++d) {
    for (int s = 0; s < config_.sessions_per_day; ++s) {
      const double start =
          static_cast<double>(d) * day +
          rng.uniform(config_.session_start_lo_s, config_.session_start_hi_s) +
          static_cast<double>(s) * 4.0 * 3600.0;

      // Lead time so the counter store holds a full window at the first
      // launch, then run the session with sampling on.
      env.engine().run_until(std::max(env.engine().now(), start - env.features().window_s()));
      env.sampler().start();
      env.engine().run_until(start);

      SessionConfig sc;
      sc.apps = app_names;
      sc.num_jobs = config_.jobs_per_session;
      sc.node_counts = {config_.nodes_per_job};
      sc.submit_window_s = config_.submit_window_s;

      sched::SchedulerConfig baseline;  // FCFS+EASY, no RUSH
      WorkloadSession session(env, allocator, sc, baseline, nullptr, rng.split(0x5E55));

      std::unordered_map<sched::JobId, CollectedSample> pending;
      session.on_start([this, &env, &pending, &app_index](const sched::Job& job) {
        const auto canary = env.canary().run(job.nodes);
        CollectedSample sample;
        sample.app = job.app_name();
        sample.app_index = app_index.at(sample.app);
        sample.workload = job.spec.app.workload;
        sample.node_count = static_cast<int>(job.nodes.size());
        sample.start_s = env.engine().now();
        sample.features_all =
            env.features().assemble(env.engine().now(), telemetry::AggregationScope::AllNodes,
                                    job.nodes, canary, job.spec.app.workload);
        sample.features_job =
            env.features().assemble(env.engine().now(), telemetry::AggregationScope::JobNodes,
                                    job.nodes, canary, job.spec.app.workload);
        pending.emplace(job.id, std::move(sample));
      });
      session.on_complete([&pending, &corpus](const sched::Job& job) {
        const auto it = pending.find(job.id);
        RUSH_ASSERT(it != pending.end());
        it->second.runtime_s = job.runtime_s();
        corpus.add(std::move(it->second));
        pending.erase(it);
      });

      (void)session.run();
      env.sampler().stop();
    }
  }
  return corpus;
}

Corpus LongitudinalCollector::collect_or_load(const std::filesystem::path& cache_path) {
  if (std::filesystem::exists(cache_path)) {
    std::ifstream in(cache_path);
    if (in) {
      try {
        Corpus cached = Corpus::from_csv(in);
        if (!cached.empty()) return cached;
      } catch (const std::exception&) {
        // fall through and rebuild
      }
    }
  }
  Corpus corpus = collect();
  std::ofstream out(cache_path);
  if (out) corpus.to_csv(out);
  return corpus;
}

std::filesystem::path default_corpus_cache(const std::string& tag) {
  const char* dir = std::getenv("RUSH_CACHE_DIR");
  const std::filesystem::path base = dir != nullptr ? dir : ".";
  return base / ("rush_corpus_" + tag + ".csv");
}

}  // namespace rush::core
