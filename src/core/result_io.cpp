#include "core/result_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace rush::core {

namespace {
const std::vector<std::string> kHeader{
    "policy", "trial",    "seed",    "makespan_s", "total_skips", "oracle_evals",
    "app",    "nodes",    "submit_s", "wait_s",    "runtime_s",   "slowdown",
    "initial", "backfilled", "skips"};
}  // namespace

void save_trials_csv(const std::vector<TrialResult>& trials, std::ostream& os) {
  CsvWriter writer(os);
  writer.write_row(kHeader);
  char buf[64];
  for (std::size_t t = 0; t < trials.size(); ++t) {
    const TrialResult& trial = trials[t];
    for (const JobOutcome& job : trial.jobs) {
      std::vector<std::string> row;
      row.push_back(trial.policy);
      row.push_back(std::to_string(t));
      row.push_back(std::to_string(trial.seed));
      std::snprintf(buf, sizeof(buf), "%.6f", trial.makespan_s);
      row.emplace_back(buf);
      row.push_back(std::to_string(trial.total_skips));
      row.push_back(std::to_string(trial.oracle_evaluations));
      row.push_back(job.app);
      row.push_back(std::to_string(job.node_count));
      std::snprintf(buf, sizeof(buf), "%.6f", job.submit_s);
      row.emplace_back(buf);
      std::snprintf(buf, sizeof(buf), "%.6f", job.wait_s);
      row.emplace_back(buf);
      std::snprintf(buf, sizeof(buf), "%.6f", job.runtime_s);
      row.emplace_back(buf);
      std::snprintf(buf, sizeof(buf), "%.9f", job.slowdown);
      row.emplace_back(buf);
      row.push_back(job.submitted_at_start ? "1" : "0");
      row.push_back(job.backfilled ? "1" : "0");
      row.push_back(std::to_string(job.skips));
      writer.write_row(row);
    }
  }
}

std::vector<TrialResult> load_trials_csv(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const auto rows = parse_csv(buffer.str());
  if (rows.empty() || rows.front() != kHeader)
    throw ParseError("trials CSV: missing or stale header");

  std::map<std::pair<std::string, int>, TrialResult> trials;  // keeps (policy, index) order
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& cells = rows[i];
    if (cells.size() != kHeader.size())
      throw ParseError("trials CSV row " + std::to_string(i) + " has wrong arity");
    const std::string& policy = cells[0];
    const int trial_index = static_cast<int>(str::to_int(cells[1]));
    TrialResult& trial = trials[{policy, trial_index}];
    trial.policy = policy;
    trial.seed = static_cast<std::uint64_t>(str::to_int(cells[2]));
    trial.makespan_s = str::to_double(cells[3]);
    trial.total_skips = static_cast<std::uint64_t>(str::to_int(cells[4]));
    trial.oracle_evaluations = static_cast<std::uint64_t>(str::to_int(cells[5]));
    JobOutcome job;
    job.app = cells[6];
    job.node_count = static_cast<int>(str::to_int(cells[7]));
    job.submit_s = str::to_double(cells[8]);
    job.wait_s = str::to_double(cells[9]);
    job.runtime_s = str::to_double(cells[10]);
    job.slowdown = str::to_double(cells[11]);
    job.submitted_at_start = cells[12] == "1";
    job.backfilled = cells[13] == "1";
    job.skips = static_cast<int>(str::to_int(cells[14]));
    trial.jobs.push_back(std::move(job));
  }

  std::vector<TrialResult> out;
  out.reserve(trials.size());
  for (auto& [key, trial] : trials) out.push_back(std::move(trial));
  return out;
}

void save_experiment(const ExperimentResult& result, const std::filesystem::path& path) {
  std::ofstream os(path);
  RUSH_EXPECTS(os.good());
  std::vector<TrialResult> all = result.baseline;
  all.insert(all.end(), result.rush.begin(), result.rush.end());
  save_trials_csv(all, os);
}

ExperimentResult load_experiment(const ExperimentSpec& spec,
                                 const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) throw ParseError("cannot open " + path.string());
  ExperimentResult result;
  result.spec = spec;
  for (TrialResult& trial : load_trials_csv(is)) {
    if (trial.policy == "rush") {
      result.rush.push_back(std::move(trial));
    } else {
      result.baseline.push_back(std::move(trial));
    }
  }
  if (result.baseline.empty() || result.rush.empty())
    throw ParseError("experiment cache incomplete: " + path.string());
  return result;
}

ExperimentResult run_or_load_experiment(ExperimentRunner& runner, const ExperimentSpec& spec,
                                        const std::filesystem::path& path) {
  if (std::filesystem::exists(path)) {
    try {
      return load_experiment(spec, path);
    } catch (const std::exception&) {
      // fall through and re-run
    }
  }
  ExperimentResult result = runner.run(spec);
  save_experiment(result, path);
  return result;
}

std::filesystem::path default_experiment_cache(const std::string& code) {
  const char* dir = std::getenv("RUSH_CACHE_DIR");
  const std::filesystem::path base = dir != nullptr ? dir : ".";
  return base / ("rush_experiment_" + code + ".csv");
}

}  // namespace rush::core
