#include "core/labeler.hpp"

#include "common/error.hpp"

namespace rush::core {

Labeler::Labeler(const Corpus& reference, LabelThresholds thresholds) : thresholds_(thresholds) {
  RUSH_EXPECTS(thresholds_.little_sigma > 0.0);
  RUSH_EXPECTS(thresholds_.variation_sigma > thresholds_.little_sigma);
  RUSH_EXPECTS(!reference.empty());
  for (const AppStats& s : reference.app_stats()) stats_.emplace(s.app, s);
}

double Labeler::zscore(const std::string& app, double runtime_s) const {
  const auto it = stats_.find(app);
  RUSH_EXPECTS(it != stats_.end());
  const AppStats& s = it->second;
  if (s.stddev_s <= 0.0) return 0.0;
  return (runtime_s - s.mean_s) / s.stddev_s;
}

int Labeler::binary_label(const std::string& app, double runtime_s) const {
  return zscore(app, runtime_s) > thresholds_.variation_sigma ? 1 : 0;
}

int Labeler::three_class_label(const std::string& app, double runtime_s) const {
  const double z = zscore(app, runtime_s);
  if (z > thresholds_.variation_sigma) return 2;
  if (z > thresholds_.little_sigma) return 1;
  return 0;
}

ml::Dataset Labeler::make_dataset(const Corpus& corpus, telemetry::AggregationScope scope,
                                  bool three_class) const {
  RUSH_EXPECTS(!corpus.empty());
  ml::Dataset out(telemetry::FeatureAssembler::feature_names());
  for (const CollectedSample& s : corpus.samples()) {
    const int label = three_class ? three_class_label(s.app, s.runtime_s)
                                  : binary_label(s.app, s.runtime_s);
    const auto& features =
        scope == telemetry::AggregationScope::AllNodes ? s.features_all : s.features_job;
    out.add_row(features, label, s.app_index);
  }
  return out;
}

ml::Dataset Labeler::binary_dataset(const Corpus& corpus,
                                    telemetry::AggregationScope scope) const {
  return make_dataset(corpus, scope, /*three_class=*/false);
}

ml::Dataset Labeler::three_class_dataset(const Corpus& corpus,
                                         telemetry::AggregationScope scope) const {
  return make_dataset(corpus, scope, /*three_class=*/true);
}

}  // namespace rush::core
