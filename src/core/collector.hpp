// Longitudinal data collection (paper §III, §V-A).
//
// Reproduces the paper's control-job campaign in-situ: every day over
// several months, one or more scheduled workload sessions run on the
// busy, noise-loaded pod (exactly the machinery the experiments use), and
// every job launch contributes one training sample:
//   1. the counter sampler covers the 5-minute window before launch,
//   2. the MPI canary benchmarks run on the allocated nodes,
//   3. the 282-feature vectors are assembled under both scopes,
//   4. the job's eventual run time is recorded.
// Because samples are taken at real scheduling decision points, the
// training feature distribution matches what the RUSH oracle will see at
// deployment. A mid-campaign congestion storm reproduces the Fig. 1
// "mid-December" spike.
#pragma once

#include <filesystem>

#include "apps/noise.hpp"
#include "core/corpus.hpp"
#include "core/environment.hpp"
#include "core/session.hpp"

namespace rush::core {

struct CollectorConfig {
  /// Apps to run; empty means the full seven-app catalog.
  std::vector<std::string> apps;
  int days = 16;
  int sessions_per_day = 1;
  /// Matches the experiments' queue depth so training sees the same
  /// saturation regime the scheduler will decide in.
  int jobs_per_session = 190;
  int nodes_per_job = 16;
  double submit_window_s = 1200.0;
  /// Earliest/latest session start within a day (seconds past midnight).
  double session_start_lo_s = 6.0 * 3600.0;
  double session_start_hi_s = 18.0 * 3600.0;
  /// Noise job, as in the experiments.
  bool with_noise_job = true;
  int noise_node_stride = 16;
  apps::NoiseConfig noise;
  /// Mid-campaign congestion storm (the Fig. 1 "mid-December" spike);
  /// disabled when storm_days <= 0.
  double storm_at_fraction = 0.62;
  double storm_days = 3.0;
  double storm_net_intensity = 0.25;
  double storm_io_intensity = 0.3;
  std::uint64_t seed = 42;
  /// Independent campaign shards run concurrently on the task pool: the
  /// day range splits into `shards` contiguous slices, each profiled on
  /// its own Environment (own seed stream, storm window clipped to the
  /// slice), and the per-shard corpora concatenate in shard order. The
  /// shard count — not the worker count — defines the campaign, so the
  /// corpus is bit-identical for any `jobs`. shards == 1 is the legacy
  /// single-environment campaign (cache-compatible with earlier builds).
  int shards = 1;
  /// Worker policy for sharded collection (see parallel_for_indexed):
  /// 1 = serial, 0 = shared pool, N > 1 = dedicated pool.
  int jobs = 0;
};

class LongitudinalCollector {
 public:
  /// Builds its own single-pod Environment from `env_config` (the
  /// environment seed is overridden by config.seed for reproducibility).
  LongitudinalCollector(CollectorConfig config, EnvironmentConfig env_config);

  /// Run the whole campaign and return the corpus.
  [[nodiscard]] Corpus collect();

  /// Cache wrapper: load `cache_path` if it exists, else collect and
  /// write it. Corrupt caches are ignored and rebuilt.
  [[nodiscard]] Corpus collect_or_load(const std::filesystem::path& cache_path);

 private:
  /// One contiguous slice of the campaign, days [day_begin, day_end), on
  /// a fresh Environment seeded with `env_seed`.
  [[nodiscard]] Corpus collect_days(int day_begin, int day_end, std::uint64_t env_seed) const;

  CollectorConfig config_;
  EnvironmentConfig env_config_;
};

/// Default cache location: $RUSH_CACHE_DIR or the current directory.
std::filesystem::path default_corpus_cache(const std::string& tag);

}  // namespace rush::core
