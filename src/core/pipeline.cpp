#include "core/pipeline.hpp"

#include <algorithm>

#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "ml/serialize.hpp"

namespace rush::core {

std::vector<std::string> candidate_model_names() {
  return {"extra_trees", "decision_forest", "knn", "adaboost"};
}

std::vector<ModelScore> compare_models(const Corpus& corpus, const Labeler& labeler) {
  RUSH_EXPECTS(!corpus.empty());
  const ml::Dataset all = labeler.binary_dataset(corpus, telemetry::AggregationScope::AllNodes);
  const ml::Dataset job = labeler.binary_dataset(corpus, telemetry::AggregationScope::JobNodes);
  const auto folds = ml::leave_one_group_out(all.groups());

  std::vector<ModelScore> scores;
  for (const std::string& name : candidate_model_names()) {
    const auto prototype = ml::make_classifier(name);
    const auto cv_all = ml::cross_validate(*prototype, all, folds);
    const auto cv_job = ml::cross_validate(*prototype, job, folds);
    ModelScore score;
    score.model = name;
    score.f1_all_nodes = cv_all.mean_f1();
    score.f1_job_nodes = cv_job.mean_f1();
    score.accuracy_all_nodes = cv_all.mean_accuracy();
    score.accuracy_job_nodes = cv_job.mean_accuracy();
    scores.push_back(score);
  }
  return scores;
}

std::string best_model(const std::vector<ModelScore>& scores) {
  RUSH_EXPECTS(!scores.empty());
  // Selection uses the all-node score — the aggregation scope the
  // production predictor is trained with.
  const ModelScore* best = &scores.front();
  for (const ModelScore& s : scores) {
    if (s.f1_all_nodes > best->f1_all_nodes) best = &s;
  }
  return best->model;
}

sched::VariabilityPrediction TrainedPredictor::predict(std::span<const double> features) const {
  PredictScratch scratch;
  return predict(features, scratch);
}

sched::VariabilityPrediction TrainedPredictor::predict(std::span<const double> features,
                                                       PredictScratch& scratch) const {
  RUSH_EXPECTS(ready());
  RUSH_EXPECTS(features.size() == telemetry::FeatureAssembler::kNumFeatures);
  scratch.proba.resize(static_cast<std::size_t>(model_->num_classes()));
  if (selected_.empty()) {
    model_->predict_proba_into(features, scratch.proba);
  } else {
    scratch.reduced.resize(selected_.size());
    for (std::size_t i = 0; i < selected_.size(); ++i)
      scratch.reduced[i] = features[selected_[i]];
    model_->predict_proba_into(scratch.reduced, scratch.proba);
  }
  const auto& proba = scratch.proba;
  int label = static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
  if (label == 2 && variation_confidence_ > 0.0 &&
      proba[2] < variation_confidence_) {
    label = 1;  // not confident enough to cost the job a delay
  }
  switch (label) {
    case 0:
      return sched::VariabilityPrediction::NoVariation;
    case 1:
      return sched::VariabilityPrediction::LittleVariation;
    default:
      return sched::VariabilityPrediction::Variation;
  }
}

const ml::Classifier& TrainedPredictor::model() const {
  RUSH_EXPECTS(ready());
  return *model_;
}

void TrainedPredictor::save(std::ostream& os) const {
  RUSH_EXPECTS(ready());
  os << "rush-predictor 1\n";
  os << "scope " << (scope_ == telemetry::AggregationScope::AllNodes ? "all" : "job") << "\n";
  os << "thresholds " << thresholds_.little_sigma << " " << thresholds_.variation_sigma << "\n";
  os << "confidence " << variation_confidence_ << "\n";
  os << "selected " << selected_.size();
  for (std::size_t f : selected_) os << " " << f;
  os << "\n";
  ml::save_classifier(*model_, os);
}

TrainedPredictor TrainedPredictor::load(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != "rush-predictor" || version != 1) throw ParseError("not a rush-predictor stream");
  TrainedPredictor out;
  std::string tag, scope;
  is >> tag >> scope;
  if (tag != "scope") throw ParseError("predictor: missing scope");
  out.scope_ = scope == "all" ? telemetry::AggregationScope::AllNodes
                              : telemetry::AggregationScope::JobNodes;
  is >> tag >> out.thresholds_.little_sigma >> out.thresholds_.variation_sigma;
  if (tag != "thresholds" || !is) throw ParseError("predictor: missing thresholds");
  is >> tag >> out.variation_confidence_;
  if (tag != "confidence" || !is) throw ParseError("predictor: missing confidence");
  std::size_t count = 0;
  is >> tag >> count;
  if (tag != "selected") throw ParseError("predictor: missing selected features");
  out.selected_.resize(count);
  for (std::size_t& f : out.selected_) is >> f;
  if (!is) throw ParseError("predictor: malformed selected features");
  out.model_ = ml::load_classifier(is);
  return out;
}

PredictorTrainer::PredictorTrainer(TrainerConfig config) : config_(std::move(config)) {}

TrainedPredictor PredictorTrainer::train(const Corpus& corpus, const Labeler& labeler) const {
  RUSH_EXPECTS(!corpus.empty());

  std::string model_name = config_.model_name;
  if (model_name.empty()) model_name = best_model(compare_models(corpus, labeler));

  TrainedPredictor out;
  out.scope_ = config_.scope;
  out.thresholds_ = labeler.thresholds();
  out.variation_confidence_ = config_.variation_confidence;

  // Feature selection runs on the binary labels (paper §IV-A: selection
  // first, the exported model then retrains on three classes).
  const ml::Dataset binary = labeler.binary_dataset(corpus, config_.scope);
  if (config_.run_rfe) {
    const auto prototype = ml::make_classifier(model_name);
    const auto rfe = ml::recursive_feature_elimination(*prototype, binary, config_.rfe);
    out.selected_ = rfe.selected;
  }

  ml::Dataset three = labeler.three_class_dataset(corpus, config_.scope);
  if (!out.selected_.empty()) three = three.select_features(out.selected_);

  out.model_ = ml::make_classifier(model_name);
  if (config_.balance_classes) {
    const auto counts = three.class_counts();
    const auto k = static_cast<double>(counts.size());
    const auto n = static_cast<double>(three.rows());
    std::vector<double> weights(three.rows());
    for (std::size_t i = 0; i < three.rows(); ++i) {
      const auto c = static_cast<std::size_t>(three.label(i));
      weights[i] = counts[c] > 0 ? n / (k * static_cast<double>(counts[c])) : 0.0;
    }
    out.model_->fit(three, weights);
  } else {
    out.model_->fit(three);
  }
  return out;
}

}  // namespace rush::core
