#include "core/experiment.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "common/task_pool.hpp"
#include "faults/injector.hpp"
#include "obs/trace.hpp"

namespace rush::core {

namespace {

std::vector<std::string> all_app_names() { return apps::proxy_app_names(); }

/// Trial seeds depend on the *workload* (apps, job count, node counts),
/// not the experiment code, so experiments that run the same workload
/// with different models (ADPA vs PDPA) share identical trial conditions
/// — ADPA is the paper's control for PDPA.
std::uint64_t mix_seed(std::uint64_t base, const ExperimentSpec& spec, int trial) {
  std::uint64_t h = base ^ 0x51ed2701a3c5e91bULL;
  for (const std::string& app : spec.run_apps)
    for (char c : app) h = (h * 131) + static_cast<unsigned char>(c);
  h = (h * 131) + static_cast<std::uint64_t>(spec.num_jobs);
  for (int n : spec.node_counts) h = (h * 131) + static_cast<std::uint64_t>(n);
  h ^= static_cast<std::uint64_t>(trial) * 0x9e3779b97f4a7c15ULL;
  return h;
}

}  // namespace

ExperimentSpec experiment_spec(ExperimentId id) {
  ExperimentSpec spec;
  spec.id = id;
  switch (id) {
    case ExperimentId::ADAA:
      spec.code = "ADAA";
      spec.name = "All Data All Apps";
      spec.description = "ML model trained on data from all running applications";
      spec.run_apps = all_app_names();
      spec.num_jobs = 190;
      break;
    case ExperimentId::ADPA:
      spec.code = "ADPA";
      spec.name = "All Data Partial Apps";
      spec.description = "Subset of 3 applications running";
      spec.run_apps = {"Laghos", "LBANN", "PENNANT"};
      spec.num_jobs = 150;
      break;
    case ExperimentId::PDPA:
      spec.code = "PDPA";
      spec.name = "Partial Data Partial Apps";
      spec.description = "ML model trained on AMG, Kripke, sw4lite, SWFFT";
      spec.run_apps = {"Laghos", "LBANN", "PENNANT"};
      spec.train_apps = {"AMG", "Kripke", "sw4lite", "SWFFT"};
      spec.num_jobs = 150;
      break;
    case ExperimentId::WS:
      spec.code = "WS";
      spec.name = "Weak Scaling";
      spec.description = "Jobs run on 8, 16, and 32 nodes - weak scaling";
      spec.run_apps = all_app_names();
      spec.num_jobs = 190;
      spec.node_counts = {8, 16, 32};
      spec.scaling = apps::ScalingMode::Weak;
      break;
    case ExperimentId::SS:
      spec.code = "SS";
      spec.name = "Strong Scaling";
      spec.description = "Jobs run on 8, 16, and 32 nodes - strong scaling";
      spec.run_apps = all_app_names();
      spec.num_jobs = 190;
      spec.node_counts = {8, 16, 32};
      spec.scaling = apps::ScalingMode::Strong;
      break;
  }
  return spec;
}

std::vector<ExperimentSpec> all_experiments() {
  return {experiment_spec(ExperimentId::ADAA), experiment_spec(ExperimentId::ADPA),
          experiment_spec(ExperimentId::PDPA), experiment_spec(ExperimentId::WS),
          experiment_spec(ExperimentId::SS)};
}

ExperimentRunner::ExperimentRunner(Corpus training_corpus, ExperimentConfig config)
    : corpus_(std::move(training_corpus)), config_(config), labeler_(corpus_) {
  RUSH_EXPECTS(config_.trials_per_policy > 0);
  RUSH_EXPECTS(config_.initial_fraction >= 0.0 && config_.initial_fraction <= 1.0);
  RUSH_EXPECTS(config_.submit_window_s > 0.0);
  RUSH_EXPECTS(config_.walltime_factor_hi >= config_.walltime_factor_lo);
  RUSH_EXPECTS(config_.walltime_factor_lo >= 1.0);
}

TrainedPredictor ExperimentRunner::train_predictor(const ExperimentSpec& spec) const {
  const Corpus train_corpus =
      spec.train_apps.empty() ? corpus_ : corpus_.filter_apps(spec.train_apps);
  RUSH_EXPECTS(!train_corpus.empty());
  // Labels come from the training corpus's own per-app statistics (for
  // PDPA that means the four held-out apps only — the predictor never
  // sees the running apps' data).
  const Labeler train_labeler(train_corpus, labeler_.thresholds());
  TrainerConfig tc;
  tc.model_name = "adaboost";  // the paper's selected model
  PredictorTrainer trainer(tc);
  return trainer.train(train_corpus, train_labeler);
}

TrialResult ExperimentRunner::run_trial(const ExperimentSpec& spec, bool use_rush,
                                        std::uint64_t trial_seed,
                                        const TrainedPredictor* predictor) const {
  return run_trial_with_sinks(spec, use_rush, trial_seed, predictor, config_.trace,
                              config_.metrics);
}

TrialResult ExperimentRunner::run_trial_with_sinks(const ExperimentSpec& spec, bool use_rush,
                                                   std::uint64_t trial_seed,
                                                   const TrainedPredictor* predictor,
                                                   obs::EventTrace* trace,
                                                   obs::MetricsRegistry* metrics) const {
  RUSH_EXPECTS(!use_rush || (predictor != nullptr && predictor->ready()));
  RUSH_EXPECTS(!spec.run_apps.empty());
  RUSH_EXPECTS(spec.num_jobs > 0);

  Environment env(single_pod_config(trial_seed));

  // Noise job on every stride-th node of the pod.
  const cluster::NodeSet pod = env.pod_nodes();
  cluster::NodeSet noise_nodes;
  for (std::size_t i = 0; i < pod.size(); i += static_cast<std::size_t>(config_.noise_node_stride))
    noise_nodes.push_back(pod[i]);
  apps::NoiseJob noise(env.engine(), env.network(), noise_nodes, config_.noise,
                       env.rng_for(0x401CE));

  // Jobs are allocated from the remaining nodes.
  cluster::NodeSet job_nodes;
  for (cluster::NodeId n : pod)
    if (!std::binary_search(noise_nodes.begin(), noise_nodes.end(), n)) job_nodes.push_back(n);
  cluster::NodeAllocator allocator(std::move(job_nodes));

  env.attach_obs(trace, metrics);

  // Fault injection: constructed only for a non-empty plan so the
  // zero-fault path runs exactly the code it ran before faults existed
  // (the byte-identity differential test pins this). Declared before the
  // session so it outlives the scheduler that subscribes to it.
  std::unique_ptr<faults::FaultInjector> injector;
  if (!config_.fault_plan.empty()) {
    injector = std::make_unique<faults::FaultInjector>(env.engine(), config_.fault_plan);
    injector->set_obs(trace, metrics);
    injector->attach_network(&env.network());
    injector->attach_sampler(&env.sampler());
    injector->arm();
  }

  sched::SchedulerConfig sc;
  sc.enable_backfill = true;
  sc.rush_enabled = use_rush;
  sc.delay_on_little_variation = config_.delay_on_little_variation;
  sc.skip_placement = config_.skip_placement;
  sc.trace = trace;
  sc.metrics = metrics;
  sc.faults = injector.get();

  std::unique_ptr<RushOracle> oracle;
  if (use_rush) {
    OracleDegradedConfig degraded;
    degraded.faults = injector.get();
    degraded.fallback = config_.oracle_fallback;
    degraded.max_counter_age_s = config_.oracle_max_counter_age_s;
    oracle = std::make_unique<RushOracle>(env, *predictor, degraded);
    oracle->set_trace(trace);
    oracle->set_metrics(metrics);
  }

  SessionConfig session_config;
  session_config.apps = spec.run_apps;
  session_config.num_jobs = spec.num_jobs;
  session_config.node_counts = spec.node_counts;
  session_config.scaling = spec.scaling;
  session_config.submit_window_s = config_.submit_window_s;
  session_config.initial_fraction = config_.initial_fraction;
  session_config.walltime_factor_lo = config_.walltime_factor_lo;
  session_config.walltime_factor_hi = config_.walltime_factor_hi;
  session_config.skip_threshold = config_.skip_threshold;
  session_config.main_policy = config_.main_policy;
  session_config.backfill_policy = config_.backfill_policy;
  session_config.max_session_s = config_.max_sim_s;

  env.background().start();
  env.sampler().start();
  noise.start();

  WorkloadSession session(env, allocator, session_config, sc, oracle.get(),
                          env.rng_for(0xE59E51));

  TrialResult result_probe;  // probe samples accumulated by the timer
  if (config_.record_probe) {
    const sched::Scheduler& scheduler = session.scheduler();
    env.engine().schedule_periodic(60.0, 60.0, [&env, &noise, &scheduler, &result_probe] {
      result_probe.probe_noise_rate.push_back(noise.current_rate_gbps());
      double worst = 0.0;
      for (int e = 0; e < env.tree().num_edges(); ++e)
        worst = std::max(worst, env.network().link_utilization(env.tree().edge_uplink(e)));
      result_probe.probe_max_edge_util.push_back(worst);
      result_probe.probe_running_jobs.push_back(static_cast<double>(scheduler.running_count()));
    });
  }

  const char* policy_name = use_rush ? "rush" : "fcfs-easy";
  if (trace != nullptr)
    trace->emit_trial_start(env.engine().now(), policy_name, trial_seed);

  TrialResult result = session.run();
  if (trace != nullptr)
    trace->emit_trial_end(env.engine().now(), policy_name, trial_seed,
                          session.scheduler().makespan(),
                          session.scheduler().total_skips());
  result.policy = policy_name;
  result.seed = trial_seed;
  result.oracle_evaluations = oracle ? oracle->evaluations() : 0;
  result.oracle_fallbacks = oracle ? oracle->fallbacks() : 0;
  result.probe_noise_rate = std::move(result_probe.probe_noise_rate);
  result.probe_max_edge_util = std::move(result_probe.probe_max_edge_util);
  result.probe_running_jobs = std::move(result_probe.probe_running_jobs);
  return result;
}

ExperimentResult ExperimentRunner::run(const ExperimentSpec& spec) {
  ExperimentResult result;
  result.spec = spec;
  const TrainedPredictor predictor = train_predictor(spec);

  // All 2 x trials_per_policy trials are independent — each owns its
  // Environment, its seed is mixed up front, and the predictor/corpus
  // are only read — so they fan out across the task pool and land in
  // index-addressed slots. Task i is trial t = i/2, baseline first
  // (i even), matching the serial path's ordering exactly.
  const std::size_t tasks = 2 * static_cast<std::size_t>(config_.trials_per_policy);
  result.baseline.resize(static_cast<std::size_t>(config_.trials_per_policy));
  result.rush.resize(static_cast<std::size_t>(config_.trials_per_policy));

  // Concurrent trials must not interleave records in the shared trace:
  // each gets a buffered child, absorbed below in task order so the
  // trace bytes match a serial run.
  const bool tracing = config_.trace != nullptr && config_.trace->enabled();
  std::vector<std::unique_ptr<obs::EventTrace>> trial_traces;
  if (tracing) {
    trial_traces.reserve(tasks);
    for (std::size_t i = 0; i < tasks; ++i)
      trial_traces.push_back(std::make_unique<obs::EventTrace>(obs::EventTrace::Buffered{}));
  }

  parallel_for_indexed(config_.jobs, tasks, [&](std::size_t i) {
    const int t = static_cast<int>(i / 2);
    const bool use_rush = (i % 2) != 0;
    const std::uint64_t seed = mix_seed(config_.seed, spec, t);
    obs::EventTrace* trace = tracing ? trial_traces[i].get() : nullptr;
    TrialResult trial = run_trial_with_sinks(spec, use_rush, seed,
                                             use_rush ? &predictor : nullptr, trace,
                                             config_.metrics);
    auto& slot = use_rush ? result.rush : result.baseline;
    slot[static_cast<std::size_t>(t)] = std::move(trial);
  });

  if (tracing)
    for (auto& trial_trace : trial_traces) config_.trace->absorb(*trial_trace);
  return result;
}

}  // namespace rush::core
