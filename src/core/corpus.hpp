// The longitudinal training corpus (paper §III).
//
// One sample per control-job run: the 282-feature vector under both
// aggregation scopes, the measured run time, and identifying metadata.
// Corpora are CSV round-trippable so expensive collections can be cached.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/features.hpp"

namespace rush::core {

struct CollectedSample {
  std::string app;
  int app_index = 0;  // index into the collection's app list (the CV group)
  telemetry::WorkloadClass workload = telemetry::WorkloadClass::Compute;
  int node_count = 0;
  double start_s = 0.0;
  double runtime_s = 0.0;
  std::vector<double> features_all;  // AggregationScope::AllNodes
  std::vector<double> features_job;  // AggregationScope::JobNodes
};

/// Per-application run-time statistics (the labeling baseline).
struct AppStats {
  std::string app;
  std::size_t runs = 0;
  double mean_s = 0.0;
  double stddev_s = 0.0;  // sample stddev
  double min_s = 0.0;
  double max_s = 0.0;
};

class Corpus {
 public:
  void add(CollectedSample sample);

  /// Concatenate another corpus's samples (moved) after this one's — used
  /// to merge per-shard campaign slices in shard order.
  void append(Corpus other);

  [[nodiscard]] const std::vector<CollectedSample>& samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Distinct app names in first-seen order.
  [[nodiscard]] std::vector<std::string> app_names() const;
  /// Run-time statistics per app (order of app_names()).
  [[nodiscard]] std::vector<AppStats> app_stats() const;
  /// Stats for one app; throws if the app has no samples.
  [[nodiscard]] AppStats stats_for(const std::string& app) const;

  /// Samples restricted to the given apps (e.g., the PDPA training split).
  [[nodiscard]] Corpus filter_apps(const std::vector<std::string>& apps) const;

  void to_csv(std::ostream& os) const;
  static Corpus from_csv(std::istream& is);

 private:
  std::vector<CollectedSample> samples_;
};

}  // namespace rush::core
