#include "core/swf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace rush::core {

void write_swf(const TrialResult& trial, std::ostream& os, const SwfOptions& options) {
  RUSH_EXPECTS(options.cores_per_node > 0);
  os << "; SWF trace exported by RUSH (policy: " << trial.policy << ")\n";
  os << "; MaxJobs: " << trial.jobs.size() << "\n";
  os << "; Note: field 15 (partition) carries 1 + Algorithm-2 skip count\n";
  for (const std::string& comment : options.comments) os << "; " << comment << "\n";

  // SWF traces are sorted by submit time.
  std::vector<const JobOutcome*> jobs;
  jobs.reserve(trial.jobs.size());
  for (const JobOutcome& job : trial.jobs) jobs.push_back(&job);
  std::stable_sort(jobs.begin(), jobs.end(), [](const JobOutcome* a, const JobOutcome* b) {
    return a->submit_s < b->submit_s;
  });

  char line[256];
  long long number = 1;
  for (const JobOutcome* job : jobs) {
    const long long procs =
        static_cast<long long>(job->node_count) * options.cores_per_node;
    // 18 fields:        1    2  3  4  5 6 7  8   9 10 11 12 13 14 15 16 17 18
    std::snprintf(line, sizeof(line),
                  "%lld %.0f %.0f %.2f %lld -1 -1 %lld %.0f -1 1 1 -1 1 %d -1 -1 -1\n",
                  number, job->submit_s, job->wait_s, job->runtime_s, procs, procs,
                  std::ceil(job->runtime_s), 1 + job->skips);
    os << line;
    ++number;
  }
}

std::vector<SwfJob> read_swf(std::istream& is) {
  std::vector<SwfJob> out;
  std::string line;
  while (std::getline(is, line)) {
    const auto trimmed = str::trim(line);
    if (trimmed.empty() || trimmed.front() == ';') continue;
    std::istringstream fields{std::string(trimmed)};
    SwfJob job;
    double req_procs = 0, req_time = 0, skip1 = 0, skip2 = 0, mem = 0, req_mem = 0;
    double status = 0, user = 0, group = 0, exe = 0, partition = 0;
    double prev = 0, think = 0;
    if (!(fields >> job.job_number >> job.submit_s >> job.wait_s >> job.run_s >> job.procs >>
          skip1 >> mem >> req_procs >> req_time >> req_mem >> status >> user >> group >> exe >>
          partition >> skip2 >> prev >> think)) {
      throw ParseError("malformed SWF record: " + std::string(trimmed));
    }
    job.status = static_cast<int>(status);
    job.skips = static_cast<int>(partition) - 1;
    out.push_back(job);
  }
  return out;
}

}  // namespace rush::core
