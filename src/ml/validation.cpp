#include "ml/validation.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/task_pool.hpp"

namespace rush::ml {

double CvResult::mean_f1() const noexcept {
  if (folds.empty()) return 0.0;
  double s = 0.0;
  for (const auto& f : folds) s += f.f1;
  return s / static_cast<double>(folds.size());
}

double CvResult::mean_accuracy() const noexcept {
  if (folds.empty()) return 0.0;
  double s = 0.0;
  for (const auto& f : folds) s += f.accuracy;
  return s / static_cast<double>(folds.size());
}

double CvResult::mean_macro_f1() const noexcept {
  if (folds.empty()) return 0.0;
  double s = 0.0;
  for (const auto& f : folds) s += f.macro_f1;
  return s / static_cast<double>(folds.size());
}

std::vector<std::vector<std::size_t>> stratified_kfold(const std::vector<int>& labels,
                                                       std::size_t k, Rng& rng) {
  RUSH_EXPECTS(k >= 2);
  RUSH_EXPECTS(labels.size() >= k);

  // Bucket rows by class, shuffle each bucket, then deal round-robin.
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) by_class[labels[i]].push_back(i);

  std::vector<std::vector<std::size_t>> folds(k);
  std::size_t next_fold = 0;
  for (auto& [label, rows] : by_class) {
    rng.shuffle(rows);
    for (std::size_t r : rows) {
      folds[next_fold].push_back(r);
      next_fold = (next_fold + 1) % k;
    }
  }
  return folds;
}

std::vector<std::vector<std::size_t>> leave_one_group_out(const std::vector<int>& groups) {
  RUSH_EXPECTS(!groups.empty());
  std::map<int, std::vector<std::size_t>> by_group;
  for (std::size_t i = 0; i < groups.size(); ++i) by_group[groups[i]].push_back(i);
  RUSH_EXPECTS(by_group.size() >= 2);
  std::vector<std::vector<std::size_t>> folds;
  folds.reserve(by_group.size());
  for (auto& [group, rows] : by_group) folds.push_back(std::move(rows));
  return folds;
}

CvResult cross_validate(const Classifier& prototype, const Dataset& data,
                        const std::vector<std::vector<std::size_t>>& test_folds) {
  RUSH_EXPECTS(!data.empty());
  RUSH_EXPECTS(!test_folds.empty());

  for (const auto& fold : test_folds)
    for (std::size_t r : fold) RUSH_EXPECTS(r < data.rows());

  CvResult result;
  result.folds.resize(test_folds.size());

  // Folds are independent; fit/score them on the shared task pool. Each
  // iteration writes only its own slot, and clones/datasets are
  // thread-private.
  shared_pool().parallel_for_indexed(test_folds.size(), [&](std::size_t fold) {
    const auto& test_rows = test_folds[fold];
    std::vector<bool> in_test(data.rows(), false);
    for (std::size_t r : test_rows) in_test[r] = true;
    std::vector<std::size_t> train_rows;
    train_rows.reserve(data.rows() - test_rows.size());
    for (std::size_t i = 0; i < data.rows(); ++i)
      if (!in_test[i]) train_rows.push_back(i);
    RUSH_EXPECTS(!train_rows.empty());

    const Dataset train = data.subset(train_rows);
    auto model = prototype.clone_config();
    model->fit(train);

    std::vector<int> y_true, y_pred;
    y_true.reserve(test_rows.size());
    y_pred.reserve(test_rows.size());
    for (std::size_t r : test_rows) {
      y_true.push_back(data.label(r));
      y_pred.push_back(model->predict(data.row(r)));
    }

    int k = std::max(2, data.num_classes());
    for (int y : y_pred) k = std::max(k, y + 1);
    const ConfusionMatrix cm(y_true, y_pred, k);
    FoldScores scores;
    scores.f1 = cm.f1(1);
    scores.precision = cm.precision(1);
    scores.recall = cm.recall(1);
    scores.accuracy = cm.accuracy();
    scores.macro_f1 = cm.macro_f1();
    scores.test_size = test_rows.size();
    result.folds[fold] = scores;
  });
  return result;
}

}  // namespace rush::ml
