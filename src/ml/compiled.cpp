#include "ml/compiled.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace rush::ml {

namespace {

/// Number of tree walks advanced concurrently by the ensemble combiners.
/// Wider than the core's miss buffers on purpose: the surplus keeps the
/// load queue full across rounds. Also bounds the combiners' stack
/// scratch (two small index arrays).
constexpr std::size_t kWalkGroup = 64;

}  // namespace

void CompiledTree::clear() noexcept {
  nodes_.clear();
  leaf_proba_.clear();
  num_classes_ = 0;
}

void CompiledTree::reserve(std::size_t nodes, int num_classes) {
  RUSH_EXPECTS(num_classes > 0);
  num_classes_ = num_classes;
  nodes_.reserve(nodes);
}

void CompiledTree::add_split(int feature, double threshold, std::int32_t left) {
  RUSH_EXPECTS(feature >= 0 && left > 0);
  nodes_.push_back({threshold, feature, left});
}

void CompiledTree::add_leaf(std::span<const double> proba) {
  RUSH_EXPECTS(proba.size() == static_cast<std::size_t>(num_classes_));
  RUSH_EXPECTS(leaf_proba_.size() + proba.size() <=
               static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));
  nodes_.push_back({0.0, kLeaf, static_cast<std::int32_t>(leaf_proba_.size())});
  leaf_proba_.insert(leaf_proba_.end(), proba.begin(), proba.end());
}

std::span<const double> CompiledTree::leaf(std::span<const double> x) const noexcept {
  const CompiledNode* nodes = nodes_.data();
  std::size_t node = 0;
  while (nodes[node].feature != kLeaf) {
    const CompiledNode n = nodes[node];
    node = static_cast<std::size_t>(n.index) +
           (x[static_cast<std::size_t>(n.feature)] <= n.threshold ? 0u : 1u);
  }
  return {leaf_proba_.data() + nodes[node].index, static_cast<std::size_t>(num_classes_)};
}

int CompiledTree::predict(std::span<const double> x) const noexcept {
  return argmax_first(leaf(x));
}

void CompiledForest::clear() noexcept {
  nodes_.clear();
  leaf_proba_.clear();
  roots_.clear();
  classes_.clear();
  weights_.clear();
  total_weight_ = 0.0;
}

void CompiledForest::add_tree(const CompiledTree& tree, double weight) {
  RUSH_EXPECTS(!tree.empty());
  const auto node_base = static_cast<std::int32_t>(nodes_.size());
  const auto arena_base = static_cast<std::int32_t>(leaf_proba_.size());
  RUSH_EXPECTS(nodes_.size() + tree.nodes_.size() <=
               static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));
  RUSH_EXPECTS(leaf_proba_.size() + tree.leaf_proba_.size() <=
               static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));

  // Children stay adjacent under a uniform shift, so the packed nodes
  // rebase by plain index arithmetic.
  for (const CompiledNode& n : tree.nodes_) {
    nodes_.push_back({n.threshold, n.feature,
                      n.index + (n.feature == CompiledTree::kLeaf ? arena_base : node_base)});
  }
  leaf_proba_.insert(leaf_proba_.end(), tree.leaf_proba_.begin(), tree.leaf_proba_.end());
  roots_.push_back(node_base);
  classes_.push_back(tree.num_classes_);
  weights_.push_back(weight);
  total_weight_ += weight;
}

void CompiledForest::walk_group(std::span<const double> x, std::size_t base, std::size_t n,
                                std::int32_t* cur) const noexcept {
  const CompiledNode* nodes = nodes_.data();
  // Advance every live cursor one level per round: the group's node
  // loads are independent, so their cache misses overlap instead of
  // forming one serial dependency chain per tree. Walks that reach a
  // leaf are compacted out so late rounds only touch the deep trees.
  std::size_t live[kWalkGroup];
  std::size_t count = n;
  for (std::size_t i = 0; i < n; ++i) {
    cur[i] = roots_[base + i];
    live[i] = i;
  }
  while (count > 0) {
    std::size_t kept = 0;
    for (std::size_t a = 0; a < count; ++a) {
      const std::size_t i = live[a];
      const CompiledNode nd = nodes[static_cast<std::size_t>(cur[i])];
      if (nd.feature == CompiledTree::kLeaf) continue;
      cur[i] = nd.index +
               (x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? 0 : 1);
      live[kept++] = i;
    }
    count = kept;
  }
}

// rush: noalloc
void CompiledForest::mean_proba_into(std::span<const double> x, std::span<double> out) const
    noexcept {
  std::fill(out.begin(), out.end(), 0.0);
  std::int32_t cur[kWalkGroup];
  for (std::size_t base = 0; base < roots_.size(); base += kWalkGroup) {
    const std::size_t n = std::min(kWalkGroup, roots_.size() - base);
    walk_group(x, base, n, cur);
    // Accumulate in tree order — bit-identical to the nested loop.
    for (std::size_t i = 0; i < n; ++i) {
      const double* leaf = leaf_proba_.data() + nodes_[static_cast<std::size_t>(cur[i])].index;
      const std::size_t k = std::min(out.size(), static_cast<std::size_t>(classes_[base + i]));
      for (std::size_t c = 0; c < k; ++c) out[c] += leaf[c];
    }
  }
  const auto trees = static_cast<double>(roots_.size());
  for (double& p : out) p /= trees;
}

// rush: noalloc
void CompiledForest::vote_proba_into(std::span<const double> x, std::span<double> out) const
    noexcept {
  std::fill(out.begin(), out.end(), 0.0);
  std::int32_t cur[kWalkGroup];
  for (std::size_t base = 0; base < roots_.size(); base += kWalkGroup) {
    const std::size_t n = std::min(kWalkGroup, roots_.size() - base);
    walk_group(x, base, n, cur);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t t = base + i;
      const double* leaf = leaf_proba_.data() + nodes_[static_cast<std::size_t>(cur[i])].index;
      const int label = argmax_first({leaf, static_cast<std::size_t>(classes_[t])});
      out[static_cast<std::size_t>(label)] += weights_[t];
    }
  }
  if (total_weight_ > 0.0)
    for (double& v : out) v /= total_weight_;
}

}  // namespace rush::ml
