#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace rush::ml {

Knn::Knn(KnnConfig config) : config_(config) { RUSH_EXPECTS(config_.k > 0); }

void Knn::fit(const Dataset& data, std::span<const double> sample_weights) {
  (void)sample_weights;  // KNN has no natural use for boosting weights
  RUSH_EXPECTS(!data.empty());
  num_classes_ = std::max(2, data.num_classes());
  num_features_ = data.cols();
  scaler_.fit(data);

  x_.clear();
  x_.reserve(data.rows() * data.cols());
  labels_.clear();
  labels_.reserve(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto scaled = scaler_.transform(data.row(i));
    x_.insert(x_.end(), scaled.begin(), scaled.end());
    labels_.push_back(data.label(i));
  }
}

void Knn::votes_into(std::span<const double> q, std::span<double> votes,
                     std::vector<std::pair<double, std::size_t>>& dist) const {
  const std::size_t n = labels_.size();
  const std::size_t k = std::min(config_.k, n);

  // Partial selection of the k smallest squared distances.
  dist.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = x_.data() + i * num_features_;
    double d2 = 0.0;
    for (std::size_t f = 0; f < num_features_; ++f) {
      const double delta = q[f] - row[f];
      d2 += delta * delta;
    }
    dist[i] = {d2, i};
  }
  std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1), dist.end());

  std::fill(votes.begin(), votes.end(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto [d2, idx] = dist[i];
    const double w = config_.distance_weighted ? 1.0 / (std::sqrt(d2) + 1e-9) : 1.0;
    votes[static_cast<std::size_t>(labels_[idx])] += w;
    total += w;
  }
  if (total > 0.0)
    for (double& v : votes) v /= total;
}

std::vector<double> Knn::predict_proba(std::span<const double> x) const {
  RUSH_EXPECTS(is_fitted());
  RUSH_EXPECTS(x.size() == num_features_);
  const auto q = scaler_.transform(x);
  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  std::vector<std::pair<double, std::size_t>> dist;
  votes_into(q, votes, dist);
  return votes;
}

int Knn::predict(std::span<const double> x) const {
  const auto votes = predict_proba(x);
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

void Knn::predict_many(const Dataset& data, std::span<int> out) const {
  RUSH_EXPECTS(is_fitted());
  RUSH_EXPECTS(data.cols() == num_features_);
  RUSH_EXPECTS(out.size() == data.rows());
  std::vector<double> q(num_features_);
  std::vector<double> votes(static_cast<std::size_t>(num_classes_));
  std::vector<std::pair<double, std::size_t>> dist;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    scaler_.transform_into(data.row(i), q);
    votes_into(q, votes, dist);
    out[i] = static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
  }
}

std::unique_ptr<Classifier> Knn::clone_config() const { return std::make_unique<Knn>(config_); }

void Knn::save_body(std::ostream& os) const {
  RUSH_EXPECTS(is_fitted());
  os << "k " << config_.k << " " << (config_.distance_weighted ? 1 : 0) << "\n";
  os << "classes " << num_classes_ << "\n";
  os << "features " << num_features_ << "\n";
  os << "rows " << labels_.size() << "\n";
  scaler_.save(os);
  os.precision(17);
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    os << labels_[i];
    const double* row = x_.data() + i * num_features_;
    for (std::size_t f = 0; f < num_features_; ++f) os << " " << row[f];
    os << "\n";
  }
}

void Knn::load_body(std::istream& is) {
  std::string tag;
  int weighted = 0;
  std::size_t rows = 0;
  is >> tag >> config_.k >> weighted;
  if (tag != "k" || config_.k == 0) throw ParseError("knn: bad k header");
  config_.distance_weighted = weighted != 0;
  is >> tag >> num_classes_;
  if (tag != "classes" || num_classes_ < 2) throw ParseError("knn: bad classes header");
  is >> tag >> num_features_;
  if (tag != "features" || num_features_ == 0) throw ParseError("knn: bad features header");
  is >> tag >> rows;
  if (tag != "rows" || rows == 0) throw ParseError("knn: bad rows header");
  scaler_.load(is);
  labels_.resize(rows);
  x_.resize(rows * num_features_);
  for (std::size_t i = 0; i < rows; ++i) {
    is >> labels_[i];
    for (std::size_t f = 0; f < num_features_; ++f) is >> x_[i * num_features_ + f];
  }
  if (!is) throw ParseError("knn: malformed body");
}

}  // namespace rush::ml
