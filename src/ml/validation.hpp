// Cross-validation utilities (paper §IV-A, §VI-B).
//
// Two splitting schemes are used by the pipeline:
//  - stratified k-fold, preserving the (imbalanced) label ratio per fold;
//  - leave-one-group-out, where a group is an application — the paper's
//    "split the data using six applications for training and one for
//    validation ... over every possible partitioning".
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "ml/classifier.hpp"
#include "ml/metrics.hpp"

namespace rush::ml {

/// Per-fold evaluation scores. f1/precision/recall treat label 1 as the
/// positive ("variation") class; macro_f1 averages across all classes.
struct FoldScores {
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double accuracy = 0.0;
  double macro_f1 = 0.0;
  std::size_t test_size = 0;
};

struct CvResult {
  std::vector<FoldScores> folds;
  [[nodiscard]] double mean_f1() const noexcept;
  [[nodiscard]] double mean_accuracy() const noexcept;
  [[nodiscard]] double mean_macro_f1() const noexcept;
};

/// Test-row indices for each of `k` stratified folds. Every row appears in
/// exactly one fold; per-class counts differ by at most one across folds.
std::vector<std::vector<std::size_t>> stratified_kfold(const std::vector<int>& labels,
                                                       std::size_t k, Rng& rng);

/// One fold per distinct group id; fold i holds the rows of group i
/// (ascending group order).
std::vector<std::vector<std::size_t>> leave_one_group_out(const std::vector<int>& groups);

/// Train a fresh clone of `prototype` on the complement of each test fold
/// and score it on the fold.
CvResult cross_validate(const Classifier& prototype, const Dataset& data,
                        const std::vector<std::vector<std::size_t>>& test_folds);

}  // namespace rush::ml
