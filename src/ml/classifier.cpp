#include "ml/classifier.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rush::ml {

void Classifier::predict_proba_into(std::span<const double> x, std::span<double> out) const {
  const auto p = predict_proba(x);
  RUSH_EXPECTS(out.size() == p.size());
  std::copy(p.begin(), p.end(), out.begin());
}

void Classifier::predict_many(const Dataset& data, std::span<int> out) const {
  RUSH_EXPECTS(out.size() == data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) out[i] = predict(data.row(i));
}

}  // namespace rush::ml
