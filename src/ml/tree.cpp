#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"

namespace rush::ml {

namespace {

/// Weighted Gini impurity from per-class weight totals.
double gini(const std::vector<double>& class_weights, double total) noexcept {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double w : class_weights) {
    const double p = w / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

// Exact-mode presort state. `order` holds one block of `rows` row indices
// per feature, each sorted by (value, row) — the same total order the
// per-node std::sort over (value, row) pairs produces, so any contiguous
// sub-range visits a node's samples in the identical sequence. When a
// node splits, every block's [lo, hi) range is stable-partitioned into
// left members then right members, which preserves that order for both
// children without re-sorting.
struct DecisionTree::FitWorkspace {
  std::size_t rows = 0;
  std::size_t features = 0;
  bool presorted = false;
  std::vector<std::uint32_t> order;      // features blocks of `rows` entries
  std::vector<unsigned char> goes_left;  // per row: membership mark during partition
  std::vector<std::uint32_t> spill;      // right-side buffer for the stable partition

  [[nodiscard]] const std::uint32_t* block(std::size_t f) const noexcept {
    return order.data() + f * rows;
  }
  [[nodiscard]] std::uint32_t* block(std::size_t f) noexcept { return order.data() + f * rows; }
};

DecisionTree::DecisionTree(TreeConfig config) : config_(config) {
  RUSH_EXPECTS(config_.max_depth > 0);
  RUSH_EXPECTS(config_.min_samples_split >= 2);
  RUSH_EXPECTS(config_.min_samples_leaf >= 1);
}

void DecisionTree::fit(const Dataset& data, std::span<const double> sample_weights) {
  RUSH_EXPECTS(!data.empty());
  RUSH_EXPECTS(sample_weights.empty() || sample_weights.size() == data.rows());

  nodes_.clear();
  num_classes_ = data.num_classes();
  num_features_ = data.cols();
  importances_.assign(num_features_, 0.0);

  std::vector<double> weights;
  if (sample_weights.empty()) {
    weights.assign(data.rows(), 1.0);
  } else {
    weights.assign(sample_weights.begin(), sample_weights.end());
  }

  std::vector<std::size_t> indices(data.rows());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

  FitWorkspace ws;
  ws.rows = data.rows();
  ws.features = num_features_;
  if (!config_.random_thresholds && config_.presort) {
    RUSH_EXPECTS(data.rows() <= std::numeric_limits<std::uint32_t>::max());
    ws.presorted = true;
    ws.order.resize(ws.features * ws.rows);
    ws.goes_left.assign(ws.rows, 0);
    ws.spill.reserve(ws.rows);
    for (std::size_t f = 0; f < ws.features; ++f) {
      std::uint32_t* blk = ws.block(f);
      for (std::size_t i = 0; i < ws.rows; ++i) blk[i] = static_cast<std::uint32_t>(i);
      std::sort(blk, blk + ws.rows, [&data, f](std::uint32_t a, std::uint32_t b) {
        const double va = data.row(a)[f];
        const double vb = data.row(b)[f];
        return va < vb || (va == vb && a < b);
      });
    }
  }

  Rng rng(config_.seed);
  build(data, weights, indices, 0, rng, ws, 0, data.rows());
  compile();

  // Normalize importances to sum to 1 (when any split was made).
  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0.0)
    for (double& v : importances_) v /= total;
}

std::int32_t DecisionTree::make_leaf(const Dataset& data, std::span<const double> weights,
                                     const std::vector<std::size_t>& indices) {
  Node leaf;
  leaf.proba.assign(static_cast<std::size_t>(num_classes_), 0.0);
  double total = 0.0;
  for (std::size_t i : indices) {
    leaf.proba[static_cast<std::size_t>(data.label(i))] += weights[i];
    total += weights[i];
  }
  if (total > 0.0)
    for (double& p : leaf.proba) p /= total;
  nodes_.push_back(std::move(leaf));
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

DecisionTree::SplitResult DecisionTree::find_split(const Dataset& data,
                                                   std::span<const double> weights,
                                                   const std::vector<std::size_t>& indices,
                                                   Rng& rng, const FitWorkspace& ws,
                                                   std::size_t lo, std::size_t hi) const {
  const std::size_t k = static_cast<std::size_t>(num_classes_);

  // Parent impurity.
  std::vector<double> parent_w(k, 0.0);
  double total_w = 0.0;
  for (std::size_t i : indices) {
    parent_w[static_cast<std::size_t>(data.label(i))] += weights[i];
    total_w += weights[i];
  }
  const double parent_gini = gini(parent_w, total_w);
  if (parent_gini <= 0.0 || total_w <= 0.0) return {};

  // Candidate features: all, or a random subset of max_features.
  std::vector<std::size_t> candidates;
  if (config_.max_features == 0 || config_.max_features >= num_features_) {
    candidates.resize(num_features_);
    for (std::size_t f = 0; f < num_features_; ++f) candidates[f] = f;
  } else {
    candidates = rng.sample_indices(num_features_, config_.max_features);
  }

  SplitResult best;
  std::vector<std::pair<double, std::size_t>> sorted;  // (value, row)
  std::vector<double> left_w(k);

  for (std::size_t f : candidates) {
    if (config_.random_thresholds) {
      // Extra-trees: one uniform threshold in (min, max).
      double lo = std::numeric_limits<double>::max();
      double hi = std::numeric_limits<double>::lowest();
      for (std::size_t i : indices) {
        const double v = data.row(i)[f];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (hi <= lo) continue;
      const double threshold = rng.uniform(lo, hi);
      std::fill(left_w.begin(), left_w.end(), 0.0);
      double lw = 0.0;
      std::size_t left_n = 0;
      for (std::size_t i : indices) {
        if (data.row(i)[f] <= threshold) {
          left_w[static_cast<std::size_t>(data.label(i))] += weights[i];
          lw += weights[i];
          ++left_n;
        }
      }
      const std::size_t right_n = indices.size() - left_n;
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) continue;
      std::vector<double> right_w(k);
      for (std::size_t c = 0; c < k; ++c) right_w[c] = parent_w[c] - left_w[c];
      const double rw = total_w - lw;
      const double child =
          (lw * gini(left_w, lw) + rw * gini(right_w, rw)) / total_w;
      const double decrease = parent_gini - child;
      if (decrease > best.impurity_decrease) {
        best = SplitResult{true, static_cast<int>(f), threshold, decrease};
      }
    } else if (ws.presorted) {
      // Exact CART over the presorted index: the node's samples arrive in
      // (value, row) order directly from the partitioned block, so the
      // boundary scan is identical to the per-node-sort path below minus
      // the sort.
      const std::uint32_t* blk = ws.block(f) + lo;
      const std::size_t count = hi - lo;
      if (data.row(blk[0])[f] == data.row(blk[count - 1])[f]) continue;

      std::fill(left_w.begin(), left_w.end(), 0.0);
      double lw = 0.0;
      for (std::size_t pos = 0; pos + 1 < count; ++pos) {
        const std::size_t row = blk[pos];
        const double value = data.row(row)[f];
        left_w[static_cast<std::size_t>(data.label(row))] += weights[row];
        lw += weights[row];
        const double next = data.row(blk[pos + 1])[f];
        if (value == next) continue;  // not a boundary
        const std::size_t left_n = pos + 1;
        const std::size_t right_n = count - left_n;
        if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) continue;
        std::vector<double> right_w(k);
        for (std::size_t c = 0; c < k; ++c) right_w[c] = parent_w[c] - left_w[c];
        const double rw = total_w - lw;
        const double child =
            (lw * gini(left_w, lw) + rw * gini(right_w, rw)) / total_w;
        const double decrease = parent_gini - child;
        if (decrease > best.impurity_decrease) {
          best.found = true;
          best.feature = static_cast<int>(f);
          best.threshold = 0.5 * (value + next);
          best.impurity_decrease = decrease;
        }
      }
    } else {
      // Exact CART, reference path: sort this node's samples by feature
      // value and scan boundaries.
      sorted.clear();
      sorted.reserve(indices.size());
      for (std::size_t i : indices) sorted.emplace_back(data.row(i)[f], i);
      std::sort(sorted.begin(), sorted.end());
      if (sorted.front().first == sorted.back().first) continue;

      std::fill(left_w.begin(), left_w.end(), 0.0);
      double lw = 0.0;
      for (std::size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
        const auto [value, row] = sorted[pos];
        left_w[static_cast<std::size_t>(data.label(row))] += weights[row];
        lw += weights[row];
        if (value == sorted[pos + 1].first) continue;  // not a boundary
        const std::size_t left_n = pos + 1;
        const std::size_t right_n = sorted.size() - left_n;
        if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) continue;
        std::vector<double> right_w(k);
        for (std::size_t c = 0; c < k; ++c) right_w[c] = parent_w[c] - left_w[c];
        const double rw = total_w - lw;
        const double child =
            (lw * gini(left_w, lw) + rw * gini(right_w, rw)) / total_w;
        const double decrease = parent_gini - child;
        if (decrease > best.impurity_decrease) {
          best.found = true;
          best.feature = static_cast<int>(f);
          best.threshold = 0.5 * (value + sorted[pos + 1].first);
          best.impurity_decrease = decrease;
        }
      }
    }
  }
  return best;
}

std::int32_t DecisionTree::build(const Dataset& data, std::span<const double> weights,
                                 std::vector<std::size_t>& indices, int depth, Rng& rng,
                                 FitWorkspace& ws, std::size_t lo, std::size_t hi) {
  RUSH_ASSERT(!indices.empty());
  RUSH_ASSERT(!ws.presorted || hi - lo == indices.size());
  const bool can_split = depth < config_.max_depth &&
                         indices.size() >= config_.min_samples_split;
  SplitResult split;
  if (can_split) split = find_split(data, weights, indices, rng, ws, lo, hi);
  if (!split.found) return make_leaf(data, weights, indices);

  // Total node weight scales the recorded importance so splits near the
  // root matter more.
  double total_w = 0.0;
  for (std::size_t i : indices) total_w += weights[i];
  importances_[static_cast<std::size_t>(split.feature)] += total_w * split.impurity_decrease;

  std::vector<std::size_t> left_idx;
  std::vector<std::size_t> right_idx;
  for (std::size_t i : indices) {
    if (data.row(i)[static_cast<std::size_t>(split.feature)] <= split.threshold)
      left_idx.push_back(i);
    else
      right_idx.push_back(i);
  }
  RUSH_ASSERT(!left_idx.empty() && !right_idx.empty());
  indices.clear();
  indices.shrink_to_fit();

  const std::size_t mid = lo + left_idx.size();
  if (ws.presorted) {
    // Thread the presorted order down to the children: stable-partition
    // every feature block's [lo, hi) range into left members then right
    // members, preserving (value, row) order on both sides.
    for (std::size_t i : left_idx) ws.goes_left[i] = 1;
    for (std::size_t f = 0; f < ws.features; ++f) {
      std::uint32_t* blk = ws.block(f);
      ws.spill.clear();
      std::size_t write = lo;
      for (std::size_t pos = lo; pos < hi; ++pos) {
        const std::uint32_t row = blk[pos];
        if (ws.goes_left[row] != 0) {
          blk[write++] = row;
        } else {
          ws.spill.push_back(row);
        }
      }
      RUSH_ASSERT(write == mid);
      std::copy(ws.spill.begin(), ws.spill.end(), blk + write);
    }
    for (std::size_t i : left_idx) ws.goes_left[i] = 0;
  }

  Node internal;
  internal.feature = split.feature;
  internal.threshold = split.threshold;
  nodes_.push_back(std::move(internal));
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);

  const std::int32_t left = build(data, weights, left_idx, depth + 1, rng, ws, lo, mid);
  const std::int32_t right = build(data, weights, right_idx, depth + 1, rng, ws, mid, hi);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

std::vector<double> DecisionTree::predict_proba(std::span<const double> x) const {
  RUSH_EXPECTS(is_fitted());
  RUSH_EXPECTS(x.size() == num_features_);
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
    RUSH_ASSERT(node >= 0);
  }
  return nodes_[static_cast<std::size_t>(node)].proba;
}

int DecisionTree::predict(std::span<const double> x) const {
  RUSH_EXPECTS(is_fitted());
  RUSH_EXPECTS(x.size() == num_features_);
  return compiled_.predict(x);
}

void DecisionTree::predict_proba_into(std::span<const double> x, std::span<double> out) const {
  RUSH_EXPECTS(is_fitted());
  RUSH_EXPECTS(x.size() == num_features_);
  RUSH_EXPECTS(out.size() == static_cast<std::size_t>(num_classes_));
  const auto leaf = compiled_.leaf(x);
  std::copy(leaf.begin(), leaf.end(), out.begin());
}

void DecisionTree::predict_many(const Dataset& data, std::span<int> out) const {
  RUSH_EXPECTS(is_fitted());
  RUSH_EXPECTS(data.cols() == num_features_);
  RUSH_EXPECTS(out.size() == data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) out[i] = compiled_.predict(data.row(i));
}

void DecisionTree::compile() {
  compiled_.clear();
  if (nodes_.empty()) return;
  compiled_.reserve(nodes_.size(), num_classes_);
  // BFS relayout: dest slot d holds source node order[d], and a split's
  // children are appended together so they land adjacently — the packed
  // node then needs only the left index (right = left + 1), and the hot
  // upper levels of the tree share cache lines.
  std::vector<std::int32_t> order;
  order.reserve(nodes_.size());
  order.push_back(0);
  for (std::size_t dest = 0; dest < order.size(); ++dest) {
    const Node& n = nodes_[static_cast<std::size_t>(order[dest])];
    if (n.feature >= 0) {
      compiled_.add_split(n.feature, n.threshold, static_cast<std::int32_t>(order.size()));
      order.push_back(n.left);
      order.push_back(n.right);
    } else {
      compiled_.add_leaf(n.proba);
    }
  }
}

std::vector<double> DecisionTree::feature_importances() const { return importances_; }

std::unique_ptr<Classifier> DecisionTree::clone_config() const {
  return std::make_unique<DecisionTree>(config_);
}

int DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the node array.
  std::vector<std::pair<std::int32_t, int>> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    if (n.feature >= 0) {
      stack.emplace_back(n.left, d + 1);
      stack.emplace_back(n.right, d + 1);
    }
  }
  return max_depth;
}

void DecisionTree::save_body(std::ostream& os) const {
  RUSH_EXPECTS(is_fitted());
  os << "classes " << num_classes_ << "\n";
  os << "features " << num_features_ << "\n";
  os << "nodes " << nodes_.size() << "\n";
  os.precision(17);
  for (const Node& n : nodes_) {
    if (n.feature >= 0) {
      os << "split " << n.feature << " " << n.threshold << " " << n.left << " " << n.right
         << "\n";
    } else {
      os << "leaf";
      for (double p : n.proba) os << " " << p;
      os << "\n";
    }
  }
  os << "importances";
  for (double v : importances_) os << " " << v;
  os << "\n";
}

void DecisionTree::load_body(std::istream& is) {
  std::string tag;
  std::size_t node_count = 0;
  is >> tag >> num_classes_;
  if (tag != "classes" || num_classes_ <= 0) throw ParseError("tree: bad classes header");
  is >> tag >> num_features_;
  if (tag != "features" || num_features_ == 0) throw ParseError("tree: bad features header");
  is >> tag >> node_count;
  if (tag != "nodes" || node_count == 0) throw ParseError("tree: bad nodes header");

  nodes_.clear();
  nodes_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    is >> tag;
    Node n;
    if (tag == "split") {
      is >> n.feature >> n.threshold >> n.left >> n.right;
      if (!is || n.feature < 0 || n.left < 0 || n.right < 0)
        throw ParseError("tree: malformed split node");
    } else if (tag == "leaf") {
      n.proba.resize(static_cast<std::size_t>(num_classes_));
      for (double& p : n.proba) is >> p;
      if (!is) throw ParseError("tree: malformed leaf node");
    } else {
      throw ParseError("tree: unknown node tag '" + tag + "'");
    }
    nodes_.push_back(std::move(n));
  }
  is >> tag;
  if (tag != "importances") throw ParseError("tree: missing importances");
  importances_.resize(num_features_);
  for (double& v : importances_) is >> v;
  if (!is) throw ParseError("tree: malformed importances");
  compile();
}

}  // namespace rush::ml
