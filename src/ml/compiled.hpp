// Flat, allocation-free inference plane for the CART ensembles.
//
// CompiledTree flattens DecisionTree's node vector (an AoS layout where
// every leaf owns its own heap probability vector) into one contiguous
// array of packed 16-byte nodes plus a pooled leaf-probability arena.
// Nodes are laid out in BFS order with a split's two children adjacent,
// so a node carries only its left-child index (right = left + 1): a
// prediction walk touches one cache line per visited node — four nodes
// per line, hot upper levels contiguous — and no allocator.
//
// CompiledForest concatenates many compiled trees into one shared node
// array (child and arena indices rebased at insertion) and walks the
// trees in interleaved groups: each round advances every cursor in the
// group one level, so the walks' independent cache misses overlap
// instead of serializing. It supports the two combine rules used by the
// ensembles: mean of leaf probabilities (Forest) and weighted argmax
// votes (AdaBoost/SAMME). Both reproduce the nested predict_proba paths
// bit for bit — leaf values are accumulated in tree order with the same
// division — which the differential tests in tests/ml/test_compiled.cpp
// assert.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rush::ml {

/// Index of the first maximum, matching std::max_element over a
/// predict_proba vector.
[[nodiscard]] inline int argmax_first(std::span<const double> v) noexcept {
  int best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
  }
  return best;
}

/// One packed tree node. Splits branch on threshold and hold the left
/// child in `index` (the right child is `index + 1` by construction);
/// leaves mark `feature` with kLeaf and hold their arena offset in
/// `index`.
struct CompiledNode {
  double threshold;
  std::int32_t feature;
  std::int32_t index;
};
static_assert(sizeof(CompiledNode) == 16);

class CompiledTree {
 public:
  static constexpr std::int32_t kLeaf = -1;

  void clear() noexcept;
  void reserve(std::size_t nodes, int num_classes);

  /// Append the next node; nodes must arrive in an order where a split's
  /// children land at `left` and `left + 1` (DecisionTree::compile emits
  /// BFS order). A leaf's probabilities are copied into the pooled arena.
  void add_split(int feature, double threshold, std::int32_t left);
  void add_leaf(std::span<const double> proba);

  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }

  /// Probability slice (size num_classes) of the leaf `x` falls into.
  [[nodiscard]] std::span<const double> leaf(std::span<const double> x) const noexcept;
  /// Argmax label of the leaf slice (first maximum wins).
  [[nodiscard]] int predict(std::span<const double> x) const noexcept;

 private:
  friend class CompiledForest;

  std::vector<CompiledNode> nodes_;
  std::vector<double> leaf_proba_;  // pooled arena, num_classes_ stride
  int num_classes_ = 0;
};

class CompiledForest {
 public:
  void clear() noexcept;
  /// Append a compiled tree with the given vote weight (1 for soft-vote
  /// forests, the stage alpha for AdaBoost).
  void add_tree(const CompiledTree& tree, double weight = 1.0);

  [[nodiscard]] bool empty() const noexcept { return roots_.empty(); }
  [[nodiscard]] std::size_t tree_count() const noexcept { return roots_.size(); }

  /// Forest combine: per-class mean of every tree's leaf probabilities,
  /// written into `out`. Trees fitted on bootstrap samples may carry
  /// fewer classes than the ensemble; their missing tail contributes 0,
  /// exactly as the nested accumulation does.
  void mean_proba_into(std::span<const double> x, std::span<double> out) const noexcept;
  /// AdaBoost/SAMME combine: weight-normalized argmax votes into `out`.
  void vote_proba_into(std::span<const double> x, std::span<double> out) const noexcept;

 private:
  /// Walks trees [base, base + n) to their leaves concurrently, leaving
  /// each walk's final node index in `cur`.
  void walk_group(std::span<const double> x, std::size_t base, std::size_t n,
                  std::int32_t* cur) const noexcept;

  std::vector<CompiledNode> nodes_;
  std::vector<double> leaf_proba_;
  std::vector<std::int32_t> roots_;    // per tree: root node index
  std::vector<std::int32_t> classes_;  // per tree: class count (arena stride)
  std::vector<double> weights_;        // per tree: vote weight
  double total_weight_ = 0.0;
};

}  // namespace rush::ml
