#include "ml/scaler.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace rush::ml {

void StandardScaler::fit(const Dataset& data) {
  RUSH_EXPECTS(!data.empty());
  const std::size_t d = data.cols();
  means_.assign(d, 0.0);
  stddevs_.assign(d, 0.0);
  const double n = static_cast<double>(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t f = 0; f < d; ++f) means_[f] += row[f];
  }
  for (double& m : means_) m /= n;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t f = 0; f < d; ++f) {
      const double delta = row[f] - means_[f];
      stddevs_[f] += delta * delta;
    }
  }
  for (double& s : stddevs_) {
    s = std::sqrt(s / n);
    if (s <= 0.0) s = 1.0;
  }
}

std::vector<double> StandardScaler::transform(std::span<const double> x) const {
  std::vector<double> out(x.size());
  transform_into(x, out);
  return out;
}

void StandardScaler::transform_into(std::span<const double> x, std::span<double> out) const {
  RUSH_EXPECTS(is_fitted());
  RUSH_EXPECTS(x.size() == means_.size());
  RUSH_EXPECTS(out.size() == x.size());
  for (std::size_t f = 0; f < x.size(); ++f) out[f] = (x[f] - means_[f]) / stddevs_[f];
}

Dataset StandardScaler::transform(const Dataset& data) const {
  RUSH_EXPECTS(data.cols() == means_.size());
  Dataset out(data.feature_names());
  for (std::size_t i = 0; i < data.rows(); ++i)
    out.add_row(transform(data.row(i)), data.label(i), data.group(i));
  return out;
}

void StandardScaler::save(std::ostream& os) const {
  RUSH_EXPECTS(is_fitted());
  os << "scaler " << means_.size() << "\n";
  os.precision(17);
  for (std::size_t f = 0; f < means_.size(); ++f)
    os << means_[f] << " " << stddevs_[f] << "\n";
}

void StandardScaler::load(std::istream& is) {
  std::string tag;
  std::size_t d = 0;
  is >> tag >> d;
  if (tag != "scaler" || d == 0) throw ParseError("scaler: bad header");
  means_.resize(d);
  stddevs_.resize(d);
  for (std::size_t f = 0; f < d; ++f) is >> means_[f] >> stddevs_[f];
  if (!is) throw ParseError("scaler: malformed body");
}

}  // namespace rush::ml
