// Model persistence: the "pickled and exported for use in the scheduler"
// step of the paper's pipeline, as a versioned text container.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "ml/classifier.hpp"

namespace rush::ml {

/// Construct an unfitted classifier by registry type name:
/// "decision_tree", "decision_forest", "extra_trees", "adaboost", "knn".
/// Throws ParseError for unknown names.
std::unique_ptr<Classifier> make_classifier(const std::string& type_name);

/// Write `model` (must be fitted) with a framed header so load can
/// dispatch on type.
void save_classifier(const Classifier& model, std::ostream& os);

/// Read a model previously written by save_classifier.
std::unique_ptr<Classifier> load_classifier(std::istream& is);

}  // namespace rush::ml
