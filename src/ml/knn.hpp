// K-nearest-neighbors classifier with internal standardization.
//
// Brute-force Euclidean search; training data is standardized at fit time
// so counter features with wildly different scales (bytes vs. call
// counts) contribute comparably.
#pragma once

#include <utility>

#include "ml/classifier.hpp"
#include "ml/scaler.hpp"

namespace rush::ml {

struct KnnConfig {
  std::size_t k = 7;
  /// Weight votes by inverse distance instead of uniformly.
  bool distance_weighted = true;
};

class Knn final : public Classifier {
 public:
  explicit Knn(KnnConfig config = {});

  /// Sample weights are ignored (noted in the interface contract).
  void fit(const Dataset& data, std::span<const double> sample_weights = {}) override;
  [[nodiscard]] int predict(std::span<const double> x) const override;
  [[nodiscard]] std::vector<double> predict_proba(std::span<const double> x) const override;
  /// Batched labels reusing one query/distance scratch across all rows.
  void predict_many(const Dataset& data, std::span<int> out) const override;
  [[nodiscard]] int num_classes() const noexcept override { return num_classes_; }
  [[nodiscard]] std::size_t num_features() const noexcept override { return num_features_; }
  [[nodiscard]] bool is_fitted() const noexcept override { return !labels_.empty(); }
  [[nodiscard]] std::string type_name() const override { return "knn"; }
  [[nodiscard]] std::unique_ptr<Classifier> clone_config() const override;
  void save_body(std::ostream& os) const override;
  void load_body(std::istream& is) override;

  [[nodiscard]] const KnnConfig& config() const noexcept { return config_; }

 private:
  /// Votes for one standardized query; `dist` is caller-owned scratch so
  /// batched prediction reuses one buffer across rows.
  void votes_into(std::span<const double> q, std::span<double> votes,
                  std::vector<std::pair<double, std::size_t>>& dist) const;

  KnnConfig config_;
  int num_classes_ = 0;
  std::size_t num_features_ = 0;
  StandardScaler scaler_;
  std::vector<double> x_;  // standardized training rows, row-major
  std::vector<int> labels_;
};

}  // namespace rush::ml
