#include "ml/rfe.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "ml/validation.hpp"

namespace rush::ml {

namespace {

/// |correlation| of each feature with the (possibly multi-class) label,
/// used when the model exposes no importances.
std::vector<double> correlation_ranking(const Dataset& data) {
  std::vector<double> label_values(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i)
    label_values[i] = static_cast<double>(data.label(i));
  const double ly_mean = stats::mean(label_values);
  double ly_var = 0.0;
  for (double v : label_values) ly_var += (v - ly_mean) * (v - ly_mean);

  std::vector<double> out(data.cols(), 0.0);
  for (std::size_t f = 0; f < data.cols(); ++f) {
    const auto col = data.column(f);
    const double fx_mean = stats::mean(col);
    double cov = 0.0, fx_var = 0.0;
    for (std::size_t i = 0; i < col.size(); ++i) {
      const double dx = col[i] - fx_mean;
      cov += dx * (label_values[i] - ly_mean);
      fx_var += dx * dx;
    }
    const double denom = std::sqrt(fx_var * ly_var);
    out[f] = denom > 0.0 ? std::abs(cov / denom) : 0.0;
  }
  return out;
}

}  // namespace

RfeResult recursive_feature_elimination(const Classifier& prototype, const Dataset& data,
                                        const RfeConfig& config) {
  RUSH_EXPECTS(!data.empty());
  RUSH_EXPECTS(config.min_features >= 1);
  RUSH_EXPECTS(config.step_fraction > 0.0 && config.step_fraction < 1.0);

  std::vector<std::size_t> current(data.cols());
  for (std::size_t f = 0; f < current.size(); ++f) current[f] = f;

  RfeResult result;
  Rng rng(config.seed);

  while (true) {
    const Dataset view = data.select_features(current);

    // Score the current set.
    Rng fold_rng = rng.split(current.size());
    const auto folds = stratified_kfold(view.labels(), config.cv_folds, fold_rng);
    const double f1 = cross_validate(prototype, view, folds).mean_f1();
    result.history.push_back(RfeRound{current.size(), f1});
    if (f1 > result.best_f1 || result.selected.empty()) {
      result.best_f1 = f1;
      result.selected = current;
    }
    if (current.size() <= config.min_features) break;

    // Rank features, drop the weakest `step` of them.
    auto model = prototype.clone_config();
    model->fit(view);
    std::vector<double> rank = model->feature_importances();
    if (rank.empty()) rank = correlation_ranking(view);
    RUSH_ASSERT(rank.size() == current.size());

    std::vector<std::size_t> order(current.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&rank](std::size_t a, std::size_t b) { return rank[a] < rank[b]; });

    const auto step = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(config.step_fraction *
                                               static_cast<double>(current.size()))));
    const auto drop =
        std::min(step, current.size() - config.min_features);
    std::vector<bool> removed(current.size(), false);
    for (std::size_t i = 0; i < drop; ++i) removed[order[i]] = true;

    std::vector<std::size_t> next;
    next.reserve(current.size() - drop);
    for (std::size_t i = 0; i < current.size(); ++i)
      if (!removed[i]) next.push_back(current[i]);
    current = std::move(next);
  }

  std::sort(result.selected.begin(), result.selected.end());
  return result;
}

}  // namespace rush::ml
