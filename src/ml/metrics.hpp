// Classification metrics (paper §VI-B).
//
// Variation is rare, so the dataset is imbalanced and accuracy is
// uninformative; the paper selects models by F1 score. Binary F1 follows
// the paper's formula F1 = tp / (tp + (fp + fn)/2); multi-class uses
// macro averaging over per-class binary scores.
#pragma once

#include <span>
#include <vector>

namespace rush::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);
  /// Build from parallel label vectors (same length, labels in range).
  ConfusionMatrix(std::span<const int> y_true, std::span<const int> y_pred, int num_classes);

  void add(int actual, int predicted);
  void merge(const ConfusionMatrix& other);

  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] std::size_t count(int actual, int predicted) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  [[nodiscard]] double accuracy() const noexcept;
  /// Treating `positive` one-vs-rest.
  [[nodiscard]] double precision(int positive) const;
  [[nodiscard]] double recall(int positive) const;
  [[nodiscard]] double f1(int positive) const;
  /// Unweighted mean of per-class F1 scores.
  [[nodiscard]] double macro_f1() const;

 private:
  int num_classes_;
  std::vector<std::size_t> cells_;  // num_classes x num_classes, row = actual
  std::size_t total_ = 0;
};

/// Convenience wrappers for the binary case with positive class 1.
double f1_score(std::span<const int> y_true, std::span<const int> y_pred);
double precision_score(std::span<const int> y_true, std::span<const int> y_pred);
double recall_score(std::span<const int> y_true, std::span<const int> y_pred);
double accuracy_score(std::span<const int> y_true, std::span<const int> y_pred);

}  // namespace rush::ml
