// Per-feature standardization (zero mean, unit variance).
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace rush::ml {

class StandardScaler {
 public:
  void fit(const Dataset& data);

  [[nodiscard]] bool is_fitted() const noexcept { return !means_.empty(); }
  [[nodiscard]] std::size_t num_features() const noexcept { return means_.size(); }

  /// Scaled copy of one feature vector. Constant features map to 0.
  [[nodiscard]] std::vector<double> transform(std::span<const double> x) const;
  /// Same values written into `out` (size num_features) — no allocation.
  void transform_into(std::span<const double> x, std::span<double> out) const;
  /// Scaled copy of a whole dataset (labels/groups preserved).
  [[nodiscard]] Dataset transform(const Dataset& data) const;

  [[nodiscard]] const std::vector<double>& means() const noexcept { return means_; }
  [[nodiscard]] const std::vector<double>& stddevs() const noexcept { return stddevs_; }

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;  // 1.0 substituted for constant features
};

}  // namespace rush::ml
