// Abstract classifier interface shared by every model in the pipeline.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace rush::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on the dataset. `sample_weights` (if non-empty) must have one
  /// entry per row; models that cannot honor weights ignore them.
  virtual void fit(const Dataset& data, std::span<const double> sample_weights = {}) = 0;

  /// Predicted class label for one feature vector.
  [[nodiscard]] virtual int predict(std::span<const double> x) const = 0;

  /// Per-class scores summing to 1 (vote fractions / weighted votes).
  [[nodiscard]] virtual std::vector<double> predict_proba(std::span<const double> x) const = 0;

  /// Write the same per-class scores predict_proba returns into `out`
  /// (size num_classes()). The base implementation routes through
  /// predict_proba and allocates; the compiled-tree models override it
  /// with an allocation-free flat-array walk.
  virtual void predict_proba_into(std::span<const double> x, std::span<double> out) const;

  /// Scores into `out` plus the argmax label in one call — the zero-alloc
  /// steady-state entry point (given a zero-alloc predict_proba_into).
  int predict_into(std::span<const double> x, std::span<double> out) const {
    predict_proba_into(x, out);
    int best = 0;
    for (std::size_t c = 1; c < out.size(); ++c) {
      if (out[c] > out[static_cast<std::size_t>(best)]) best = static_cast<int>(c);
    }
    return best;
  }

  /// Batched labels for every row of `data` into `out` (size
  /// data.rows()). Overrides reuse one scratch buffer across all rows.
  virtual void predict_many(const Dataset& data, std::span<int> out) const;

  [[nodiscard]] virtual int num_classes() const noexcept = 0;
  [[nodiscard]] virtual std::size_t num_features() const noexcept = 0;
  [[nodiscard]] virtual bool is_fitted() const noexcept = 0;

  /// Model type tag used by the serialization registry ("extra_trees"...).
  [[nodiscard]] virtual std::string type_name() const = 0;

  /// Per-feature importance scores summing to 1; empty if the model has
  /// no native notion of importance (e.g., KNN).
  [[nodiscard]] virtual std::vector<double> feature_importances() const { return {}; }

  /// Unfitted copy with the same hyperparameters (for cross-validation).
  [[nodiscard]] virtual std::unique_ptr<Classifier> clone_config() const = 0;

  /// Serialize the fitted model (type-specific body; see serialize.hpp for
  /// the framed container format).
  virtual void save_body(std::ostream& os) const = 0;
  virtual void load_body(std::istream& is) = 0;

  /// Convenience: predictions for every row of a dataset.
  [[nodiscard]] std::vector<int> predict_all(const Dataset& data) const {
    std::vector<int> out;
    out.reserve(data.rows());
    for (std::size_t i = 0; i < data.rows(); ++i) out.push_back(predict(data.row(i)));
    return out;
  }
};

}  // namespace rush::ml
