#include "ml/dataset.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace rush::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : num_features_(feature_names.size()), feature_names_(std::move(feature_names)) {
  RUSH_EXPECTS(num_features_ > 0);
}

void Dataset::add_row(std::span<const double> features, int label, int group) {
  if (num_features_ == 0) {
    // First row of a default-constructed dataset fixes the width.
    num_features_ = features.size();
    feature_names_.resize(num_features_);
    for (std::size_t i = 0; i < num_features_; ++i)
      feature_names_[i] = "f" + std::to_string(i);
  }
  RUSH_EXPECTS(features.size() == num_features_);
  RUSH_EXPECTS(label >= 0);
  x_.insert(x_.end(), features.begin(), features.end());
  labels_.push_back(label);
  groups_.push_back(group);
}

std::span<const double> Dataset::row(std::size_t i) const {
  RUSH_EXPECTS(i < rows());
  return {x_.data() + i * num_features_, num_features_};
}

int Dataset::label(std::size_t i) const {
  RUSH_EXPECTS(i < rows());
  return labels_[i];
}

int Dataset::group(std::size_t i) const {
  RUSH_EXPECTS(i < rows());
  return groups_[i];
}

int Dataset::num_classes() const noexcept {
  int max_label = -1;
  for (int y : labels_) max_label = std::max(max_label, y);
  return max_label + 1;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes()), 0);
  for (int y : labels_) ++counts[static_cast<std::size_t>(y)];
  return counts;
}

std::vector<int> Dataset::distinct_groups() const {
  std::vector<int> out(groups_);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Dataset Dataset::subset(std::span<const std::size_t> row_indices) const {
  Dataset out(feature_names_);
  for (std::size_t i : row_indices) {
    RUSH_EXPECTS(i < rows());
    out.add_row(row(i), labels_[i], groups_[i]);
  }
  return out;
}

Dataset Dataset::select_features(std::span<const std::size_t> feature_indices) const {
  RUSH_EXPECTS(!feature_indices.empty());
  std::vector<std::string> names;
  names.reserve(feature_indices.size());
  for (std::size_t f : feature_indices) {
    RUSH_EXPECTS(f < num_features_);
    names.push_back(feature_names_[f]);
  }
  Dataset out(std::move(names));
  std::vector<double> buf(feature_indices.size());
  for (std::size_t i = 0; i < rows(); ++i) {
    const auto r = row(i);
    for (std::size_t j = 0; j < feature_indices.size(); ++j) buf[j] = r[feature_indices[j]];
    out.add_row(buf, labels_[i], groups_[i]);
  }
  return out;
}

std::vector<double> Dataset::column(std::size_t feature) const {
  RUSH_EXPECTS(feature < num_features_);
  std::vector<double> out;
  out.reserve(rows());
  for (std::size_t i = 0; i < rows(); ++i) out.push_back(x_[i * num_features_ + feature]);
  return out;
}

void Dataset::set_labels(std::vector<int> labels) {
  RUSH_EXPECTS(labels.size() == labels_.size());
  for (int y : labels) RUSH_EXPECTS(y >= 0);
  labels_ = std::move(labels);
}

void Dataset::to_csv(std::ostream& os) const {
  CsvWriter writer(os);
  std::vector<std::string> header = feature_names_;
  header.emplace_back("label");
  header.emplace_back("group");
  writer.write_row(header);
  std::vector<double> buf(num_features_ + 2);
  for (std::size_t i = 0; i < rows(); ++i) {
    const auto r = row(i);
    std::copy(r.begin(), r.end(), buf.begin());
    buf[num_features_] = labels_[i];
    buf[num_features_ + 1] = groups_[i];
    writer.write_numeric_row(buf);
  }
}

Dataset Dataset::from_csv(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const auto rows = parse_csv(buffer.str());
  if (rows.empty()) throw ParseError("empty dataset CSV");
  const auto& header = rows.front();
  if (header.size() < 3 || header[header.size() - 2] != "label" || header.back() != "group")
    throw ParseError("dataset CSV must end with 'label,group' columns");

  std::vector<std::string> names(header.begin(), header.end() - 2);
  Dataset out(std::move(names));
  std::vector<double> buf(out.cols());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& cells = rows[i];
    if (cells.size() != header.size())
      throw ParseError("dataset CSV row " + std::to_string(i) + " has wrong arity");
    for (std::size_t j = 0; j < buf.size(); ++j) buf[j] = str::to_double(cells[j]);
    const int label = static_cast<int>(str::to_int(cells[cells.size() - 2]));
    const int group = static_cast<int>(str::to_int(cells.back()));
    out.add_row(buf, label, group);
  }
  return out;
}

}  // namespace rush::ml
