#include "ml/forest.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "common/task_pool.hpp"

namespace rush::ml {

Forest::Forest(ForestConfig config) : config_(config) {
  RUSH_EXPECTS(config_.num_trees > 0);
}

void Forest::fit(const Dataset& data, std::span<const double> sample_weights) {
  RUSH_EXPECTS(!data.empty());
  trees_.clear();
  num_classes_ = data.num_classes();
  num_features_ = data.cols();

  std::size_t max_features = config_.max_features;
  if (max_features == 0) {
    max_features = static_cast<std::size_t>(
        std::max(1.0, std::round(std::sqrt(static_cast<double>(data.cols())))));
  }

  // Seeds are drawn sequentially up front so results are identical
  // regardless of how many threads fit the (independent) trees.
  Rng rng(config_.seed);
  std::vector<std::uint64_t> tree_seeds(config_.num_trees);
  std::vector<std::uint64_t> boot_seeds(config_.num_trees);
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    tree_seeds[t] = rng.next();
    boot_seeds[t] = rng.next();
  }

  trees_.clear();
  trees_.reserve(config_.num_trees);
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    TreeConfig tc;
    tc.max_depth = config_.max_depth;
    tc.min_samples_leaf = config_.min_samples_leaf;
    tc.max_features = max_features;
    tc.random_thresholds = config_.random_thresholds;
    tc.presort = config_.presort;
    tc.seed = tree_seeds[t];
    trees_.emplace_back(tc);
  }

  // Trees are independent and their seeds are fixed above, so they fit
  // on the shared task pool; each writes only trees_[t].
  shared_pool().parallel_for_indexed(config_.num_trees, [&](std::size_t t) {
    if (config_.bootstrap) {
      Rng boot_rng(boot_seeds[t]);
      std::vector<std::size_t> sample(data.rows());
      for (auto& s : sample)
        s = static_cast<std::size_t>(
            boot_rng.uniform_int(0, static_cast<std::int64_t>(data.rows()) - 1));
      const Dataset boot = data.subset(sample);
      // Bootstrapped rows inherit their original weights.
      if (sample_weights.empty()) {
        trees_[t].fit(boot);
      } else {
        std::vector<double> w(sample.size());
        for (std::size_t i = 0; i < sample.size(); ++i) w[i] = sample_weights[sample[i]];
        trees_[t].fit(boot, w);
      }
    } else {
      trees_[t].fit(data, sample_weights);
    }
  });

  compile_();
}

void Forest::compile_() {
  compiled_.clear();
  for (const DecisionTree& tree : trees_) compiled_.add_tree(tree.compiled());
}

std::vector<double> Forest::predict_proba(std::span<const double> x) const {
  RUSH_EXPECTS(is_fitted());
  std::vector<double> proba(static_cast<std::size_t>(num_classes_), 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto p = tree.predict_proba(x);
    for (std::size_t c = 0; c < proba.size() && c < p.size(); ++c) proba[c] += p[c];
  }
  for (double& p : proba) p /= static_cast<double>(trees_.size());
  return proba;
}

int Forest::predict(std::span<const double> x) const {
  RUSH_EXPECTS(is_fitted());
  const auto k = static_cast<std::size_t>(num_classes_);
  // Small stack buffer covers every class count the pipeline produces;
  // the heap fallback keeps arbitrary ensembles correct.
  constexpr std::size_t kStack = 16;
  double buf[kStack];
  if (k <= kStack) {
    const std::span<double> out(buf, k);
    compiled_.mean_proba_into(x, out);
    return argmax_first(out);
  }
  std::vector<double> out(k);
  compiled_.mean_proba_into(x, out);
  return argmax_first(out);
}

void Forest::predict_proba_into(std::span<const double> x, std::span<double> out) const {
  RUSH_EXPECTS(is_fitted());
  RUSH_EXPECTS(x.size() == num_features_);
  RUSH_EXPECTS(out.size() == static_cast<std::size_t>(num_classes_));
  compiled_.mean_proba_into(x, out);
}

void Forest::predict_many(const Dataset& data, std::span<int> out) const {
  RUSH_EXPECTS(is_fitted());
  RUSH_EXPECTS(data.cols() == num_features_);
  RUSH_EXPECTS(out.size() == data.rows());
  std::vector<double> proba(static_cast<std::size_t>(num_classes_));
  for (std::size_t i = 0; i < data.rows(); ++i) {
    compiled_.mean_proba_into(data.row(i), proba);
    out[i] = argmax_first(proba);
  }
}

std::vector<double> Forest::feature_importances() const {
  if (!is_fitted()) return {};
  std::vector<double> out(num_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto imp = tree.feature_importances();
    for (std::size_t f = 0; f < out.size(); ++f) out[f] += imp[f];
  }
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0)
    for (double& v : out) v /= total;
  return out;
}

std::unique_ptr<Classifier> Forest::clone_config() const {
  return std::make_unique<Forest>(config_);
}

void Forest::save_body(std::ostream& os) const {
  RUSH_EXPECTS(is_fitted());
  os << "flavor " << (config_.random_thresholds ? 1 : 0) << "\n";
  os << "classes " << num_classes_ << "\n";
  os << "features " << num_features_ << "\n";
  os << "trees " << trees_.size() << "\n";
  for (const DecisionTree& tree : trees_) tree.save_body(os);
}

void Forest::load_body(std::istream& is) {
  std::string tag;
  int flavor = 0;
  std::size_t tree_count = 0;
  is >> tag >> flavor;
  if (tag != "flavor") throw ParseError("forest: bad flavor header");
  config_.random_thresholds = flavor != 0;
  is >> tag >> num_classes_;
  if (tag != "classes" || num_classes_ <= 0) throw ParseError("forest: bad classes header");
  is >> tag >> num_features_;
  if (tag != "features") throw ParseError("forest: bad features header");
  is >> tag >> tree_count;
  if (tag != "trees" || tree_count == 0) throw ParseError("forest: bad trees header");
  trees_.clear();
  trees_.reserve(tree_count);
  for (std::size_t t = 0; t < tree_count; ++t) {
    DecisionTree tree;
    tree.load_body(is);
    trees_.push_back(std::move(tree));
  }
  config_.num_trees = tree_count;
  compile_();
}

ForestConfig decision_forest_config(std::size_t num_trees, std::uint64_t seed) {
  ForestConfig c;
  c.num_trees = num_trees;
  c.bootstrap = true;
  c.random_thresholds = false;
  c.seed = seed;
  return c;
}

ForestConfig extra_trees_config(std::size_t num_trees, std::uint64_t seed) {
  ForestConfig c;
  c.num_trees = num_trees;
  c.bootstrap = false;
  c.random_thresholds = true;
  c.seed = seed;
  return c;
}

}  // namespace rush::ml
