// CART decision tree with weighted samples.
//
// One implementation serves two ensemble styles:
//  - exact mode: every candidate feature is sorted and the best weighted
//    Gini split chosen (classic CART, used by DecisionForest and as the
//    AdaBoost base learner);
//  - random-threshold mode: one uniform threshold per candidate feature
//    (Extremely Randomized Trees).
// Per-node feature subsampling (`max_features`) supports both forests.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "ml/classifier.hpp"
#include "ml/compiled.hpp"

namespace rush::ml {

struct TreeConfig {
  int max_depth = 18;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Candidate features per node; 0 means all features.
  std::size_t max_features = 0;
  /// Extra-trees style uniform random thresholds instead of exact search.
  bool random_thresholds = false;
  /// Exact mode only: sort every feature once per fit and thread the
  /// sorted indices through the recursion by stable partitioning
  /// (O(features·n log n + depth·features·n)) instead of re-sorting every
  /// candidate feature at every node (O(depth·features·n log n)). Both
  /// algorithms produce bit-identical trees; the per-node-sort path is
  /// retained as the reference for differential testing.
  bool presort = true;
  std::uint64_t seed = 1;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(TreeConfig config = {});

  void fit(const Dataset& data, std::span<const double> sample_weights = {}) override;
  /// Direct argmax walk over the compiled arrays — no temporary vector.
  [[nodiscard]] int predict(std::span<const double> x) const override;
  /// Nested-node walk kept as the reference the compiled plane is
  /// differentially tested against.
  [[nodiscard]] std::vector<double> predict_proba(std::span<const double> x) const override;
  void predict_proba_into(std::span<const double> x, std::span<double> out) const override;
  void predict_many(const Dataset& data, std::span<int> out) const override;
  [[nodiscard]] int num_classes() const noexcept override { return num_classes_; }
  [[nodiscard]] std::size_t num_features() const noexcept override { return num_features_; }
  [[nodiscard]] bool is_fitted() const noexcept override { return !nodes_.empty(); }
  [[nodiscard]] std::string type_name() const override { return "decision_tree"; }
  [[nodiscard]] std::vector<double> feature_importances() const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone_config() const override;
  void save_body(std::ostream& os) const override;
  void load_body(std::istream& is) override;

  [[nodiscard]] const TreeConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] int depth() const noexcept;
  /// Flat SoA twin of the fitted tree (rebuilt after fit and load).
  [[nodiscard]] const CompiledTree& compiled() const noexcept { return compiled_; }

 private:
  struct Node {
    int feature = -1;  // -1 marks a leaf
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::vector<double> proba;  // leaf only: per-class probability
  };

  struct SplitResult {
    bool found = false;
    int feature = -1;
    double threshold = 0.0;
    double impurity_decrease = 0.0;
  };

  /// Per-fit scratch: once-per-fit presorted feature indices plus the
  /// partition buffers that thread them through the recursion.
  struct FitWorkspace;

  std::int32_t build(const Dataset& data, std::span<const double> weights,
                     std::vector<std::size_t>& indices, int depth, Rng& rng, FitWorkspace& ws,
                     std::size_t lo, std::size_t hi);
  SplitResult find_split(const Dataset& data, std::span<const double> weights,
                         const std::vector<std::size_t>& indices, Rng& rng,
                         const FitWorkspace& ws, std::size_t lo, std::size_t hi) const;
  std::int32_t make_leaf(const Dataset& data, std::span<const double> weights,
                         const std::vector<std::size_t>& indices);
  void compile();

  TreeConfig config_;
  int num_classes_ = 0;
  std::size_t num_features_ = 0;
  std::vector<Node> nodes_;               // nodes_[0] is the root when fitted
  std::vector<double> importances_;       // accumulated impurity decrease
  CompiledTree compiled_;                 // flat inference plane
};

}  // namespace rush::ml
