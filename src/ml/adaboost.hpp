// AdaBoost (SAMME) over shallow CART trees.
//
// The paper finds AdaBoost the best-performing classifier (Fig. 3) and
// uses it for all scheduling experiments. SAMME generalizes the classic
// two-class algorithm to K classes: round m fits a weighted base tree,
// computes weighted error e_m, sets
//     alpha_m = log((1 - e_m) / e_m) + log(K - 1)
// and re-weights misclassified samples by exp(alpha_m).
#pragma once

#include "ml/tree.hpp"

namespace rush::ml {

struct AdaBoostConfig {
  std::size_t num_rounds = 80;
  int base_max_depth = 3;
  /// Threaded to TreeConfig::presort for every base tree (see tree.hpp).
  bool presort = true;
  std::uint64_t seed = 11;
};

class AdaBoost final : public Classifier {
 public:
  explicit AdaBoost(AdaBoostConfig config = {});

  void fit(const Dataset& data, std::span<const double> sample_weights = {}) override;
  /// Argmax over the compiled forest's weighted votes; no temporary
  /// vector for ensembles up to 16 classes.
  [[nodiscard]] int predict(std::span<const double> x) const override;
  /// Nested stage-loop accumulation kept as the differential-test
  /// reference.
  [[nodiscard]] std::vector<double> predict_proba(std::span<const double> x) const override;
  void predict_proba_into(std::span<const double> x, std::span<double> out) const override;
  void predict_many(const Dataset& data, std::span<int> out) const override;
  [[nodiscard]] int num_classes() const noexcept override { return num_classes_; }
  [[nodiscard]] std::size_t num_features() const noexcept override { return num_features_; }
  [[nodiscard]] bool is_fitted() const noexcept override { return !stages_.empty(); }
  [[nodiscard]] std::string type_name() const override { return "adaboost"; }
  [[nodiscard]] std::vector<double> feature_importances() const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone_config() const override;
  void save_body(std::ostream& os) const override;
  void load_body(std::istream& is) override;

  [[nodiscard]] std::size_t stage_count() const noexcept { return stages_.size(); }
  [[nodiscard]] const AdaBoostConfig& config() const noexcept { return config_; }
  /// Flat concatenation of every stage tree weighted by its alpha
  /// (rebuilt after fit and load).
  [[nodiscard]] const CompiledForest& compiled() const noexcept { return compiled_; }

 private:
  struct Stage {
    DecisionTree tree;
    double alpha = 0.0;
  };

  void compile_();

  AdaBoostConfig config_;
  int num_classes_ = 0;
  std::size_t num_features_ = 0;
  std::vector<Stage> stages_;
  CompiledForest compiled_;
};

}  // namespace rush::ml
