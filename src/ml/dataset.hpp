// Tabular dataset for the variability classifiers.
//
// Row-major feature matrix with integer class labels and an optional
// group id per row (the application index, used by leave-one-app-out
// cross-validation). Plays the role of the paper's pickled Pandas
// dataframe, including CSV persistence so collected corpora can be cached
// and inspected.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace rush::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names);

  void add_row(std::span<const double> features, int label, int group = 0);

  [[nodiscard]] std::size_t rows() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return num_features_; }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }

  [[nodiscard]] std::span<const double> row(std::size_t i) const;
  [[nodiscard]] int label(std::size_t i) const;
  [[nodiscard]] int group(std::size_t i) const;
  [[nodiscard]] const std::vector<int>& labels() const noexcept { return labels_; }
  [[nodiscard]] const std::vector<int>& groups() const noexcept { return groups_; }
  [[nodiscard]] const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }

  /// 1 + max label (0 for an empty dataset).
  [[nodiscard]] int num_classes() const noexcept;
  /// Count of rows with each label, indexed by label.
  [[nodiscard]] std::vector<std::size_t> class_counts() const;
  /// Sorted distinct group ids.
  [[nodiscard]] std::vector<int> distinct_groups() const;

  /// New dataset with only the given rows (indices may repeat — used by
  /// bootstrap resampling).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> row_indices) const;
  /// New dataset keeping only the given feature columns, in given order.
  [[nodiscard]] Dataset select_features(std::span<const std::size_t> feature_indices) const;
  /// Values of one feature column across all rows.
  [[nodiscard]] std::vector<double> column(std::size_t feature) const;

  /// Overwrite all labels (e.g., re-labeling binary -> 3-class). Size must
  /// match rows().
  void set_labels(std::vector<int> labels);

  /// CSV round-trip: header is feature names + "label" + "group".
  void to_csv(std::ostream& os) const;
  static Dataset from_csv(std::istream& is);

 private:
  std::size_t num_features_ = 0;
  std::vector<std::string> feature_names_;
  std::vector<double> x_;  // rows x cols, row-major
  std::vector<int> labels_;
  std::vector<int> groups_;
};

}  // namespace rush::ml
