// Recursive feature elimination (paper §IV-A).
//
// "Features are eliminated recursively and the set with the highest F1
// score are kept. For the Extra Trees and Decision Forest models, which
// have metrics for feature importance, the least important features are
// removed first."
//
// For models without native importances the ranking falls back to the
// absolute point-biserial correlation between each feature and the label.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"

namespace rush::ml {

struct RfeConfig {
  std::size_t min_features = 16;
  /// Fraction of remaining features removed per round (at least 1).
  double step_fraction = 0.15;
  std::size_t cv_folds = 5;
  std::uint64_t seed = 13;
};

struct RfeRound {
  std::size_t num_features = 0;
  double cv_f1 = 0.0;
};

struct RfeResult {
  /// Original-dataset feature indices of the best-scoring set (ascending).
  std::vector<std::size_t> selected;
  double best_f1 = 0.0;
  /// (feature count, CV F1) per elimination round, largest set first.
  std::vector<RfeRound> history;
};

RfeResult recursive_feature_elimination(const Classifier& prototype, const Dataset& data,
                                        const RfeConfig& config = {});

}  // namespace rush::ml
