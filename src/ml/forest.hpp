// Tree ensembles: Decision (random) Forest and Extremely Randomized Trees.
//
// DecisionForest: bootstrap-resampled exact CART trees with per-node
// feature subsampling (sqrt(d) by default), majority soft-vote.
// ExtraTrees: all training rows per tree, random thresholds.
// These are two of the four model families compared in the paper's Fig. 3.
#pragma once

#include "ml/tree.hpp"

namespace rush::ml {

struct ForestConfig {
  std::size_t num_trees = 60;
  int max_depth = 14;
  std::size_t min_samples_leaf = 1;
  /// Candidate features per node; 0 means sqrt(num_features).
  std::size_t max_features = 0;
  bool bootstrap = true;
  bool random_thresholds = false;
  /// Threaded to TreeConfig::presort (exact mode only; see tree.hpp).
  bool presort = true;
  std::uint64_t seed = 7;
};

class Forest : public Classifier {
 public:
  explicit Forest(ForestConfig config = {});

  void fit(const Dataset& data, std::span<const double> sample_weights = {}) override;
  /// Argmax over the compiled forest's mean leaf probabilities; no
  /// temporary vector for ensembles up to 16 classes.
  [[nodiscard]] int predict(std::span<const double> x) const override;
  /// Nested per-tree accumulation kept as the differential-test reference.
  [[nodiscard]] std::vector<double> predict_proba(std::span<const double> x) const override;
  void predict_proba_into(std::span<const double> x, std::span<double> out) const override;
  void predict_many(const Dataset& data, std::span<int> out) const override;
  [[nodiscard]] int num_classes() const noexcept override { return num_classes_; }
  [[nodiscard]] std::size_t num_features() const noexcept override { return num_features_; }
  [[nodiscard]] bool is_fitted() const noexcept override { return !trees_.empty(); }
  [[nodiscard]] std::string type_name() const override {
    return config_.random_thresholds ? "extra_trees" : "decision_forest";
  }
  [[nodiscard]] std::vector<double> feature_importances() const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone_config() const override;
  void save_body(std::ostream& os) const override;
  void load_body(std::istream& is) override;

  [[nodiscard]] const ForestConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }
  /// Flat concatenation of every tree's compiled plane (rebuilt after fit
  /// and load).
  [[nodiscard]] const CompiledForest& compiled() const noexcept { return compiled_; }

 private:
  void compile_();

  ForestConfig config_;
  int num_classes_ = 0;
  std::size_t num_features_ = 0;
  std::vector<DecisionTree> trees_;
  CompiledForest compiled_;
};

/// Factory helpers with the paper's two forest flavors.
ForestConfig decision_forest_config(std::size_t num_trees = 60, std::uint64_t seed = 7);
ForestConfig extra_trees_config(std::size_t num_trees = 60, std::uint64_t seed = 7);

}  // namespace rush::ml
