#include "ml/adaboost.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace rush::ml {

AdaBoost::AdaBoost(AdaBoostConfig config) : config_(config) {
  RUSH_EXPECTS(config_.num_rounds > 0);
  RUSH_EXPECTS(config_.base_max_depth > 0);
}

void AdaBoost::fit(const Dataset& data, std::span<const double> sample_weights) {
  RUSH_EXPECTS(!data.empty());
  stages_.clear();
  num_classes_ = std::max(2, data.num_classes());
  num_features_ = data.cols();
  const double k = static_cast<double>(num_classes_);

  std::vector<double> weights;
  if (sample_weights.empty()) {
    weights.assign(data.rows(), 1.0 / static_cast<double>(data.rows()));
  } else {
    RUSH_EXPECTS(sample_weights.size() == data.rows());
    weights.assign(sample_weights.begin(), sample_weights.end());
    double total = 0.0;
    for (double w : weights) total += w;
    RUSH_EXPECTS(total > 0.0);
    for (double& w : weights) w /= total;
  }

  Rng rng(config_.seed);
  for (std::size_t round = 0; round < config_.num_rounds; ++round) {
    TreeConfig tc;
    tc.max_depth = config_.base_max_depth;
    tc.min_samples_leaf = 1;
    tc.presort = config_.presort;
    tc.seed = rng.next();
    Stage stage{DecisionTree(tc), 0.0};
    stage.tree.fit(data, weights);

    double error = 0.0;
    std::vector<bool> wrong(data.rows());
    for (std::size_t i = 0; i < data.rows(); ++i) {
      wrong[i] = stage.tree.predict(data.row(i)) != data.label(i);
      if (wrong[i]) error += weights[i];
    }

    if (error <= 1e-12) {
      // Perfect stage: give it a large but finite say and stop boosting.
      stage.alpha = std::log(1e12) + std::log(k - 1.0);
      stages_.push_back(std::move(stage));
      break;
    }
    // SAMME requires the base learner to beat random guessing (1 - 1/K).
    if (error >= 1.0 - 1.0 / k) break;

    stage.alpha = std::log((1.0 - error) / error) + std::log(k - 1.0);
    const double boost = std::exp(stage.alpha);
    double total = 0.0;
    for (std::size_t i = 0; i < data.rows(); ++i) {
      if (wrong[i]) weights[i] *= boost;
      total += weights[i];
    }
    for (double& w : weights) w /= total;
    stages_.push_back(std::move(stage));
  }

  // Degenerate data (single class, unbeatable error): fall back to one
  // unweighted tree so the model is still usable.
  if (stages_.empty()) {
    TreeConfig tc;
    tc.max_depth = config_.base_max_depth;
    tc.presort = config_.presort;
    tc.seed = rng.next();
    Stage stage{DecisionTree(tc), 1.0};
    stage.tree.fit(data);
    stages_.push_back(std::move(stage));
  }

  compile_();
}

void AdaBoost::compile_() {
  compiled_.clear();
  for (const Stage& s : stages_) compiled_.add_tree(s.tree.compiled(), s.alpha);
}

std::vector<double> AdaBoost::predict_proba(std::span<const double> x) const {
  RUSH_EXPECTS(is_fitted());
  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  double total_alpha = 0.0;
  for (const Stage& s : stages_) {
    votes[static_cast<std::size_t>(s.tree.predict(x))] += s.alpha;
    total_alpha += s.alpha;
  }
  if (total_alpha > 0.0)
    for (double& v : votes) v /= total_alpha;
  return votes;
}

int AdaBoost::predict(std::span<const double> x) const {
  RUSH_EXPECTS(is_fitted());
  const auto k = static_cast<std::size_t>(num_classes_);
  constexpr std::size_t kStack = 16;
  double buf[kStack];
  if (k <= kStack) {
    const std::span<double> out(buf, k);
    compiled_.vote_proba_into(x, out);
    return argmax_first(out);
  }
  std::vector<double> out(k);
  compiled_.vote_proba_into(x, out);
  return argmax_first(out);
}

void AdaBoost::predict_proba_into(std::span<const double> x, std::span<double> out) const {
  RUSH_EXPECTS(is_fitted());
  RUSH_EXPECTS(x.size() == num_features_);
  RUSH_EXPECTS(out.size() == static_cast<std::size_t>(num_classes_));
  compiled_.vote_proba_into(x, out);
}

void AdaBoost::predict_many(const Dataset& data, std::span<int> out) const {
  RUSH_EXPECTS(is_fitted());
  RUSH_EXPECTS(data.cols() == num_features_);
  RUSH_EXPECTS(out.size() == data.rows());
  std::vector<double> votes(static_cast<std::size_t>(num_classes_));
  for (std::size_t i = 0; i < data.rows(); ++i) {
    compiled_.vote_proba_into(data.row(i), votes);
    out[i] = argmax_first(votes);
  }
}

std::vector<double> AdaBoost::feature_importances() const {
  if (!is_fitted()) return {};
  std::vector<double> out(num_features_, 0.0);
  double total_alpha = 0.0;
  for (const Stage& s : stages_) total_alpha += s.alpha;
  if (total_alpha <= 0.0) return out;
  for (const Stage& s : stages_) {
    const auto imp = s.tree.feature_importances();
    for (std::size_t f = 0; f < out.size(); ++f) out[f] += s.alpha / total_alpha * imp[f];
  }
  return out;
}

std::unique_ptr<Classifier> AdaBoost::clone_config() const {
  return std::make_unique<AdaBoost>(config_);
}

void AdaBoost::save_body(std::ostream& os) const {
  RUSH_EXPECTS(is_fitted());
  os << "classes " << num_classes_ << "\n";
  os << "features " << num_features_ << "\n";
  os << "stages " << stages_.size() << "\n";
  os.precision(17);
  for (const Stage& s : stages_) {
    os << "alpha " << s.alpha << "\n";
    s.tree.save_body(os);
  }
}

void AdaBoost::load_body(std::istream& is) {
  std::string tag;
  std::size_t stage_count = 0;
  is >> tag >> num_classes_;
  if (tag != "classes" || num_classes_ < 2) throw ParseError("adaboost: bad classes header");
  is >> tag >> num_features_;
  if (tag != "features") throw ParseError("adaboost: bad features header");
  is >> tag >> stage_count;
  if (tag != "stages" || stage_count == 0) throw ParseError("adaboost: bad stages header");
  stages_.clear();
  stages_.reserve(stage_count);
  for (std::size_t i = 0; i < stage_count; ++i) {
    is >> tag;
    Stage s;
    if (tag != "alpha") throw ParseError("adaboost: missing alpha");
    is >> s.alpha;
    if (!is) throw ParseError("adaboost: malformed alpha");
    s.tree.load_body(is);
    stages_.push_back(std::move(s));
  }
  compile_();
}

}  // namespace rush::ml
