#include "ml/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rush::ml {

ConfusionMatrix::ConfusionMatrix(int num_classes) : num_classes_(num_classes) {
  RUSH_EXPECTS(num_classes > 0);
  cells_.assign(static_cast<std::size_t>(num_classes) * static_cast<std::size_t>(num_classes),
                0);
}

ConfusionMatrix::ConfusionMatrix(std::span<const int> y_true, std::span<const int> y_pred,
                                 int num_classes)
    : ConfusionMatrix(num_classes) {
  RUSH_EXPECTS(y_true.size() == y_pred.size());
  for (std::size_t i = 0; i < y_true.size(); ++i) add(y_true[i], y_pred[i]);
}

void ConfusionMatrix::add(int actual, int predicted) {
  RUSH_EXPECTS(actual >= 0 && actual < num_classes_);
  RUSH_EXPECTS(predicted >= 0 && predicted < num_classes_);
  ++cells_[static_cast<std::size_t>(actual) * static_cast<std::size_t>(num_classes_) +
           static_cast<std::size_t>(predicted)];
  ++total_;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  RUSH_EXPECTS(other.num_classes_ == num_classes_);
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

std::size_t ConfusionMatrix::count(int actual, int predicted) const {
  RUSH_EXPECTS(actual >= 0 && actual < num_classes_);
  RUSH_EXPECTS(predicted >= 0 && predicted < num_classes_);
  return cells_[static_cast<std::size_t>(actual) * static_cast<std::size_t>(num_classes_) +
                static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (int c = 0; c < num_classes_; ++c)
    correct += cells_[static_cast<std::size_t>(c) * static_cast<std::size_t>(num_classes_) +
                      static_cast<std::size_t>(c)];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int positive) const {
  std::size_t tp = count(positive, positive);
  std::size_t fp = 0;
  for (int a = 0; a < num_classes_; ++a)
    if (a != positive) fp += count(a, positive);
  return (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double ConfusionMatrix::recall(int positive) const {
  std::size_t tp = count(positive, positive);
  std::size_t fn = 0;
  for (int p = 0; p < num_classes_; ++p)
    if (p != positive) fn += count(positive, p);
  return (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double ConfusionMatrix::f1(int positive) const {
  const std::size_t tp = count(positive, positive);
  std::size_t fp = 0, fn = 0;
  for (int c = 0; c < num_classes_; ++c) {
    if (c == positive) continue;
    fp += count(c, positive);
    fn += count(positive, c);
  }
  const double denom = static_cast<double>(tp) + 0.5 * static_cast<double>(fp + fn);
  return denom == 0.0 ? 0.0 : static_cast<double>(tp) / denom;
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (int c = 0; c < num_classes_; ++c) sum += f1(c);
  return sum / static_cast<double>(num_classes_);
}

namespace {
ConfusionMatrix binary_matrix(std::span<const int> y_true, std::span<const int> y_pred) {
  int k = 2;
  for (int y : y_true) k = std::max(k, y + 1);
  for (int y : y_pred) k = std::max(k, y + 1);
  return ConfusionMatrix(y_true, y_pred, k);
}
}  // namespace

double f1_score(std::span<const int> y_true, std::span<const int> y_pred) {
  return binary_matrix(y_true, y_pred).f1(1);
}
double precision_score(std::span<const int> y_true, std::span<const int> y_pred) {
  return binary_matrix(y_true, y_pred).precision(1);
}
double recall_score(std::span<const int> y_true, std::span<const int> y_pred) {
  return binary_matrix(y_true, y_pred).recall(1);
}
double accuracy_score(std::span<const int> y_true, std::span<const int> y_pred) {
  return binary_matrix(y_true, y_pred).accuracy();
}

}  // namespace rush::ml
