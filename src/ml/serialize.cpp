#include "ml/serialize.hpp"

#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "ml/adaboost.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/tree.hpp"

namespace rush::ml {

namespace {
constexpr const char* kMagic = "rush-model";
constexpr int kVersion = 1;
}  // namespace

std::unique_ptr<Classifier> make_classifier(const std::string& type_name) {
  if (type_name == "decision_tree") return std::make_unique<DecisionTree>();
  if (type_name == "decision_forest") return std::make_unique<Forest>(decision_forest_config());
  if (type_name == "extra_trees") return std::make_unique<Forest>(extra_trees_config());
  if (type_name == "adaboost") return std::make_unique<AdaBoost>();
  if (type_name == "knn") return std::make_unique<Knn>();
  throw ParseError("unknown classifier type '" + type_name + "'");
}

void save_classifier(const Classifier& model, std::ostream& os) {
  RUSH_EXPECTS(model.is_fitted());
  os << kMagic << " " << kVersion << "\n";
  os << "type " << model.type_name() << "\n";
  model.save_body(os);
}

std::unique_ptr<Classifier> load_classifier(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != kMagic) throw ParseError("not a rush-model stream");
  if (version != kVersion)
    throw ParseError("unsupported rush-model version " + std::to_string(version));
  std::string tag, type;
  is >> tag >> type;
  if (tag != "type") throw ParseError("rush-model: missing type line");
  auto model = make_classifier(type);
  model->load_body(is);
  return model;
}

}  // namespace rush::ml
