#include "faults/plan.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace rush::faults {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader. obs::JsonWriter is write-only, and fault plans are
// the repo's first JSON *input*, so this is a purpose-built recursive
// descent parser for the subset plans need: objects, arrays, strings,
// numbers, booleans, null. It rejects trailing garbage and duplicate work
// is irrelevant — plans are tiny and parsed once per run.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;                            // Array
  std::vector<std::pair<std::string, JsonValue>> members;  // Object, in file order
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("fault plan JSON: " + what + " (at byte " + std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.text = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("invalid literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // Plan strings are ASCII identifiers; anything wider is noise.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      bool any = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        any = true;
      }
      return any;
    };
    if (!digits()) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) fail("invalid number");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void plan_error(std::size_t event_index, const std::string& what) {
  throw ParseError("fault plan event[" + std::to_string(event_index) + "]: " + what);
}

double require_number(const JsonValue& v, std::size_t index, const std::string& key) {
  if (v.kind != JsonValue::Kind::Number) plan_error(index, "\"" + key + "\" must be a number");
  return v.number;
}

FaultEvent parse_event(const JsonValue& obj, std::size_t index) {
  if (obj.kind != JsonValue::Kind::Object) plan_error(index, "must be an object");
  FaultEvent ev;
  bool have_kind = false;
  bool have_at = false;
  for (const auto& [key, value] : obj.members) {
    if (key == "kind") {
      if (value.kind != JsonValue::Kind::String || !fault_kind_from_name(value.text, ev.kind))
        plan_error(index, "unknown \"kind\" (see docs/fault-injection.md for the taxonomy)");
      have_kind = true;
    } else if (key == "at_s") {
      ev.at_s = require_number(value, index, key);
      have_at = true;
    } else if (key == "node") {
      ev.node = static_cast<cluster::NodeId>(require_number(value, index, key));
    } else if (key == "link") {
      ev.link = static_cast<cluster::LinkId>(require_number(value, index, key));
    } else if (key == "factor") {
      ev.factor = require_number(value, index, key);
    } else if (key == "duration_s") {
      ev.duration_s = require_number(value, index, key);
    } else {
      plan_error(index, "unknown key \"" + key + "\"");
    }
  }
  if (!have_kind) plan_error(index, "missing required key \"kind\"");
  if (!have_at) plan_error(index, "missing required key \"at_s\"");
  return ev;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::NodeCrash: return "node_crash";
    case FaultKind::NodeDrain: return "node_drain";
    case FaultKind::NodeRestore: return "node_restore";
    case FaultKind::LinkDegrade: return "link_degrade";
    case FaultKind::LinkRestore: return "link_restore";
    case FaultKind::SamplerDropout: return "sampler_dropout";
    case FaultKind::CounterCorrupt: return "counter_corrupt";
    case FaultKind::CanaryTimeout: return "canary_timeout";
  }
  return "unknown";
}

bool fault_kind_from_name(std::string_view name, FaultKind& out) noexcept {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (name == fault_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

void FaultPlan::validate() const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    if (!std::isfinite(ev.at_s) || ev.at_s < 0.0) plan_error(i, "\"at_s\" must be finite and >= 0");
    if (!std::isfinite(ev.duration_s) || ev.duration_s < 0.0)
      plan_error(i, "\"duration_s\" must be finite and >= 0");
    switch (ev.kind) {
      case FaultKind::NodeCrash:
      case FaultKind::NodeDrain:
      case FaultKind::NodeRestore:
        if (ev.node < 0) plan_error(i, "node-scoped kinds require \"node\" >= 0");
        break;
      case FaultKind::LinkDegrade:
        if (ev.link < 0) plan_error(i, "link-scoped kinds require \"link\" >= 0");
        if (!std::isfinite(ev.factor) || ev.factor <= 0.0 || ev.factor > 1.0)
          plan_error(i, "\"factor\" must be in (0, 1]");
        break;
      case FaultKind::LinkRestore:
        if (ev.link < 0) plan_error(i, "link-scoped kinds require \"link\" >= 0");
        break;
      case FaultKind::SamplerDropout:
      case FaultKind::CanaryTimeout:
        if (ev.duration_s <= 0.0) plan_error(i, "window kinds require \"duration_s\" > 0");
        break;
      case FaultKind::CounterCorrupt:
        if (ev.duration_s <= 0.0) plan_error(i, "window kinds require \"duration_s\" > 0");
        break;  // node may stay -1: corrupt every node's readings
    }
  }
}

FaultPlan FaultPlan::from_json(std::string_view text) {
  JsonParser parser(text);
  const JsonValue doc = parser.parse_document();
  if (doc.kind != JsonValue::Kind::Object)
    throw ParseError("fault plan JSON: top level must be an object");
  FaultPlan plan;
  bool have_events = false;
  for (const auto& [key, value] : doc.members) {
    if (key == "v") {
      if (value.kind != JsonValue::Kind::Number || value.number != 1.0)
        throw ParseError("fault plan JSON: unsupported schema version (expected \"v\": 1)");
    } else if (key == "events") {
      if (value.kind != JsonValue::Kind::Array)
        throw ParseError("fault plan JSON: \"events\" must be an array");
      plan.events.reserve(value.items.size());
      for (std::size_t i = 0; i < value.items.size(); ++i)
        plan.events.push_back(parse_event(value.items[i], i));
      have_events = true;
    } else {
      throw ParseError("fault plan JSON: unknown top-level key \"" + key + "\"");
    }
  }
  if (!have_events) throw ParseError("fault plan JSON: missing top-level \"events\" array");
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::from_json(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in && !in.eof()) throw ParseError("fault plan JSON: stream read failed");
  return from_json(std::string_view(buf.view()));
}

FaultPlan FaultPlan::from_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("fault plan: cannot open " + path);
  return from_json(in);
}

}  // namespace rush::faults
