#include "faults/injector.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "cluster/network.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "telemetry/sampler.hpp"

namespace rush::faults {

FaultInjector::FaultInjector(sim::Engine& engine, FaultPlan plan)
    : engine_(engine), plan_(std::move(plan)) {
  plan_.validate();
  // Window kinds answer point-in-time queries; precompute their spans so
  // a query is a scan over a handful of plan entries, never engine state.
  for (const FaultEvent& ev : plan_.events) {
    const Window w{ev.at_s, ev.at_s + ev.duration_s, ev.node};
    switch (ev.kind) {
      case FaultKind::SamplerDropout: dropout_.push_back(w); break;
      case FaultKind::CounterCorrupt: corrupt_.push_back(w); break;
      case FaultKind::CanaryTimeout: canary_.push_back(w); break;
      default: break;
    }
  }
}

void FaultInjector::set_obs(obs::EventTrace* trace, obs::MetricsRegistry* metrics) {
  trace_ = trace;
  for (int k = 0; k < kNumFaultKinds; ++k) {
    metric_kind_[static_cast<std::size_t>(k)] =
        metrics ? &metrics->counter(std::string("faults.") +
                                    fault_kind_name(static_cast<FaultKind>(k)))
                : nullptr;
  }
  metric_frames_dropped_ = metrics ? &metrics->counter("faults.frames_dropped") : nullptr;
  metric_frames_corrupted_ = metrics ? &metrics->counter("faults.frames_corrupted") : nullptr;
}

void FaultInjector::attach_network(cluster::NetworkModel* net) { net_ = net; }

void FaultInjector::attach_sampler(telemetry::CounterSampler* sampler) {
  if (sampler_ != nullptr && sampler_ != sampler) sampler_->set_fault_hooks({}, {});
  sampler_ = sampler;
  if (sampler_ == nullptr) return;
  sampler_->set_fault_hooks(
      [this](sim::Time t) { return drop_frame(t); },
      [this](sim::Time t, const cluster::NodeSet& nodes, std::span<float> values) {
        corrupt_frame(t, nodes, values);
      });
}

void FaultInjector::subscribe_node_events(NodeEventFn fn) {
  RUSH_EXPECTS(fn != nullptr);
  node_listeners_.push_back(std::move(fn));
}

void FaultInjector::arm() {
  RUSH_EXPECTS(!armed_);
  armed_ = true;
  for (const FaultEvent& ev : plan_.events) {
    RUSH_EXPECTS(ev.at_s >= engine_.now());
    engine_.schedule_at(ev.at_s, [this, ev] { fire(ev); });
    // A bounded crash/drain/degrade carries its own recovery: synthesize
    // the matching restore event so plans stay one line per incident.
    const bool restorable = ev.kind == FaultKind::NodeCrash || ev.kind == FaultKind::NodeDrain ||
                            ev.kind == FaultKind::LinkDegrade;
    if (restorable && ev.duration_s > 0.0) {
      FaultEvent restore;
      restore.kind =
          ev.kind == FaultKind::LinkDegrade ? FaultKind::LinkRestore : FaultKind::NodeRestore;
      restore.at_s = ev.at_s + ev.duration_s;
      restore.node = ev.node;
      restore.link = ev.link;
      engine_.schedule_at(restore.at_s, [this, restore] { fire(restore); });
    }
  }
}

void FaultInjector::fire(const FaultEvent& ev) {
  const sim::Time now_s = engine_.now();
  switch (ev.kind) {
    case FaultKind::NodeCrash:
    case FaultKind::NodeDrain: {
      const auto it = std::lower_bound(down_.begin(), down_.end(), ev.node);
      if (it != down_.end() && *it == ev.node) return;  // already out of service
      down_.insert(it, ev.node);
      count_fault(ev.kind);
      if (trace_ != nullptr)
        trace_->emit_fault_node_down(now_s, ev.node, ev.kind == FaultKind::NodeDrain,
                                     ev.duration_s);
      notify(ev.kind, ev.node);
      return;
    }
    case FaultKind::NodeRestore: {
      const auto it = std::lower_bound(down_.begin(), down_.end(), ev.node);
      if (it == down_.end() || *it != ev.node) return;  // never went down
      down_.erase(it);
      count_fault(ev.kind);
      if (trace_ != nullptr) trace_->emit_fault_node_restore(now_s, ev.node);
      notify(ev.kind, ev.node);
      return;
    }
    case FaultKind::LinkDegrade: {
      if (net_ != nullptr) net_->set_link_health(ev.link, ev.factor);
      count_fault(ev.kind);
      if (trace_ != nullptr)
        trace_->emit_fault_link_degrade(now_s, ev.link, ev.factor, ev.duration_s);
      return;
    }
    case FaultKind::LinkRestore: {
      if (net_ != nullptr) net_->set_link_health(ev.link, 1.0);
      count_fault(ev.kind);
      if (trace_ != nullptr) trace_->emit_fault_link_restore(now_s, ev.link);
      return;
    }
    case FaultKind::SamplerDropout:
    case FaultKind::CounterCorrupt:
    case FaultKind::CanaryTimeout: {
      // Window kinds act through the precomputed spans (sampler hooks and
      // oracle queries); the fired event is their observable start marker.
      count_fault(ev.kind);
      if (trace_ != nullptr)
        trace_->emit_fault_window(now_s, fault_kind_name(ev.kind), ev.node,
                                  ev.at_s + ev.duration_s);
      return;
    }
  }
}

void FaultInjector::notify(FaultKind kind, cluster::NodeId node) {
  const NodeFaultEvent ev{kind, node};
  for (const NodeEventFn& fn : node_listeners_) fn(ev);
}

void FaultInjector::count_fault(FaultKind kind) {
  ++faults_fired_;
  obs::Counter* metric = metric_kind_[static_cast<std::size_t>(kind)];
  if (metric != nullptr) metric->inc();
}

bool FaultInjector::in_window(const std::vector<Window>& windows, sim::Time now) noexcept {
  for (const Window& w : windows)
    if (now >= w.begin_s && now < w.end_s) return true;
  return false;
}

bool FaultInjector::node_down(cluster::NodeId node) const noexcept {
  return std::binary_search(down_.begin(), down_.end(), node);
}

bool FaultInjector::canary_timed_out(sim::Time now) const noexcept {
  return in_window(canary_, now);
}

bool FaultInjector::sampler_dropped_out(sim::Time now) const noexcept {
  return in_window(dropout_, now);
}

bool FaultInjector::counters_corrupted(sim::Time now) const noexcept {
  return in_window(corrupt_, now);
}

bool FaultInjector::drop_frame(sim::Time t) {
  if (!in_window(dropout_, t)) return false;
  ++frames_dropped_;
  if (metric_frames_dropped_ != nullptr) metric_frames_dropped_->inc();
  return true;
}

void FaultInjector::corrupt_frame(sim::Time t, const cluster::NodeSet& nodes,
                                  std::span<float> values) {
  if (nodes.empty() || values.empty() || !in_window(corrupt_, t)) return;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::size_t per_node = values.size() / nodes.size();
  bool touched = false;
  for (const Window& w : corrupt_) {
    if (t < w.begin_s || t >= w.end_s) continue;
    if (w.node < 0) {
      std::fill(values.begin(), values.end(), nan);
      touched = true;
      continue;
    }
    const auto it = std::lower_bound(nodes.begin(), nodes.end(), w.node);
    if (it == nodes.end() || *it != w.node) continue;
    const auto idx = static_cast<std::size_t>(it - nodes.begin());
    std::fill_n(values.begin() + static_cast<std::ptrdiff_t>(idx * per_node), per_node, nan);
    touched = true;
  }
  if (!touched) return;
  ++frames_corrupted_;
  if (metric_frames_corrupted_ != nullptr) metric_frames_corrupted_->inc();
}

}  // namespace rush::faults
