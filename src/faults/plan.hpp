// Deterministic fault plans.
//
// A FaultPlan is a validated list of timed fault events loaded from a
// small JSON document (schema in docs/fault-injection.md). Plans carry no
// randomness of their own: every event names an absolute simulation time,
// so the same plan over the same seed replays byte-for-byte. The
// FaultInjector (faults/injector.hpp) arms a plan on a sim::Engine and
// turns each event into state changes, trace records, and metrics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/topology.hpp"
#include "sim/types.hpp"

namespace rush::faults {

enum class FaultKind : std::uint8_t {
  NodeCrash,       // node dies: running jobs on it are lost and requeued
  NodeDrain,       // node leaves service gracefully: running jobs finish
  NodeRestore,     // node returns to service
  LinkDegrade,     // link capacity multiplied by `factor` in (0, 1]
  LinkRestore,     // link capacity back to nominal
  SamplerDropout,  // telemetry frames silently dropped for `duration_s`
  CounterCorrupt,  // sampled counter values replaced with NaN for `duration_s`
  CanaryTimeout,   // canary probes are lost for `duration_s`
};

inline constexpr int kNumFaultKinds = 8;

/// JSON spelling of a kind ("node_crash", "link_degrade", ...).
[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;
/// Inverse of fault_kind_name; returns false on an unknown spelling.
[[nodiscard]] bool fault_kind_from_name(std::string_view name, FaultKind& out) noexcept;

struct FaultEvent {
  FaultKind kind = FaultKind::NodeCrash;
  sim::Time at_s = 0.0;
  /// Target node for node-scoped kinds; for CounterCorrupt, -1 corrupts
  /// every node's readings.
  cluster::NodeId node = -1;
  /// Target link for link-scoped kinds.
  cluster::LinkId link = -1;
  /// LinkDegrade capacity multiplier, in (0, 1].
  double factor = 1.0;
  /// Crash/drain/degrade: auto-restore after this long (0 = permanent).
  /// Window kinds (dropout/corrupt/canary timeout): window length, > 0.
  double duration_s = 0.0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Throws ParseError if any event is malformed (bad target, factor
  /// outside (0, 1], negative or missing duration, non-finite time).
  void validate() const;

  /// Parse the documented JSON schema; throws ParseError on malformed
  /// input or unknown keys. Both overloads validate() before returning.
  static FaultPlan from_json(std::string_view text);
  static FaultPlan from_json(std::istream& in);
  static FaultPlan from_json_file(const std::string& path);
};

}  // namespace rush::faults
