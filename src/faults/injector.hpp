// Deterministic fault injection over a live simulation.
//
// The injector arms a validated FaultPlan on the sim engine: each plan
// event becomes one timed engine event that mutates attached models
// (network link health, sampler frame hooks), notifies subscribers (the
// scheduler, for node crash/drain/restore), emits a `fault_*` trace
// record, and bumps a per-kind metrics counter. Window kinds (sampler
// dropout, counter corruption, canary timeout) additionally answer pure
// point-in-time queries that degraded-mode consumers poll.
//
// Determinism: the injector draws no randomness and, when no plan event
// fires, touches nothing — a run with an empty plan is byte-identical to
// a run with no injector at all.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "cluster/topology.hpp"
#include "faults/plan.hpp"
#include "sim/types.hpp"

namespace rush::cluster {
class NetworkModel;
}  // namespace rush::cluster
namespace rush::obs {
class Counter;
class EventTrace;
class MetricsRegistry;
}  // namespace rush::obs
namespace rush::sim {
class Engine;
}  // namespace rush::sim
namespace rush::telemetry {
class CounterSampler;
}  // namespace rush::telemetry

namespace rush::faults {

/// A node-scoped fault delivered to subscribers (the scheduler reacts by
/// excluding the node and requeueing its victims). `kind` is one of
/// NodeCrash, NodeDrain, NodeRestore.
struct NodeFaultEvent {
  FaultKind kind = FaultKind::NodeCrash;
  cluster::NodeId node = -1;
};

class FaultInjector {
 public:
  using NodeEventFn = std::function<void(const NodeFaultEvent&)>;

  /// Validates `plan`. The engine must outlive the injector.
  FaultInjector(sim::Engine& engine, FaultPlan plan);

  /// Observability sinks for fault records/counters. Either may be null
  /// (that side detaches).
  void set_obs(obs::EventTrace* trace, obs::MetricsRegistry* metrics);
  /// Network whose link health LinkDegrade/LinkRestore events drive.
  void attach_network(cluster::NetworkModel* net);  // rush-analyze: allow(missing-expects) null detaches
  /// Installs the sampler's fault hooks immediately (cleared on null).
  void attach_sampler(telemetry::CounterSampler* sampler);  // rush-analyze: allow(missing-expects) null detaches
  /// Register a node-fault listener; all listeners see every node event.
  void subscribe_node_events(NodeEventFn fn);

  /// Schedule every plan event on the engine. Call exactly once, before
  /// the simulation reaches the earliest event time.
  void arm();

  // --- point-in-time queries polled by degraded-mode consumers ---------
  /// Node currently crashed or drained out of service.
  [[nodiscard]] bool node_down(cluster::NodeId node) const noexcept;
  /// Inside a canary_timeout window: probes are lost, the oracle must
  /// not wait on them.
  [[nodiscard]] bool canary_timed_out(sim::Time now) const noexcept;
  /// Inside a sampler_dropout window: telemetry frames are being dropped.
  [[nodiscard]] bool sampler_dropped_out(sim::Time now) const noexcept;
  /// Inside a counter_corrupt window.
  [[nodiscard]] bool counters_corrupted(sim::Time now) const noexcept;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// Plan events (including synthesized auto-restores) fired so far.
  [[nodiscard]] std::uint64_t faults_fired() const noexcept { return faults_fired_; }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return frames_dropped_; }
  [[nodiscard]] std::uint64_t frames_corrupted() const noexcept { return frames_corrupted_; }

 private:
  /// Half-open [begin, end) outage window, plus the target node for
  /// counter corruption (-1 = every node).
  struct Window {
    sim::Time begin_s = 0.0;
    sim::Time end_s = 0.0;
    cluster::NodeId node = -1;
  };

  void fire(const FaultEvent& ev);
  void notify(FaultKind kind, cluster::NodeId node);
  void count_fault(FaultKind kind);
  [[nodiscard]] static bool in_window(const std::vector<Window>& windows, sim::Time now) noexcept;
  /// Sampler corrupt hook: NaNs out the targeted node's counters.
  void corrupt_frame(sim::Time t, const cluster::NodeSet& nodes, std::span<float> values);
  [[nodiscard]] bool drop_frame(sim::Time t);

  sim::Engine& engine_;
  FaultPlan plan_;
  bool armed_ = false;

  std::vector<cluster::NodeId> down_;  // sorted set of out-of-service nodes
  std::vector<Window> dropout_;
  std::vector<Window> corrupt_;
  std::vector<Window> canary_;

  cluster::NetworkModel* net_ = nullptr;
  telemetry::CounterSampler* sampler_ = nullptr;
  std::vector<NodeEventFn> node_listeners_;

  obs::EventTrace* trace_ = nullptr;
  // Owned by the attached registry; one per FaultKind, in enum order.
  std::array<obs::Counter*, kNumFaultKinds> metric_kind_{};
  obs::Counter* metric_frames_dropped_ = nullptr;
  obs::Counter* metric_frames_corrupted_ = nullptr;

  std::uint64_t faults_fired_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_corrupted_ = 0;
};

}  // namespace rush::faults
