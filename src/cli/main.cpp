// rush — command-line front end for the RUSH pipeline.
//
//   rush collect  --out corpus.csv [--days N] [--seed N] [--jobs N]
//   rush evaluate --corpus corpus.csv
//   rush train    --corpus corpus.csv --out model.rush [--model NAME] [--rfe]
//   rush inspect  --model model.rush
//   rush simulate --corpus corpus.csv --experiment CODE [--trials N] [--seed N]
//
// `collect` runs the in-situ campaign; `evaluate` prints the Fig. 3 model
// comparison; `train` exports the production predictor; `simulate` runs a
// Table II experiment under FCFS+EASY and RUSH and prints the comparison.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/collector.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/swf.hpp"
#include "faults/plan.hpp"

using namespace rush;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] long long get_int(const std::string& key, long long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : str::to_int(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const { return options.contains(key); }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";  // flag
    }
  }
  return args;
}

int usage() {
  std::printf(
      "rush — Resource Utilization aware Scheduler for HPC (IPDPS'22 reproduction)\n\n"
      "commands:\n"
      "  collect  --out corpus.csv [--days N] [--seed N] [--jobs N]\n"
      "           run the in-situ data-collection campaign\n"
      "  evaluate --corpus corpus.csv\n"
      "           compare the four model families (leave-one-app-out CV)\n"
      "  train    --corpus corpus.csv --out model.rush [--model NAME] [--rfe]\n"
      "           train and export the production 3-class predictor\n"
      "  inspect  --model model.rush\n"
      "           print an exported predictor's metadata\n"
      "  simulate --corpus corpus.csv --experiment ADAA|ADPA|PDPA|WS|SS\n"
      "           [--trials N] [--seed N] [--swf-out PREFIX]\n"
      "           [--faults plan.json] [--fallback fcfs|lkg]\n"
      "           run a Table II experiment (optionally exporting SWF traces);\n"
      "           --faults injects the fault plan into every trial and\n"
      "           --fallback picks the oracle's degraded-mode policy\n"
      "           (see docs/fault-injection.md)\n");
  return 2;
}

core::Corpus load_corpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw rush::ParseError("cannot open corpus: " + path);
  return core::Corpus::from_csv(in);
}

int cmd_collect(const Args& args) {
  const std::string out = args.get("out");
  if (out.empty()) return usage();
  core::CollectorConfig cfg;
  cfg.days = static_cast<int>(args.get_int("days", cfg.days));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.jobs_per_session = static_cast<int>(args.get_int("jobs", cfg.jobs_per_session));
  std::printf("collecting %d days x %d jobs/session (seed %llu)...\n", cfg.days,
              cfg.jobs_per_session, static_cast<unsigned long long>(cfg.seed));
  core::LongitudinalCollector collector(cfg, core::single_pod_config());
  const core::Corpus corpus = collector.collect();
  std::ofstream os(out);
  corpus.to_csv(os);
  std::printf("wrote %zu samples to %s\n", corpus.size(), out.c_str());
  for (const auto& stats : corpus.app_stats())
    std::printf("  %-8s %4zu runs  mean %.1fs  sd %.1fs\n", stats.app.c_str(), stats.runs,
                stats.mean_s, stats.stddev_s);
  return 0;
}

int cmd_evaluate(const Args& args) {
  const std::string path = args.get("corpus");
  if (path.empty()) return usage();
  const core::Corpus corpus = load_corpus(path);
  const core::Labeler labeler(corpus);
  const auto scores = core::compare_models(corpus, labeler);
  Table table({"model", "F1 (all nodes)", "F1 (job nodes)", "acc (all)", "acc (job)"});
  for (const auto& s : scores)
    table.add_row({s.model, Table::num(s.f1_all_nodes, 3), Table::num(s.f1_job_nodes, 3),
                   Table::num(s.accuracy_all_nodes, 3), Table::num(s.accuracy_job_nodes, 3)});
  std::printf("%s\nbest: %s\n", table.render().c_str(), core::best_model(scores).c_str());
  return 0;
}

int cmd_train(const Args& args) {
  const std::string path = args.get("corpus");
  const std::string out = args.get("out");
  if (path.empty() || out.empty()) return usage();
  const core::Corpus corpus = load_corpus(path);
  const core::Labeler labeler(corpus);
  core::TrainerConfig tc;
  tc.model_name = args.get("model", "adaboost");
  tc.run_rfe = args.has("rfe");
  const core::TrainedPredictor predictor = core::PredictorTrainer(tc).train(corpus, labeler);
  std::ofstream os(out);
  predictor.save(os);
  std::printf("trained %s on %zu samples", tc.model_name.c_str(), corpus.size());
  if (tc.run_rfe) std::printf(" (RFE kept %zu features)", predictor.selected_features().size());
  std::printf("; exported to %s\n", out.c_str());
  return 0;
}

int cmd_inspect(const Args& args) {
  const std::string path = args.get("model");
  if (path.empty()) return usage();
  std::ifstream in(path);
  if (!in) throw rush::ParseError("cannot open model: " + path);
  const core::TrainedPredictor predictor = core::TrainedPredictor::load(in);
  std::printf("model type:        %s\n", predictor.model().type_name().c_str());
  std::printf("classes:           %d\n", predictor.model().num_classes());
  std::printf("input features:    %zu of %zu%s\n",
              predictor.selected_features().empty() ? telemetry::FeatureAssembler::kNumFeatures
                                                    : predictor.selected_features().size(),
              telemetry::FeatureAssembler::kNumFeatures,
              predictor.selected_features().empty() ? " (no RFE)" : " (RFE)");
  std::printf("aggregation scope: %s\n",
              predictor.scope() == telemetry::AggregationScope::AllNodes ? "all nodes"
                                                                         : "job nodes");
  std::printf("label thresholds:  little > %.2f sigma, variation > %.2f sigma\n",
              predictor.thresholds().little_sigma, predictor.thresholds().variation_sigma);
  std::printf("confidence gate:   %.2f\n", predictor.variation_confidence());
  return 0;
}

int cmd_simulate(const Args& args) {
  const std::string path = args.get("corpus");
  const std::string code = args.get("experiment", "ADAA");
  if (path.empty()) return usage();
  std::optional<core::ExperimentSpec> spec;
  for (const auto& candidate : core::all_experiments())
    if (candidate.code == code) spec = candidate;
  if (!spec) {
    std::printf("unknown experiment '%s'\n", code.c_str());
    return usage();
  }
  core::ExperimentConfig config;
  config.trials_per_policy = static_cast<int>(args.get_int("trials", 3));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const std::string faults_path = args.get("faults");
  if (!faults_path.empty())
    config.fault_plan = faults::FaultPlan::from_json_file(faults_path);
  const std::string fallback = args.get("fallback", "fcfs");
  if (fallback == "lkg") {
    config.oracle_fallback = core::OracleFallback::LastKnownGood;
  } else if (fallback != "fcfs") {
    std::printf("unknown --fallback '%s' (expected fcfs or lkg)\n", fallback.c_str());
    return usage();
  }
  core::ExperimentRunner runner(load_corpus(path), config);
  std::printf("running %s (%d jobs, %d trials/policy)...\n", spec->code.c_str(), spec->num_jobs,
              config.trials_per_policy);
  const core::ExperimentResult result = runner.run(*spec);

  Table table({"metric", "fcfs-easy", "rush"});
  table.add_row({"variation runs / trial",
                 Table::num(core::mean_total_variation_runs(result.baseline, runner.labeler()), 1),
                 Table::num(core::mean_total_variation_runs(result.rush, runner.labeler()), 1)});
  table.add_row({"makespan (s)", Table::num(core::mean_makespan(result.baseline), 0),
                 Table::num(core::mean_makespan(result.rush), 0)});
  double base_skips = 0.0, rush_skips = 0.0;
  for (const auto& t : result.rush) rush_skips += static_cast<double>(t.total_skips);
  rush_skips /= static_cast<double>(result.rush.size());
  table.add_row({"Algorithm-2 delays / trial", Table::num(base_skips, 0),
                 Table::num(rush_skips, 0)});
  if (!config.fault_plan.empty()) {
    auto mean_of = [](const std::vector<core::TrialResult>& trials,
                      auto field) {
      double sum = 0.0;
      for (const auto& t : trials) sum += static_cast<double>(field(t));
      return sum / static_cast<double>(trials.size());
    };
    table.add_row(
        {"fault requeues / trial",
         Table::num(mean_of(result.baseline, [](const auto& t) { return t.fault_requeues; }), 1),
         Table::num(mean_of(result.rush, [](const auto& t) { return t.fault_requeues; }), 1)});
    table.add_row(
        {"oracle fallbacks / trial", Table::num(0.0, 1),
         Table::num(mean_of(result.rush, [](const auto& t) { return t.oracle_fallbacks; }), 1)});
  }
  std::printf("\n%s\n", table.render().c_str());

  Table apps({"app", "fcfs max (s)", "rush max (s)", "improvement"});
  const auto base = core::runtime_summaries(result.baseline);
  const auto rush = core::runtime_summaries(result.rush);
  for (const auto& [app, improvement] :
       core::max_runtime_improvement(result.baseline, result.rush)) {
    apps.add_row({app, Table::num(base.at(app).max, 1), Table::num(rush.at(app).max, 1),
                  Table::num(improvement, 1) + "%"});
  }
  std::printf("%s\n", apps.render().c_str());

  // Optional: export every trial as a Standard Workload Format trace.
  const std::string swf_prefix = args.get("swf-out");
  if (!swf_prefix.empty()) {
    auto dump = [&](const std::vector<core::TrialResult>& trials, const char* tag) {
      for (std::size_t t = 0; t < trials.size(); ++t) {
        const std::string file =
            swf_prefix + "_" + tag + "_" + std::to_string(t) + ".swf";
        std::ofstream os(file);
        core::SwfOptions swf;
        swf.comments = {"Experiment: " + spec->code};
        core::write_swf(trials[t], os, swf);
        std::printf("wrote %s\n", file.c_str());
      }
    };
    dump(result.baseline, "fcfs");
    dump(result.rush, "rush");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "collect") return cmd_collect(args);
    if (args.command == "evaluate") return cmd_evaluate(args);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "inspect") return cmd_inspect(args);
    if (args.command == "simulate") return cmd_simulate(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
