// Process-local metrics: counters, gauges, fixed-bucket histograms.
//
// Call sites resolve their instrument once (a stable pointer into the
// registry) and then update it with a plain member call — an increment is
// one branch-free add, cheap enough for the network-probe and event-loop
// hot paths. A snapshot renders every instrument into one deterministic
// JSON object (keys sorted), which the bench harness writes alongside its
// trace output.
//
// Instruments are intentionally simple: no tags, no wall-clock windows.
// The simulator is single-threaded, so there is no atomics overhead
// either.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rush::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed uniform-bucket histogram over [lo, hi) with underflow/overflow
/// buckets. Records are O(1); percentile() interpolates linearly inside
/// the containing bucket, which is exact for uniform data and within one
/// bucket width otherwise.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void record(double v) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Value at quantile q in [0, 1]. Returns the observed min/max at the
  /// extremes; 0 when empty. Underflow/overflow samples clamp to the
  /// observed extreme on their side.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }

 private:
  [[nodiscard]] double bucket_width() const noexcept {
    return (hi_ - lo_) / static_cast<double>(buckets_.size() - 2);
  }

  double lo_;
  double hi_;
  // buckets_[0] = underflow, buckets_[n-1] = overflow.
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double observed_min_ = 0.0;
  double observed_max_ = 0.0;
};

/// Named instrument registry. Lookup by name creates on first use and
/// returns a reference that stays valid for the registry's lifetime, so
/// hot paths resolve once and cache the pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Bucket shape is fixed by the first call for a given name; later
  /// calls with the same name return the existing histogram.
  Histogram& histogram(const std::string& name, double lo, double hi, std::size_t buckets);

  /// One JSON object over every instrument, keys sorted by name:
  ///   {"counters":{...},"gauges":{...},"histograms":{"x":{"count":..,
  ///    "mean":..,"p50":..,"p90":..,"p99":..,"min":..,"max":..}}}
  [[nodiscard]] std::string snapshot_json() const;

 private:
  // std::map: snapshot output must be deterministically ordered.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rush::obs
