// Process-local metrics: counters, gauges, fixed-bucket histograms.
//
// Call sites resolve their instrument once (a stable pointer into the
// registry) and then update it with a plain member call — an increment is
// one relaxed atomic add, cheap enough for the network-probe and
// event-loop hot paths. A snapshot renders every instrument into one
// deterministic JSON object (keys sorted), which the bench harness writes
// alongside its trace output.
//
// Thread-safety: one registry is shared by every trial the task pool runs
// concurrently (see DESIGN.md §10). Counters and gauges are atomics;
// histograms serialize record() behind a small internal mutex; name
// lookup locks the registry map. Counter totals and histogram
// counts/buckets are order-independent, so they stay bit-identical for
// any worker count; a histogram's floating-point `sum` (and thus `mean`)
// can differ in final ulps under concurrency because addition order
// varies, and a gauge holds whichever trial wrote it last.
//
// Instruments are intentionally simple: no tags, no wall-clock windows.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rush::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket-boundary layout of a Histogram. Uniform splits [lo, hi) into
/// equal-width buckets; Log2 splits it geometrically (equal width in
/// log2 space), so a fixed bucket count covers several orders of
/// magnitude with constant *relative* resolution — the right shape for
/// heavy-tailed quantities like queue depth, where a uniform [0, 256)
/// histogram clips everything beyond its hi into one overflow bucket.
enum class HistogramScale : std::uint8_t { Uniform, Log2 };

/// Fixed-bucket histogram over [lo, hi) with underflow/overflow buckets
/// and a Uniform or Log2 bucket layout. Records are O(1) behind an
/// internal mutex; percentile() interpolates inside the containing bucket
/// (linearly for Uniform, geometrically for Log2), which is exact for
/// matching-shaped data and within one bucket otherwise. Log2 requires
/// lo > 0; samples below lo (including 0) land in the underflow bucket
/// and still update count/sum/min/max exactly.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets,
            HistogramScale scale = HistogramScale::Uniform);

  void record(double v) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Value at quantile q in [0, 1]. Returns the observed min/max at the
  /// extremes; 0 when empty. Underflow/overflow samples clamp to the
  /// observed extreme on their side.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] HistogramScale scale() const noexcept { return scale_; }
  /// Copy, so readers never observe a half-updated bucket array.
  [[nodiscard]] std::vector<std::uint64_t> buckets() const;

 private:
  // Reading only the bucket *count*, which is fixed at construction.
  [[nodiscard]] double bucket_width() const noexcept {
    return (hi_ - lo_) / static_cast<double>(buckets_.size() - 2);  // rush-analyze: allow(guarded-member)
  }
  /// Interior bucket width in log2 space (Log2 scale only).
  [[nodiscard]] double log_width() const noexcept {
    return (log_hi_ - log_lo_) / static_cast<double>(buckets_.size() - 2);  // rush-analyze: allow(guarded-member)
  }
  /// Lower edge of interior bucket i (1-based, honoring the scale).
  [[nodiscard]] double bucket_lower(std::size_t i) const noexcept;
  [[nodiscard]] double percentile_locked(double q) const;

  double lo_;
  double hi_;
  HistogramScale scale_;
  double log_lo_ = 0.0;  // log2(lo_) / log2(hi_), precomputed for Log2
  double log_hi_ = 0.0;
  mutable std::mutex mu_;
  // buckets_[0] = underflow, buckets_[n-1] = overflow.
  // rush: guarded_by(mu_)
  std::vector<std::uint64_t> buckets_;
  // rush: guarded_by(mu_)
  std::uint64_t count_ = 0;
  // rush: guarded_by(mu_)
  double sum_ = 0.0;
  // rush: guarded_by(mu_)
  double observed_min_ = 0.0;
  // rush: guarded_by(mu_)
  double observed_max_ = 0.0;
};

/// Named instrument registry. Lookup by name creates on first use and
/// returns a reference that stays valid for the registry's lifetime, so
/// hot paths resolve once and cache the pointer. Lookups and snapshots
/// are internally synchronized; concurrent trials share one registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Bucket shape is fixed by the first call for a given name; later
  /// calls with the same name return the existing histogram.
  Histogram& histogram(const std::string& name, double lo, double hi, std::size_t buckets,
                       HistogramScale scale = HistogramScale::Uniform);

  /// One JSON object over every instrument, keys sorted by name:
  ///   {"counters":{...},"gauges":{...},"histograms":{"x":{"count":..,
  ///    "mean":..,"p50":..,"p90":..,"p99":..,"min":..,"max":..}}}
  [[nodiscard]] std::string snapshot_json() const;

 private:
  mutable std::mutex mu_;
  // std::map: snapshot output must be deterministically ordered.
  // rush: guarded_by(mu_)
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  // rush: guarded_by(mu_)
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  // rush: guarded_by(mu_)
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rush::obs
