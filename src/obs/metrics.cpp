#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace rush::obs {

Histogram::Histogram(double lo, double hi, std::size_t buckets, HistogramScale scale)
    : lo_(lo), hi_(hi), scale_(scale) {
  RUSH_EXPECTS(hi > lo);
  RUSH_EXPECTS(buckets > 0);
  RUSH_EXPECTS(scale != HistogramScale::Log2 || lo > 0.0);
  if (scale_ == HistogramScale::Log2) {
    log_lo_ = std::log2(lo_);
    log_hi_ = std::log2(hi_);
  }
  buckets_.assign(buckets + 2, 0);  // + underflow/overflow
}

double Histogram::bucket_lower(std::size_t i) const noexcept {
  if (scale_ == HistogramScale::Log2)
    return std::exp2(log_lo_ + static_cast<double>(i - 1) * log_width());
  return lo_ + static_cast<double>(i - 1) * bucket_width();
}

void Histogram::record(double v) noexcept {
  if (!std::isfinite(v)) return;
  const std::scoped_lock lock(mu_);
  if (count_ == 0) {
    observed_min_ = v;
    observed_max_ = v;
  } else {
    observed_min_ = std::min(observed_min_, v);
    observed_max_ = std::max(observed_max_, v);
  }
  ++count_;
  sum_ += v;
  std::size_t idx;
  if (v < lo_) {
    idx = 0;
  } else if (v >= hi_) {
    idx = buckets_.size() - 1;
  } else if (scale_ == HistogramScale::Log2) {
    idx = 1 + static_cast<std::size_t>((std::log2(v) - log_lo_) / log_width());
    idx = std::min(idx, buckets_.size() - 2);  // guard log rounding at the edges
  } else {
    idx = 1 + static_cast<std::size_t>((v - lo_) / bucket_width());
    idx = std::min(idx, buckets_.size() - 2);  // guard v == hi_ - epsilon rounding
  }
  ++buckets_[idx];
}

std::uint64_t Histogram::count() const noexcept {
  const std::scoped_lock lock(mu_);
  return count_;
}

double Histogram::sum() const noexcept {
  const std::scoped_lock lock(mu_);
  return sum_;
}

double Histogram::min() const noexcept {
  const std::scoped_lock lock(mu_);
  return count_ ? observed_min_ : 0.0;
}

double Histogram::max() const noexcept {
  const std::scoped_lock lock(mu_);
  return count_ ? observed_max_ : 0.0;
}

double Histogram::mean() const noexcept {
  const std::scoped_lock lock(mu_);
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::vector<std::uint64_t> Histogram::buckets() const {
  const std::scoped_lock lock(mu_);
  return buckets_;
}

double Histogram::percentile(double q) const {
  RUSH_EXPECTS(q >= 0.0 && q <= 1.0);
  const std::scoped_lock lock(mu_);
  return percentile_locked(q);
}

double Histogram::percentile_locked(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return observed_min_;
  if (q >= 1.0) return observed_max_;

  // Rank in [1, count_]: the q-th smallest sample (nearest-rank, then
  // linear interpolation within the containing bucket).
  const double rank = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double prev = cumulative;
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative < rank) continue;
    if (i == 0) return observed_min_;                   // underflow bucket
    if (i == buckets_.size() - 1) return observed_max_; // overflow bucket
    const double frac =
        buckets_[i] == 0 ? 0.0 : (rank - prev) / static_cast<double>(buckets_[i]);
    // Interpolate in the space the buckets are laid out in: linearly for
    // Uniform, geometrically (linear in log2) for Log2.
    const double v =
        scale_ == HistogramScale::Log2
            ? std::exp2(log_lo_ + (static_cast<double>(i - 1) + frac) * log_width())
            : bucket_lower(i) + frac * bucket_width();
    return std::clamp(v, observed_min_, observed_max_);
  }
  return observed_max_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::scoped_lock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::scoped_lock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                      std::size_t buckets, HistogramScale scale) {
  const std::scoped_lock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(lo, hi, buckets, scale);
  return *slot;
}

std::string MetricsRegistry::snapshot_json() const {
  const std::scoped_lock lock(mu_);
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out.push_back(':');
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out.push_back(':');
    append_double(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out += ":{\"count\":" + std::to_string(h->count());
    out += ",\"mean\":";
    append_double(out, h->mean());
    out += ",\"min\":";
    append_double(out, h->min());
    out += ",\"max\":";
    append_double(out, h->max());
    out += ",\"p50\":";
    append_double(out, h->percentile(0.50));
    out += ",\"p90\":";
    append_double(out, h->percentile(0.90));
    out += ",\"p99\":";
    append_double(out, h->percentile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace rush::obs
