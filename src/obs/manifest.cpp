#include "obs/manifest.hpp"

#include <fstream>

#include "common/error.hpp"
#include "obs/json.hpp"

#ifndef RUSH_GIT_SHA
#define RUSH_GIT_SHA "unknown"
#endif
#ifndef RUSH_BUILD_TYPE
#define RUSH_BUILD_TYPE "unknown"
#endif

namespace rush::obs {

std::string git_sha() { return RUSH_GIT_SHA; }
std::string build_type() { return RUSH_BUILD_TYPE; }

std::string compiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

bool audit_enabled() noexcept {
#ifdef RUSH_AUDIT_ENABLED
  return true;
#else
  return false;
#endif
}

std::string manifest_json(const RunManifest& manifest) {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.field("schema", 1);
  w.field("tool", manifest.tool);
  w.field("seed", manifest.seed);
  w.field("trials", manifest.trials);
  w.field("days", manifest.days);
  w.field("trace_path", manifest.trace_path);
  w.field("git_sha", git_sha());
  w.field("build_type", build_type());
  w.field("compiler", compiler());
  w.field("audit_enabled", audit_enabled());
  if (!manifest.extra.empty()) {
    out += ",\"extra\":{";
    for (std::size_t i = 0; i < manifest.extra.size(); ++i) {
      if (i) out.push_back(',');
      append_escaped(out, manifest.extra[i].first);
      out.push_back(':');
      append_escaped(out, manifest.extra[i].second);
    }
    out += "}";
  }
  out += "}";
  return out;
}

void write_manifest(const std::string& path, const RunManifest& manifest) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) throw ParseError("write_manifest: cannot open " + path);
  file << manifest_json(manifest) << "\n";
}

}  // namespace rush::obs
