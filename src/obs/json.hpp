// Minimal append-only JSON writer for the observability layer.
//
// The trace and metrics sinks emit flat-ish JSON objects at high rates;
// this writer builds them into a caller-owned std::string with no
// intermediate DOM and no heap allocation beyond the string itself.
// Output is deterministic: keys appear in emission order and doubles are
// rendered with shortest-round-trip formatting, so identical runs produce
// byte-identical records.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rush::obs {

/// Appends one JSON value/field at a time to a backing string. The caller
/// is responsible for balanced begin/end calls; the writer only tracks
/// whether a comma separator is due.
class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array(std::string_view key);
  void end_array();

  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, const char* value);
  void field(std::string_view key, double value);
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, std::uint64_t value);
  void field(std::string_view key, int value);
  void field(std::string_view key, bool value);

  /// Array elements (only valid between begin_array/end_array).
  void element(double value);
  void element(std::uint64_t value);
  /// Appends an already-rendered JSON value (e.g. an object built with a
  /// second writer) as the next array element, with separator handling.
  void raw_element(std::string_view json);
  /// Appends an already-rendered JSON value as the value of `key` inside
  /// the current object.
  void raw_field(std::string_view key, std::string_view json);

 private:
  void comma();
  void key(std::string_view k);

  std::string& out_;
  bool need_comma_ = false;
};

/// Appends `s` JSON-escaped (quotes, backslash, control chars) to `out`.
void append_escaped(std::string& out, std::string_view s);

/// Appends a double with shortest round-trip formatting ("1.5", "0.25",
/// never "1.5000000"); NaN/Inf render as null per JSON rules.
void append_double(std::string& out, double value);

}  // namespace rush::obs
