// Structured run-trace sink: schema-versioned JSONL event records.
//
// Every consequential runtime decision — job lifecycle transitions,
// Algorithm-2 skips, allocation choices with their candidate scores,
// model predict calls, congestion episodes — is appended as one JSON
// object per line, stamped with the *simulated* time at which it
// happened (rush_analyze's trace-sim-time rule enforces that call sites
// never pass wall-clock values). tools/trace_report.py turns a trace
// into a per-trial summary; docs/trace-format.md is the schema
// reference.
//
// A default-constructed EventTrace is disabled: every emit_* returns
// after one predictable branch and writes nothing ("zero-overhead no-op
// mode"), so call sites can hold an always-valid pointer without
// guarding. Enabled traces buffer into an internal string and flush to
// the sink on destruction or flush().
//
// Concurrency: a single EventTrace is NOT safe to emit into from two
// threads. When trials run concurrently on the task pool, each gets its
// own buffered child (EventTrace{EventTrace::Buffered{}}) and the parent
// absorb()s the children in deterministic trial order afterwards, so a
// --trace run produces the same byte stream for any worker count (see
// DESIGN.md §10).
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rush::obs {

/// One scored allocation candidate (see emit_alloc_decision).
struct CandidateScore {
  std::uint64_t job_id = 0;
  double score = 0.0;
};

class EventTrace {
 public:
  /// Bump when a record gains/loses/renames fields; see
  /// docs/trace-format.md for the versioning policy.
  static constexpr int kSchemaVersion = 1;

  /// Tag selecting the sink-less buffered mode (see the Buffered ctor).
  struct Buffered {};

  /// Disabled trace: every emit is a no-op, zero bytes are written.
  EventTrace() = default;
  /// Enabled trace appending to `path` (truncates an existing file).
  /// Throws ParseError when the file cannot be opened.
  explicit EventTrace(const std::string& path);
  /// Enabled trace writing to a caller-owned stream (tests, stdout).
  explicit EventTrace(std::ostream& os);
  /// Enabled trace with no sink: records accumulate in memory (flush()
  /// is a no-op) until a parent trace absorb()s them. The per-trial
  /// buffer the parallel experiment runner hands to each trial.
  explicit EventTrace(Buffered);
  ~EventTrace();

  EventTrace(const EventTrace&) = delete;
  EventTrace& operator=(const EventTrace&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  /// Total bytes handed to the sink plus bytes still buffered. Stays 0
  /// for a disabled trace however many emits happen.
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_flushed_ + buffer_.size();
  }
  [[nodiscard]] std::uint64_t records_emitted() const noexcept { return seq_; }

  void flush();

  /// Append every record buffered in `child` to this trace, renumbering
  /// the records' "seq" fields to continue this trace's sequence, then
  /// reset `child` for reuse. The child must be a Buffered trace that
  /// no other thread is still emitting into. Absorbing the same children
  /// in the same order yields byte-identical output regardless of how
  /// many threads produced them. Guarded by an internal mutex against
  /// concurrent absorb() calls; direct emits must not race with absorbs.
  void absorb(EventTrace& child);

  // Every emit_* takes the current simulated time `t_s` as its first
  // argument. Records carry {"v","seq","t","ev"} plus the listed fields.

  /// ev=trial_start: one workload trial begins (fields: policy, seed).
  void emit_trial_start(double t_s, std::string_view policy, std::uint64_t seed);
  /// ev=trial_end: makespan and Algorithm-2 totals for the trial.
  void emit_trial_end(double t_s, std::string_view policy, std::uint64_t seed,
                      double makespan_s, std::uint64_t total_skips);

  /// ev=job_submit: job entered the queue.
  void emit_job_submit(double t_s, std::uint64_t job_id, std::string_view app, int num_nodes,
                       double walltime_estimate_s);
  /// ev=job_start: job launched (nodes actually allocated).
  void emit_job_start(double t_s, std::uint64_t job_id, double wait_s, bool backfilled,
                      const std::vector<int>& nodes);
  /// ev=job_end: job completed; slowdown is the contention inflation the
  /// run actually experienced (1 = uncontended).
  void emit_job_end(double t_s, std::uint64_t job_id, double runtime_s, double slowdown,
                    int skips);

  /// ev=alloc_decision: the scheduler chose among backfill candidates;
  /// `scores` come from the active queue policy (lower runs earlier).
  void emit_alloc_decision(double t_s, std::uint64_t head_job_id, double reservation_s,
                           const std::vector<CandidateScore>& scores);

  /// ev=alg2_skip: Algorithm 2 delayed a job instead of launching it.
  void emit_alg2_skip(double t_s, std::uint64_t job_id, std::string_view prediction,
                      int skip_count, int skip_threshold);

  /// ev=predict: one oracle/model evaluation. `feature_hash` is a stable
  /// 64-bit FNV-1a hash of the assembled feature vector so deviating runs
  /// can be diffed without storing 282 floats per call.
  void emit_predict(double t_s, std::uint64_t job_id, std::string_view label,
                    std::uint64_t feature_hash);

  /// ev=congestion: one max-congestion episode observed by the telemetry
  /// sampler ended (worst link utilization stayed above the episode
  /// threshold from `start_s` until `t_s`).
  void emit_congestion_episode(double t_s, double start_s, int link_id, double peak_utilization);

  // Fault-injection records (faults/injector.hpp; docs/fault-injection.md).

  /// ev=fault_node_down: a node left service; drain=false is a crash
  /// (running jobs are lost), drain=true lets them finish. duration_s=0
  /// means no scheduled auto-restore.
  void emit_fault_node_down(double t_s, int node, bool drain, double duration_s);
  /// ev=fault_node_restore: a node returned to service.
  void emit_fault_node_restore(double t_s, int node);
  /// ev=fault_link_degrade: link capacity multiplied by `factor`.
  void emit_fault_link_degrade(double t_s, int link, double factor, double duration_s);
  /// ev=fault_link_restore: link capacity back to nominal.
  void emit_fault_link_restore(double t_s, int link);
  /// ev=fault_<kind> for the window kinds (kind is "sampler_dropout",
  /// "counter_corrupt", or "canary_timeout"): the outage holds from t_s
  /// until until_s; node=-1 means cluster-wide.
  void emit_fault_window(double t_s, std::string_view kind, int node, double until_s);
  /// ev=fault_job_requeue: a crash killed this job's node mid-run and the
  /// scheduler put it back in the queue (requeues = lifetime count).
  void emit_fault_job_requeue(double t_s, std::uint64_t job_id, int node, int requeues);
  /// ev=fault_oracle_fallback: the oracle refused its inputs (reason is
  /// "canary-timeout", "stale-counters", or "corrupt-counters") and
  /// emitted the degraded-policy label instead of a model prediction.
  void emit_fault_oracle_fallback(double t_s, std::uint64_t job_id, std::string_view reason,
                                  std::string_view label);

 private:
  /// Opens a record ({"v":..,"seq":..,"t":..,"ev":..) ready for fields.
  void begin_record(double t_s, std::string_view event);
  void end_record();

  std::ostream* sink_ = nullptr;  // null = disabled or buffered
  bool enabled_ = false;
  bool owns_sink_ = false;
  std::mutex absorb_mu_;
  std::string buffer_;
  std::uint64_t seq_ = 0;
  std::uint64_t bytes_flushed_ = 0;
};

/// Stable 64-bit FNV-1a over the bit patterns of a double vector; the
/// feature fingerprint carried by predict records.
[[nodiscard]] std::uint64_t feature_hash(const std::vector<double>& values) noexcept;

}  // namespace rush::obs
