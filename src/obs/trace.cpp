#include "obs/trace.hpp"

#include <bit>
#include <fstream>
#include <memory>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace rush::obs {

namespace {
constexpr std::size_t kFlushThreshold = 1 << 16;
}

EventTrace::EventTrace(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!file->is_open()) throw ParseError("EventTrace: cannot open " + path);
  sink_ = file.release();
  enabled_ = true;
  owns_sink_ = true;
  buffer_.reserve(kFlushThreshold);
}

EventTrace::EventTrace(std::ostream& os) : sink_(&os), enabled_(true) {
  buffer_.reserve(kFlushThreshold);
}

EventTrace::EventTrace(Buffered) : enabled_(true) { buffer_.reserve(kFlushThreshold); }

EventTrace::~EventTrace() {
  flush();
  if (owns_sink_) delete sink_;
}

void EventTrace::flush() {
  if (!sink_ || buffer_.empty()) return;
  sink_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  sink_->flush();
  bytes_flushed_ += buffer_.size();
  buffer_.clear();
}

void EventTrace::absorb(EventTrace& child) {
  const std::scoped_lock lock(absorb_mu_);
  if (!enabled_ || !child.enabled_ || child.buffer_.empty()) {
    child.buffer_.clear();
    child.seq_ = 0;
    return;
  }
  // Child records carry their own 0-based "seq"; splice them in line by
  // line, rewriting each seq to continue this trace's sequence. The
  // format is ours ({"v":..,"seq":<digits>,...), so a bounded scan for
  // the key is exact, not heuristic.
  constexpr std::string_view kSeqKey = "\"seq\":";
  std::size_t pos = 0;
  while (pos < child.buffer_.size()) {
    std::size_t eol = child.buffer_.find('\n', pos);
    if (eol == std::string::npos) eol = child.buffer_.size();
    const std::string_view line(child.buffer_.data() + pos, eol - pos);
    const std::size_t key = line.find(kSeqKey);
    RUSH_ASSERT(key != std::string_view::npos);
    std::size_t digits_end = key + kSeqKey.size();
    while (digits_end < line.size() && line[digits_end] >= '0' && line[digits_end] <= '9')
      ++digits_end;
    buffer_.append(line.substr(0, key + kSeqKey.size()));
    buffer_ += std::to_string(seq_);
    buffer_.append(line.substr(digits_end));
    buffer_.push_back('\n');
    ++seq_;
    if (buffer_.size() >= kFlushThreshold) flush();
    pos = eol + 1;
  }
  child.buffer_.clear();
  child.seq_ = 0;
}

void EventTrace::begin_record(double t_s, std::string_view event) {
  buffer_ += "{\"v\":";
  buffer_ += std::to_string(kSchemaVersion);
  buffer_ += ",\"seq\":";
  buffer_ += std::to_string(seq_);
  buffer_ += ",\"t\":";
  append_double(buffer_, t_s);
  buffer_ += ",\"ev\":";
  append_escaped(buffer_, event);
}

void EventTrace::end_record() {
  buffer_ += "}\n";
  ++seq_;
  if (buffer_.size() >= kFlushThreshold) flush();
}

void EventTrace::emit_trial_start(double t_s, std::string_view policy, std::uint64_t seed) {
  if (!enabled_) return;
  begin_record(t_s, "trial_start");
  buffer_ += ",\"policy\":";
  append_escaped(buffer_, policy);
  buffer_ += ",\"seed\":" + std::to_string(seed);
  end_record();
}

void EventTrace::emit_trial_end(double t_s, std::string_view policy, std::uint64_t seed,
                                double makespan_s, std::uint64_t total_skips) {
  if (!enabled_) return;
  begin_record(t_s, "trial_end");
  buffer_ += ",\"policy\":";
  append_escaped(buffer_, policy);
  buffer_ += ",\"seed\":" + std::to_string(seed);
  buffer_ += ",\"makespan_s\":";
  append_double(buffer_, makespan_s);
  buffer_ += ",\"total_skips\":" + std::to_string(total_skips);
  end_record();
}

void EventTrace::emit_job_submit(double t_s, std::uint64_t job_id, std::string_view app,
                                 int num_nodes, double walltime_estimate_s) {
  if (!enabled_) return;
  begin_record(t_s, "job_submit");
  buffer_ += ",\"job\":" + std::to_string(job_id);
  buffer_ += ",\"app\":";
  append_escaped(buffer_, app);
  buffer_ += ",\"nodes\":" + std::to_string(num_nodes);
  buffer_ += ",\"walltime_est_s\":";
  append_double(buffer_, walltime_estimate_s);
  end_record();
}

void EventTrace::emit_job_start(double t_s, std::uint64_t job_id, double wait_s, bool backfilled,
                                const std::vector<int>& nodes) {
  if (!enabled_) return;
  begin_record(t_s, "job_start");
  buffer_ += ",\"job\":" + std::to_string(job_id);
  buffer_ += ",\"wait_s\":";
  append_double(buffer_, wait_s);
  buffer_ += ",\"backfilled\":";
  buffer_ += backfilled ? "true" : "false";
  buffer_ += ",\"node_ids\":[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i) buffer_.push_back(',');
    buffer_ += std::to_string(nodes[i]);
  }
  buffer_ += "]";
  end_record();
}

void EventTrace::emit_job_end(double t_s, std::uint64_t job_id, double runtime_s, double slowdown,
                              int skips) {
  if (!enabled_) return;
  begin_record(t_s, "job_end");
  buffer_ += ",\"job\":" + std::to_string(job_id);
  buffer_ += ",\"runtime_s\":";
  append_double(buffer_, runtime_s);
  buffer_ += ",\"slowdown\":";
  append_double(buffer_, slowdown);
  buffer_ += ",\"skips\":" + std::to_string(skips);
  end_record();
}

void EventTrace::emit_alloc_decision(double t_s, std::uint64_t head_job_id, double reservation_s,
                                     const std::vector<CandidateScore>& scores) {
  if (!enabled_) return;
  begin_record(t_s, "alloc_decision");
  buffer_ += ",\"head_job\":" + std::to_string(head_job_id);
  buffer_ += ",\"reservation_s\":";
  append_double(buffer_, reservation_s);
  buffer_ += ",\"candidates\":[";
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (i) buffer_.push_back(',');
    buffer_ += "{\"job\":" + std::to_string(scores[i].job_id) + ",\"score\":";
    append_double(buffer_, scores[i].score);
    buffer_ += "}";
  }
  buffer_ += "]";
  end_record();
}

void EventTrace::emit_alg2_skip(double t_s, std::uint64_t job_id, std::string_view prediction,
                                int skip_count, int skip_threshold) {
  if (!enabled_) return;
  begin_record(t_s, "alg2_skip");
  buffer_ += ",\"job\":" + std::to_string(job_id);
  buffer_ += ",\"prediction\":";
  append_escaped(buffer_, prediction);
  buffer_ += ",\"skip_count\":" + std::to_string(skip_count);
  buffer_ += ",\"skip_threshold\":" + std::to_string(skip_threshold);
  end_record();
}

void EventTrace::emit_predict(double t_s, std::uint64_t job_id, std::string_view label,
                              std::uint64_t feature_hash) {
  if (!enabled_) return;
  begin_record(t_s, "predict");
  buffer_ += ",\"job\":" + std::to_string(job_id);
  buffer_ += ",\"label\":";
  append_escaped(buffer_, label);
  buffer_ += ",\"feature_hash\":\"";
  // Hex, quoted: 64-bit values are not exactly representable as JSON
  // numbers in every consumer.
  constexpr char digits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    buffer_.push_back(digits[(feature_hash >> shift) & 0xF]);
  buffer_ += "\"";
  end_record();
}

void EventTrace::emit_congestion_episode(double t_s, double start_s, int link_id,
                                         double peak_utilization) {
  if (!enabled_) return;
  begin_record(t_s, "congestion");
  buffer_ += ",\"start_s\":";
  append_double(buffer_, start_s);
  buffer_ += ",\"link\":" + std::to_string(link_id);
  buffer_ += ",\"peak_util\":";
  append_double(buffer_, peak_utilization);
  end_record();
}

void EventTrace::emit_fault_node_down(double t_s, int node, bool drain, double duration_s) {
  if (!enabled_) return;
  begin_record(t_s, "fault_node_down");
  buffer_ += ",\"node\":" + std::to_string(node);
  buffer_ += ",\"drain\":";
  buffer_ += drain ? "true" : "false";
  buffer_ += ",\"duration_s\":";
  append_double(buffer_, duration_s);
  end_record();
}

void EventTrace::emit_fault_node_restore(double t_s, int node) {
  if (!enabled_) return;
  begin_record(t_s, "fault_node_restore");
  buffer_ += ",\"node\":" + std::to_string(node);
  end_record();
}

void EventTrace::emit_fault_link_degrade(double t_s, int link, double factor, double duration_s) {
  if (!enabled_) return;
  begin_record(t_s, "fault_link_degrade");
  buffer_ += ",\"link\":" + std::to_string(link);
  buffer_ += ",\"factor\":";
  append_double(buffer_, factor);
  buffer_ += ",\"duration_s\":";
  append_double(buffer_, duration_s);
  end_record();
}

void EventTrace::emit_fault_link_restore(double t_s, int link) {
  if (!enabled_) return;
  begin_record(t_s, "fault_link_restore");
  buffer_ += ",\"link\":" + std::to_string(link);
  end_record();
}

void EventTrace::emit_fault_window(double t_s, std::string_view kind, int node, double until_s) {
  if (!enabled_) return;
  std::string event = "fault_";
  event += kind;
  begin_record(t_s, event);
  buffer_ += ",\"node\":" + std::to_string(node);
  buffer_ += ",\"until_s\":";
  append_double(buffer_, until_s);
  end_record();
}

void EventTrace::emit_fault_job_requeue(double t_s, std::uint64_t job_id, int node, int requeues) {
  if (!enabled_) return;
  begin_record(t_s, "fault_job_requeue");
  buffer_ += ",\"job\":" + std::to_string(job_id);
  buffer_ += ",\"node\":" + std::to_string(node);
  buffer_ += ",\"requeues\":" + std::to_string(requeues);
  end_record();
}

void EventTrace::emit_fault_oracle_fallback(double t_s, std::uint64_t job_id,
                                            std::string_view reason, std::string_view label) {
  if (!enabled_) return;
  begin_record(t_s, "fault_oracle_fallback");
  buffer_ += ",\"job\":" + std::to_string(job_id);
  buffer_ += ",\"reason\":";
  append_escaped(buffer_, reason);
  buffer_ += ",\"label\":";
  append_escaped(buffer_, label);
  end_record();
}

std::uint64_t feature_hash(const std::vector<double>& values) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (double v : values) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v);  // fold -0.0 into 0.0
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;  // FNV prime
    }
  }
  return h;
}

}  // namespace rush::obs
