#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace rush::obs {

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, res.ptr);
}

void JsonWriter::comma() {
  if (need_comma_) out_.push_back(',');
  need_comma_ = true;
}

void JsonWriter::key(std::string_view k) {
  comma();
  append_escaped(out_, k);
  out_.push_back(':');
}

void JsonWriter::begin_object() {
  if (!out_.empty() && need_comma_) out_.push_back(',');
  out_.push_back('{');
  need_comma_ = false;
}

void JsonWriter::end_object() {
  out_.push_back('}');
  need_comma_ = true;
}

void JsonWriter::begin_array(std::string_view k) {
  key(k);
  out_.push_back('[');
  need_comma_ = false;
}

void JsonWriter::end_array() {
  out_.push_back(']');
  need_comma_ = true;
}

void JsonWriter::field(std::string_view k, std::string_view value) {
  key(k);
  append_escaped(out_, value);
}

void JsonWriter::field(std::string_view k, const char* value) {
  field(k, std::string_view(value));
}

void JsonWriter::field(std::string_view k, double value) {
  key(k);
  append_double(out_, value);
}

void JsonWriter::field(std::string_view k, std::int64_t value) {
  key(k);
  out_ += std::to_string(value);
}

void JsonWriter::field(std::string_view k, std::uint64_t value) {
  key(k);
  out_ += std::to_string(value);
}

void JsonWriter::field(std::string_view k, int value) {
  field(k, static_cast<std::int64_t>(value));
}

void JsonWriter::field(std::string_view k, bool value) {
  key(k);
  out_ += value ? "true" : "false";
}

void JsonWriter::element(double value) {
  comma();
  append_double(out_, value);
}

void JsonWriter::element(std::uint64_t value) {
  comma();
  out_ += std::to_string(value);
}

void JsonWriter::raw_element(std::string_view json) {
  comma();
  out_.append(json);
}

void JsonWriter::raw_field(std::string_view k, std::string_view json) {
  key(k);
  out_.append(json);
}

}  // namespace rush::obs
