// Run manifest: the provenance record written alongside every trace.
//
// A trace without its generating configuration cannot be audited; the
// manifest pins the master seed, the bench configuration, the git
// revision the binary was built from, and the build flags that can
// change numeric results (audit hooks, sanitizers, build type). It is
// one JSON object in a sibling file (<trace>.manifest.json by
// convention), intentionally byte-deterministic: no wall-clock
// timestamps, no hostnames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rush::obs {

struct RunManifest {
  /// Program that produced the run (e.g. "bench_headline_summary").
  std::string tool;
  std::uint64_t seed = 0;
  int trials = 0;
  int days = 0;
  /// Path of the JSONL trace this manifest describes (empty if none).
  std::string trace_path;
  /// Free-form extra configuration, rendered as a JSON string map.
  std::vector<std::pair<std::string, std::string>> extra;
};

/// Compile-time build provenance (git SHA injected by src/obs/CMakeLists).
[[nodiscard]] std::string git_sha();
[[nodiscard]] std::string build_type();
[[nodiscard]] std::string compiler();
[[nodiscard]] bool audit_enabled() noexcept;

/// Renders the manifest (plus build provenance) as one JSON object.
[[nodiscard]] std::string manifest_json(const RunManifest& manifest);

/// Writes manifest_json(manifest) + "\n" to `path`; throws ParseError
/// when the file cannot be opened.
void write_manifest(const std::string& path, const RunManifest& manifest);

}  // namespace rush::obs
