// Leaf vocabulary of the simulation layer.
//
// Headers that only speak *about* the engine — Time stamps, EventId
// handles, Engine& constructor parameters — include this instead of
// sim/engine.hpp, keeping the engine's event queue and its <functional>
// machinery out of every downstream include graph.
#pragma once

#include <cstdint>

namespace rush::sim {

/// Simulated time in seconds since simulation start.
using Time = double;

/// Handle for a scheduled event; used for cancellation.
using EventId = std::uint64_t;

class Engine;

}  // namespace rush::sim
