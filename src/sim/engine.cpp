#include "sim/engine.hpp"

#include <utility>

#include "common/error.hpp"

namespace rush::sim {

void Engine::push_event(Time t, EventId id, std::function<void()> fn) {
  queue_.push(Event{t, id, std::move(fn)});
  queued_.insert(id);
}

EventId Engine::schedule_at(Time t, std::function<void()> fn) {
  RUSH_EXPECTS(t >= now_);
  RUSH_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  push_event(t, id, std::move(fn));
  return id;
}

EventId Engine::schedule_after(Time dt, std::function<void()> fn) {
  RUSH_EXPECTS(dt >= 0.0);
  return schedule_at(now_ + dt, std::move(fn));
}

void Engine::arm_periodic(EventId id, Time t, Time period, std::function<void()> fn) {
  // The queued occurrence reuses the task id so cancel() finds it directly;
  // the queue holds at most one occurrence per task at a time.
  push_event(t, id, [this, id, period, fn = std::move(fn)] {
    fn();
    if (periodic_.contains(id)) arm_periodic(id, now_ + period, period, fn);
  });
}

EventId Engine::schedule_periodic(Time start, Time period, std::function<void()> fn) {
  RUSH_EXPECTS(start >= now_);
  RUSH_EXPECTS(period > 0.0);
  RUSH_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  periodic_.insert(id);
  arm_periodic(id, start, period, std::move(fn));
  return id;
}

bool Engine::cancel(EventId id) {
  const bool was_periodic = periodic_.erase(id) > 0;
  if (queued_.contains(id)) {
    queued_.erase(id);
    cancelled_.insert(id);
    return true;
  }
  // A periodic task cancelled from inside its own callback has no queued
  // occurrence yet; erasing it from periodic_ above stops the re-arm.
  return was_periodic;
}

bool Engine::pop_next(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the handler is moved out via
    // const_cast, which is safe because pop() follows immediately.
    Event& top = const_cast<Event&>(queue_.top());
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    out.t = top.t;
    out.id = top.id;
    out.fn = std::move(top.fn);
    queue_.pop();
    queued_.erase(out.id);
    return true;
  }
  return false;
}

bool Engine::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  RUSH_ASSERT(ev.t >= now_);
  now_ = ev.t;
  ++executed_;
  ev.fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time t_end) {
  RUSH_EXPECTS(t_end >= now_);
  while (!queue_.empty()) {
    // Peek through cancelled events to find the next live timestamp.
    Event ev;
    if (!pop_next(ev)) break;
    if (ev.t > t_end) {
      // Put it back; it belongs to the future beyond this horizon.
      push_event(ev.t, ev.id, std::move(ev.fn));
      break;
    }
    now_ = ev.t;
    ++executed_;
    ev.fn();
  }
  now_ = t_end;
}

}  // namespace rush::sim
