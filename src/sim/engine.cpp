#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/audit.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace rush::sim {

void Engine::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_executed_ = nullptr;
    metric_cancelled_ = nullptr;
    return;
  }
  metric_executed_ = &metrics->counter("engine.events_executed");
  metric_cancelled_ = &metrics->counter("engine.events_cancelled");
}

void Engine::push_event(Time t, EventId id, std::function<void()> fn) {
  heap_.push_back(Event{t, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  queued_.insert(id);
}

EventId Engine::schedule_at(Time t, std::function<void()> fn) {
  RUSH_EXPECTS(t >= now_);
  RUSH_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  push_event(t, id, std::move(fn));
  return id;
}

EventId Engine::schedule_after(Time dt, std::function<void()> fn) {
  RUSH_EXPECTS(dt >= 0.0);
  return schedule_at(now_ + dt, std::move(fn));
}

void Engine::arm_periodic(EventId id, Time t, Time period, std::function<void()> fn) {
  // The queued occurrence reuses the task id so cancel() finds it directly;
  // the queue holds at most one occurrence per task at a time.
  push_event(t, id, [this, id, period, fn = std::move(fn)] {
    fn();
    if (periodic_.contains(id)) arm_periodic(id, now_ + period, period, fn);
  });
}

EventId Engine::schedule_periodic(Time start, Time period, std::function<void()> fn) {
  RUSH_EXPECTS(start >= now_);
  RUSH_EXPECTS(period > 0.0);
  RUSH_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  periodic_.insert(id);
  arm_periodic(id, start, period, std::move(fn));
  return id;
}

bool Engine::cancel(EventId id) {
  const bool was_periodic = periodic_.erase(id) > 0;
  if (queued_.contains(id)) {
    queued_.erase(id);
    cancelled_.insert(id);
    if (metric_cancelled_) metric_cancelled_->inc();
    return true;
  }
  // A periodic task cancelled from inside its own callback has no queued
  // occurrence yet; erasing it from periodic_ above stops the re-arm.
  return was_periodic;
}

bool Engine::pop_next(Event& out) {
  while (!heap_.empty()) {
    // Owning the heap container (unlike std::priority_queue, whose top()
    // is const) lets the handler be moved out of the root before the
    // sift-down, so the element bubbling through the heap is empty.
    Event& front = heap_.front();
    if (cancelled_.erase(front.id) == 0) {
      queued_.erase(front.id);
      out.t = front.t;
      out.id = front.id;
      out.fn = std::move(front.fn);
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      RUSH_AUDIT_HOOK(audit_invariants());
      return true;
    }
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
  return false;
}

void Engine::audit_invariants() const {
  RUSH_AUDIT_CHECK(std::is_heap(heap_.begin(), heap_.end(), Later{}), "");
  std::size_t live = 0;
  for (const Event& ev : heap_) {
    RUSH_AUDIT_CHECK(ev.t >= now_, "event " + std::to_string(ev.id) + " at t=" +
                                       std::to_string(ev.t) + " behind clock " +
                                       std::to_string(now_));
    RUSH_AUDIT_CHECK(ev.id < next_id_, "event id beyond id counter");
    const bool is_live = queued_.contains(ev.id);
    const bool is_cancelled = cancelled_.contains(ev.id);
    RUSH_AUDIT_CHECK(is_live != is_cancelled,
                     "event " + std::to_string(ev.id) + " tracked as neither/both");
    if (is_live) ++live;
  }
  RUSH_AUDIT_CHECK(live == queued_.size(), "queued_ holds ids missing from the heap");
}

bool Engine::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  RUSH_ASSERT(ev.t >= now_);
  now_ = ev.t;
  ++executed_;
  if (metric_executed_) metric_executed_->inc();
  ev.fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time t_end) {
  RUSH_EXPECTS(t_end >= now_);
  while (!heap_.empty()) {
    // Peek through cancelled events to find the next live timestamp.
    Event ev;
    if (!pop_next(ev)) break;
    if (ev.t > t_end) {
      // Put it back; it belongs to the future beyond this horizon.
      push_event(ev.t, ev.id, std::move(ev.fn));
      break;
    }
    now_ = ev.t;
    ++executed_;
    if (metric_executed_) metric_executed_->inc();
    ev.fn();
  }
  now_ = t_end;
}

}  // namespace rush::sim
