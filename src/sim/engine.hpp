// Discrete-event simulation engine.
//
// The whole RUSH reproduction runs on simulated time: the cluster, the
// telemetry samplers, job execution, and the scheduler are all event
// handlers on one Engine. Events at equal timestamps fire in scheduling
// order (FIFO), which makes runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/types.hpp"

namespace rush::obs {
class Counter;
class MetricsRegistry;
}  // namespace rush::obs

namespace rush::sim {

struct AuditTestPeer;  // test-only state corruption (tests/audit)

/// Single-threaded discrete-event engine with cancellable events and
/// periodic tasks.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t`. Requires t >= now().
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedule `fn` after a delay. Requires dt >= 0.
  EventId schedule_after(Time dt, std::function<void()> fn);

  /// Schedule `fn` every `period` seconds starting at `start`. The task
  /// keeps rescheduling itself until cancelled. Requires period > 0 and
  /// start >= now().
  EventId schedule_periodic(Time start, Time period, std::function<void()> fn);

  /// Cancel a pending event (or periodic task). Returns false if the event
  /// already fired or was never scheduled. Any id is acceptable input.
  bool cancel(EventId id);  // rush-analyze: allow(missing-expects) unknown ids are defined to return false

  /// Run until the event queue is empty.
  void run();

  /// Run events with timestamp <= t_end, then advance the clock to t_end
  /// (even if the queue drains early). Requires t_end >= now().
  void run_until(Time t_end);

  /// Execute exactly one event if any is pending. Returns false when idle.
  bool step();

  /// Number of live (non-cancelled) events currently queued.
  [[nodiscard]] std::size_t pending_events() const noexcept { return queued_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Publish engine counters (events executed / cancelled) into an
  /// observability registry. A null registry detaches, so every input is
  /// valid; the hot path pays one null check + add when attached.
  // rush-analyze: allow(missing-expects)
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Re-derives the queue bookkeeping from scratch and throws AuditError
  /// on corruption: the heap property must hold, no queued event may lie
  /// in the past, and every heap entry must be tracked as exactly one of
  /// live (queued_) or cancelled (cancelled_). Called automatically after
  /// every pop in RUSH_AUDIT builds.
  void audit_invariants() const;

 private:
  friend struct AuditTestPeer;
  struct Event {
    Time t;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  void push_event(Time t, EventId id, std::function<void()> fn);
  bool pop_next(Event& out);
  void arm_periodic(EventId id, Time t, Time period, std::function<void()> fn);

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  obs::Counter* metric_executed_ = nullptr;   // owned by the attached registry
  obs::Counter* metric_cancelled_ = nullptr;
  // Min-heap on (t, id) via std::push_heap/pop_heap. Owning the container
  // (instead of std::priority_queue) gives pop_next a well-defined move
  // out of the root and lets audit_invariants() inspect every element.
  std::vector<Event> heap_;
  std::unordered_set<EventId> queued_;     // live events in heap_
  std::unordered_set<EventId> cancelled_;  // lazily removed on pop
  std::unordered_set<EventId> periodic_;   // active periodic task ids
};

}  // namespace rush::sim
