// Include-graph extraction and architecture enforcement.
//
// Quoted includes are resolved against the analysis root (the project
// convention: every cross-module include is root-relative, e.g.
// "common/rng.hpp") with a same-directory fallback for local includes.
// Two rules run on the graph:
//
//   layer-dag      every cross-module include must be an edge the
//                  architecture DAG permits (see rush_layer_dag below);
//                  upward or sideways includes and undeclared modules are
//                  findings
//   include-cycle  the file-level include graph must be acyclic
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/finding.hpp"
#include "analysis/lexer.hpp"

namespace rush::analysis {

/// module -> set of modules it may include (besides itself). A DAG by
/// construction: enforcement rejects any edge not listed.
using LayerDag = std::map<std::string, std::set<std::string>>;

/// The RUSH architecture, lowest layer first (mirrors the CMake link
/// graph):
///
///   common → obs → sim → cluster → telemetry → apps → sched
///   common → ml
///   common → obs → analysis
///   … telemetry → faults → {sched, core, cli}
///   … → core → {cli, bench, tests}
///
/// `ml` is deliberately a leaf over `common`: the learning layer must
/// stay usable outside the simulator. `core` composes everything and
/// only `cli` (plus bench/tests, outside src/) sits above it.
const LayerDag& rush_layer_dag();

class IncludeGraph {
 public:
  explicit IncludeGraph(const std::vector<const SourceFile*>& files);

  /// Root-relative targets of `rel`'s quoted includes that resolve to
  /// analyzed files, in declaration order.
  [[nodiscard]] const std::vector<std::string>& resolved(const std::string& rel) const;

  void check_layers(const LayerDag& dag, std::vector<Finding>& out) const;
  void check_cycles(std::vector<Finding>& out) const;

 private:
  std::vector<const SourceFile*> files_;
  std::map<std::string, const SourceFile*> by_rel_;
  std::map<std::string, std::vector<std::string>> resolved_;
};

}  // namespace rush::analysis
