// Diagnostic record produced by the static-analysis rules.
//
// A Finding is identified for suppression purposes by (rule, file, key):
// the key is a *stable* token — an include target, a banned identifier, a
// function name — never a line number, so baselines survive unrelated
// edits to the same file.
#pragma once

#include <string>
#include <tuple>

namespace rush::analysis {

struct Finding {
  std::string rule;     // catalogue name, e.g. "layer-dag"
  std::string file;     // analysis-root-relative path, '/'-separated
  int line = 0;         // 1-based; 0 when the finding is file-scoped
  std::string key;      // stable identity for baseline matching
  std::string message;  // human explanation
};

inline bool operator<(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.rule, a.key) <
         std::tie(b.file, b.line, b.rule, b.key);
}

inline bool operator==(const Finding& a, const Finding& b) {
  return a.rule == b.rule && a.file == b.file && a.line == b.line &&
         a.key == b.key;
}

}  // namespace rush::analysis
