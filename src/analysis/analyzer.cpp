#include "analysis/analyzer.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "analysis/lexer.hpp"
#include "analysis/rules.hpp"
#include "common/error.hpp"
#include "obs/json.hpp"

namespace rush::analysis {

namespace {

bool cxx_suffix(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx" ||
         ext == ".cpp" || ext == ".cc" || ext == ".cxx";
}

std::string rel_to(const std::filesystem::path& root, const std::filesystem::path& p) {
  const std::filesystem::path rel = p.lexically_relative(root);
  return (rel.empty() || *rel.begin() == "..") ? p.generic_string() : rel.generic_string();
}

std::vector<std::filesystem::path> collect(const AnalyzeOptions& options) {
  std::vector<std::filesystem::path> files;
  std::vector<std::filesystem::path> inputs = options.inputs;
  if (inputs.empty()) inputs.push_back(options.root);
  for (const std::filesystem::path& input : inputs) {
    if (std::filesystem::is_directory(input)) {
      for (const auto& entry : std::filesystem::recursive_directory_iterator(input)) {
        if (entry.is_regular_file() && cxx_suffix(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (std::filesystem::is_regular_file(input) && cxx_suffix(input)) {
      files.push_back(input);
    } else {
      throw ParseError("rush_analyze: no such file or directory: " + input.string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

SourceFile read_and_lex(const std::filesystem::path& root, const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw ParseError("rush_analyze: cannot read " + p.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return lex_string(rel_to(root, p), buf.str());
}

std::string dir_of(const std::string& rel) {
  const std::size_t slash = rel.rfind('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

/// Primary header of a TU: same path with a header suffix.
const SourceFile* primary_header_of(const SourceFile& f,
                                    const std::map<std::string, const SourceFile*>& by_rel) {
  const std::size_t dot = f.rel.rfind('.');
  if (dot == std::string::npos) return nullptr;
  const std::string stem = f.rel.substr(0, dot);
  for (const char* ext : {".hpp", ".h", ".hh", ".hxx"}) {
    const auto it = by_rel.find(stem + ext);
    if (it != by_rel.end()) return it->second;
  }
  return nullptr;
}

}  // namespace

AnalyzeResult analyze(const AnalyzeOptions& options, Baseline* baseline) {
  const auto enabled = [&options](const char* rule) {
    return options.only.empty() || options.only.count(rule) > 0;
  };

  std::vector<SourceFile> files;
  for (const std::filesystem::path& p : collect(options)) {
    files.push_back(read_and_lex(options.root, p));
  }

  std::map<std::string, const SourceFile*> by_rel;
  std::map<std::string, std::vector<const SourceFile*>> by_dir;
  for (const SourceFile& f : files) {
    by_rel[f.rel] = &f;
    by_dir[dir_of(f.rel)].push_back(&f);
  }

  std::vector<Finding> all;
  const IncludeGraph graph(files);
  if (enabled("layer-dag")) {
    graph.check_layers(options.dag != nullptr ? *options.dag : rush_layer_dag(), all);
  }
  if (enabled("include-cycle")) graph.check_cycles(all);

  for (const SourceFile& f : files) {
    if (enabled("naked-rand")) check_naked_rand(f, all);
    if (enabled("raw-thread")) check_raw_thread(f, all);
    if (enabled("unordered-iter")) {
      check_unordered_iter(f, by_dir.at(dir_of(f.rel)), all);
    }
    if (enabled("sched-linear-scan")) check_sched_linear_scan(f, all);
    if (enabled("pragma-once")) check_pragma_once(f, all);
    if (enabled("header-def")) check_header_def(f, all);
    if (enabled("redundant-include")) {
      check_redundant_include(f, primary_header_of(f, by_rel), all);
    }
    if (enabled("unused-module-include")) check_unused_module_include(f, all);
  }
  std::sort(all.begin(), all.end());

  AnalyzeResult result;
  result.files_analyzed = files.size();
  for (Finding& f : all) {
    if (baseline != nullptr && baseline->matches(f)) {
      result.baselined.push_back(std::move(f));
    } else {
      result.findings.push_back(std::move(f));
    }
  }
  if (baseline != nullptr) result.unused_baseline = baseline->unused();
  return result;
}

std::string render_human(const AnalyzeResult& result) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  for (const BaselineEntry& e : result.unused_baseline) {
    out += "warning: stale baseline entry (nothing matches): [" + e.rule + "] " +
           e.file + " key='" + e.key + "' — remove it or run --fix-baseline\n";
  }
  out += "rush_analyze: " + std::to_string(result.files_analyzed) + " file(s), " +
         std::to_string(result.findings.size()) + " finding(s)";
  if (!result.baselined.empty()) {
    out += ", " + std::to_string(result.baselined.size()) + " baselined";
  }
  if (!result.unused_baseline.empty()) {
    out += ", " + std::to_string(result.unused_baseline.size()) + " stale baseline entr" +
           (result.unused_baseline.size() == 1 ? "y" : "ies");
  }
  out += "\n";
  return out;
}

std::string render_json(const AnalyzeResult& result) {
  std::string out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("files_analyzed", static_cast<std::uint64_t>(result.files_analyzed));
  w.begin_array("findings");
  std::string item;
  for (const Finding& f : result.findings) {
    item.clear();
    obs::JsonWriter fw(item);
    fw.begin_object();
    fw.field("rule", f.rule);
    fw.field("file", f.file);
    fw.field("line", static_cast<std::int64_t>(f.line));
    fw.field("key", f.key);
    fw.field("message", f.message);
    fw.end_object();
    w.raw_element(item);
  }
  w.end_array();
  w.begin_array("baselined");
  for (const Finding& f : result.baselined) {
    item.clear();
    obs::JsonWriter fw(item);
    fw.begin_object();
    fw.field("rule", f.rule);
    fw.field("file", f.file);
    fw.field("key", f.key);
    fw.end_object();
    w.raw_element(item);
  }
  w.end_array();
  w.begin_array("stale_baseline");
  for (const BaselineEntry& e : result.unused_baseline) {
    item.clear();
    obs::JsonWriter fw(item);
    fw.begin_object();
    fw.field("rule", e.rule);
    fw.field("file", e.file);
    fw.field("key", e.key);
    fw.end_object();
    w.raw_element(item);
  }
  w.end_array();
  w.end_object();
  out += "\n";
  return out;
}

}  // namespace rush::analysis
