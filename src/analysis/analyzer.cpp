#include "analysis/analyzer.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>

#include "analysis/contracts.hpp"
#include "analysis/rules.hpp"
#include "analysis/symbols.hpp"
#include "common/error.hpp"
#include "obs/json.hpp"

namespace rush::analysis {

namespace {

bool cxx_suffix(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx" ||
         ext == ".cpp" || ext == ".cc" || ext == ".cxx";
}

std::string rel_to(const std::filesystem::path& root, const std::filesystem::path& p) {
  const std::filesystem::path rel = p.lexically_relative(root);
  return (rel.empty() || *rel.begin() == "..") ? p.generic_string() : rel.generic_string();
}

std::vector<std::filesystem::path> collect(const std::vector<std::filesystem::path>& inputs) {
  std::vector<std::filesystem::path> files;
  for (const std::filesystem::path& input : inputs) {
    if (std::filesystem::is_directory(input)) {
      for (const auto& entry : std::filesystem::recursive_directory_iterator(input)) {
        if (entry.is_regular_file() && cxx_suffix(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (std::filesystem::is_regular_file(input) && cxx_suffix(input)) {
      files.push_back(input);
    } else {
      throw ParseError("rush_analyze: no such file or directory: " + input.string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string cache_key(const std::filesystem::path& p) {
  std::error_code ec;
  const std::filesystem::path canon = std::filesystem::weakly_canonical(p, ec);
  return (ec ? std::filesystem::absolute(p) : canon).generic_string();
}

std::string dir_of(const std::string& rel) {
  const std::size_t slash = rel.rfind('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

/// Primary header of a TU: same path with a header suffix.
const SourceFile* primary_header_of(const SourceFile& f,
                                    const std::map<std::string, const SourceFile*>& by_rel) {
  const std::size_t dot = f.rel.rfind('.');
  if (dot == std::string::npos) return nullptr;
  const std::string stem = f.rel.substr(0, dot);
  for (const char* ext : {".hpp", ".h", ".hh", ".hxx"}) {
    const auto it = by_rel.find(stem + ext);
    if (it != by_rel.end()) return it->second;
  }
  return nullptr;
}

}  // namespace

const SourceFile& Analyzer::lexed(const std::filesystem::path& root,
                                  const std::filesystem::path& p, AnalyzeStats& stats) {
  const std::string key = cache_key(p);
  const std::string rel = rel_to(root, p);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++stats.cache_hits;
    if (it->second.rel != rel) it->second.rel = rel;  // root changed between runs
    return it->second;
  }
  std::ifstream in(p, std::ios::binary);
  if (!in) throw ParseError("rush_analyze: cannot read " + p.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  ++stats.files_lexed;
  return cache_.emplace(key, lex_string(rel, buf.str())).first->second;
}

AnalyzeResult Analyzer::run(const AnalyzeOptions& options, Baseline* baseline) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto enabled = [&options](const char* rule) {
    return options.only.empty() || options.only.count(rule) > 0;
  };

  AnalyzeResult result;
  AnalyzeStats& stats = result.stats;

  std::vector<std::filesystem::path> input_paths =
      collect(options.inputs.empty() ? std::vector<std::filesystem::path>{options.root}
                                     : options.inputs);
  std::vector<const SourceFile*> files;
  std::set<std::string> seen;
  for (const std::filesystem::path& p : input_paths) {
    if (!seen.insert(cache_key(p)).second) continue;
    files.push_back(&lexed(options.root, p, stats));
  }
  std::vector<const SourceFile*> ref_files;
  if (!options.ref_roots.empty()) {
    for (const std::filesystem::path& p : collect(options.ref_roots)) {
      if (!seen.insert(cache_key(p)).second) continue;  // already analyzed
      ref_files.push_back(&lexed(options.root, p, stats));
    }
  }
  stats.files_analyzed = files.size();
  stats.ref_files = ref_files.size();
  for (const SourceFile* f : files) stats.tokens += f->tokens.size();
  for (const SourceFile* f : ref_files) stats.tokens += f->tokens.size();

  std::map<std::string, const SourceFile*> by_rel;
  std::map<std::string, std::vector<const SourceFile*>> by_dir;
  for (const SourceFile* f : files) {
    by_rel[f->rel] = f;
    by_dir[dir_of(f->rel)].push_back(f);
  }

  std::vector<Finding> all;
  const IncludeGraph graph(files);
  if (enabled("layer-dag")) {
    graph.check_layers(options.dag != nullptr ? *options.dag : rush_layer_dag(), all);
  }
  if (enabled("include-cycle")) graph.check_cycles(all);

  for (const SourceFile* fp : files) {
    const SourceFile& f = *fp;
    if (enabled("naked-rand")) check_naked_rand(f, all);
    if (enabled("raw-thread")) check_raw_thread(f, all);
    if (enabled("unordered-iter")) {
      check_unordered_iter(f, by_dir.at(dir_of(f.rel)), all);
    }
    if (enabled("sched-linear-scan")) check_sched_linear_scan(f, all);
    if (enabled("pragma-once")) check_pragma_once(f, all);
    if (enabled("header-def")) check_header_def(f, all);
    if (enabled("redundant-include")) {
      check_redundant_include(f, primary_header_of(f, by_rel), all);
    }
    if (enabled("unused-module-include")) check_unused_module_include(f, all);
    if (enabled("const-cast")) check_const_cast(f, all);
    if (enabled("trace-sim-time")) check_trace_sim_time(f, all);
  }

  // The semantic rules share one cross-TU symbol index; skip the outline
  // pass entirely when none of them is enabled.
  if (enabled("missing-expects") || enabled("noalloc-path") ||
      enabled("guarded-member") || enabled("dead-symbol")) {
    SymbolIndex index;
    for (const SourceFile* f : files) index.add_file(*f, /*analyzed=*/true);
    for (const SourceFile* f : ref_files) index.add_file(*f, /*analyzed=*/false);
    index.finalize();
    if (enabled("missing-expects")) check_missing_expects(index, all);
    if (enabled("noalloc-path")) check_noalloc_path(index, all);
    if (enabled("guarded-member")) check_guarded_member(index, all);
    if (enabled("dead-symbol")) check_dead_symbol(index, all);
  }
  std::sort(all.begin(), all.end());

  result.files_analyzed = files.size();
  for (Finding& f : all) {
    if (baseline != nullptr && baseline->matches(f)) {
      result.baselined.push_back(std::move(f));
    } else {
      result.findings.push_back(std::move(f));
    }
  }
  if (baseline != nullptr) result.unused_baseline = baseline->unused();
  stats.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

AnalyzeResult analyze(const AnalyzeOptions& options, Baseline* baseline) {
  Analyzer analyzer;
  return analyzer.run(options, baseline);
}

std::string render_human(const AnalyzeResult& result) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  for (const BaselineEntry& e : result.unused_baseline) {
    out += "warning: stale baseline entry (nothing matches): [" + e.rule + "] " +
           e.file + " key='" + e.key + "' — remove it or run --fix-baseline\n";
  }
  out += "rush_analyze: " + std::to_string(result.files_analyzed) + " file(s), " +
         std::to_string(result.findings.size()) + " finding(s)";
  if (!result.baselined.empty()) {
    out += ", " + std::to_string(result.baselined.size()) + " baselined";
  }
  if (!result.unused_baseline.empty()) {
    out += ", " + std::to_string(result.unused_baseline.size()) + " stale baseline entr" +
           (result.unused_baseline.size() == 1 ? "y" : "ies");
  }
  out += "\n";
  return out;
}

std::string render_json(const AnalyzeResult& result) {
  std::string out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("files_analyzed", static_cast<std::uint64_t>(result.files_analyzed));
  w.begin_array("findings");
  std::string item;
  for (const Finding& f : result.findings) {
    item.clear();
    obs::JsonWriter fw(item);
    fw.begin_object();
    fw.field("rule", f.rule);
    fw.field("file", f.file);
    fw.field("line", static_cast<std::int64_t>(f.line));
    fw.field("key", f.key);
    fw.field("message", f.message);
    fw.end_object();
    w.raw_element(item);
  }
  w.end_array();
  w.begin_array("baselined");
  for (const Finding& f : result.baselined) {
    item.clear();
    obs::JsonWriter fw(item);
    fw.begin_object();
    fw.field("rule", f.rule);
    fw.field("file", f.file);
    fw.field("key", f.key);
    fw.end_object();
    w.raw_element(item);
  }
  w.end_array();
  w.begin_array("stale_baseline");
  for (const BaselineEntry& e : result.unused_baseline) {
    item.clear();
    obs::JsonWriter fw(item);
    fw.begin_object();
    fw.field("rule", e.rule);
    fw.field("file", e.file);
    fw.field("key", e.key);
    fw.end_object();
    w.raw_element(item);
  }
  w.end_array();
  w.end_object();
  out += "\n";
  return out;
}

std::string render_sarif(const AnalyzeResult& result) {
  std::string out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
  w.field("version", "2.1.0");
  w.begin_array("runs");

  std::string run;
  obs::JsonWriter rw(run);
  rw.begin_object();
  {
    std::string tool;
    obs::JsonWriter tw(tool);
    tw.begin_object();
    {
      std::string driver;
      obs::JsonWriter dw(driver);
      dw.begin_object();
      dw.field("name", "rush_analyze");
      dw.field("informationUri", "docs/static-analysis.md");
      dw.begin_array("rules");
      for (const RuleInfo& r : rule_catalogue()) {
        std::string rule;
        obs::JsonWriter rdw(rule);
        rdw.begin_object();
        rdw.field("id", r.name);
        {
          std::string desc;
          obs::JsonWriter sdw(desc);
          sdw.begin_object();
          sdw.field("text", r.summary);
          sdw.end_object();
          rdw.raw_field("shortDescription", desc);
        }
        rdw.end_object();
        dw.raw_element(rule);
      }
      dw.end_array();
      dw.end_object();
      tw.raw_field("driver", driver);
    }
    tw.end_object();
    rw.raw_field("tool", tool);
  }
  rw.begin_array("results");
  for (const Finding& f : result.findings) {
    std::string res;
    obs::JsonWriter sw(res);
    sw.begin_object();
    sw.field("ruleId", f.rule);
    sw.field("level", "error");
    {
      std::string msg;
      obs::JsonWriter mw(msg);
      mw.begin_object();
      mw.field("text", f.message);
      mw.end_object();
      sw.raw_field("message", msg);
    }
    {
      std::string loc;
      obs::JsonWriter lw(loc);
      lw.begin_object();
      {
        std::string phys;
        obs::JsonWriter pw(phys);
        pw.begin_object();
        {
          std::string art;
          obs::JsonWriter aw(art);
          aw.begin_object();
          aw.field("uri", f.file);
          aw.end_object();
          pw.raw_field("artifactLocation", art);
        }
        {
          std::string region;
          obs::JsonWriter gw(region);
          gw.begin_object();
          gw.field("startLine", static_cast<std::int64_t>(f.line > 0 ? f.line : 1));
          gw.end_object();
          pw.raw_field("region", region);
        }
        pw.end_object();
        lw.raw_field("physicalLocation", phys);
      }
      lw.end_object();
      sw.begin_array("locations");
      sw.raw_element(loc);
      sw.end_array();
    }
    {
      std::string fp;
      obs::JsonWriter fpw(fp);
      fpw.begin_object();
      fpw.field("rushKey", f.rule + ":" + f.file + ":" + f.key);
      fpw.end_object();
      sw.raw_field("partialFingerprints", fp);
    }
    sw.end_object();
    rw.raw_element(res);
  }
  rw.end_array();
  rw.end_object();
  w.raw_element(run);
  w.end_array();
  w.end_object();
  out += "\n";
  return out;
}

std::string render_stats(const AnalyzeStats& stats) {
  std::string out = "rush_analyze: analyzed " + std::to_string(stats.files_analyzed) +
                    " file(s)";
  if (stats.ref_files > 0) {
    out += " + " + std::to_string(stats.ref_files) + " reference file(s)";
  }
  out += ", " + std::to_string(stats.tokens) + " tokens, " +
         std::to_string(stats.files_lexed) + " lexed / " +
         std::to_string(stats.cache_hits) + " cached, " +
         std::to_string(stats.elapsed_s * 1e3) + " ms\n";
  return out;
}

}  // namespace rush::analysis
