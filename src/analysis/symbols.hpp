// Cross-TU symbol index for rush_analyze.
//
// Collects every file's outline (see outline.hpp) and answers the two
// questions the semantic rules need across translation units:
//
//  - find_definitions(class, name, arity): where is this declaration's
//    body? Pairs a header declaration with its out-of-line definition in
//    whichever file defines it.
//  - referenced(name): does the identifier occur anywhere outside a
//    declaration/definition name position? Liveness for dead-symbol —
//    token-level, so references inside macro invocations and templates
//    count, and comments/strings (which the lexer drops) do not.
//
// Files added with analyzed=false participate in both queries but are
// not themselves rule targets — the CLI's --ref-root mechanism, which
// keeps API used only by tests/benches out of dead-symbol findings.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/lexer.hpp"
#include "analysis/outline.hpp"

namespace rush::analysis {

struct FileOutline {
  const SourceFile* file = nullptr;
  Outline outline;
  bool analyzed = false;  // false: reference-only (--ref-root)
};

class SymbolIndex {
 public:
  /// Add one lexed file. `file` must outlive the index.
  void add_file(const SourceFile& file, bool analyzed);
  /// Build the lookup structures; call once after the last add_file.
  void finalize();

  [[nodiscard]] const std::vector<FileOutline>& files() const { return files_; }

  struct FnRef {
    const FileOutline* file = nullptr;
    const FunctionDecl* fn = nullptr;
  };
  /// Definitions whose innermost class and name match; `arity` narrows to
  /// that parameter count when any definition has it (pass -1 to skip).
  /// Free functions match with cls == "".
  [[nodiscard]] std::vector<FnRef> find_definitions(const std::string& cls,
                                                    const std::string& name,
                                                    int arity) const;

  /// True when `name` occurs as an identifier token anywhere in the index
  /// outside declaration/definition name positions.
  [[nodiscard]] bool referenced(const std::string& name) const;

 private:
  std::vector<FileOutline> files_;
  // "Cls::name" (or "::name" for free functions) -> (file, fn) indices.
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>> defs_;
  std::set<std::string, std::less<>> referenced_;
  bool finalized_ = false;
};

}  // namespace rush::analysis
