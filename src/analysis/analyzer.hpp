// Orchestration for rush_analyze: collect files, lex (through a
// persistent per-file cache), build the cross-TU symbol index, run every
// rule, apply the suppression baseline, and render reports.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/finding.hpp"
#include "analysis/include_graph.hpp"
#include "analysis/lexer.hpp"

namespace rush::analysis {

struct AnalyzeOptions {
  /// Include-resolution root; file paths in reports are relative to it.
  std::filesystem::path root;
  /// Files or directories (recursed) under `root` to analyze. Empty
  /// means "all of root".
  std::vector<std::filesystem::path> inputs;
  /// Extra trees lexed and indexed for symbol references only — their
  /// files are never rule targets, but calls from them keep symbols
  /// alive for dead-symbol and provide definitions for pairing.
  std::vector<std::filesystem::path> ref_roots;
  /// Restrict to these rule names; empty runs the whole catalogue.
  std::set<std::string> only;
  /// Architecture DAG for the layer rule; null uses rush_layer_dag().
  const LayerDag* dag = nullptr;
};

/// Workload counters for one run (--stats).
struct AnalyzeStats {
  std::size_t files_analyzed = 0;
  std::size_t ref_files = 0;
  std::size_t files_lexed = 0;  // cache misses this run
  std::size_t cache_hits = 0;   // files served from the lex cache
  std::size_t tokens = 0;       // across analyzed + reference files
  double elapsed_s = 0.0;
};

struct AnalyzeResult {
  std::vector<Finding> findings;   // unsuppressed: these fail the run
  std::vector<Finding> baselined;  // matched a baseline entry
  std::vector<BaselineEntry> unused_baseline;
  std::size_t files_analyzed = 0;
  AnalyzeStats stats;
};

/// Reusable analysis driver. Lexed token streams are cached per absolute
/// path, so repeated runs (test suites, per-rule invocations, editors
/// re-running on save) lex each unchanged file once.
class Analyzer {
 public:
  /// Run the analysis. `baseline` may be null (nothing suppressed).
  AnalyzeResult run(const AnalyzeOptions& options, Baseline* baseline);

  [[nodiscard]] std::size_t cached_files() const { return cache_.size(); }

 private:
  const SourceFile& lexed(const std::filesystem::path& root, const std::filesystem::path& p,
                          AnalyzeStats& stats);

  std::map<std::string, SourceFile> cache_;  // canonical path -> lexed file
};

/// One-shot convenience wrapper around a fresh Analyzer.
AnalyzeResult analyze(const AnalyzeOptions& options, Baseline* baseline);

/// One line per finding plus a summary, for terminals.
std::string render_human(const AnalyzeResult& result);

/// Machine-readable report (findings, baselined counts, unused entries).
std::string render_json(const AnalyzeResult& result);

/// SARIF 2.1.0 report (one run, rule metadata from the catalogue), for
/// CI annotation upload.
std::string render_sarif(const AnalyzeResult& result);

/// One human-readable line summarizing `stats` (--stats output).
std::string render_stats(const AnalyzeStats& stats);

}  // namespace rush::analysis
