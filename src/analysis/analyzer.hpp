// Orchestration for rush_analyze: collect files, lex, run every rule,
// apply the suppression baseline, and render reports.
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/finding.hpp"
#include "analysis/include_graph.hpp"

namespace rush::analysis {

struct AnalyzeOptions {
  /// Include-resolution root; file paths in reports are relative to it.
  std::filesystem::path root;
  /// Files or directories (recursed) under `root` to analyze. Empty
  /// means "all of root".
  std::vector<std::filesystem::path> inputs;
  /// Restrict to these rule names; empty runs the whole catalogue.
  std::set<std::string> only;
  /// Architecture DAG for the layer rule; null uses rush_layer_dag().
  const LayerDag* dag = nullptr;
};

struct AnalyzeResult {
  std::vector<Finding> findings;    // unsuppressed: these fail the run
  std::vector<Finding> baselined;   // matched a baseline entry
  std::vector<BaselineEntry> unused_baseline;
  std::size_t files_analyzed = 0;
};

/// Run the analysis. `baseline` may be null (nothing suppressed).
AnalyzeResult analyze(const AnalyzeOptions& options, Baseline* baseline);

/// One line per finding plus a summary, for terminals.
std::string render_human(const AnalyzeResult& result);

/// Machine-readable report (findings, baselined counts, unused entries).
std::string render_json(const AnalyzeResult& result);

}  // namespace rush::analysis
