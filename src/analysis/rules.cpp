#include "analysis/rules.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace rush::analysis {

namespace {

using SV = std::string_view;

bool is_punct(const SourceFile& f, std::size_t i, SV text) {
  return i < f.tokens.size() && f.tokens[i].kind == TokenKind::kPunct && f.tok(i) == text;
}

bool is_ident(const SourceFile& f, std::size_t i, SV text) {
  return i < f.tokens.size() && f.tokens[i].kind == TokenKind::kIdentifier &&
         f.tok(i) == text;
}

bool is_ident(const SourceFile& f, std::size_t i) {
  return i < f.tokens.size() && f.tokens[i].kind == TokenKind::kIdentifier;
}

/// True when `rel` (extension stripped) ends with `stem` — the way rule
/// exemptions name their home files, e.g. "common/rng".
bool stem_is(const std::string& rel, SV stem) {
  const std::size_t dot = rel.rfind('.');
  const SV no_ext = SV(rel).substr(0, dot);
  return no_ext.size() >= stem.size() &&
         no_ext.substr(no_ext.size() - stem.size()) == stem &&
         (no_ext.size() == stem.size() || no_ext[no_ext.size() - stem.size() - 1] == '/');
}

/// Token at i-1 is `::` qualified by an identifier other than `std` —
/// i.e. some library's own rand/random_device, not ours to flag.
bool qualified_non_std(const SourceFile& f, std::size_t i) {
  if (i < 1 || !is_punct(f, i - 1, "::")) return false;
  return i >= 2 && is_ident(f, i - 2) && f.tok(i - 2) != "std";
}

bool member_access(const SourceFile& f, std::size_t i) {
  if (i < 1) return false;
  if (is_punct(f, i - 1, ".")) return true;
  return i >= 2 && is_punct(f, i - 2, "-") && is_punct(f, i - 1, ">");
}

/// Token i is preceded by a plain identifier that is not a statement
/// keyword — declaration context (`int rand(int);`), not a call site.
bool declaration_context(const SourceFile& f, std::size_t i) {
  static const std::set<SV> kCallHeads = {"return",   "co_return", "co_yield",
                                          "co_await", "case",      "else",
                                          "do",       "throw"};
  if (i < 1 || f.tokens[i - 1].kind != TokenKind::kIdentifier) return false;
  return kCallHeads.count(f.tok(i - 1)) == 0;
}

void emit(const SourceFile& f, int line, const char* rule, std::string key,
          std::string message, std::vector<Finding>& out) {
  if (f.is_allowed(line, rule)) return;
  out.push_back(Finding{rule, f.rel, line, std::move(key), std::move(message)});
}

std::string first_component(const std::string& path) {
  const std::size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> rules = {
      {"layer-dag",
       "cross-module includes must follow the architecture DAG (no upward or "
       "sideways edges, no undeclared modules)"},
      {"include-cycle", "the file-level include graph must be acyclic"},
      {"naked-rand",
       "std::rand/srand/std::random_device/time(nullptr) outside common/rng "
       "break seeded reproducibility"},
      {"raw-thread",
       "std::thread/std::jthread/std::async/OpenMP outside common/task_pool "
       "bypass the deterministic task pool"},
      {"unordered-iter",
       "(sim/, sched/, core/) range-for over an unordered container member "
       "feeds unspecified order into deterministic output"},
      {"sched-linear-scan",
       "(sched/) std::find/find_if/count/remove over a member container is a "
       "linear scan in the scheduling hot path; binary-search the sorted "
       "container instead"},
      {"pragma-once", "headers must open with #pragma once"},
      {"header-def",
       "non-inline, non-template function definition at namespace scope in a "
       "header is an ODR violation"},
      {"redundant-include",
       "duplicate include, or a TU re-including what its primary header "
       "already includes directly"},
      {"unused-module-include",
       "header includes another module but never names its namespace — dead "
       "coupling in the include graph"},
      {"const-cast",
       "const_cast mutates through const and breaks the RUSH_AUDIT "
       "const-correctness guarantees"},
      {"missing-expects",
       "(sim/, sched/) public non-const member functions taking arguments "
       "must call RUSH_EXPECTS in their definition"},
      {"trace-sim-time",
       "EventTrace emit_* call sites must pass a sim-time first argument "
       "(now(), *_s, or t/when) — wall-clock stamps break reproducibility"},
      {"noalloc-path",
       "functions annotated '// rush: noalloc' and their same-module callees "
       "must not allocate: no new/make_unique/make_shared, no by-value std "
       "container locals, no growth calls on non-member receivers"},
      {"guarded-member",
       "members annotated '// rush: guarded_by(G)' may only be touched after "
       "locking G (lock parameters and *_locked helpers are the hand-off "
       "exemptions)"},
      {"dead-symbol",
       "non-inline functions defined in analyzed sources but referenced "
       "nowhere in the index (--ref-root trees included) are dead code"},
  };
  return rules;
}

void check_const_cast(const SourceFile& f, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (!is_ident(f, i, "const_cast")) continue;
    emit(f, f.tokens[i].line, "const-cast", "const_cast",
         "const_cast mutates through const; restructure ownership instead "
         "(the audit harness assumes const views stay const)",
         out);
  }
}

void check_naked_rand(const SourceFile& f, std::vector<Finding>& out) {
  if (stem_is(f.rel, "common/rng")) return;
  const std::size_t n = f.tokens.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_ident(f, i)) continue;
    const SV id = f.tok(i);
    const int line = f.tokens[i].line;
    if (member_access(f, i) || qualified_non_std(f, i)) continue;
    if (declaration_context(f, i)) continue;
    if ((id == "rand" || id == "srand") && is_punct(f, i + 1, "(")) {
      emit(f, line, "naked-rand", std::string(id),
           std::string(id) + "() breaks seeded reproducibility; draw from "
           "common/rng streams", out);
    } else if (id == "random_device") {
      emit(f, line, "naked-rand", "random_device",
           "std::random_device is non-deterministic entropy; seed common/rng "
           "streams explicitly", out);
    } else if (id == "time" && is_punct(f, i + 1, "(") && is_punct(f, i + 3, ")") &&
               (is_ident(f, i + 2, "nullptr") || is_ident(f, i + 2, "NULL") ||
                (i + 2 < n && f.tokens[i + 2].kind == TokenKind::kNumber &&
                 f.tok(i + 2) == "0"))) {
      emit(f, line, "naked-rand", "time",
           "wall-clock time() seeds are non-reproducible; thread a seed or "
           "sim-time through instead", out);
    }
  }
}

void check_raw_thread(const SourceFile& f, std::vector<Finding>& out) {
  if (stem_is(f.rel, "common/task_pool")) return;
  for (std::size_t i = 0; i + 2 < f.tokens.size(); ++i) {
    if (!is_ident(f, i, "std") || !is_punct(f, i + 1, "::")) continue;
    const SV what = f.tok(i + 2);
    if (what == "thread" || what == "jthread" || what == "async") {
      emit(f, f.tokens[i].line, "raw-thread", std::string(what),
           "std::" + std::string(what) + " bypasses the deterministic task "
           "pool; dispatch through common/task_pool instead", out);
    }
  }
  for (const Directive& d : f.directives) {
    if (d.keyword == "pragma" && SV(d.rest).substr(0, 3) == "omp") {
      emit(f, d.line, "raw-thread", "omp",
           "OpenMP bypasses the deterministic task pool; dispatch through "
           "common/task_pool instead", out);
    }
  }
}

void check_unordered_iter(const SourceFile& f,
                          const std::vector<const SourceFile*>& dir_siblings,
                          std::vector<Finding>& out) {
  static const std::set<std::string, std::less<>> kScope = {"sim", "sched", "core"};
  static const std::set<std::string, std::less<>> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  if (kScope.count(f.module()) == 0) return;

  // Pass 1: names declared with an unordered container type anywhere in
  // this directory (headers declare members, sources iterate them).
  std::set<std::string> names;
  for (const SourceFile* sib : dir_siblings) {
    const std::size_t n = sib->tokens.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_ident(*sib, i) || kUnordered.count(std::string(sib->tok(i))) == 0) continue;
      if (!is_punct(*sib, i + 1, "<")) continue;
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < n; ++j) {
        if (is_punct(*sib, j, "<")) ++depth;
        if (is_punct(*sib, j, ">") && --depth == 0) break;
      }
      // Declarator after the template args: `type name [;={,)]`.
      if (j + 2 < n && is_ident(*sib, j + 1)) {
        const SV after = sib->tok(j + 2);
        if (after == ";" || after == "=" || after == "{" || after == "," || after == ")") {
          names.insert(std::string(sib->tok(j + 1)));
        }
      }
    }
  }
  if (names.empty()) return;

  // Pass 2: range-for statements whose range expression is a plain path
  // ending in one of those names. A call in the range expression (e.g.
  // iterating a sorted copy) opts out by construction.
  const std::size_t n = f.tokens.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!is_ident(f, i, "for") || !is_punct(f, i + 1, "(")) continue;
    int depth = 1;
    std::size_t colon = 0;
    for (std::size_t j = i + 2; j < n && depth > 0; ++j) {
      if (is_punct(f, j, "(")) ++depth;
      if (is_punct(f, j, ")")) --depth;
      if (depth == 1 && is_punct(f, j, ";")) break;  // classic for
      if (depth == 1 && is_punct(f, j, ":")) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    depth = 1;
    bool has_call = false;
    std::size_t last_ident = 0;
    for (std::size_t j = colon + 1; j < n && depth > 0; ++j) {
      if (is_punct(f, j, "(")) {
        ++depth;
        has_call = true;
      }
      if (is_punct(f, j, ")")) --depth;
      if (depth >= 1 && is_ident(f, j)) last_ident = j;
    }
    if (has_call || last_ident == 0) continue;
    const std::string name(f.tok(last_ident));
    if (names.count(name) == 0) continue;
    emit(f, f.tokens[i].line, "unordered-iter", name,
         "iteration over unordered container '" + name + "' in a "
         "determinism-critical subsystem; iterate a sorted copy or justify "
         "with an allow marker", out);
  }
}

void check_sched_linear_scan(const SourceFile& f, std::vector<Finding>& out) {
  static const std::set<SV> kLinear = {"find",  "find_if", "count",
                                       "count_if", "remove", "remove_if"};
  if (f.module() != "sched" || stem_is(f.rel, "sched/reference_scheduler")) return;
  const std::size_t n = f.tokens.size();
  for (std::size_t i = 0; i + 3 < n; ++i) {
    if (!is_ident(f, i, "std") || !is_punct(f, i + 1, "::")) continue;
    if (!is_ident(f, i + 2) || kLinear.count(f.tok(i + 2)) == 0) continue;
    if (!is_punct(f, i + 3, "(")) continue;
    // Walk the balanced argument list for the first member-named operand
    // (trailing underscore, the codebase's member convention): scans over
    // locals and parameters are not hot-path state and stay unflagged.
    int depth = 1;
    std::string member;
    for (std::size_t j = i + 4; j < n && depth > 0; ++j) {
      if (is_punct(f, j, "(")) {
        ++depth;
      } else if (is_punct(f, j, ")")) {
        --depth;
      } else if (is_ident(f, j)) {
        const SV id = f.tok(j);
        if (id.size() > 1 && id.back() == '_') {
          member = std::string(id);
          break;
        }
      }
    }
    if (member.empty()) continue;
    emit(f, f.tokens[i].line, "sched-linear-scan", member,
         "std::" + std::string(f.tok(i + 2)) + " over scheduler member '" + member +
             "' is a linear scan in the scheduling hot path; keep the container "
             "sorted and binary-search it, or justify with an allow marker",
         out);
  }
}

void check_pragma_once(const SourceFile& f, std::vector<Finding>& out) {
  if (!f.is_header() || f.has_pragma_once) return;
  emit(f, 1, "pragma-once", "missing",
       "header lacks #pragma once; double inclusion is an ODR time bomb", out);
}

void check_header_def(const SourceFile& f, std::vector<Finding>& out) {
  if (!f.is_header()) return;
  const std::size_t n = f.tokens.size();
  // Only the distinction namespace-vs-anything-else matters: functions are
  // flagged only when every enclosing brace is a namespace (or extern "C"
  // block); class bodies, function bodies, and initializers all shadow.
  enum class Scope { kNamespace, kOther };
  std::vector<Scope> scopes;
  const auto at_ns_scope = [&scopes] {
    return std::all_of(scopes.begin(), scopes.end(),
                       [](Scope s) { return s == Scope::kNamespace; });
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (f.tokens[i].kind != TokenKind::kPunct) continue;
    const SV t = f.tok(i);
    if (t == "}") {
      if (!scopes.empty()) scopes.pop_back();
      continue;
    }
    if (t != "{") continue;

    // Statement head: tokens since the previous ';', '{' or '}'.
    std::size_t s = i;
    while (s > 0) {
      const Token& p = f.tokens[s - 1];
      if (p.kind == TokenKind::kPunct) {
        const SV pt = f.tok(s - 1);
        if (pt == ";" || pt == "{" || pt == "}") break;
      }
      --s;
    }

    bool is_ns = false, is_type = false, exempt = false, has_eq = false,
         is_extern_block = false;
    std::size_t first_open = n;  // first top-level '(' in the head
    int pdepth = 0;
    bool saw_extern = false;
    for (std::size_t k = s; k < i; ++k) {
      const Token& tk = f.tokens[k];
      const SV kt = f.tok(k);
      if (tk.kind == TokenKind::kPunct) {
        if (kt == "(") {
          if (pdepth == 0 && first_open == n) first_open = k;
          ++pdepth;
        } else if (kt == ")") {
          --pdepth;
        } else if (kt == "=" && pdepth == 0) {
          // Only a standalone `=` marks an initializer; the `=` runs in
          // `operator==` / `operator<=` etc. must not.
          static const std::set<SV> kOpChars = {"=", "<", ">", "!", "+", "-",
                                                "*", "/", "%", "&", "|", "^"};
          const bool in_op_run =
              (k > s && ((f.tokens[k - 1].kind == TokenKind::kPunct &&
                          kOpChars.count(f.tok(k - 1)) > 0) ||
                         is_ident(f, k - 1, "operator"))) ||
              (k + 1 < i && f.tokens[k + 1].kind == TokenKind::kPunct &&
               f.tok(k + 1) == "=");
          if (!in_op_run) has_eq = true;
        }
      } else if (tk.kind == TokenKind::kIdentifier && pdepth == 0) {
        if (kt == "namespace") is_ns = true;
        else if (kt == "class" || kt == "struct" || kt == "union" || kt == "enum")
          is_type = true;
        else if (kt == "template" || kt == "inline" || kt == "constexpr" ||
                 kt == "consteval" || kt == "static" || kt == "friend" ||
                 kt == "using" || kt == "typedef" || kt == "concept" ||
                 kt == "requires")
          exempt = true;
        else if (kt == "extern")
          saw_extern = true;
      } else if (tk.kind == TokenKind::kString && saw_extern) {
        is_extern_block = true;  // extern "C" { ... }
      }
    }

    if (is_ns || is_extern_block) {
      scopes.push_back(Scope::kNamespace);
      continue;
    }
    if (!at_ns_scope()) {
      scopes.push_back(Scope::kOther);
      continue;
    }

    // A function definition's `{` follows its declarator's `)` (possibly
    // through noexcept/const/try or a trailing return type). Everything
    // else — class bodies, braced initializers — is shadowed scope.
    const SV before = i > 0 ? f.tok(i - 1) : SV();
    const bool function_tail =
        before == ")" || before == "noexcept" || before == "const" ||
        before == "override" || before == "final" || before == "try" ||
        before == ">" || before == "*" || before == "&" || is_ident(f, i - 1);
    const bool is_function = first_open != n && !has_eq && !is_type && function_tail;

    if (!is_function || exempt) {
      scopes.push_back(Scope::kOther);
      continue;
    }

    // Name: operator symbols directly before '(' (operator overload), or
    // the qualified path A::B::name — walked back alternately so the
    // return type in `int f(` is never swallowed into the name.
    std::string name;
    std::size_t k = first_open;
    {
      static const std::set<SV> kOps = {"<", ">", "=", "+", "-", "*", "/", "[",
                                        "]", "!", "&", "|", "^", "%", "~"};
      std::string sym;
      while (k > s && f.tokens[k - 1].kind == TokenKind::kPunct &&
             kOps.count(f.tok(k - 1)) > 0) {
        sym = std::string(f.tok(k - 1)) + sym;
        --k;
      }
      if (!sym.empty() && is_ident(f, k - 1, "operator")) {
        name = "operator" + sym;
      } else {
        k = first_open;
        bool expect_ident = true;
        while (k > s) {
          const SV kt = f.tok(k - 1);
          if (expect_ident) {
            if (f.tokens[k - 1].kind != TokenKind::kIdentifier || kt == "operator") break;
            name = std::string(kt) + name;
            --k;
            expect_ident = false;
          } else if (kt == "~") {
            name = "~" + name;
            --k;
          } else if (kt == "::") {
            name = "::" + name;
            --k;
            expect_ident = true;
          } else {
            break;
          }
        }
      }
    }
    if (name.empty()) {
      scopes.push_back(Scope::kOther);
      continue;
    }

    emit(f, f.tokens[first_open].line, "header-def", name,
         "function '" + name + "' is defined at namespace scope in a header "
         "without inline/constexpr/template — an ODR violation once two TUs "
         "include it", out);
    scopes.push_back(Scope::kOther);
  }
}

void check_redundant_include(const SourceFile& f, const SourceFile* primary_header,
                             std::vector<Finding>& out) {
  std::map<std::string, int> seen;
  for (const Include& inc : f.includes) {
    const auto [it, fresh] = seen.emplace(inc.target, inc.line);
    if (!fresh) {
      emit(f, inc.line, "redundant-include", inc.target,
           "'" + inc.target + "' already included on line " +
               std::to_string(it->second), out);
    }
  }
  if (f.is_header() || primary_header == nullptr) return;
  std::set<std::string> from_header;
  for (const Include& inc : primary_header->includes) {
    if (!inc.angled) from_header.insert(inc.target);
  }
  for (const Include& inc : f.includes) {
    if (inc.angled || inc.target == primary_header->rel) continue;
    if (from_header.count(inc.target) > 0 && seen.at(inc.target) == inc.line) {
      emit(f, inc.line, "redundant-include", inc.target,
           "'" + inc.target + "' is already a direct include of this TU's "
           "primary header " + primary_header->rel, out);
    }
  }
}

void check_unused_module_include(const SourceFile& f, std::vector<Finding>& out) {
  // Modules whose public symbols all live under a namespace of the same
  // name (rush::sim, rush::obs, ...). `common` is exempt: it owns macros
  // (RUSH_EXPECTS) and the bare rush:: namespace, so token evidence of
  // use is not reliable there.
  static const std::set<std::string, std::less<>> kNamespaced = {
      "sim", "cluster", "telemetry", "apps", "sched", "obs", "ml", "core",
      "analysis"};
  if (!f.is_header()) return;

  std::set<std::string> referenced;
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (!is_ident(f, i)) continue;
    if (is_punct(f, i + 1, "::") || (i > 0 && is_punct(f, i - 1, "::"))) {
      referenced.insert(std::string(f.tok(i)));
    }
  }
  for (const Include& inc : f.includes) {
    if (inc.angled) continue;
    const std::string mod = first_component(inc.target);
    if (mod.empty() || mod == f.module() || kNamespaced.count(mod) == 0) continue;
    if (referenced.count(mod) > 0) continue;
    emit(f, inc.line, "unused-module-include", inc.target,
         "header includes '" + inc.target + "' but never names " + mod +
             ":: — drop the include or move it to the TU", out);
  }
}

}  // namespace rush::analysis
