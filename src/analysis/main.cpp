// rush_analyze — native static analysis for the RUSH codebase.
//
//   rush_analyze [options] <path>...
//
//   --root DIR        include-resolution root (default: the sole directory
//                     argument, else the current directory)
//   --baseline FILE   suppression baseline (analysis/baseline.json)
//   --fix-baseline    rewrite FILE so it covers today's findings, then
//                     exit 0 — review the diff before committing
//   --rule NAME       run only this rule (repeatable)
//   --ref-root DIR    index DIR for symbol references without analyzing
//                     it (repeatable; keeps test/bench-only API from
//                     tripping dead-symbol)
//   --json            machine-readable report on stdout
//   --sarif FILE      also write a SARIF 2.1.0 report to FILE
//   --stats           print workload counters (files, tokens, cache) to
//                     stderr after the run
//   --list-rules      print the rule catalogue and exit
//
// Exit status: 0 clean (baselined findings do not count), 1 findings,
// 2 usage or I/O error. See docs/static-analysis.md.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "analysis/analyzer.hpp"
#include "analysis/rules.hpp"
#include "common/error.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rush_analyze [--root DIR] [--baseline FILE] [--fix-baseline]\n"
               "                    [--rule NAME]... [--ref-root DIR]... [--json]\n"
               "                    [--sarif FILE] [--stats] [--list-rules] <path>...\n");
  return 2;
}

int list_rules() {
  for (const rush::analysis::RuleInfo& r : rush::analysis::rule_catalogue()) {
    std::printf("%-22s %s\n", r.name.c_str(), r.summary.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rush::analysis;
  AnalyzeOptions options;
  std::filesystem::path baseline_path;
  std::filesystem::path sarif_path;
  bool fix_baseline = false;
  bool json = false;
  bool stats = false;
  bool root_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list-rules") return list_rules();
    if (arg == "--json") {
      json = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--sarif") {
      const char* v = value();
      if (v == nullptr) return usage();
      sarif_path = v;
    } else if (arg == "--ref-root") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.ref_roots.emplace_back(v);
    } else if (arg == "--fix-baseline") {
      fix_baseline = true;
    } else if (arg == "--root") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.root = v;
      root_set = true;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return usage();
      baseline_path = v;
    } else if (arg == "--rule") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.only.insert(v);
    } else if (arg == "-h" || arg == "--help") {
      return usage();
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "rush_analyze: unknown option %s\n", argv[i]);
      return usage();
    } else {
      options.inputs.emplace_back(arg);
    }
  }
  if (options.inputs.empty()) return usage();
  if (!root_set) {
    options.root = options.inputs.size() == 1 &&
                           std::filesystem::is_directory(options.inputs.front())
                       ? options.inputs.front()
                       : std::filesystem::current_path();
  }
  if (fix_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "rush_analyze: --fix-baseline requires --baseline FILE\n");
    return 2;
  }

  try {
    Baseline baseline;
    const bool have_baseline = !baseline_path.empty();
    if (have_baseline) baseline = Baseline::load(baseline_path);

    if (fix_baseline) {
      // Regenerate from an *unsuppressed* run so entries that already
      // matched keep their reasons and everything else gets a TODO.
      const AnalyzeResult raw = analyze(options, nullptr);
      std::ofstream out(baseline_path);
      if (!out) {
        std::fprintf(stderr, "rush_analyze: cannot write %s\n",
                     baseline_path.string().c_str());
        return 2;
      }
      out << baseline.render(raw.findings);
      std::printf("rush_analyze: wrote %zu entr%s to %s\n", raw.findings.size(),
                  raw.findings.size() == 1 ? "y" : "ies",
                  baseline_path.string().c_str());
      return 0;
    }

    const AnalyzeResult result =
        analyze(options, have_baseline ? &baseline : nullptr);
    std::fputs((json ? render_json(result) : render_human(result)).c_str(), stdout);
    if (!sarif_path.empty()) {
      std::ofstream out(sarif_path);
      if (!out) {
        std::fprintf(stderr, "rush_analyze: cannot write %s\n",
                     sarif_path.string().c_str());
        return 2;
      }
      out << render_sarif(result);
    }
    if (stats) std::fputs(render_stats(result.stats).c_str(), stderr);
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rush_analyze: %s\n", e.what());
    return 2;
  }
}
