#include "analysis/outline.hpp"

#include <algorithm>
#include <set>

namespace rush::analysis {

namespace {

using SV = std::string_view;

bool is_punct(const SourceFile& f, std::size_t i, SV text) {
  return i < f.tokens.size() && f.tokens[i].kind == TokenKind::kPunct && f.tok(i) == text;
}

bool is_ident(const SourceFile& f, std::size_t i, SV text) {
  return i < f.tokens.size() && f.tokens[i].kind == TokenKind::kIdentifier &&
         f.tok(i) == text;
}

bool is_ident(const SourceFile& f, std::size_t i) {
  return i < f.tokens.size() && f.tokens[i].kind == TokenKind::kIdentifier;
}

/// Names that can sit directly before a '(' without being a function
/// name — built-in types and statement keywords. Seeing one of these as
/// the walked-back "name" means the head was not a function declarator.
const std::set<SV>& non_names() {
  static const std::set<SV> kSet = {
      "void",   "int",      "bool",   "char",   "float",  "double", "long",
      "short",  "unsigned", "signed", "auto",   "return", "if",     "while",
      "for",    "switch",   "sizeof", "new",    "delete", "throw",  "catch",
      "typeid", "alignof",  "co_return", "co_await", "co_yield", "decltype"};
  return kSet;
}

/// Everything scan_head() learns about one statement head [s, e).
struct HeadScan {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t first_open = kNone;  // first '(' outside angles/brackets
  std::size_t params_end = kNone;  // its matching ')'
  std::size_t eq = kNone;          // first standalone top-level '='
  std::size_t class_key = kNone;   // class/struct/union token index
  std::size_t sig_end = 0;         // e, or the ctor-init-list ':' if present
  bool is_namespace = false;
  bool is_extern_block = false;
  bool is_enum = false;
  bool is_using = false;  // using/typedef/static_assert/concept/requires
  bool inline_like = false;
  bool is_static = false;
  bool is_friend = false;
  bool is_virtual = false;
  bool is_const_tail = false;  // const between ')' and the body/semicolon
  bool is_defaulted = false;   // = default / = delete / = 0 after ')'
};

HeadScan scan_head(const SourceFile& f, std::size_t s, std::size_t e) {
  HeadScan h;
  h.sig_end = e;
  int pdepth = 0, adepth = 0, bdepth = 0;
  bool saw_extern = false;
  for (std::size_t k = s; k < e; ++k) {
    const Token& tk = f.tokens[k];
    const SV kt = f.tok(k);
    if (tk.kind == TokenKind::kPunct) {
      if (kt == "(") {
        if (pdepth == 0 && adepth == 0 && bdepth == 0 && h.first_open == HeadScan::kNone) {
          h.first_open = k;
        }
        ++pdepth;
      } else if (kt == ")") {
        --pdepth;
        if (pdepth == 0 && h.first_open != HeadScan::kNone && h.params_end == HeadScan::kNone) {
          h.params_end = k;
        }
      } else if (kt == "[") {
        ++bdepth;
      } else if (kt == "]") {
        --bdepth;
      } else if (kt == "<" && pdepth == 0 && bdepth == 0) {
        // Template-argument heuristic: '<' directly after an identifier
        // (that is not `operator`) opens angles; comparisons do not occur
        // in declaration heads at outline scope.
        if (k > s && is_ident(f, k - 1) && f.tok(k - 1) != "operator") ++adepth;
      } else if (kt == ">" && adepth > 0 && pdepth == 0 && bdepth == 0) {
        --adepth;
      } else if (kt == "=" && pdepth == 0 && adepth == 0 && bdepth == 0) {
        static const std::set<SV> kOpChars = {"=", "<", ">", "!", "+", "-",
                                              "*", "/", "%", "&", "|", "^"};
        const bool in_op_run =
            (k > s && ((f.tokens[k - 1].kind == TokenKind::kPunct &&
                        kOpChars.count(f.tok(k - 1)) > 0) ||
                       is_ident(f, k - 1, "operator"))) ||
            (k + 1 < e && f.tokens[k + 1].kind == TokenKind::kPunct && f.tok(k + 1) == "=");
        if (!in_op_run && h.eq == HeadScan::kNone) h.eq = k;
        if (!in_op_run && h.params_end != HeadScan::kNone && k > h.params_end &&
            k + 1 < e &&
            (is_ident(f, k + 1, "default") || is_ident(f, k + 1, "delete") ||
             (f.tokens[k + 1].kind == TokenKind::kNumber && f.tok(k + 1) == "0"))) {
          h.is_defaulted = true;
        }
      } else if (kt == ":" && pdepth == 0 && adepth == 0 && bdepth == 0 &&
                 h.params_end != HeadScan::kNone && k > h.params_end &&
                 h.sig_end == e) {
        h.sig_end = k;  // ctor member-init list
      }
    } else if (tk.kind == TokenKind::kIdentifier && pdepth == 0 && adepth == 0 &&
               bdepth == 0) {
      if (kt == "namespace") {
        h.is_namespace = true;
      } else if (kt == "class" || kt == "struct" || kt == "union") {
        if (h.class_key == HeadScan::kNone && h.first_open == HeadScan::kNone) {
          h.class_key = k;
        }
      } else if (kt == "enum") {
        h.is_enum = true;
      } else if (kt == "template" || kt == "inline" || kt == "constexpr" ||
                 kt == "consteval") {
        h.inline_like = true;
      } else if (kt == "static") {
        h.is_static = true;
      } else if (kt == "friend") {
        h.is_friend = true;
      } else if (kt == "virtual") {
        h.is_virtual = true;
      } else if (kt == "override" || kt == "final") {
        if (h.params_end != HeadScan::kNone && k > h.params_end) h.is_virtual = true;
      } else if (kt == "const") {
        if (h.params_end != HeadScan::kNone && k > h.params_end) h.is_const_tail = true;
      } else if (kt == "using" || kt == "typedef" || kt == "static_assert" ||
                 kt == "concept" || kt == "requires") {
        h.is_using = true;
      } else if (kt == "extern") {
        saw_extern = true;
      }
    } else if (tk.kind == TokenKind::kString && saw_extern && pdepth == 0) {
      h.is_extern_block = true;
    }
  }
  return h;
}

/// Walk the function name back from its '(' — `A::B::name`, `~name`,
/// `operator<=` — returning the last component and the `::` qualifiers in
/// order. Empty name means "no declarator here".
struct NameWalk {
  std::string name;
  std::vector<std::string> qualifiers;
  std::size_t name_tok = 0;
  bool is_operator = false;
};

NameWalk walk_name(const SourceFile& f, std::size_t s, std::size_t open) {
  NameWalk w;
  static const std::set<SV> kOps = {"<", ">", "=", "+", "-", "*", "/", "[",
                                    "]", "!", "&", "|", "^", "%", "~"};
  std::size_t k = open;
  std::string sym;
  while (k > s && f.tokens[k - 1].kind == TokenKind::kPunct && kOps.count(f.tok(k - 1)) > 0) {
    sym = std::string(f.tok(k - 1)) + sym;
    --k;
  }
  if (!sym.empty() && k > s && is_ident(f, k - 1, "operator")) {
    w.name = "operator" + sym;
    w.name_tok = k - 1;
    w.is_operator = true;
    k = k - 1;
  } else {
    k = open;
    bool expect_ident = true;
    bool took_name = false;
    while (k > s) {
      const SV kt = f.tok(k - 1);
      if (expect_ident) {
        if (took_name && f.tokens[k - 1].kind == TokenKind::kPunct &&
            (kt == ">" || kt == ">>")) {
          // Templated qualifier (`Ring<double, 8>::Slot::mark`): skip the
          // argument list and take the identifier before it, so the
          // qualifier chain matches the in-class declaration's.
          int depth = kt == ">>" ? 2 : 1;
          std::size_t j = k - 1;
          while (j > s && depth > 0) {
            --j;
            if (f.tokens[j].kind != TokenKind::kPunct) continue;
            const SV jt = f.tok(j);
            if (jt == ">") ++depth;
            else if (jt == ">>") depth += 2;
            else if (jt == "<") --depth;
            else if (jt == "<<") depth -= 2;
          }
          if (depth != 0 || j <= s || f.tokens[j - 1].kind != TokenKind::kIdentifier) break;
          w.qualifiers.insert(w.qualifiers.begin(), std::string(f.tok(j - 1)));
          k = j - 1;
          expect_ident = false;
          continue;
        }
        if (f.tokens[k - 1].kind != TokenKind::kIdentifier || kt == "operator") break;
        if (!took_name) {
          w.name = std::string(kt);
          w.name_tok = k - 1;
          took_name = true;
        } else {
          w.qualifiers.insert(w.qualifiers.begin(), std::string(kt));
        }
        --k;
        expect_ident = false;
      } else if (kt == "~" && took_name && w.qualifiers.empty() &&
                 w.name.front() != '~') {
        w.name = "~" + w.name;
        --k;
      } else if (kt == "::") {
        --k;
        expect_ident = true;
      } else {
        break;
      }
    }
    // Conversion operator (`operator bool()`): the walked "name" is the
    // target type with `operator` before it.
    if (took_name && w.name_tok > s && is_ident(f, w.name_tok - 1, "operator")) {
      w.name = "operator " + w.name;
      w.name_tok = w.name_tok - 1;
      w.is_operator = true;
      w.qualifiers.clear();
    }
  }
  if (!w.name.empty() && non_names().count(SV(w.name)) > 0) w.name.clear();
  return w;
}

class OutlineParser {
 public:
  explicit OutlineParser(const SourceFile& f) : f_(f) {}

  Outline run() {
    const std::size_t n = f_.tokens.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (f_.tokens[i].kind != TokenKind::kPunct) continue;
      const SV t = f_.tok(i);
      if (t == "{") {
        classify_open(i);
        head_ = i + 1;
      } else if (t == "}") {
        if (!frames_.empty()) {
          if (frames_.back().kind == Frame::Kind::kFunction && frames_.back().fn >= 0) {
            out_.functions[static_cast<std::size_t>(frames_.back().fn)].body_end = i;
          }
          frames_.pop_back();
        }
        head_ = i + 1;
      } else if (t == ";") {
        if (at_outline_scope()) classify_semi(i);
        head_ = i + 1;
      } else if (t == ":" && head_ == i - 1 && in_class() && at_outline_scope()) {
        const SV a = f_.tok(i - 1);
        if (a == "public") {
          frames_.back().access = Access::kPublic;
          head_ = i + 1;
        } else if (a == "protected") {
          frames_.back().access = Access::kProtected;
          head_ = i + 1;
        } else if (a == "private") {
          frames_.back().access = Access::kPrivate;
          head_ = i + 1;
        }
      }
    }
    return std::move(out_);
  }

 private:
  struct Frame {
    enum class Kind : std::uint8_t { kNamespace, kClass, kFunction, kOther };
    Kind kind;
    std::string name;                 // namespace path text or class name
    Access access = Access::kNone;    // current section, class frames only
    int fn = -1;                      // functions: index into out_.functions
  };

  [[nodiscard]] bool at_outline_scope() const {
    return std::all_of(frames_.begin(), frames_.end(), [](const Frame& fr) {
      return fr.kind == Frame::Kind::kNamespace || fr.kind == Frame::Kind::kClass;
    });
  }
  [[nodiscard]] bool in_class() const {
    return !frames_.empty() && frames_.back().kind == Frame::Kind::kClass;
  }

  [[nodiscard]] std::vector<std::string> class_path() const {
    std::vector<std::string> path;
    for (const Frame& fr : frames_) {
      if (fr.kind == Frame::Kind::kClass) path.push_back(fr.name);
    }
    return path;
  }

  [[nodiscard]] std::vector<std::string> ns_path() const {
    std::vector<std::string> path;
    for (const Frame& fr : frames_) {
      if (fr.kind != Frame::Kind::kNamespace) continue;
      SV rest = fr.name;
      while (!rest.empty()) {
        const std::size_t sep = rest.find("::");
        path.emplace_back(rest.substr(0, sep));
        if (sep == SV::npos) break;
        rest.remove_prefix(sep + 2);
      }
    }
    return path;
  }

  /// Annotations recorded on any line the signature spans (plus the line
  /// above the head, which is where a standalone comment lands anyway).
  [[nodiscard]] std::vector<std::string> annotations_spanning(std::size_t s,
                                                             std::size_t e) const {
    std::vector<std::string> result;
    const int from = f_.tokens[s].line;
    const int to = f_.tokens[e < f_.tokens.size() ? e : f_.tokens.size() - 1].line;
    for (int line = from; line <= to; ++line) {
      const std::vector<std::string>& on_line = f_.annotations_on(line);
      result.insert(result.end(), on_line.begin(), on_line.end());
    }
    return result;
  }

  void classify_open(std::size_t i) {
    if (!at_outline_scope() || head_ >= i) {
      push_plain(i);
      return;
    }
    const std::size_t s = head_;
    const HeadScan h = scan_head(f_, s, i);

    if (h.is_namespace || h.is_extern_block) {
      Frame fr{Frame::Kind::kNamespace, {}, Access::kNone, -1};
      if (h.is_namespace) {
        // Name: everything after the `namespace` keyword, `::`s included.
        std::string name;
        bool after_kw = false;
        for (std::size_t k = s; k < i; ++k) {
          if (is_ident(f_, k, "namespace")) {
            after_kw = true;
            continue;
          }
          if (after_kw && (is_ident(f_, k) || is_punct(f_, k, "::"))) name += f_.tok(k);
        }
        fr.name = std::move(name);
      }
      frames_.push_back(std::move(fr));
      return;
    }
    if (h.is_enum || h.is_using) {
      frames_.push_back(Frame{Frame::Kind::kOther, {}, Access::kNone, -1});
      return;
    }
    if (h.class_key != HeadScan::kNone) {
      const SV key = f_.tok(h.class_key);
      Frame fr{Frame::Kind::kClass, {}, key == "class" ? Access::kPrivate : Access::kPublic,
               -1};
      if (is_ident(f_, h.class_key + 1)) fr.name = std::string(f_.tok(h.class_key + 1));
      frames_.push_back(std::move(fr));
      return;
    }
    if (h.first_open != HeadScan::kNone && h.params_end != HeadScan::kNone &&
        (h.eq == HeadScan::kNone || h.eq > h.params_end)) {
      const std::size_t fn = record_function(s, i, h, /*body_begin=*/i);
      if (fn != HeadScan::kNone) {
        frames_.push_back(
            Frame{Frame::Kind::kFunction, {}, Access::kNone, static_cast<int>(fn)});
        return;
      }
    }
    // Brace initializer of a member (`int n{0};`): name directly before.
    if (in_class() && h.first_open == HeadScan::kNone && h.eq == HeadScan::kNone &&
        i > s && is_ident(f_, i - 1) && f_.tok(i - 1) != "final") {
      record_member(s, i, i - 1);
    }
    push_plain(i);
  }

  void push_plain(std::size_t /*i*/) {
    const bool in_fn =
        !frames_.empty() && (frames_.back().kind == Frame::Kind::kFunction ||
                             frames_.back().kind == Frame::Kind::kOther);
    frames_.push_back(Frame{in_fn ? Frame::Kind::kOther : Frame::Kind::kOther,
                            {},
                            Access::kNone,
                            -1});
  }

  void classify_semi(std::size_t i) {
    if (head_ >= i) return;
    const std::size_t s = head_;
    const HeadScan h = scan_head(f_, s, i);
    if (h.is_namespace || h.is_using || h.is_enum || h.is_extern_block) return;
    if (h.class_key != HeadScan::kNone) return;  // forward declaration

    if (h.first_open != HeadScan::kNone && h.params_end != HeadScan::kNone &&
        (h.eq == HeadScan::kNone || h.eq > h.params_end)) {
      record_function(s, i, h, /*body_begin=*/0);
      return;
    }
    if (in_class()) {
      // Member variable: name directly before '=', an array bracket, or
      // the ';' itself.
      std::size_t name_tok = HeadScan::kNone;
      if (h.eq != HeadScan::kNone) {
        if (h.eq > s && is_ident(f_, h.eq - 1)) name_tok = h.eq - 1;
      } else {
        std::size_t k = i;
        while (k > s && is_punct(f_, k - 1, "]")) {  // strip [N] groups
          std::size_t depth = 1;
          --k;
          while (k > s && depth > 0) {
            if (is_punct(f_, k - 1, "]")) ++depth;
            if (is_punct(f_, k - 1, "[")) --depth;
            --k;
          }
        }
        if (k > s && is_ident(f_, k - 1)) name_tok = k - 1;
      }
      if (name_tok != HeadScan::kNone && name_tok > s &&
          non_names().count(f_.tok(name_tok)) == 0) {
        record_member(s, i, name_tok);
      }
    }
  }

  void record_member(std::size_t s, std::size_t e, std::size_t name_tok) {
    MemberVar m;
    m.name = std::string(f_.tok(name_tok));
    m.classes = class_path();
    m.line = f_.tokens[name_tok].line;
    m.name_tok = name_tok;
    m.annotations = annotations_spanning(s, e);
    out_.members.push_back(std::move(m));
  }

  /// Returns the new function's index, or HeadScan::kNone if the head has
  /// no usable declarator.
  std::size_t record_function(std::size_t s, std::size_t e, const HeadScan& h,
                              std::size_t body_begin) {
    std::size_t open = h.first_open;
    std::size_t close = h.params_end;
    NameWalk w;
    // operator(): the first paren group is the name, the second the params.
    if (open > s && is_ident(f_, open - 1, "operator")) {
      w.name = "operator()";
      w.name_tok = open - 1;
      w.is_operator = true;
      if (close + 1 < e && is_punct(f_, close + 1, "(")) {
        open = close + 1;
        std::size_t depth = 1;
        close = open + 1;
        while (close < e && depth > 0) {
          if (is_punct(f_, close, "(")) ++depth;
          if (is_punct(f_, close, ")")) --depth;
          if (depth == 0) break;
          ++close;
        }
        if (close >= e) return HeadScan::kNone;
      } else {
        return HeadScan::kNone;
      }
    } else {
      w = walk_name(f_, s, open);
      if (w.name.empty()) return HeadScan::kNone;
    }

    FunctionDecl fn;
    fn.name = std::move(w.name);
    fn.classes = class_path();
    for (std::string& q : w.qualifiers) fn.classes.push_back(std::move(q));
    fn.namespaces = ns_path();
    fn.access = in_class() ? frames_.back().access : Access::kNone;
    fn.is_const = h.is_const_tail;
    fn.is_static = h.is_static;
    fn.is_friend = h.is_friend;
    fn.is_virtual = h.is_virtual;
    fn.is_definition = body_begin != 0;
    fn.is_defaulted = h.is_defaulted;
    fn.inline_like = h.inline_like || (fn.is_definition && in_class());
    fn.is_operator = w.is_operator;
    fn.line = f_.tokens[s].line;
    fn.name_tok = w.name_tok;
    fn.params_begin = open;
    fn.params_end = close;
    fn.body_begin = body_begin;

    const std::string& inner =
        !class_path().empty() || !fn.classes.empty()
            ? (fn.classes.empty() ? std::string() : fn.classes.back())
            : std::string();
    fn.is_ctor_dtor = !fn.name.empty() &&
                      (fn.name.front() == '~' || (!inner.empty() && fn.name == inner));

    // Parameters: arity at paren depth 1, angles skipped; `(void)` and
    // `()` are both "no parameters".
    int pdepth = 1, adepth = 0;
    int commas = 0;
    std::size_t param_tokens = 0;
    for (std::size_t k = open + 1; k < close; ++k) {
      const SV kt = f_.tok(k);
      if (f_.tokens[k].kind == TokenKind::kPunct) {
        if (kt == "(") ++pdepth;
        else if (kt == ")") --pdepth;
        else if (kt == "<" && k > open + 1 && is_ident(f_, k - 1)) ++adepth;
        else if (kt == ">" && adepth > 0) --adepth;
        else if (kt == "," && pdepth == 1 && adepth == 0) ++commas;
      } else if (f_.tokens[k].kind == TokenKind::kIdentifier) {
        if (kt == "unique_lock" || kt == "scoped_lock" || kt == "lock_guard") {
          fn.has_lock_param = true;
        }
      }
      ++param_tokens;
    }
    const bool void_only = param_tokens == 1 && is_ident(f_, open + 1, "void");
    fn.has_params = param_tokens > 0 && !void_only;
    fn.arity = fn.has_params ? commas + 1 : 0;
    fn.annotations = annotations_spanning(s, open);

    out_.functions.push_back(std::move(fn));
    return out_.functions.size() - 1;
  }

  const SourceFile& f_;
  Outline out_;
  std::vector<Frame> frames_;
  std::size_t head_ = 0;
};

}  // namespace

std::string FunctionDecl::qualified() const {
  std::string q;
  for (const std::string& c : classes) {
    q += c;
    q += "::";
  }
  return q + name;
}

std::string FunctionDecl::cls() const { return classes.empty() ? std::string() : classes.back(); }

bool FunctionDecl::has_annotation(std::string_view text) const {
  return std::find(annotations.begin(), annotations.end(), text) != annotations.end();
}

std::string MemberVar::cls() const { return classes.empty() ? std::string() : classes.back(); }

std::string MemberVar::guard() const {
  for (const std::string& a : annotations) {
    const std::string_view sv(a);
    if (sv.rfind("guarded_by(", 0) != 0) continue;
    const std::size_t close = sv.find(')', 11);
    if (close == std::string_view::npos) continue;
    std::string_view g = sv.substr(11, close - 11);
    while (!g.empty() && (g.front() == ' ' || g.front() == '\t')) g.remove_prefix(1);
    while (!g.empty() && (g.back() == ' ' || g.back() == '\t')) g.remove_suffix(1);
    return std::string(g);
  }
  return std::string();
}

Outline build_outline(const SourceFile& f) { return OutlineParser(f).run(); }

}  // namespace rush::analysis
