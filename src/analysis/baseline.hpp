// Checked-in suppression baseline for rush_analyze.
//
// The baseline records deliberate exceptions as (rule, file, key) triples
// plus a human reason; it never stores line numbers, so entries survive
// unrelated edits. `rush_analyze --fix-baseline` regenerates the file
// from the current findings; entries that no longer match anything are
// reported so the file cannot silently rot.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/finding.hpp"

namespace rush::analysis {

struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string key;
  std::string reason;
};

class Baseline {
 public:
  Baseline() = default;

  /// Parse `path`. Throws rush::ParseError on malformed JSON or schema.
  /// A missing file yields an empty baseline (first run, nothing checked
  /// in yet).
  static Baseline load(const std::filesystem::path& path);

  /// True when `f` matches an entry; matching entries are marked used.
  [[nodiscard]] bool matches(const Finding& f);

  /// Entries never matched by any finding this run.
  [[nodiscard]] std::vector<BaselineEntry> unused() const;

  [[nodiscard]] const std::vector<BaselineEntry>& entries() const { return entries_; }

  /// Serialize `findings` as a fresh baseline document (reasons carried
  /// over from this baseline where the triple still matches).
  [[nodiscard]] std::string render(const std::vector<Finding>& findings) const;

 private:
  std::vector<BaselineEntry> entries_;
  std::vector<bool> used_;
};

}  // namespace rush::analysis
