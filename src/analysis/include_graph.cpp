#include "analysis/include_graph.hpp"

#include <algorithm>

namespace rush::analysis {

namespace {

/// Lexically normalize "a/./b", "a/../b", "a//b" without touching the fs.
std::string normalize(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  while (begin <= path.size()) {
    const std::size_t slash = path.find('/', begin);
    const std::size_t end = slash == std::string_view::npos ? path.size() : slash;
    const std::string_view part = path.substr(begin, end - begin);
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    if (slash == std::string_view::npos) break;
    begin = slash + 1;
  }
  std::string out;
  for (const std::string_view& p : parts) {
    if (!out.empty()) out.push_back('/');
    out.append(p);
  }
  return out;
}

std::string dir_of(const std::string& rel) {
  const std::size_t slash = rel.rfind('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

}  // namespace

const LayerDag& rush_layer_dag() {
  static const LayerDag dag = {
      {"common", {}},
      {"obs", {"common"}},
      {"sim", {"common", "obs"}},
      {"cluster", {"common", "obs", "sim"}},
      {"telemetry", {"common", "obs", "sim", "cluster"}},
      {"apps", {"common", "obs", "sim", "cluster", "telemetry"}},
      {"ml", {"common"}},
      {"analysis", {"common", "obs"}},
      {"faults", {"common", "obs", "sim", "cluster", "telemetry"}},
      {"sched", {"common", "obs", "sim", "cluster", "telemetry", "apps", "faults"}},
      {"core",
       {"common", "obs", "sim", "cluster", "telemetry", "apps", "ml", "sched", "faults"}},
      {"cli",
       {"common", "obs", "sim", "cluster", "telemetry", "apps", "ml", "sched",
        "core", "analysis", "faults"}},
  };
  return dag;
}

IncludeGraph::IncludeGraph(const std::vector<const SourceFile*>& files) : files_(files) {
  for (const SourceFile* f : files_) by_rel_[f->rel] = f;
  for (const SourceFile* fp : files_) {
    const SourceFile& f = *fp;
    std::vector<std::string>& out = resolved_[f.rel];
    for (const Include& inc : f.includes) {
      if (inc.angled) continue;
      const std::string as_root = normalize(inc.target);
      if (by_rel_.count(as_root) > 0) {
        out.push_back(as_root);
        continue;
      }
      const std::string dir = dir_of(f.rel);
      const std::string as_local =
          normalize(dir.empty() ? inc.target : dir + "/" + inc.target);
      if (by_rel_.count(as_local) > 0) out.push_back(as_local);
    }
  }
}

const std::vector<std::string>& IncludeGraph::resolved(const std::string& rel) const {
  static const std::vector<std::string> kEmpty;
  const auto it = resolved_.find(rel);
  return it == resolved_.end() ? kEmpty : it->second;
}

void IncludeGraph::check_layers(const LayerDag& dag, std::vector<Finding>& out) const {
  for (const SourceFile* fp : files_) {
    const SourceFile& f = *fp;
    const std::string from = f.module();
    if (from.empty()) continue;  // files directly under the root: unscoped
    for (const Include& inc : f.includes) {
      if (inc.angled) continue;
      // Module of the include target: prefer the resolved file, fall back
      // to the path prefix so partial trees are still checked.
      std::string to;
      const std::string as_root = normalize(inc.target);
      const auto hit = by_rel_.find(as_root);
      if (hit != by_rel_.end()) {
        to = hit->second->module();
      } else {
        const std::size_t slash = as_root.find('/');
        if (slash != std::string::npos) to = as_root.substr(0, slash);
      }
      if (to.empty() || to == from) continue;
      if (dag.count(to) == 0 && by_rel_.count(as_root) == 0) {
        continue;  // quoted include of an external library: not ours to judge
      }
      if (f.is_allowed(inc.line, "layer-dag")) continue;
      const auto entry = dag.find(from);
      if (entry == dag.end()) {
        out.push_back(Finding{
            "layer-dag", f.rel, inc.line, from,
            "module '" + from + "' is not declared in the architecture DAG; "
            "add it to rush_layer_dag() with its allowed dependencies"});
        continue;
      }
      if (entry->second.count(to) == 0) {
        std::string allowed;
        for (const std::string& dep : entry->second) {
          if (!allowed.empty()) allowed += ", ";
          allowed += dep;
        }
        out.push_back(Finding{
            "layer-dag", f.rel, inc.line, as_root,
            "'" + from + "' may not include '" + to + "' (" + inc.target +
                "); allowed layers below it: {" +
                (allowed.empty() ? "none" : allowed) + "}"});
      }
    }
  }
}

void IncludeGraph::check_cycles(std::vector<Finding>& out) const {
  // Iterative 3-colour DFS over the resolved file graph, in sorted order
  // so reports are deterministic.
  enum class Colour { kWhite, kGrey, kBlack };
  std::map<std::string, Colour> colour;
  for (const auto& [rel, edges] : resolved_) {
    colour[rel] = Colour::kWhite;
    for (const std::string& e : edges) colour.emplace(e, Colour::kWhite);
  }

  std::vector<std::string> path;  // grey stack, for cycle reconstruction
  struct Frame {
    std::string node;
    std::size_t next = 0;
  };
  for (const auto& [root, unused_colour] : colour) {
    (void)unused_colour;
    if (colour[root] != Colour::kWhite) continue;
    std::vector<Frame> stack;
    stack.push_back(Frame{root});
    colour[root] = Colour::kGrey;
    path.push_back(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::vector<std::string>& edges = resolved(frame.node);
      if (frame.next >= edges.size()) {
        colour[frame.node] = Colour::kBlack;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string target = edges[frame.next++];
      if (colour[target] == Colour::kGrey) {
        // Back edge frame.node -> target closes a cycle.
        const auto at = std::find(path.begin(), path.end(), target);
        std::string chain;
        for (auto it = at; it != path.end(); ++it) chain += *it + " -> ";
        chain += target;
        int line = 0;
        const SourceFile* src = by_rel_.at(frame.node);
        for (const Include& inc : src->includes) {
          const std::string t = normalize(inc.target);
          if (t == target || normalize(dir_of(frame.node) + "/" + inc.target) == target) {
            line = inc.line;
            break;
          }
        }
        out.push_back(Finding{"include-cycle", frame.node, line,
                              frame.node + "->" + target,
                              "include cycle: " + chain});
        continue;
      }
      if (colour[target] == Colour::kWhite) {
        colour[target] = Colour::kGrey;
        path.push_back(target);
        stack.push_back(Frame{target});
      }
    }
  }
}

}  // namespace rush::analysis
