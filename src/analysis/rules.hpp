// Rule catalogue for rush_analyze.
//
// Graph rules (layer-dag, include-cycle) live in include_graph.hpp; this
// header declares the per-file token rules. Every rule honours inline
// `rush-analyze: allow(<rule>)` markers (see lexer.hpp) and emits
// baseline-stable keys (see finding.hpp).
#pragma once

#include <string>
#include <vector>

#include "analysis/finding.hpp"
#include "analysis/lexer.hpp"

namespace rush::analysis {

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// Names and one-line summaries of every rule, for --list-rules and docs.
const std::vector<RuleInfo>& rule_catalogue();

/// naked-rand: std::rand/srand/std::random_device/time(nullptr) anywhere
/// outside common/rng — all randomness must flow through the seeded,
/// splittable RNG streams.
void check_naked_rand(const SourceFile& f, std::vector<Finding>& out);

/// raw-thread: std::thread/std::jthread/std::async or `#pragma omp`
/// outside common/task_pool — parallelism must go through the
/// deterministic task pool.
void check_raw_thread(const SourceFile& f, std::vector<Finding>& out);

/// unordered-iter (sim/, sched/, core/): range-for over a member declared
/// as std::unordered_{map,set,multimap,multiset} in this file or a
/// same-directory sibling — iteration order is unspecified and these
/// subsystems feed ordered output and RNG draws.
void check_unordered_iter(const SourceFile& f,
                          const std::vector<const SourceFile*>& dir_siblings,
                          std::vector<Finding>& out);

/// sched-linear-scan (sched/ only): std::find/find_if/count/remove over a
/// member container (trailing-underscore name) — the incremental
/// scheduler core keeps its hot containers sorted, so membership tests
/// and erases must be binary searches. The pinned
/// sched/reference_scheduler baseline is exempt by design; deliberate
/// fallbacks (the AfterFront unsorted regime) carry allow markers.
void check_sched_linear_scan(const SourceFile& f, std::vector<Finding>& out);

/// pragma-once: every header must open with #pragma once.
void check_pragma_once(const SourceFile& f, std::vector<Finding>& out);

/// header-def: non-inline, non-template function definition at namespace
/// scope in a header — an ODR violation as soon as two TUs include it.
void check_header_def(const SourceFile& f, std::vector<Finding>& out);

/// redundant-include: the same target included twice in one file, or a
/// TU re-including a project header its own primary header (foo.hpp for
/// foo.cpp) already includes directly.
void check_redundant_include(const SourceFile& f, const SourceFile* primary_header,
                             std::vector<Finding>& out);

/// unused-module-include: a header pulls in another module's header but
/// its tokens never name that module's namespace — dead coupling that
/// still costs rebuild time and widens the include graph.
void check_unused_module_include(const SourceFile& f, std::vector<Finding>& out);

/// const-cast: banned outright — mutating through const breaks the
/// RUSH_AUDIT const-correctness guarantees the invariant harness relies
/// on. (The engine's historical const_cast was removed in the heap
/// rewrite; nothing legitimate is left.)
void check_const_cast(const SourceFile& f, std::vector<Finding>& out);

}  // namespace rush::analysis
