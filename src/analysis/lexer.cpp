#include "analysis/lexer.hpp"

#include <cctype>

namespace rush::analysis {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

bool raw_string_prefix(std::string_view id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) s.remove_suffix(1);
  return s;
}

/// Incremental lexer state walking the raw text exactly once.
class Lexer {
 public:
  explicit Lexer(SourceFile& out) : f_(out), text_(out.text) {}

  void run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        at_line_start_ = true;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (at_line_start_ && c == '#') {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (ident_start(c)) {
        identifier();
      } else if (digit(c) || (c == '.' && digit(peek(1)))) {
        number();
      } else if (c == '"') {
        string_literal();
      } else if (c == '\'') {
        char_literal();
      } else {
        punct();
      }
    }
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void emit(TokenKind kind, std::size_t begin, std::size_t end, int line) {
    f_.tokens.push_back(Token{kind, static_cast<std::uint32_t>(begin),
                              static_cast<std::uint32_t>(end), line});
  }

  /// Scan a comment's text for inline suppression markers. The marker
  /// suppresses its own line and the one below (so it can sit above the
  /// offending statement).
  void record_allow_markers(std::string_view comment, int line) {
    for (const std::string_view intro : {"rush-analyze: allow(", "rush-lint: allow("}) {
      std::size_t at = comment.find(intro);
      while (at != std::string_view::npos) {
        const std::size_t open = at + intro.size();
        const std::size_t close = comment.find(')', open);
        if (close == std::string_view::npos) break;
        std::string_view list = comment.substr(open, close - open);
        while (!list.empty()) {
          const std::size_t comma = list.find(',');
          const std::string_view rule = trim(list.substr(0, comma));
          if (!rule.empty()) {
            f_.allowed[line].insert(std::string(rule));
            f_.allowed[line + 1].insert(std::string(rule));
          }
          if (comma == std::string_view::npos) break;
          list.remove_prefix(comma + 1);
        }
        at = comment.find(intro, close);
      }
    }
  }

  /// Scan a comment's text for a `rush: <annotation>` contract marker.
  /// A standalone comment annotates the line below it (it sits above the
  /// declaration); a trailing comment annotates its own line.
  void record_annotations(std::string_view comment, int line, bool standalone) {
    std::size_t at = comment.find("rush:");
    while (at != std::string_view::npos) {
      // `rush-analyze:` / `rush-lint:` never match "rush:"; still require a
      // comment-ish or space boundary before so `crush:` does not.
      const char before = at == 0 ? '/' : comment[at - 1];
      if (before == '/' || before == '*' || before == ' ' || before == '\t') {
        std::string_view text = trim(comment.substr(at + 5));
        if (text.size() >= 2 && text.substr(text.size() - 2) == "*/") {
          text = trim(text.substr(0, text.size() - 2));  // block-comment form
        }
        if (!text.empty()) {
          f_.annotations[standalone ? line + 1 : line].emplace_back(text);
        }
        return;
      }
      at = comment.find("rush:", at + 5);
    }
  }

  void line_comment() {
    const std::size_t begin = pos_;
    const bool standalone = f_.tokens.empty() || f_.tokens.back().line != line_;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    const std::string_view comment = std::string_view(text_).substr(begin, pos_ - begin);
    record_allow_markers(comment, line_);
    record_annotations(comment, line_, standalone);
  }

  void block_comment() {
    const std::size_t begin = pos_;
    const bool standalone = f_.tokens.empty() || f_.tokens.back().line != line_;
    const int entry_line = line_;
    pos_ += 2;
    int line = line_;
    std::size_t seg_begin = begin;
    while (pos_ + 1 < text_.size() && !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
      if (text_[pos_] == '\n') {
        record_allow_markers(std::string_view(text_).substr(seg_begin, pos_ - seg_begin), line);
        ++line_;
        line = line_;
        seg_begin = pos_ + 1;
      }
      ++pos_;
    }
    pos_ = pos_ + 1 < text_.size() ? pos_ + 2 : text_.size();
    record_allow_markers(std::string_view(text_).substr(seg_begin, pos_ - seg_begin), line);
    // Contract annotations in block comments: single-line form only
    // (`/* rush: noalloc */`); the multi-line attachment point would be
    // ambiguous.
    if (line_ == entry_line) {
      record_annotations(std::string_view(text_).substr(begin, pos_ - begin), entry_line,
                         standalone);
    }
  }

  /// Consume a whole preprocessor directive (continuations folded),
  /// extracting the keyword, the comment-stripped body, and — for
  /// #include — the target. Comments inside the directive still get
  /// their allow markers recorded.
  void directive() {
    const int start_line = line_;
    ++pos_;  // '#'
    std::string body;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        if (!body.empty() && body.back() == '\\') {
          body.pop_back();
          body.push_back(' ');
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;  // loop sees the '\n' next
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        body.push_back(' ');
        continue;
      }
      body.push_back(c);
      ++pos_;
    }
    at_line_start_ = true;  // the '\n' is consumed by the main loop

    std::string_view rest = trim(body);
    std::size_t k = 0;
    while (k < rest.size() && ident_char(rest[k])) ++k;
    Directive d;
    d.keyword = std::string(rest.substr(0, k));
    d.rest = std::string(trim(rest.substr(k)));
    d.line = start_line;
    if (d.keyword == "include" && !d.rest.empty()) {
      const char open = d.rest.front();
      const char close = open == '<' ? '>' : '"';
      if (open == '<' || open == '"') {
        const std::size_t end = d.rest.find(close, 1);
        if (end != std::string::npos) {
          f_.includes.push_back(
              Include{d.rest.substr(1, end - 1), open == '<', start_line});
        }
      }
    } else if (d.keyword == "pragma" && d.rest == "once") {
      f_.has_pragma_once = true;
    }
    f_.directives.push_back(std::move(d));
  }

  void identifier() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && ident_char(text_[pos_])) ++pos_;
    const std::string_view id = std::string_view(text_).substr(begin, pos_ - begin);
    if (pos_ < text_.size() && text_[pos_] == '"' && raw_string_prefix(id)) {
      raw_string(begin);
      return;
    }
    // Encoding prefix on an ordinary literal (u8"x", L'c'): fold into it.
    if (pos_ < text_.size() && (text_[pos_] == '"' || text_[pos_] == '\'') &&
        (id == "u8" || id == "u" || id == "U" || id == "L")) {
      if (text_[pos_] == '"') {
        string_literal();
      } else {
        char_literal();
      }
      f_.tokens.back().begin = static_cast<std::uint32_t>(begin);
      return;
    }
    emit(TokenKind::kIdentifier, begin, pos_, line_);
  }

  void number() {
    const std::size_t begin = pos_;
    // pp-number: handles hex/bin/float/exponents and digit separators, so
    // the ' in 1'000'000 never opens a char literal.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (ident_char(c) || c == '.' || (c == '\'' && ident_char(peek(1)))) {
        ++pos_;
      } else if ((c == '+' || c == '-') && pos_ > begin &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E' ||
                  text_[pos_ - 1] == 'p' || text_[pos_ - 1] == 'P')) {
        ++pos_;
      } else {
        break;
      }
    }
    emit(TokenKind::kNumber, begin, pos_, line_);
  }

  void string_literal() {
    const std::size_t begin = pos_;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      if (text_[pos_] == '\n') ++line_;  // unterminated; keep line count sane
      ++pos_;
    }
    if (pos_ < text_.size()) ++pos_;  // closing quote
    emit(TokenKind::kString, begin, pos_, line_);
  }

  void raw_string(std::size_t begin) {
    // pos_ is at the opening '"' of R"delim( ... )delim".
    const int start_line = line_;
    ++pos_;
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') delim.push_back(text_[pos_++]);
    if (pos_ < text_.size()) ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = text_.find(closer, pos_);
    const std::size_t stop = end == std::string::npos ? text_.size() : end + closer.size();
    for (std::size_t i = pos_; i < stop; ++i) {
      if (text_[i] == '\n') ++line_;
    }
    pos_ = stop;
    emit(TokenKind::kString, begin, pos_, start_line);
  }

  void char_literal() {
    const std::size_t begin = pos_;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      if (text_[pos_] == '\n') break;  // unterminated
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '\'') ++pos_;
    emit(TokenKind::kCharLit, begin, pos_, line_);
  }

  void punct() {
    if (text_[pos_] == ':' && peek(1) == ':') {
      emit(TokenKind::kPunct, pos_, pos_ + 2, line_);
      pos_ += 2;
      return;
    }
    emit(TokenKind::kPunct, pos_, pos_ + 1, line_);
    ++pos_;
  }

  SourceFile& f_;
  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

bool SourceFile::is_header() const {
  const std::size_t dot = rel.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string_view ext = std::string_view(rel).substr(dot);
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx";
}

std::string SourceFile::module() const {
  const std::size_t slash = rel.find('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

bool SourceFile::is_allowed(int line, std::string_view rule) const {
  const auto it = allowed.find(line);
  return it != allowed.end() && it->second.count(std::string(rule)) > 0;
}

const std::vector<std::string>& SourceFile::annotations_on(int line) const {
  static const std::vector<std::string> kNone;
  const auto it = annotations.find(line);
  return it != annotations.end() ? it->second : kNone;
}

SourceFile lex_string(std::string rel, std::string text) {
  SourceFile f;
  f.rel = std::move(rel);
  f.text = std::move(text);
  Lexer(f).run();
  return f;
}

}  // namespace rush::analysis
