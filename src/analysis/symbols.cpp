#include "analysis/symbols.hpp"

#include "common/error.hpp"

namespace rush::analysis {

namespace {

std::string def_key(const std::string& cls, const std::string& name) {
  return cls + "::" + name;
}

}  // namespace

void SymbolIndex::add_file(const SourceFile& file, bool analyzed) {
  RUSH_EXPECTS(!finalized_);
  FileOutline fo;
  fo.file = &file;
  fo.outline = build_outline(file);
  fo.analyzed = analyzed;
  files_.push_back(std::move(fo));
}

void SymbolIndex::finalize() {
  finalized_ = true;
  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    const FileOutline& fo = files_[fi];
    // Token positions that are declaration names, not uses.
    std::set<std::size_t> decl_toks;
    for (const FunctionDecl& fn : fo.outline.functions) decl_toks.insert(fn.name_tok);
    for (const MemberVar& m : fo.outline.members) decl_toks.insert(m.name_tok);

    for (std::size_t fni = 0; fni < fo.outline.functions.size(); ++fni) {
      const FunctionDecl& fn = fo.outline.functions[fni];
      if (!fn.is_definition) continue;
      defs_[def_key(fn.cls(), fn.name)].emplace_back(fi, fni);
    }

    const std::size_t n = fo.file->tokens.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (fo.file->tokens[i].kind != TokenKind::kIdentifier) continue;
      if (decl_toks.count(i) > 0) continue;
      referenced_.insert(std::string(fo.file->tok(i)));
    }
  }
}

std::vector<SymbolIndex::FnRef> SymbolIndex::find_definitions(const std::string& cls,
                                                              const std::string& name,
                                                              int arity) const {
  std::vector<FnRef> result;
  const auto it = defs_.find(def_key(cls, name));
  if (it == defs_.end()) return result;
  std::vector<FnRef> any;
  for (const auto& [fi, fni] : it->second) {
    const FileOutline& fo = files_[fi];
    const FunctionDecl& fn = fo.outline.functions[fni];
    any.push_back(FnRef{&fo, &fn});
    if (arity < 0 || fn.arity == arity) result.push_back(FnRef{&fo, &fn});
  }
  // Arity is a tiebreak for overload sets; when nothing matches it (e.g.
  // a variadic mismatch between decl and def spellings), fall back to the
  // whole set rather than claiming "no definition".
  return result.empty() ? any : result;
}

bool SymbolIndex::referenced(const std::string& name) const {
  return referenced_.count(name) > 0;
}

}  // namespace rush::analysis
