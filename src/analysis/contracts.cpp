#include "analysis/contracts.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <string>

namespace rush::analysis {

namespace {

using SV = std::string_view;

bool is_punct(const SourceFile& f, std::size_t i, SV text) {
  return i < f.tokens.size() && f.tokens[i].kind == TokenKind::kPunct && f.tok(i) == text;
}

bool is_ident(const SourceFile& f, std::size_t i, SV text) {
  return i < f.tokens.size() && f.tokens[i].kind == TokenKind::kIdentifier &&
         f.tok(i) == text;
}

bool is_ident(const SourceFile& f, std::size_t i) {
  return i < f.tokens.size() && f.tokens[i].kind == TokenKind::kIdentifier;
}

bool member_access(const SourceFile& f, std::size_t i) {
  if (i < 1) return false;
  if (is_punct(f, i - 1, ".")) return true;
  return i >= 2 && is_punct(f, i - 2, "-") && is_punct(f, i - 1, ">");
}

void emit(const SourceFile& f, int line, const char* rule, std::string key,
          std::string message, std::vector<Finding>& out) {
  if (f.is_allowed(line, rule)) return;
  out.push_back(Finding{rule, f.rel, line, std::move(key), std::move(message)});
}

bool ends_with(SV s, SV suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool body_calls(const SourceFile& f, const FunctionDecl& fn, SV callee) {
  for (std::size_t j = fn.body_begin; j < fn.body_end && j < f.tokens.size(); ++j) {
    if (is_ident(f, j, callee)) return true;
  }
  return false;
}

const std::set<SV>& lock_types() {
  static const std::set<SV> kSet = {"lock_guard", "scoped_lock", "unique_lock"};
  return kSet;
}

}  // namespace

// ---------------------------------------------------------------------------
// missing-expects

void check_missing_expects(const SymbolIndex& index, std::vector<Finding>& out) {
  for (const FileOutline& fo : index.files()) {
    if (!fo.analyzed) continue;
    const std::string module = fo.file->module();
    if (module != "sim" && module != "sched") continue;
    for (const FunctionDecl& fn : fo.outline.functions) {
      if (fn.access != Access::kPublic) continue;
      if (fn.is_const || fn.is_static || fn.is_friend || fn.is_operator ||
          fn.is_ctor_dtor || fn.is_defaulted || !fn.has_params) {
        continue;
      }
      bool checked = false;
      bool has_expects = false;
      if (fn.is_definition) {
        checked = true;
        has_expects = body_calls(*fo.file, fn, "RUSH_EXPECTS");
      } else {
        for (const SymbolIndex::FnRef& def :
             index.find_definitions(fn.cls(), fn.name, fn.arity)) {
          checked = true;
          if (body_calls(*def.file->file, *def.fn, "RUSH_EXPECTS")) has_expects = true;
        }
      }
      if (!checked || has_expects) continue;  // definition outside the index
      emit(*fo.file, fn.line, "missing-expects", fn.qualified(),
           "public member '" + fn.qualified() + "' takes arguments but its "
           "definition never calls RUSH_EXPECTS; validate the preconditions or "
           "justify with an allow marker",
           out);
    }
  }
}

// ---------------------------------------------------------------------------
// trace-sim-time

void check_trace_sim_time(const SourceFile& f, std::vector<Finding>& out) {
  const std::size_t n = f.tokens.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_ident(f, i)) continue;
    const SV id = f.tok(i);
    if (id.size() <= 5 || id.substr(0, 5) != "emit_") continue;
    if (!member_access(f, i) || !is_punct(f, i + 1, "(")) continue;

    // First argument: tokens up to the first depth-1 ',' or the ')'.
    std::size_t arg_begin = i + 2;
    std::size_t arg_end = arg_begin;
    int depth = 1;
    for (std::size_t j = arg_begin; j < n && depth > 0; ++j) {
      const SV t = f.tok(j);
      if (f.tokens[j].kind == TokenKind::kPunct) {
        if (t == "(") ++depth;
        else if (t == ")") --depth;
        if (depth == 0 || (depth == 1 && t == ",")) {
          arg_end = j;
          break;
        }
      }
      arg_end = j + 1;
    }

    bool ok = false;
    for (std::size_t j = arg_begin; j < arg_end; ++j) {
      if (!is_ident(f, j)) continue;
      const SV a = f.tok(j);
      if (a == "now" && is_punct(f, j + 1, "(")) ok = true;
      if (ends_with(a, "_s") || ends_with(a, "_s_")) ok = true;
    }
    if (arg_end == arg_begin + 1 && (is_ident(f, arg_begin, "t") || is_ident(f, arg_begin, "when"))) {
      ok = true;
    }
    if (ok) continue;
    emit(f, f.tokens[i].line, "trace-sim-time", std::string(id),
         "trace call '" + std::string(id) + "' does not pass a sim-time first "
         "argument (now(), a *_s value, or t/when); wall-clock stamps break "
         "trace reproducibility",
         out);
  }
}

// ---------------------------------------------------------------------------
// noalloc-path

namespace {

const std::set<SV>& alloc_containers() {
  static const std::set<SV> kSet = {
      "vector", "string",        "basic_string",  "deque",
      "list",   "map",           "set",           "multimap",
      "multiset", "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "function"};
  return kSet;
}

const std::set<SV>& growth_calls() {
  static const std::set<SV> kSet = {"push_back", "emplace_back",  "emplace",
                                    "push_front", "emplace_front", "insert",
                                    "assign",     "append",        "resize",
                                    "reserve"};
  return kSet;
}

/// Statement keywords after which an ident+'(' is still a call.
const std::set<SV>& call_heads() {
  static const std::set<SV> kSet = {"return",   "co_return", "co_yield",
                                    "co_await", "case",      "else",
                                    "do",       "throw"};
  return kSet;
}

struct NoallocTarget {
  const FileOutline* fo = nullptr;
  const FunctionDecl* fn = nullptr;
  std::string root;    // qualified name of the annotated root
  std::string module;  // the root's module: closure stays inside it
};

/// Flag the allocation patterns inside one function body.
void scan_noalloc_body(const NoallocTarget& t, std::vector<Finding>& out) {
  const SourceFile& f = *t.fo->file;
  const FunctionDecl& fn = *t.fn;
  const std::string via =
      fn.qualified() == t.root
          ? "'" + t.root + "' is annotated '// rush: noalloc'"
          : "'" + fn.qualified() + "' is reachable from '// rush: noalloc' on '" +
                t.root + "'";
  for (std::size_t j = fn.body_begin + 1; j < fn.body_end && j < f.tokens.size(); ++j) {
    if (!is_ident(f, j)) continue;
    const SV id = f.tok(j);
    const int line = f.tokens[j].line;

    if (id == "new" && !(j > 0 && is_ident(f, j - 1, "operator"))) {
      emit(f, line, "noalloc-path", fn.name + ":new",
           "'new' in a noalloc path — " + via, out);
      continue;
    }
    if (id == "make_unique" || id == "make_shared") {
      emit(f, line, "noalloc-path", fn.name + ":" + std::string(id),
           "'" + std::string(id) + "' allocates in a noalloc path — " + via, out);
      continue;
    }
    // By-value std container local: std::vector<T> v; / = / ( / {
    if (id == "std" && is_punct(f, j + 1, "::") && is_ident(f, j + 2) &&
        alloc_containers().count(f.tok(j + 2)) > 0) {
      std::size_t k = j + 2;
      if (is_punct(f, k + 1, "<")) {
        int adepth = 1;
        std::size_t c = k + 2;
        while (c < f.tokens.size() && adepth > 0) {
          if (is_punct(f, c, "<")) ++adepth;
          if (is_punct(f, c, ">")) --adepth;
          ++c;
        }
        k = c - 1;
      }
      if (is_punct(f, k + 1, "&") || is_punct(f, k + 1, "*")) continue;  // ref/ptr
      if (!is_ident(f, k + 1)) continue;
      const SV after = k + 2 < f.tokens.size() ? f.tok(k + 2) : SV();
      if (after != ";" && after != "=" && after != "(" && after != "{") continue;
      // A function-local static allocates once, not per call.
      if ((j > 0 && is_ident(f, j - 1, "static")) ||
          (j > 1 && is_ident(f, j - 2, "static"))) {
        continue;
      }
      emit(f, line, "noalloc-path", fn.name + ":" + std::string(f.tok(k + 1)),
           "local std::" + std::string(f.tok(j + 2)) + " '" +
               std::string(f.tok(k + 1)) + "' constructs per call in a noalloc "
               "path; hoist it to reused member scratch — " + via,
           out);
      continue;
    }
    // Growth call on a non-member receiver: v.push_back(...). Member
    // scratch (trailing underscore, capacity reserved up front) is the
    // steady-state contract and allowed; chained receivers are skipped
    // (resolving their type is beyond a token walk).
    if (growth_calls().count(id) > 0 && is_punct(f, j + 1, "(") && member_access(f, j)) {
      const std::size_t r = is_punct(f, j - 1, ".") ? j - 2 : j - 3;
      if (r >= fn.body_begin && r < f.tokens.size() && is_ident(f, r)) {
        const SV recv = f.tok(r);
        const bool chained = r > 0 && (is_punct(f, r - 1, ".") || is_punct(f, r - 1, ">") ||
                                       is_punct(f, r - 1, ")"));
        if (!chained && recv != "this" && !ends_with(recv, "_")) {
          emit(f, line, "noalloc-path", fn.name + ":" + std::string(recv) + "." + std::string(id),
               "'" + std::string(recv) + "." + std::string(id) + "' can grow a "
               "non-member container in a noalloc path — " + via,
               out);
        }
      }
    }
  }
}

}  // namespace

void check_noalloc_path(const SymbolIndex& index, std::vector<Finding>& out) {
  std::deque<NoallocTarget> work;
  std::set<const FunctionDecl*> visited;
  const auto enqueue = [&](const FileOutline* fo, const FunctionDecl* fn,
                           const std::string& root, const std::string& module) {
    if (!fn->is_definition || visited.count(fn) > 0) return;
    visited.insert(fn);
    work.push_back(NoallocTarget{fo, fn, root, module});
  };

  for (const FileOutline& fo : index.files()) {
    if (!fo.analyzed) continue;
    for (const FunctionDecl& fn : fo.outline.functions) {
      if (!fn.has_annotation("noalloc")) continue;
      if (fn.is_definition) {
        enqueue(&fo, &fn, fn.qualified(), fo.file->module());
      } else {
        for (const SymbolIndex::FnRef& def :
             index.find_definitions(fn.cls(), fn.name, fn.arity)) {
          enqueue(def.file, def.fn, fn.qualified(), fo.file->module());
        }
      }
    }
  }

  while (!work.empty()) {
    const NoallocTarget t = std::move(work.front());
    work.pop_front();
    scan_noalloc_body(t, out);

    // Same-module callees: unqualified calls resolve against the current
    // class then free functions; Class::fn resolves statically. Method
    // calls through ./-> and std:: are not followed.
    const SourceFile& f = *t.fo->file;
    for (std::size_t j = t.fn->body_begin + 1;
         j < t.fn->body_end && j < f.tokens.size(); ++j) {
      if (!is_ident(f, j) || !is_punct(f, j + 1, "(")) continue;
      if (member_access(f, j)) continue;
      const std::string name(f.tok(j));
      std::vector<SymbolIndex::FnRef> defs;
      if (j > 0 && is_punct(f, j - 1, "::")) {
        if (j < 2 || !is_ident(f, j - 2) || f.tok(j - 2) == "std") continue;
        defs = index.find_definitions(std::string(f.tok(j - 2)), name, -1);
      } else {
        // `Type name(` declares a local; only statement keywords keep it
        // a call.
        if (j > 0 && is_ident(f, j - 1) && call_heads().count(f.tok(j - 1)) == 0) continue;
        defs = index.find_definitions(t.fn->cls(), name, -1);
        if (defs.empty()) defs = index.find_definitions(std::string(), name, -1);
      }
      for (const SymbolIndex::FnRef& def : defs) {
        if (def.file->file->module() != t.module) continue;
        enqueue(def.file, def.fn, t.root, t.module);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// guarded-member

void check_guarded_member(const SymbolIndex& index, std::vector<Finding>& out) {
  for (const FileOutline& fo : index.files()) {
    if (!fo.analyzed) continue;
    for (const MemberVar& m : fo.outline.members) {
      const std::string guard = m.guard();
      if (guard.empty() || m.cls().empty()) continue;
      const std::string module = fo.file->module();

      for (const FileOutline& fo2 : index.files()) {
        if (!fo2.analyzed || fo2.file->module() != module) continue;
        const SourceFile& f = *fo2.file;
        for (const FunctionDecl& fn : fo2.outline.functions) {
          if (!fn.is_definition || fn.cls() != m.cls()) continue;
          if (fn.is_ctor_dtor || fn.has_lock_param) continue;
          if (ends_with(fn.name, "_locked")) continue;

          // Earliest point in the body where a lock of the guard is taken:
          // `lock_guard/scoped_lock/unique_lock ... guard` or `guard.lock()`.
          std::size_t locked_from = fn.body_end;
          for (std::size_t k = fn.body_begin + 1;
               k < fn.body_end && k < f.tokens.size(); ++k) {
            if (!is_ident(f, k)) continue;
            if (lock_types().count(f.tok(k)) > 0) {
              const std::size_t stop = std::min(k + 10, fn.body_end);
              for (std::size_t a = k + 1; a < stop; ++a) {
                if (is_ident(f, a, guard)) {
                  locked_from = std::min(locked_from, k);
                  break;
                }
              }
            } else if (is_ident(f, k, guard) && is_punct(f, k + 1, ".") &&
                       is_ident(f, k + 2, "lock") && is_punct(f, k + 3, "(")) {
              locked_from = std::min(locked_from, k);
            }
            if (locked_from < fn.body_end) break;
          }

          for (std::size_t j = fn.body_begin + 1;
               j < fn.body_end && j < f.tokens.size(); ++j) {
            if (!is_ident(f, j, m.name)) continue;
            // `other.name` is a different object's member — out of scope
            // for a token walk; `this->name` is ours.
            if (member_access(f, j)) {
              const std::size_t r = is_punct(f, j - 1, ".") ? j - 2 : j - 3;
              if (!(r < f.tokens.size() && is_ident(f, r, "this"))) continue;
            }
            if (j > locked_from) continue;
            emit(f, f.tokens[j].line, "guarded-member", m.name + "@" + fn.name,
                 "'" + m.name + "' is annotated guarded_by(" + guard + ") but '" +
                     fn.qualified() + "' touches it before any lock of " + guard +
                     "; lock first, take a lock parameter, or use a *_locked "
                     "helper",
                 out);
            break;  // one finding per (member, function) pair
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dead-symbol

void check_dead_symbol(const SymbolIndex& index, std::vector<Finding>& out) {
  // An out-of-line definition does not repeat `virtual`; collect every
  // (class, name) any declaration marks virtual so overrides reached
  // through dynamic dispatch are never reported.
  std::set<std::string> virtual_names;
  for (const FileOutline& fo : index.files()) {
    for (const FunctionDecl& fn : fo.outline.functions) {
      if (fn.is_virtual) virtual_names.insert(fn.cls() + "::" + fn.name);
    }
  }
  for (const FileOutline& fo : index.files()) {
    if (!fo.analyzed || fo.file->is_header()) continue;
    for (const FunctionDecl& fn : fo.outline.functions) {
      if (!fn.is_definition || fn.inline_like || fn.is_virtual || fn.is_operator ||
          fn.is_ctor_dtor || fn.is_defaulted) {
        continue;
      }
      if (virtual_names.count(fn.cls() + "::" + fn.name) > 0) continue;
      if (fn.name == "main") continue;
      if (index.referenced(fn.name)) continue;
      emit(*fo.file, fn.line, "dead-symbol", fn.qualified(),
           "'" + fn.qualified() + "' is defined here but referenced nowhere in "
           "the analyzed tree or its --ref-root trees; delete it or justify "
           "with an allow marker",
           out);
    }
  }
}

}  // namespace rush::analysis
