// Semantic contract rules for rush_analyze, built on the outline parser
// and cross-TU symbol index (outline.hpp, symbols.hpp). These are the
// rules that need declaration↔definition pairing or call/annotation
// inspection — the ones token-level rules.hpp cannot express and that
// previously lived in tools/rush_lint.py (missing-expects,
// trace-sim-time) or nowhere at all (noalloc-path, guarded-member,
// dead-symbol).
//
// Annotation vocabulary (DESIGN.md §15):
//   // rush: noalloc           — this function and its same-module,
//                                statically-resolvable callees must not
//                                allocate (steady-state hot paths)
//   // rush: guarded_by(mu_)   — this member may only be touched after
//                                taking a lock of mu_
#pragma once

#include <vector>

#include "analysis/finding.hpp"
#include "analysis/lexer.hpp"
#include "analysis/symbols.hpp"

namespace rush::analysis {

/// missing-expects (sim/, sched/): a public non-const member function
/// that takes arguments must call RUSH_EXPECTS somewhere in its
/// definition — preconditions are the correctness harness's front line.
/// Skips const/static/friend/operator/ctor/dtor/defaulted declarations
/// and declarations whose definition is outside the index.
void check_missing_expects(const SymbolIndex& index, std::vector<Finding>& out);

/// trace-sim-time: every `.emit_*( / ->emit_*(` trace call site passes a
/// sim-time first argument — `now()`, an identifier ending in `_s`/`_s_`,
/// or the conventional `t`/`when`. Wall-clock stamps would make traces
/// non-reproducible.
void check_trace_sim_time(const SourceFile& f, std::vector<Finding>& out);

/// noalloc-path: a function annotated `// rush: noalloc` — and every
/// same-module function it reaches through unqualified or Class::
/// qualified calls — must not contain `new`, make_unique/make_shared,
/// by-value std container locals, or growth calls on non-member
/// receivers. Growth on trailing-underscore receivers (member scratch
/// with reserved capacity) is the steady-state contract and allowed.
void check_noalloc_path(const SymbolIndex& index, std::vector<Finding>& out);

/// guarded-member: a member annotated `// rush: guarded_by(G)` may only
/// be touched in member functions that earlier in the body take a
/// lock_guard/scoped_lock/unique_lock of G (or G.lock()). Functions named
/// *_locked, ctors/dtors, and functions receiving a lock parameter
/// (lock-handoff pattern) are exempt.
void check_guarded_member(const SymbolIndex& index, std::vector<Finding>& out);

/// dead-symbol: a non-inline, non-template, non-virtual function defined
/// in an analyzed source file whose name is referenced nowhere in the
/// index (--ref-root trees included) is dead code.
void check_dead_symbol(const SymbolIndex& index, std::vector<Finding>& out);

}  // namespace rush::analysis
