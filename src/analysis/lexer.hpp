// C++ source lexer for the rush_analyze static-analysis subsystem.
//
// Produces a token stream with comments, string/char literals (including
// raw strings), and preprocessor directives resolved — the things regex
// lint fundamentally cannot see. Tokens carry byte offsets into the
// file's text plus 1-based line numbers; preprocessor directives
// (continuations folded) and `#include` targets are extracted separately.
//
// Inline suppressions: a comment containing `rush-analyze: allow(rule[,
// rule...])` (the legacy `rush-lint:` spelling is also honoured) disables
// those rules on its own line and the line below.
//
// Contract annotations: a comment of the form `// rush: <annotation>`
// (e.g. `// rush: noalloc`, `// rush: guarded_by(mu_)`) attaches the
// annotation text to the declaration it describes — the next line when
// the comment stands alone, its own line when it trails code. The
// outline parser picks these up per declaration; see outline.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace rush::analysis {

enum class TokenKind : std::uint8_t {
  kIdentifier,  // identifiers and keywords alike
  kNumber,      // pp-number (digit separators included)
  kString,      // "...", R"(...)", prefix handled by the preceding ident
  kCharLit,     // 'x'
  kPunct,       // single punctuation char, except "::" which is one token
};

struct Token {
  TokenKind kind;
  std::uint32_t begin = 0;  // byte offsets into SourceFile::text
  std::uint32_t end = 0;
  int line = 0;  // 1-based
};

/// One preprocessor directive with backslash continuations folded.
/// Directive bodies are deliberately not tokenized; rules that care
/// (pragma once / pragma omp, include targets) read `rest` textually.
struct Directive {
  std::string keyword;  // "include", "pragma", "define", ...
  std::string rest;     // text after the keyword, comments stripped, trimmed
  int line = 0;
};

struct Include {
  std::string target;  // path between the delimiters, verbatim
  bool angled = false;
  int line = 0;
};

/// A lexed translation unit or header.
struct SourceFile {
  std::string rel;   // analysis-root-relative path, '/'-separated
  std::string text;  // raw file contents; tokens index into this
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  std::vector<Include> includes;
  bool has_pragma_once = false;
  std::map<int, std::set<std::string>> allowed;  // line -> suppressed rules
  /// line -> `rush:` annotation texts attached to that line (a standalone
  /// comment annotates the line below it; a trailing comment its own).
  std::map<int, std::vector<std::string>> annotations;

  [[nodiscard]] std::string_view tok(const Token& t) const {
    return std::string_view(text).substr(t.begin, t.end - t.begin);
  }
  [[nodiscard]] std::string_view tok(std::size_t i) const { return tok(tokens[i]); }
  [[nodiscard]] bool is_header() const;
  /// First path component of `rel` ("common", "sim", ...); "" for files
  /// directly under the analysis root.
  [[nodiscard]] std::string module() const;
  [[nodiscard]] bool is_allowed(int line, std::string_view rule) const;
  /// Annotation texts attached to `line` (empty vector if none).
  [[nodiscard]] const std::vector<std::string>& annotations_on(int line) const;
};

/// Lex `text` as the contents of root-relative path `rel`.
SourceFile lex_string(std::string rel, std::string text);

}  // namespace rush::analysis
