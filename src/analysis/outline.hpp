// Structural outline of one translation unit for rush_analyze.
//
// A single forward token walk recovers the declaration skeleton the
// semantic rules need: namespaces, class bodies with access tracking,
// member-variable declarations, and function declarations/definitions
// (free, member, and out-of-line member) with their signature traits and
// body token ranges. It is deliberately not a C++ parser — templates,
// attributes, and operators are handled structurally, and pathological
// constructs degrade to "not recorded" rather than misparse. One known
// hole: a brace-initializer inside a constructor's member-init list hides
// that constructor's body (ctors are exempt from every rule that reads
// bodies, so nothing downstream cares).
//
// `rush:` contract annotations recorded by the lexer are attached to the
// declaration whose signature spans the annotated line (see lexer.hpp for
// the attachment convention).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/lexer.hpp"

namespace rush::analysis {

enum class Access : std::uint8_t { kNone, kPublic, kProtected, kPrivate };

/// One function declaration or definition.
struct FunctionDecl {
  std::string name;                  // last component: "schedule_pass", "operator<", "~Engine"
  std::vector<std::string> classes;  // enclosing class frames + out-of-line qualifiers
  std::vector<std::string> namespaces;
  Access access = Access::kNone;  // kNone outside any class body
  int arity = 0;                  // parameter count (default args included)
  bool is_const = false;
  bool is_static = false;
  bool is_friend = false;
  bool is_virtual = false;     // virtual / override / final
  bool is_definition = false;  // has a brace body
  bool is_defaulted = false;   // = default / = delete / = 0
  bool inline_like = false;    // inline/constexpr/consteval/template or defined in-class
  bool is_ctor_dtor = false;
  bool is_operator = false;
  bool has_params = false;      // non-empty, non-(void) parameter list
  bool has_lock_param = false;  // takes a unique_lock/scoped_lock/lock_guard parameter
  int line = 0;                 // declaration head line
  std::size_t name_tok = 0;     // token index of the name's last component
  std::size_t params_begin = 0, params_end = 0;  // token indices of '(' and ')'
  std::size_t body_begin = 0, body_end = 0;      // token indices of '{' and '}'; 0 when decl-only
  std::vector<std::string> annotations;          // rush: texts spanning the signature

  /// "A::B::name" using the class path only (namespaces omitted).
  [[nodiscard]] std::string qualified() const;
  /// Innermost class name, or "" for a free function.
  [[nodiscard]] std::string cls() const;
  [[nodiscard]] bool has_annotation(std::string_view text) const;
};

/// One member-variable declaration inside a class body.
struct MemberVar {
  std::string name;
  std::vector<std::string> classes;
  int line = 0;
  std::size_t name_tok = 0;
  std::vector<std::string> annotations;

  [[nodiscard]] std::string cls() const;
  /// The guard named by a `guarded_by(<name>)` annotation, or "".
  [[nodiscard]] std::string guard() const;
};

struct Outline {
  std::vector<FunctionDecl> functions;
  std::vector<MemberVar> members;
};

/// Build the outline of a lexed file. Deterministic; declarations appear
/// in token order.
Outline build_outline(const SourceFile& f);

}  // namespace rush::analysis
