#include "analysis/baseline.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace rush::analysis {

namespace {

/// Minimal recursive-descent parser for the baseline document: objects,
/// arrays, strings (with escapes), and the few scalars JSON allows. Not a
/// general-purpose JSON library — just enough to read what render()
/// writes, with positions in error messages.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void expect_object_begin() { expect('{'); }
  void expect_array_begin() { expect('['); }

  /// Inside an object: returns false (consuming '}') when it ends,
  /// otherwise parses `"key":` and returns true.
  bool next_key(std::string& key, bool first) {
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return false;
    }
    if (!first) {
      expect(',');
      skip_ws();
    }
    key = parse_string();
    expect(':');
    return true;
  }

  bool next_element(bool first) {
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return false;
    }
    if (!first) expect(',');
    return true;
  }

  std::string parse_string() {
    skip_ws();
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case '"': case '\\': case '/': out.push_back(esc); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          // Baseline strings are ASCII paths/identifiers; decode the BMP
          // code point as a byte when it fits, else keep a '?'.
          const unsigned cp = std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16);
          out.push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
          pos_ += 4;
          break;
        }
        default: fail("unknown escape");
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  /// Skip any one JSON value (used for unknown/ignored keys).
  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      parse_string();
    } else if (c == '{') {
      ++pos_;
      std::string key;
      bool first = true;
      while (next_key(key, first)) {
        first = false;
        skip_value();
      }
    } else if (c == '[') {
      ++pos_;
      bool first = true;
      while (next_element(first)) {
        first = false;
        skip_value();
      }
    } else {
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.')) {
        ++pos_;
      }
    }
  }

  void expect_end() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
  }

  [[noreturn]] void fail(const std::string& what) const {
    int line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw ParseError("baseline.json:" + std::to_string(line) + ": " + what);
  }

 private:
  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Baseline Baseline::load(const std::filesystem::path& path) {
  Baseline b;
  std::ifstream in(path);
  if (!in) return b;  // no baseline yet: nothing suppressed
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonReader r(text);
  r.expect_object_begin();
  std::string key;
  bool first = true;
  while (r.next_key(key, first)) {
    first = false;
    if (key != "entries") {
      r.skip_value();  // "version" and any future metadata
      continue;
    }
    r.expect_array_begin();
    bool first_entry = true;
    while (r.next_element(first_entry)) {
      first_entry = false;
      BaselineEntry e;
      r.expect_object_begin();
      std::string field;
      bool first_field = true;
      while (r.next_key(field, first_field)) {
        first_field = false;
        if (field == "rule") e.rule = r.parse_string();
        else if (field == "file") e.file = r.parse_string();
        else if (field == "key") e.key = r.parse_string();
        else if (field == "reason") e.reason = r.parse_string();
        else r.skip_value();
      }
      if (e.rule.empty() || e.file.empty()) {
        throw ParseError("baseline entry missing required 'rule'/'file' fields");
      }
      b.entries_.push_back(std::move(e));
    }
  }
  r.expect_end();
  b.used_.assign(b.entries_.size(), false);
  return b;
}

bool Baseline::matches(const Finding& f) {
  bool hit = false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const BaselineEntry& e = entries_[i];
    if (e.rule == f.rule && e.file == f.file && e.key == f.key) {
      used_[i] = true;
      hit = true;  // keep scanning: every matching entry counts as used
    }
  }
  return hit;
}

std::vector<BaselineEntry> Baseline::unused() const {
  std::vector<BaselineEntry> out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!used_[i]) out.push_back(entries_[i]);
  }
  return out;
}

std::string Baseline::render(const std::vector<Finding>& findings) const {
  std::map<std::string, std::string> reasons;  // rule\0file\0key -> reason
  for (const BaselineEntry& e : entries_) {
    reasons[e.rule + '\0' + e.file + '\0' + e.key] = e.reason;
  }
  std::string out = "{\n  \"version\": 1,\n  \"entries\": [";
  bool first = true;
  for (const Finding& f : findings) {
    std::string entry;
    obs::JsonWriter w(entry);
    w.begin_object();
    w.field("rule", f.rule);
    w.field("file", f.file);
    w.field("key", f.key);
    const auto it = reasons.find(f.rule + '\0' + f.file + '\0' + f.key);
    w.field("reason", it != reasons.end() && !it->second.empty()
                          ? it->second
                          : "TODO: justify or fix");
    w.end_object();
    out += first ? "\n    " : ",\n    ";
    out += entry;
    first = false;
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace rush::analysis
