// Micro-benchmarks of the incremental contention engine (google-benchmark).
//
// The headline pair is the churn workload from the perf-baseline harness:
// 1k live sources on a 1,536-node tree, alternating set_rate mutations
// with slowdown queries. BM_NetworkChurnIncremental exercises the
// delta-update path; BM_NetworkChurnFullRebuild forces a rebuild() before
// every query, emulating the pre-incremental dirty->recompute cycle (a
// conservative stand-in: the old path additionally re-mapped every
// source's flows, so the real historical cost was higher than what this
// measures). tools/bench_baseline.py derives the speedup from the two.
//
// BM_ProbeSlowdownSteadyState additionally asserts that placement probes
// perform zero heap allocations once the scratch buffers are warm, via
// the replaced global operator new below.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "cluster/network.hpp"
#include "cluster/topology.hpp"
#include "common/rng.hpp"

// GCC pairs the malloc-backed replacement operator new with the
// replacement operator delete across inlining and misreports the pair
// as mismatched (it sees the free() inside); the replacement is exactly
// the supported global-override idiom.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
// Global allocation counter. Single-threaded benchmarks, so a plain
// counter is enough; volatile-free reads are fine.
std::uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace rush;

constexpr int kChurnSources = 1000;
constexpr int kNodesPerSource = 16;

/// 3 pods x 16 edges x 32 nodes = 1,536 nodes (the harness's churn tree).
cluster::FatTree churn_tree() {
  cluster::FatTreeConfig cfg;
  cfg.pods = 3;
  cfg.edges_per_pod = 16;
  cfg.nodes_per_edge = 32;
  return cluster::FatTree(cfg);
}

cluster::TrafficPattern pattern_of(int i) {
  switch (i % 4) {
    case 0: return cluster::TrafficPattern::AllToAll;
    case 1: return cluster::TrafficPattern::NearestNeighbor;
    case 2: return cluster::TrafficPattern::Ring;
    default: return cluster::TrafficPattern::Gateway;
  }
}

void populate_churn_sources(const cluster::FatTree& tree, cluster::NetworkModel& net, Rng& rng) {
  for (int j = 0; j < kChurnSources; ++j) {
    cluster::NodeSet nodes;
    const auto base = static_cast<cluster::NodeId>(
        rng.uniform_int(0, tree.num_nodes() - kNodesPerSource - 1));
    for (int i = 0; i < kNodesPerSource; ++i) nodes.push_back(base + i);
    net.add_source(static_cast<cluster::SourceId>(j) + 1, nodes, rng.uniform(0.1, 1.0),
                   pattern_of(j));
  }
}

/// Alternating set_rate + slowdown on the delta-update path.
void BM_NetworkChurnIncremental(benchmark::State& state) {
  const auto tree = churn_tree();
  cluster::NetworkModel net(tree);
  Rng rng(11);
  populate_churn_sources(tree, net, rng);
  for (auto _ : state) {
    const auto id = static_cast<cluster::SourceId>(rng.uniform_int(1, kChurnSources));
    net.set_rate(id, rng.uniform(0.1, 1.0));
    benchmark::DoNotOptimize(net.slowdown(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkChurnIncremental);

/// Same workload, but every query pays a from-scratch rebuild — the
/// pre-incremental dirty->recompute behaviour.
void BM_NetworkChurnFullRebuild(benchmark::State& state) {
  const auto tree = churn_tree();
  cluster::NetworkModel net(tree);
  Rng rng(11);
  populate_churn_sources(tree, net, rng);
  for (auto _ : state) {
    const auto id = static_cast<cluster::SourceId>(rng.uniform_int(1, kChurnSources));
    net.set_rate(id, rng.uniform(0.1, 1.0));
    net.rebuild();
    benchmark::DoNotOptimize(net.slowdown(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkChurnFullRebuild);

/// Register + deregister a 16-node source against 1k live ones.
void BM_NetworkAddRemoveSource(benchmark::State& state) {
  const auto tree = churn_tree();
  cluster::NetworkModel net(tree);
  Rng rng(12);
  populate_churn_sources(tree, net, rng);
  cluster::NodeSet nodes;
  for (int i = 0; i < kNodesPerSource; ++i) nodes.push_back(640 + i);
  const cluster::SourceId id = kChurnSources + 1;
  for (auto _ : state) {
    net.add_source(id, nodes, 0.7, cluster::TrafficPattern::AllToAll);
    net.remove_source(id);
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_NetworkAddRemoveSource);

void BM_NetworkSetAmbient(benchmark::State& state) {
  const auto tree = churn_tree();
  cluster::NetworkModel net(tree);
  Rng rng(13);
  populate_churn_sources(tree, net, rng);
  const cluster::LinkId link = tree.edge_uplink(5);
  double gbps = 0.0;
  for (auto _ : state) {
    gbps = gbps > 10.0 ? 0.5 : gbps + 0.5;
    net.set_ambient_load(link, gbps);
    benchmark::DoNotOptimize(net.link_load_gbps(link));
  }
}
BENCHMARK(BM_NetworkSetAmbient);

/// Placement probe against 1k live sources; fails the benchmark if any
/// steady-state call touches the heap.
void BM_ProbeSlowdownSteadyState(benchmark::State& state) {
  const auto tree = churn_tree();
  cluster::NetworkModel net(tree);
  Rng rng(14);
  populate_churn_sources(tree, net, rng);
  cluster::NodeSet probe;
  for (int i = 0; i < kNodesPerSource; ++i) probe.push_back(500 + i);
  // Warm the scratch buffers: the first probe may grow them.
  for (int i = 0; i < 4; ++i)
    benchmark::DoNotOptimize(net.probe_slowdown(probe, 0.8, pattern_of(i)));

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_alloc_count;
    benchmark::DoNotOptimize(net.probe_slowdown(probe, 0.8, cluster::TrafficPattern::AllToAll));
    allocs += g_alloc_count - before;
  }
  state.counters["allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  if (allocs != 0) state.SkipWithError("probe_slowdown allocated in steady state");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeSlowdownSteadyState);

/// Pure query path: cached-share slowdown against a static model.
void BM_SlowdownQuery(benchmark::State& state) {
  const auto tree = churn_tree();
  cluster::NetworkModel net(tree);
  Rng rng(15);
  populate_churn_sources(tree, net, rng);
  cluster::SourceId id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.slowdown(id));
    id = id % kChurnSources + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlowdownQuery);

}  // namespace

BENCHMARK_MAIN();
