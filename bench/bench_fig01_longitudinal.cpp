// Fig. 1: longitudinal run-time variation per proxy application, relative
// to each application's minimum, with a mid-campaign congestion storm
// (the paper's "mid-December" spike).
//
// Prints, per app and campaign day, max(run time) / min(overall run time),
// and flags the storm window.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 1", "Longitudinal variation relative to per-app minimum run time",
                      opts);

  const core::Corpus corpus = bench::main_corpus(opts);
  const auto apps = corpus.app_names();

  // Per app: overall minimum and per-day maximum.
  std::map<std::string, double> min_runtime;
  std::map<std::string, std::map<int, double>> day_max;
  int max_day = 0;
  for (const auto& s : corpus.samples()) {
    const int day = static_cast<int>(s.start_s / 86400.0);
    max_day = std::max(max_day, day);
    auto [it, inserted] = min_runtime.try_emplace(s.app, s.runtime_s);
    if (!inserted) it->second = std::min(it->second, s.runtime_s);
    auto& slot = day_max[s.app][day];
    slot = std::max(slot, s.runtime_s);
  }

  // The default campaign places the storm at 62% of the campaign.
  core::CollectorConfig collector_defaults;
  const int storm_start = static_cast<int>(collector_defaults.storm_at_fraction *
                                           static_cast<double>(opts.days));
  const int storm_end = storm_start + static_cast<int>(collector_defaults.storm_days);

  std::vector<std::string> header{"day"};
  for (const auto& app : apps) header.push_back(app);
  header.emplace_back("note");
  Table table(header);
  for (int day = 0; day <= max_day; ++day) {
    std::vector<std::string> row{std::to_string(day)};
    for (const auto& app : apps) {
      const auto& per_day = day_max[app];
      const auto it = per_day.find(day);
      row.push_back(it == per_day.end() ? "-"
                                        : Table::num(it->second / min_runtime[app], 2) + "x");
    }
    row.emplace_back(day >= storm_start && day < storm_end ? "<- storm" : "");
    table.add_row(std::move(row));
  }
  std::printf("\nPer-day maximum run time relative to the app's overall minimum:\n%s\n",
              table.render().c_str());

  Table peaks({"app", "min (s)", "max (s)", "peak rel.", "mean rel."});
  for (const auto& app : apps) {
    const auto stats = corpus.stats_for(app);
    peaks.add_row({app, Table::num(stats.min_s, 1), Table::num(stats.max_s, 1),
                   Table::num(stats.max_s / stats.min_s, 2) + "x",
                   Table::num(stats.mean_s / stats.min_s, 2) + "x"});
  }
  std::printf("Campaign summary (the paper observes peaks of 2-3x during the spike):\n%s\n",
              peaks.render().c_str());
  return 0;
}
