// Micro-benchmarks of the scheduling hot path: steady-state pass latency
// and end-to-end submit→drain throughput at queue depths 64/512/4096 on
// 512- and 4096-node clusters.
//
// Each measurement exists in two flavors: the production incremental
// Scheduler (indexed queue + reservation timeline + word-bitset
// allocator) and the pinned ReferenceScheduler baseline
// (sched/reference_scheduler.hpp), so tools/bench_baseline.py can derive
// the speedup from the pair exactly like the tree-fit trainers in
// bench_micro_ml. The production pass benchmark additionally counts heap
// allocations via the replaced global operator new and fails if a
// steady-state pass (saturated machine, nothing launchable) allocates at
// all — the scratch-buffer reuse contract of DESIGN.md §14.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "sched/reference_scheduler.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

// GCC pairs the malloc-backed replacement operator new with the
// replacement operator delete across inlining and misreports the pair
// as mismatched (it sees the free() inside); the replacement is exactly
// the supported global-override idiom.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
// Global allocation counter. Single-threaded benchmarks, so a plain
// counter is enough.
std::uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace rush;

/// Report the accumulated allocation count and fail the benchmark when a
/// steady-state path that promises zero allocations touched the heap.
void report_allocs(benchmark::State& state, std::uint64_t allocs, const char* what) {
  state.counters["allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  if (allocs != 0) state.SkipWithError(what);
}

cluster::FatTreeConfig tree_config(int total_nodes) {
  cluster::FatTreeConfig cfg;
  cfg.pods = total_nodes / (cfg.edges_per_pod * cfg.nodes_per_edge);  // 512 per pod
  return cfg;
}

/// Deterministic app: no traffic, no noise — run time equals base time,
/// so the benchmark measures the scheduler, not the contention model.
apps::AppProfile quiet_app(double runtime_s) {
  apps::AppProfile app;
  app.name = "bench";
  app.base_runtime_s = runtime_s;
  app.compute_frac = 1.0;
  app.network_frac = 0.0;
  app.io_frac = 0.0;
  app.net_gbps_per_node = 0.0;
  app.io_gbps_per_node = 0.0;
  app.noise_sigma = 0.0;
  app.serial_fraction = 1.0;
  return app;
}

sched::JobSpec make_spec(int nodes, double runtime_s, double walltime_s) {
  sched::JobSpec spec;
  spec.app = quiet_app(runtime_s);
  spec.num_nodes = nodes;
  spec.walltime_estimate_s = walltime_s;
  return spec;
}

/// One isolated cluster world per benchmark run. No trace, no metrics,
/// no oracle: the measurement is the scheduler data structures alone.
struct BenchWorld {
  explicit BenchWorld(int total_nodes)
      : tree(tree_config(total_nodes)), net(tree), fs(1000.0),
        exec(engine, net, fs, exec_config(), Rng(7)), allocator(all_nodes(total_nodes)) {}

  static apps::ExecutionConfig exec_config() {
    apps::ExecutionConfig cfg;
    cfg.os_noise = 0.0;
    return cfg;
  }
  static cluster::NodeSet all_nodes(int total) {
    cluster::NodeSet nodes(static_cast<std::size_t>(total));
    std::iota(nodes.begin(), nodes.end(), 0);
    return nodes;
  }

  template <typename SchedulerT>
  std::unique_ptr<SchedulerT> make_scheduler() {
    return std::make_unique<SchedulerT>(engine, allocator, exec,
                                        std::make_unique<sched::FcfsPolicy>(),
                                        std::make_unique<sched::SjfPolicy>(),
                                        sched::SchedulerConfig{});
  }

  sim::Engine engine;
  cluster::FatTree tree;
  cluster::NetworkModel net;
  cluster::LustreModel fs;
  apps::ExecutionModel exec;
  cluster::NodeAllocator allocator;
};

/// Saturate the machine with long runners, deepen the queue, and measure
/// one scheduling pass: reservation for the head job, backfill candidate
/// scan over the whole queue, nothing launchable. This is the pass a
/// busy cluster runs thousands of times between completions.
template <typename SchedulerT>
void pass_saturated(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int nodes = static_cast<int>(state.range(1));
  BenchWorld w(nodes);
  auto sched = w.template make_scheduler<SchedulerT>();

  const int wide = nodes / 16;
  for (int i = 0; i < 16; ++i)
    (void)sched->submit(make_spec(wide, 1.0e8, 1.2e8));  // fills every node
  for (int i = 0; i < depth; ++i) (void)sched->submit(make_spec(2, 100.0, 120.0));
  sched->schedule_pass();  // warm the scratch buffers

  const std::uint64_t allocs_before = g_alloc_count;
  for (auto _ : state) {
    sched->schedule_pass();
    benchmark::DoNotOptimize(sched->queue_length());
  }
  const std::uint64_t allocs = g_alloc_count - allocs_before;
  if constexpr (std::is_same_v<SchedulerT, sched::Scheduler>) {
    report_allocs(state, allocs, "steady-state scheduling pass allocated");
  } else {
    state.counters["allocs_per_op"] =
        benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  }
}

void BM_SchedPassSaturated(benchmark::State& state) {
  pass_saturated<sched::Scheduler>(state);
}
BENCHMARK(BM_SchedPassSaturated)
    ->Args({64, 512})
    ->Args({512, 512})
    ->Args({4096, 4096})
    ->Unit(benchmark::kMicrosecond);

void BM_SchedPassSaturatedReference(benchmark::State& state) {
  pass_saturated<sched::ReferenceScheduler>(state);
}
BENCHMARK(BM_SchedPassSaturatedReference)
    ->Args({64, 512})
    ->Args({512, 512})
    ->Args({4096, 4096})
    ->Unit(benchmark::kMicrosecond);

/// End-to-end throughput: submit `depth` mixed-width jobs at t=0 and
/// drain the simulation. Covers submit ordering, launch, backfill,
/// completion bookkeeping, and the allocator under churn.
template <typename SchedulerT>
void submit_drain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int nodes = static_cast<int>(state.range(1));
  std::uint64_t drained = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto w = std::make_unique<BenchWorld>(nodes);
    auto sched = w->template make_scheduler<SchedulerT>();
    Rng rng(42);
    state.ResumeTiming();

    for (int i = 0; i < depth; ++i) {
      const int width = static_cast<int>(rng.uniform_int(1, 64));
      const double runtime = rng.uniform(10.0, 100.0);
      (void)sched->submit(make_spec(width, runtime, runtime * 1.2));
    }
    w->engine.run();
    drained += sched->completed_count();

    state.PauseTiming();
    sched.reset();
    w.reset();
    state.ResumeTiming();
  }
  state.counters["jobs_per_s"] =
      benchmark::Counter(static_cast<double>(drained), benchmark::Counter::kIsRate);
}

void BM_SchedSubmitDrain(benchmark::State& state) { submit_drain<sched::Scheduler>(state); }
BENCHMARK(BM_SchedSubmitDrain)
    ->Args({64, 512})
    ->Args({512, 512})
    ->Args({4096, 4096})
    ->Unit(benchmark::kMillisecond);

void BM_SchedSubmitDrainReference(benchmark::State& state) {
  submit_drain<sched::ReferenceScheduler>(state);
}
BENCHMARK(BM_SchedSubmitDrainReference)
    ->Args({64, 512})
    ->Args({512, 512})
    ->Args({4096, 4096})
    ->Unit(benchmark::kMillisecond);

/// Allocator in isolation: fill the machine with 33-node allocations
/// (forcing word-straddling runs), release every other one, then satisfy
/// a fragmented fallback allocation and release everything.
void BM_AllocatorChurn(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  BenchWorld w(nodes);
  for (auto _ : state) {
    std::vector<cluster::NodeSet> held;
    while (auto got = w.allocator.allocate(33)) held.push_back(std::move(*got));
    for (std::size_t i = 0; i < held.size(); i += 2) w.allocator.release(held[i]);
    const auto frag = w.allocator.allocate(w.allocator.free_count());
    for (std::size_t i = 1; i < held.size(); i += 2) w.allocator.release(held[i]);
    w.allocator.release(*frag);
    benchmark::DoNotOptimize(w.allocator.free_count());
  }
}
BENCHMARK(BM_AllocatorChurn)->Arg(512)->Arg(4096)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
