// Shared harness for the figure/table benches.
//
// Every bench accepts:
//   --seed N     master seed (default 42)
//   --trials N   trials per policy (default 5, as in the paper)
//   --days N     collection campaign length (default 16)
//   --fresh      ignore caches and recompute everything
// Corpora and experiment results are cached as CSV in $RUSH_CACHE_DIR
// (default: the working directory), so the benches share one collection
// campaign and one run of each Table II experiment.
#pragma once

#include <string>

#include "core/collector.hpp"
#include "core/experiment.hpp"
#include "core/result_io.hpp"

namespace rush::bench {

struct BenchOptions {
  std::uint64_t seed = 42;
  int trials = 5;
  int days = 16;
  bool fresh = false;
};

BenchOptions parse_options(int argc, char** argv);

/// The standard collection campaign (cached under tag "main<days>").
core::Corpus main_corpus(const BenchOptions& opts);

/// Experiment runner over the main corpus with paper-default settings.
core::ExperimentRunner make_runner(const BenchOptions& opts, core::Corpus corpus);

/// Run (or load from cache) one Table II experiment.
core::ExperimentResult experiment(const BenchOptions& opts, core::ExperimentRunner& runner,
                                  core::ExperimentId id);

/// Header line naming the bench and the paper artifact it regenerates.
void print_banner(const std::string& artifact, const std::string& description,
                  const BenchOptions& opts);

}  // namespace rush::bench
