// Shared harness for the figure/table benches.
//
// Every bench accepts:
//   --seed N      master seed (default 42)
//   --trials N    trials per policy (default 5, as in the paper)
//   --days N      collection campaign length (default 16)
//   --jobs N      task-pool width for trials/experiments/ML (default:
//                 $RUSH_JOBS, else hardware concurrency)
//   --shards N    collection campaign shards (default 1 = the legacy
//                 single-environment campaign; >1 changes the corpus)
//   --fresh       ignore caches and recompute everything
//   --trace PATH  write a JSONL event trace (docs/trace-format.md) plus
//                 PATH.manifest.json / PATH.metrics.json; implies fresh
//                 experiment runs so the trace reflects live scheduling
//   --faults PATH inject the JSON fault plan (docs/fault-injection.md)
//                 into every trial; implies fresh experiment runs —
//                 fault-perturbed results must never poison the cache
// Corpora and experiment results are cached as CSV in $RUSH_CACHE_DIR
// (default: the working directory), so the benches share one collection
// campaign and one run of each Table II experiment.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/collector.hpp"
#include "core/experiment.hpp"
#include "core/result_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rush::bench {

struct BenchOptions {
  std::uint64_t seed = 42;
  int trials = 5;
  int days = 16;
  bool fresh = false;
  /// Task-pool width: 0 = shared-pool default ($RUSH_JOBS, else hardware
  /// concurrency); 1 = serial; N > 1 sizes the shared pool to N.
  int jobs = 0;
  /// Collection campaign shards (>1 redefines the corpus; see
  /// CollectorConfig::shards).
  int shards = 1;
  /// Empty disables tracing.
  std::string trace_path;
  /// Fault plan JSON injected into every trial; empty disables faults.
  std::string faults_path;
};

BenchOptions parse_options(int argc, char** argv);

/// Observability bundle for one bench process: an EventTrace on
/// opts.trace_path (plus its <path>.manifest.json provenance record,
/// written up front) and a MetricsRegistry whose snapshot lands in
/// <path>.metrics.json at destruction. Inactive (null trace, no files)
/// when opts.trace_path is empty.
class BenchObs {
 public:
  BenchObs(const BenchOptions& opts, const std::string& tool);
  ~BenchObs();

  BenchObs(const BenchObs&) = delete;
  BenchObs& operator=(const BenchObs&) = delete;

  /// Null when tracing is disabled (callers pass it straight through).
  [[nodiscard]] obs::EventTrace* trace() noexcept { return trace_.get(); }
  [[nodiscard]] obs::MetricsRegistry* metrics() noexcept {
    return trace_ ? &metrics_ : nullptr;
  }
  [[nodiscard]] bool active() const noexcept { return trace_ != nullptr; }

 private:
  std::string path_;
  std::unique_ptr<obs::EventTrace> trace_;
  obs::MetricsRegistry metrics_;
};

/// The standard collection campaign (cached under tag "main<days>").
core::Corpus main_corpus(const BenchOptions& opts);

/// Experiment runner over the main corpus with paper-default settings.
/// When `bench_obs` is active its trace/metrics are threaded through
/// every trial the runner executes.
core::ExperimentRunner make_runner(const BenchOptions& opts, core::Corpus corpus,
                                   BenchObs* bench_obs = nullptr);

/// Run (or load from cache) one Table II experiment.
core::ExperimentResult experiment(const BenchOptions& opts, core::ExperimentRunner& runner,
                                  core::ExperimentId id);

/// Run (or load) several Table II experiments, fanned across the task
/// pool; results land in id order. Falls back to one-at-a-time when a
/// trace is active (the shared trace must stay in deterministic order)
/// — each experiment still parallelizes its own trials internally.
std::vector<core::ExperimentResult> experiments(const BenchOptions& opts,
                                                core::ExperimentRunner& runner,
                                                const std::vector<core::ExperimentId>& ids);

/// Header line naming the bench and the paper artifact it regenerates.
void print_banner(const std::string& artifact, const std::string& description,
                  const BenchOptions& opts);

}  // namespace rush::bench
