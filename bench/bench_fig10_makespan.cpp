// Fig. 10: workload makespan per experiment, FCFS+EASY vs RUSH. The
// paper reports makespans within tens of seconds of each other (RUSH
// improved by 18-66 s); the key claim is that variation reduction does
// not cost throughput.
#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/report.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 10", "Makespan per experiment, FCFS+EASY vs RUSH", opts);

  core::ExperimentRunner runner = bench::make_runner(opts, bench::main_corpus(opts));

  const std::vector<core::ExperimentId> ids{core::ExperimentId::ADAA, core::ExperimentId::ADPA,
                                            core::ExperimentId::PDPA, core::ExperimentId::WS,
                                            core::ExperimentId::SS};
  const auto results = bench::experiments(opts, runner, ids);

  Table table({"experiment", "fcfs-easy", "rush", "delta", "delta %"});
  for (const auto& result : results) {
    const double base = core::mean_makespan(result.baseline);
    const double rush = core::mean_makespan(result.rush);
    table.add_row({result.spec.code, str::format_duration(base), str::format_duration(rush),
                   str::format_duration(rush - base),
                   Table::num(100.0 * (rush - base) / base, 1) + "%"});
  }
  std::printf("\nMean makespan over %d trials/policy:\n%s\n", opts.trials,
              table.render().c_str());
  std::printf("paper shape: differences of tens of seconds on 30-50 minute workloads —\n"
              "variation mitigation without significant throughput cost.\n\n");
  return 0;
}
