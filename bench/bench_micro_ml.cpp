// Micro-benchmarks of the ML library: fits and single-sample inference at
// the corpus scale the pipeline actually uses (282 features).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ml/adaboost.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/tree.hpp"

namespace {

using namespace rush;

ml::Dataset synthetic(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (std::size_t f = 0; f < cols; ++f) names.push_back("f" + std::to_string(f));
  ml::Dataset d(std::move(names));
  std::vector<double> row(cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double signal = 0.0;
    for (std::size_t f = 0; f < cols; ++f) {
      row[f] = rng.uniform(0.0, 1.0);
      if (f < 8) signal += row[f];
    }
    d.add_row(row, signal > 4.4 ? 1 : 0);
  }
  return d;
}

void BM_TreeFit(benchmark::State& state) {
  const auto d = synthetic(static_cast<std::size_t>(state.range(0)), 282, 1);
  for (auto _ : state) {
    ml::DecisionTree tree;
    tree.fit(d);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_ExtraTreeFit(benchmark::State& state) {
  const auto d = synthetic(1000, 282, 2);
  ml::TreeConfig cfg;
  cfg.random_thresholds = true;
  cfg.max_features = 17;
  for (auto _ : state) {
    ml::DecisionTree tree(cfg);
    tree.fit(d);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_ExtraTreeFit)->Unit(benchmark::kMillisecond);

void BM_ForestFit(benchmark::State& state) {
  const auto d = synthetic(1000, 282, 3);
  for (auto _ : state) {
    ml::Forest forest(ml::decision_forest_config(static_cast<std::size_t>(state.range(0))));
    forest.fit(d);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_ForestFit)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_AdaBoostFit(benchmark::State& state) {
  const auto d = synthetic(1000, 282, 4);
  ml::AdaBoostConfig cfg;
  cfg.num_rounds = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ml::AdaBoost model(cfg);
    model.fit(d);
    benchmark::DoNotOptimize(model.stage_count());
  }
}
BENCHMARK(BM_AdaBoostFit)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  const auto d = synthetic(1000, 282, 5);
  ml::Forest forest(ml::decision_forest_config(60));
  forest.fit(d);
  Rng rng(6);
  std::vector<double> x(282);
  for (auto _ : state) {
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    benchmark::DoNotOptimize(forest.predict(x));
  }
}
BENCHMARK(BM_ForestPredict);

void BM_AdaBoostPredict(benchmark::State& state) {
  const auto d = synthetic(1000, 282, 7);
  ml::AdaBoost model;
  model.fit(d);
  Rng rng(8);
  std::vector<double> x(282);
  for (auto _ : state) {
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    benchmark::DoNotOptimize(model.predict(x));
  }
}
BENCHMARK(BM_AdaBoostPredict);

void BM_KnnPredict(benchmark::State& state) {
  const auto d = synthetic(static_cast<std::size_t>(state.range(0)), 282, 9);
  ml::Knn knn;
  knn.fit(d);
  Rng rng(10);
  std::vector<double> x(282);
  for (auto _ : state) {
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    benchmark::DoNotOptimize(knn.predict(x));
  }
}
BENCHMARK(BM_KnnPredict)->Arg(1000)->Arg(3000);

}  // namespace

BENCHMARK_MAIN();
