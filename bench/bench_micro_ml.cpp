// Micro-benchmarks of the ML library: fits and single-sample inference at
// the corpus scale the pipeline actually uses (282 features).
//
// BM_TreeFit pins the per-node-sort reference trainer so its history
// stays comparable; BM_TreeFitPresorted measures the production presorted
// trainer on the same workload (tools/bench_baseline.py derives the
// speedup from the pair). The predict benchmarks run over the compiled
// flat planes and assert zero steady-state heap allocations via the
// replaced global operator new below. BM_OraclePredictEndToEnd covers the
// whole oracle hot path: canary probe, counter-feature cache, and
// compiled-ensemble evaluation against a live environment.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "apps/profiles.hpp"
#include "common/rng.hpp"
#include "core/environment.hpp"
#include "core/labeler.hpp"
#include "core/pipeline.hpp"
#include "core/rush_oracle.hpp"
#include "ml/adaboost.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/tree.hpp"

// GCC pairs the malloc-backed replacement operator new with the
// replacement operator delete across inlining and misreports the pair
// as mismatched (it sees the free() inside); the replacement is exactly
// the supported global-override idiom.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
// Global allocation counter. Single-threaded benchmarks, so a plain
// counter is enough; volatile-free reads are fine.
std::uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace rush;

ml::Dataset synthetic(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (std::size_t f = 0; f < cols; ++f) names.push_back("f" + std::to_string(f));
  ml::Dataset d(std::move(names));
  std::vector<double> row(cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double signal = 0.0;
    for (std::size_t f = 0; f < cols; ++f) {
      row[f] = rng.uniform(0.0, 1.0);
      if (f < 8) signal += row[f];
    }
    d.add_row(row, signal > 4.4 ? 1 : 0);
  }
  return d;
}

/// Report the accumulated allocation count and fail the benchmark when a
/// steady-state path that promises zero allocations touched the heap.
void report_allocs(benchmark::State& state, std::uint64_t allocs, const char* what) {
  state.counters["allocs_per_op"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  if (allocs != 0) state.SkipWithError(what);
}

/// Per-node-sort reference trainer (presort off), kept measurable so the
/// presorted speedup stays an observable ratio rather than a changelog
/// claim.
void BM_TreeFit(benchmark::State& state) {
  const auto d = synthetic(static_cast<std::size_t>(state.range(0)), 282, 1);
  ml::TreeConfig cfg;
  cfg.presort = false;
  for (auto _ : state) {
    ml::DecisionTree tree(cfg);
    tree.fit(d);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);

/// Production trainer: one sort per feature per fit, stable partitioning
/// down the recursion. Produces bit-identical trees to BM_TreeFit's.
void BM_TreeFitPresorted(benchmark::State& state) {
  const auto d = synthetic(static_cast<std::size_t>(state.range(0)), 282, 1);
  for (auto _ : state) {
    ml::DecisionTree tree;
    tree.fit(d);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFitPresorted)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_ExtraTreeFit(benchmark::State& state) {
  const auto d = synthetic(1000, 282, 2);
  ml::TreeConfig cfg;
  cfg.random_thresholds = true;
  cfg.max_features = 17;
  for (auto _ : state) {
    ml::DecisionTree tree(cfg);
    tree.fit(d);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_ExtraTreeFit)->Unit(benchmark::kMillisecond);

void BM_ForestFit(benchmark::State& state) {
  const auto d = synthetic(1000, 282, 3);
  for (auto _ : state) {
    ml::Forest forest(ml::decision_forest_config(static_cast<std::size_t>(state.range(0))));
    forest.fit(d);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_ForestFit)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_AdaBoostFit(benchmark::State& state) {
  const auto d = synthetic(1000, 282, 4);
  ml::AdaBoostConfig cfg;
  cfg.num_rounds = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ml::AdaBoost model(cfg);
    model.fit(d);
    benchmark::DoNotOptimize(model.stage_count());
  }
}
BENCHMARK(BM_AdaBoostFit)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  const auto d = synthetic(1000, 282, 5);
  ml::Forest forest(ml::decision_forest_config(60));
  forest.fit(d);
  Rng rng(6);
  std::vector<double> x(282);
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    const std::uint64_t before = g_alloc_count;
    benchmark::DoNotOptimize(forest.predict(x));
    allocs += g_alloc_count - before;
  }
  report_allocs(state, allocs, "forest predict allocated in steady state");
}
BENCHMARK(BM_ForestPredict);

/// Batched path: one predict_many call over the whole probe set, scratch
/// reused across rows. ns/op divided by items_per_second gives the
/// per-row cost.
void BM_ForestPredictBatched(benchmark::State& state) {
  const auto d = synthetic(1000, 282, 5);
  ml::Forest forest(ml::decision_forest_config(60));
  forest.fit(d);
  const auto probe = synthetic(256, 282, 6);
  std::vector<int> out(probe.rows());
  for (auto _ : state) {
    forest.predict_many(probe, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(probe.rows()));
}
BENCHMARK(BM_ForestPredictBatched);

void BM_AdaBoostPredict(benchmark::State& state) {
  const auto d = synthetic(1000, 282, 7);
  ml::AdaBoost model;
  model.fit(d);
  Rng rng(8);
  std::vector<double> x(282);
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    const std::uint64_t before = g_alloc_count;
    benchmark::DoNotOptimize(model.predict(x));
    allocs += g_alloc_count - before;
  }
  report_allocs(state, allocs, "adaboost predict allocated in steady state");
}
BENCHMARK(BM_AdaBoostPredict);

void BM_KnnPredict(benchmark::State& state) {
  const auto d = synthetic(static_cast<std::size_t>(state.range(0)), 282, 9);
  ml::Knn knn;
  knn.fit(d);
  Rng rng(10);
  std::vector<double> x(282);
  for (auto _ : state) {
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    benchmark::DoNotOptimize(knn.predict(x));
  }
}
BENCHMARK(BM_KnnPredict)->Arg(1000)->Arg(3000);

core::Corpus oracle_corpus() {
  constexpr std::size_t kF = telemetry::FeatureAssembler::kNumFeatures;
  Rng rng(6);
  core::Corpus c;
  for (int i = 0; i < 80; ++i) {
    core::CollectedSample s;
    s.app = "AMG";
    s.app_index = 0;
    s.node_count = 16;
    const double congestion = rng.uniform(0.0, 1.0);
    s.runtime_s = 100.0 * (1.0 + congestion);
    s.features_all.assign(kF, congestion);
    s.features_job.assign(kF, congestion);
    c.add(std::move(s));
  }
  for (int i = 0; i < 40; ++i) {
    core::CollectedSample s;
    s.app = "Kripke";
    s.app_index = 1;
    s.node_count = 16;
    s.runtime_s = 200.0 + i;
    s.features_all.assign(kF, 0.1);
    s.features_job.assign(kF, 0.1);
    c.add(std::move(s));
  }
  return c;
}

/// The full oracle hot path against a live environment: canary probe,
/// cached counter aggregation, compiled-ensemble evaluation. Steady state
/// (warm cache, warm buffers) must not allocate.
void BM_OraclePredictEndToEnd(benchmark::State& state) {
  core::Environment env{core::single_pod_config(7)};
  env.sampler().start();
  env.engine().run_until(300.0);

  const core::Corpus corpus = oracle_corpus();
  const core::Labeler labeler(corpus);
  const core::TrainedPredictor predictor = core::PredictorTrainer().train(corpus, labeler);
  core::RushOracle oracle(env, predictor);

  sched::Job job;
  job.spec.app = *apps::find_app("AMG");
  cluster::NodeSet nodes;
  for (int i = 0; i < 16; ++i) nodes.push_back(i);

  // Warm the counter cache and scratch buffers.
  for (int i = 0; i < 4; ++i) benchmark::DoNotOptimize(oracle.predict(job, nodes));

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_alloc_count;
    benchmark::DoNotOptimize(oracle.predict(job, nodes));
    allocs += g_alloc_count - before;
  }
  report_allocs(state, allocs, "oracle predict allocated in steady state");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OraclePredictEndToEnd);

}  // namespace

BENCHMARK_MAIN();
