#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/manifest.hpp"

namespace rush::bench {

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_int = [&](long long fallback) {
      return (i + 1 < argc) ? std::atoll(argv[++i]) : fallback;
    };
    if (std::strcmp(arg, "--seed") == 0) {
      opts.seed = static_cast<std::uint64_t>(next_int(42));
    } else if (std::strcmp(arg, "--trials") == 0) {
      opts.trials = static_cast<int>(next_int(5));
    } else if (std::strcmp(arg, "--days") == 0) {
      opts.days = static_cast<int>(next_int(16));
    } else if (std::strcmp(arg, "--fresh") == 0) {
      opts.fresh = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      if (i + 1 < argc) opts.trace_path = argv[++i];
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("options: --seed N --trials N --days N --fresh --trace PATH\n");
      std::exit(0);
    }
  }
  return opts;
}

BenchObs::BenchObs(const BenchOptions& opts, const std::string& tool)
    : path_(opts.trace_path) {
  if (path_.empty()) return;
  trace_ = std::make_unique<obs::EventTrace>(path_);
  obs::RunManifest manifest;
  manifest.tool = tool;
  manifest.seed = opts.seed;
  manifest.trials = opts.trials;
  manifest.days = opts.days;
  manifest.trace_path = path_;
  obs::write_manifest(path_ + ".manifest.json", manifest);
  std::printf("[bench] trace: %s (+ .manifest.json, .metrics.json)\n", path_.c_str());
}

BenchObs::~BenchObs() {
  if (!trace_) return;
  trace_->flush();
  std::ofstream out(path_ + ".metrics.json");
  if (out) out << metrics_.snapshot_json() << '\n';
}

core::Corpus main_corpus(const BenchOptions& opts) {
  core::CollectorConfig cfg;
  cfg.days = opts.days;
  cfg.seed = opts.seed;
  core::LongitudinalCollector collector(cfg, core::single_pod_config());
  const auto cache = core::default_corpus_cache("main_d" + std::to_string(opts.days) + "_s" +
                                                std::to_string(opts.seed));
  if (opts.fresh) std::filesystem::remove(cache);
  std::printf("[bench] corpus: %s\n", cache.string().c_str());
  core::Corpus corpus = collector.collect_or_load(cache);
  std::printf("[bench] corpus samples: %zu over %zu apps\n", corpus.size(),
              corpus.app_names().size());
  return corpus;
}

core::ExperimentRunner make_runner(const BenchOptions& opts, core::Corpus corpus,
                                   BenchObs* bench_obs) {
  core::ExperimentConfig config;
  config.trials_per_policy = opts.trials;
  if (bench_obs != nullptr) {
    config.trace = bench_obs->trace();
    config.metrics = bench_obs->metrics();
  }
  // The experiment seed stays at its default so trial conditions are
  // stable across collection-seed sweeps; --seed varies the corpus.
  return core::ExperimentRunner(std::move(corpus), config);
}

core::ExperimentResult experiment(const BenchOptions& opts, core::ExperimentRunner& runner,
                                  core::ExperimentId id) {
  const core::ExperimentSpec spec = core::experiment_spec(id);
  const auto cache = core::default_experiment_cache(spec.code + "_t" +
                                                    std::to_string(opts.trials) + "_s" +
                                                    std::to_string(opts.seed) + "_d" +
                                                    std::to_string(opts.days));
  // Tracing needs live trials (a cache hit would leave the trace empty).
  if (opts.fresh || !opts.trace_path.empty()) std::filesystem::remove(cache);
  std::printf("[bench] experiment %s: %s\n", spec.code.c_str(), cache.string().c_str());
  return core::run_or_load_experiment(runner, spec, cache);
}

void print_banner(const std::string& artifact, const std::string& description,
                  const BenchOptions& opts) {
  std::printf("================================================================\n");
  std::printf("RUSH reproduction — %s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("seed=%llu trials/policy=%d collection-days=%d\n",
              static_cast<unsigned long long>(opts.seed), opts.trials, opts.days);
  std::printf("================================================================\n");
}

}  // namespace rush::bench
