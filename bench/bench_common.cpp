#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/task_pool.hpp"
#include "obs/manifest.hpp"

namespace rush::bench {

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_int = [&](long long fallback) {
      return (i + 1 < argc) ? std::atoll(argv[++i]) : fallback;
    };
    if (std::strcmp(arg, "--seed") == 0) {
      opts.seed = static_cast<std::uint64_t>(next_int(42));
    } else if (std::strcmp(arg, "--trials") == 0) {
      opts.trials = static_cast<int>(next_int(5));
    } else if (std::strcmp(arg, "--days") == 0) {
      opts.days = static_cast<int>(next_int(16));
    } else if (std::strcmp(arg, "--jobs") == 0) {
      opts.jobs = static_cast<int>(next_int(0));
    } else if (std::strcmp(arg, "--shards") == 0) {
      opts.shards = static_cast<int>(next_int(1));
    } else if (std::strcmp(arg, "--fresh") == 0) {
      opts.fresh = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      if (i + 1 < argc) opts.trace_path = argv[++i];
    } else if (std::strcmp(arg, "--faults") == 0) {
      if (i + 1 < argc) opts.faults_path = argv[++i];
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "options: --seed N --trials N --days N --jobs N --shards N --fresh --trace PATH "
          "--faults PATH\n");
      std::exit(0);
    }
  }
  // --jobs N sizes the shared pool for the whole process (trials, corpus
  // shards, and the ML layer all draw from it); 0 keeps the default
  // ($RUSH_JOBS, else hardware concurrency).
  if (opts.jobs > 0) set_shared_jobs(opts.jobs);
  return opts;
}

BenchObs::BenchObs(const BenchOptions& opts, const std::string& tool)
    : path_(opts.trace_path) {
  if (path_.empty()) return;
  trace_ = std::make_unique<obs::EventTrace>(path_);
  obs::RunManifest manifest;
  manifest.tool = tool;
  manifest.seed = opts.seed;
  manifest.trials = opts.trials;
  manifest.days = opts.days;
  manifest.trace_path = path_;
  obs::write_manifest(path_ + ".manifest.json", manifest);
  std::printf("[bench] trace: %s (+ .manifest.json, .metrics.json)\n", path_.c_str());
}

BenchObs::~BenchObs() {
  if (!trace_) return;
  trace_->flush();
  std::ofstream out(path_ + ".metrics.json");
  if (out) out << metrics_.snapshot_json() << '\n';
}

core::Corpus main_corpus(const BenchOptions& opts) {
  core::CollectorConfig cfg;
  cfg.days = opts.days;
  cfg.seed = opts.seed;
  cfg.shards = opts.shards;
  core::LongitudinalCollector collector(cfg, core::single_pod_config());
  // The shard count shapes the corpus, so sharded campaigns cache under
  // their own tag; shards=1 keeps the legacy cache name and bytes.
  const std::string shard_tag = opts.shards > 1 ? "_p" + std::to_string(opts.shards) : "";
  const auto cache = core::default_corpus_cache("main_d" + std::to_string(opts.days) + "_s" +
                                                std::to_string(opts.seed) + shard_tag);
  if (opts.fresh) std::filesystem::remove(cache);
  std::printf("[bench] corpus: %s\n", cache.string().c_str());
  core::Corpus corpus = collector.collect_or_load(cache);
  std::printf("[bench] corpus samples: %zu over %zu apps\n", corpus.size(),
              corpus.app_names().size());
  return corpus;
}

core::ExperimentRunner make_runner(const BenchOptions& opts, core::Corpus corpus,
                                   BenchObs* bench_obs) {
  core::ExperimentConfig config;
  config.trials_per_policy = opts.trials;
  if (bench_obs != nullptr) {
    config.trace = bench_obs->trace();
    config.metrics = bench_obs->metrics();
  }
  if (!opts.faults_path.empty())
    config.fault_plan = faults::FaultPlan::from_json_file(opts.faults_path);
  // The experiment seed stays at its default so trial conditions are
  // stable across collection-seed sweeps; --seed varies the corpus.
  return core::ExperimentRunner(std::move(corpus), config);
}

core::ExperimentResult experiment(const BenchOptions& opts, core::ExperimentRunner& runner,
                                  core::ExperimentId id) {
  const core::ExperimentSpec spec = core::experiment_spec(id);
  const auto cache = core::default_experiment_cache(spec.code + "_t" +
                                                    std::to_string(opts.trials) + "_s" +
                                                    std::to_string(opts.seed) + "_d" +
                                                    std::to_string(opts.days));
  // Tracing needs live trials (a cache hit would leave the trace empty);
  // fault runs must neither read nor leave behind fault-perturbed results.
  const bool bypass_cache =
      opts.fresh || !opts.trace_path.empty() || !opts.faults_path.empty();
  if (bypass_cache) std::filesystem::remove(cache);
  std::printf("[bench] experiment %s: %s\n", spec.code.c_str(), cache.string().c_str());
  // run_or_load_experiment would write its (fault-perturbed) result back
  // to the cache file; fault runs go straight to the runner instead.
  if (!opts.faults_path.empty()) return runner.run(spec);
  return core::run_or_load_experiment(runner, spec, cache);
}

std::vector<core::ExperimentResult> experiments(const BenchOptions& opts,
                                                core::ExperimentRunner& runner,
                                                const std::vector<core::ExperimentId>& ids) {
  std::vector<core::ExperimentResult> results(ids.size());
  if (!opts.trace_path.empty()) {
    // A live trace must receive experiments in a fixed order; each
    // experiment still fans its own trials across the pool.
    for (std::size_t i = 0; i < ids.size(); ++i) results[i] = experiment(opts, runner, ids[i]);
    return results;
  }
  parallel_for_indexed(opts.jobs, ids.size(),
                       [&](std::size_t i) { results[i] = experiment(opts, runner, ids[i]); });
  return results;
}

void print_banner(const std::string& artifact, const std::string& description,
                  const BenchOptions& opts) {
  std::printf("================================================================\n");
  std::printf("RUSH reproduction — %s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("seed=%llu trials/policy=%d collection-days=%d jobs=%d shards=%d\n",
              static_cast<unsigned long long>(opts.seed), opts.trials, opts.days,
              opts.jobs > 0 ? opts.jobs : TaskPool::default_jobs(), opts.shards);
  std::printf("================================================================\n");
}

}  // namespace rush::bench
