// Fig. 7: run-time distribution per application in the PDPA experiment —
// the scheduler still shrinks the tail for applications whose data its
// model never saw.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/report.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 7", "Run-time distributions per app, PDPA (unseen-app model)",
                      opts);

  core::ExperimentRunner runner = bench::make_runner(opts, bench::main_corpus(opts));
  const auto result = bench::experiment(opts, runner, core::ExperimentId::PDPA);

  const auto base = core::runtime_summaries(result.baseline);
  const auto rush = core::runtime_summaries(result.rush);
  Table table({"app", "policy", "n", "min", "median", "q3", "max"});
  for (const auto& [app, b] : base) {
    const auto& r = rush.at(app);
    table.add_row({app, "fcfs-easy", std::to_string(b.n), Table::num(b.min, 1),
                   Table::num(b.median, 1), Table::num(b.q3, 1), Table::num(b.max, 1)});
    table.add_row({"", "rush", std::to_string(r.n), Table::num(r.min, 1),
                   Table::num(r.median, 1), Table::num(r.q3, 1), Table::num(r.max, 1)});
  }
  std::printf("\nRun times (seconds); the RUSH model trained only on AMG/Kripke/sw4lite/SWFFT:\n%s\n",
              table.render().c_str());
  std::printf("paper shape: improvements comparable to ADAA — historical runs of an app are\n"
              "not required to reduce its maximum run time.\n\n");
  return 0;
}
