// Fig. 9: percent improvement in maximum run time under strong scaling
// (SS experiment). The paper reports improvements for every application,
// with sw4lite and LBANN largest.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/report.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 9", "Max run-time improvement under strong scaling (SS)", opts);

  core::ExperimentRunner runner = bench::make_runner(opts, bench::main_corpus(opts));
  const auto result = bench::experiment(opts, runner, core::ExperimentId::SS);

  Table table({"app", "8 nodes", "16 nodes", "32 nodes", "all"});
  const auto overall = core::max_runtime_improvement(result.baseline, result.rush);
  std::map<int, std::map<std::string, double>> per_nodes;
  for (const int nodes : result.spec.node_counts)
    per_nodes[nodes] = core::max_runtime_improvement(result.baseline, result.rush, nodes);
  for (const auto& [app, all_improvement] : overall) {
    auto cell = [&](int nodes) {
      const auto& m = per_nodes[nodes];
      const auto it = m.find(app);
      return it == m.end() ? std::string("-") : Table::num(it->second, 1) + "%";
    };
    table.add_row({app, cell(8), cell(16), cell(32), Table::num(all_improvement, 1) + "%"});
  }
  std::printf("\nImprovement in maximum run time, RUSH vs FCFS+EASY:\n%s\n",
              table.render().c_str());
  std::printf("paper shape: positive for every app even as per-node work shrinks.\n\n");
  return 0;
}
