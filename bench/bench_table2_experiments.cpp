// Table II: the experiment definitions used to compare RUSH against the
// FCFS+EASY baseline inside a 512-node reservation — then every one of
// them run (fanned across the task pool) with a per-experiment summary.
#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/report.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Table II", "Experiments run in the 512-node reservation", opts);

  Table table({"Experiment", "Name", "Applications", "# of Jobs", "Description"});
  for (const auto& spec : core::all_experiments()) {
    const std::string apps = spec.run_apps.size() == 7 ? "All" : str::join(spec.run_apps, ", ");
    table.add_row({spec.code, spec.name, apps, std::to_string(spec.num_jobs),
                   spec.description});
  }
  std::printf("\n%s\n", table.render().c_str());

  const core::ExperimentConfig defaults;
  std::printf("Common setup (paper §VI-A): single 512-node pod; noise job on 1/%d of the\n"
              "nodes sending variable all-to-all traffic; %.0f%% of the queue submitted at\n"
              "t=0 and the rest uniformly over %.0f minutes; %d trials per policy;\n"
              "16 nodes per job unless the experiment scales to {8,16,32}.\n\n",
              defaults.noise_node_stride, 100.0 * defaults.initial_fraction,
              defaults.submit_window_s / 60.0, defaults.trials_per_policy);

  bench::BenchObs obs(opts, "bench_table2_experiments");
  core::ExperimentRunner runner = bench::make_runner(opts, bench::main_corpus(opts), &obs);

  const std::vector<core::ExperimentId> ids{core::ExperimentId::ADAA, core::ExperimentId::ADPA,
                                            core::ExperimentId::PDPA, core::ExperimentId::WS,
                                            core::ExperimentId::SS};
  const auto results = bench::experiments(opts, runner, ids);

  Table run_table({"experiment", "variation runs (fcfs-easy)", "variation runs (rush)",
                   "makespan (fcfs-easy)", "makespan (rush)"});
  for (const auto& result : results) {
    const double var_base = core::mean_total_variation_runs(result.baseline, runner.labeler());
    const double var_rush = core::mean_total_variation_runs(result.rush, runner.labeler());
    run_table.add_row({result.spec.code, Table::num(var_base, 1), Table::num(var_rush, 1),
                       str::format_duration(core::mean_makespan(result.baseline)),
                       str::format_duration(core::mean_makespan(result.rush))});
  }
  std::printf("All five experiments, %d trials/policy each:\n%s\n", opts.trials,
              run_table.render().c_str());
  std::printf("paper shape: RUSH cuts variation runs in every experiment while makespans\n"
              "stay within tens of seconds of FCFS+EASY.\n\n");
  return 0;
}
