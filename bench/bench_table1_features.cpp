// Table I: the dataset schema — input sources, counter counts, and
// feature counts (282 total).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "telemetry/features.hpp"
#include "telemetry/schema.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Table I", "Input data sources and feature counts", opts);

  using telemetry::CounterTable;
  Table table({"Input source", "# Counters", "# Features", "Description"});
  const auto add_counter_row = [&](const char* name, CounterTable t, const char* desc) {
    const auto counters = telemetry::counters_in_table(t);
    table.add_row({name, std::to_string(counters), std::to_string(3 * counters), desc});
  };
  add_counter_row("sysclassib", CounterTable::SysClassIb, "InfiniBand counters");
  add_counter_row("opa_info", CounterTable::OpaInfo, "Omni-Path switch counters");
  add_counter_row("lustre_client", CounterTable::LustreClient, "Lustre client metrics");
  table.add_row({"MPI benchmarks", "3", "9", "Execution time"});
  table.add_row({"Proxy applications", "-", "1", "Compute Intensive"});
  table.add_row({"", "-", "1", "Network Intensive"});
  table.add_row({"", "-", "1", "I/O Intensive"});
  std::printf("\n%s\n", table.render().c_str());

  const auto names = telemetry::FeatureAssembler::feature_names();
  std::printf("Total features: %zu (paper: 282)\n", names.size());
  std::printf("First counter feature: %s\n", names.front().c_str());
  std::printf("First canary feature:  %s\n", names[270].c_str());
  std::printf("One-hot class features: %s, %s, %s\n\n", names[279].c_str(), names[280].c_str(),
              names[281].c_str());
  return 0;
}
