// Headline claims (paper §I and §VII), paper vs measured:
//   - ML models predict variation well (paper: F1 0.95 in CV)
//   - variation runs drop sharply under RUSH (paper: 17 -> 4)
//   - maximum run time improves (paper: up to 5.8%), no outliers added
//   - makespan and wait times are not significantly burdened
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "ml/serialize.hpp"
#include "ml/validation.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Headline summary", "Paper claims vs this reproduction", opts);

  const core::Corpus corpus = bench::main_corpus(opts);
  const core::Labeler labeler(corpus);

  // Best-model CV F1 (AdaBoost, all-node scope, leave-one-app-out).
  const auto dataset = labeler.binary_dataset(corpus, telemetry::AggregationScope::AllNodes);
  const auto folds = ml::leave_one_group_out(dataset.groups());
  const auto adaboost = ml::make_classifier("adaboost");
  const double cv_f1 = ml::cross_validate(*adaboost, dataset, folds).mean_f1();

  bench::BenchObs bench_obs(opts, "bench_headline_summary");
  core::ExperimentRunner runner = bench::make_runner(opts, corpus, &bench_obs);
  const auto adaa = bench::experiment(opts, runner, core::ExperimentId::ADAA);

  const double var_base = core::mean_total_variation_runs(adaa.baseline, runner.labeler());
  const double var_rush = core::mean_total_variation_runs(adaa.rush, runner.labeler());

  double best_improvement = 0.0;
  bool any_regression = false;
  for (const auto& [app, improvement] :
       core::max_runtime_improvement(adaa.baseline, adaa.rush)) {
    best_improvement = std::max(best_improvement, improvement);
    if (improvement < -1.0) any_regression = true;
  }

  const double makespan_base = core::mean_makespan(adaa.baseline);
  const double makespan_rush = core::mean_makespan(adaa.rush);
  double wait_delta = 0.0;
  {
    const auto wb = core::mean_wait_times(adaa.baseline);
    const auto wr = core::mean_wait_times(adaa.rush);
    for (const auto& [app, b] : wb) wait_delta = std::max(wait_delta, wr.at(app) - b);
  }
  double skips = 0.0;
  int threshold_hits = 0;
  for (const auto& trial : adaa.rush) {
    skips += static_cast<double>(trial.total_skips);
    for (const auto& job : trial.jobs)
      if (job.skips >= 10) ++threshold_hits;
  }
  skips /= static_cast<double>(adaa.rush.size());

  Table table({"claim", "paper", "measured"});
  table.add_row({"CV F1 of best model (AdaBoost)", "0.95", Table::num(cv_f1, 2)});
  table.add_row({"variation runs per ADAA trial", "17 -> 4",
                 Table::num(var_base, 1) + " -> " + Table::num(var_rush, 1)});
  table.add_row({"variation reduction", "~76%",
                 Table::num(100.0 * (var_base - var_rush) / var_base, 0) + "%"});
  table.add_row({"best max-run-time improvement", "5.8%", Table::num(best_improvement, 1) + "%"});
  table.add_row({"max-run-time regressions", "none", any_regression ? "SOME" : "none"});
  table.add_row({"makespan delta", "-66 s .. -18 s",
                 Table::num(makespan_rush - makespan_base, 0) + " s"});
  table.add_row({"worst per-app wait increase", "< 60 s", Table::num(wait_delta, 0) + " s"});
  table.add_row({"Algorithm-2 skips per trial", "(threshold 10 never hit)",
                 Table::num(skips, 0) + " (" + std::to_string(threshold_hits) +
                     " jobs at threshold)"});
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
