// Fig. 8: weak-scaling run-time distributions (8/16/32 nodes per job).
// The paper sees the largest spread reduction at 8 and 16 nodes.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/report.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 8", "Weak-scaling run-time distributions (WS experiment)", opts);

  core::ExperimentRunner runner = bench::make_runner(opts, bench::main_corpus(opts));
  const auto result = bench::experiment(opts, runner, core::ExperimentId::WS);

  Table table({"app", "nodes", "fcfs med", "fcfs max", "rush med", "rush max", "max impr."});
  for (const int nodes : result.spec.node_counts) {
    const auto base = core::runtime_summaries(result.baseline, nodes);
    const auto rush = core::runtime_summaries(result.rush, nodes);
    const auto improvement =
        core::max_runtime_improvement(result.baseline, result.rush, nodes);
    for (const auto& [app, b] : base) {
      const auto& r = rush.at(app);
      table.add_row({app, std::to_string(nodes), Table::num(b.median, 1), Table::num(b.max, 1),
                     Table::num(r.median, 1), Table::num(r.max, 1),
                     Table::num(improvement.at(app), 1) + "%"});
    }
  }
  std::printf("\nRun times (seconds) per app and node count:\n%s\n", table.render().c_str());
  std::printf("paper shape: spread/max reduced, most visibly at 8 and 16 nodes; no app's\n"
              "maximum regresses.\n\n");
  return 0;
}
