// Micro-benchmarks of the indexed telemetry store (google-benchmark):
// frame appends under eviction, binary-searched window counting, and the
// prefix-aggregate window queries the feature pipeline issues on every
// oracle evaluation. Part of the perf-baseline harness
// (tools/bench_baseline.py -> BENCH_micro.json).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "cluster/topology.hpp"
#include "common/rng.hpp"
#include "telemetry/schema.hpp"
#include "telemetry/store.hpp"

namespace {

using namespace rush;

constexpr std::size_t kFrames = 512;
constexpr double kTickS = 30.0;

/// One pod of the default machine: 512 nodes.
cluster::NodeSet pod_nodes() {
  cluster::FatTreeConfig cfg;
  cfg.pods = 1;
  return cluster::FatTree(cfg).nodes_in_pod(0);
}

telemetry::CounterStore full_store(Rng& rng, std::size_t frames = kFrames) {
  const auto nodes = pod_nodes();
  telemetry::CounterStore store(nodes, telemetry::num_counters(), frames);
  std::vector<float> frame(nodes.size() * telemetry::num_counters());
  for (std::size_t t = 0; t < frames; ++t) {
    for (auto& v : frame) v = static_cast<float>(rng.uniform());
    store.add_frame(static_cast<double>(t) * kTickS, frame);
  }
  return store;
}

void BM_StoreAddFrameEvicting(benchmark::State& state) {
  Rng rng(21);
  auto store = full_store(rng);  // at capacity: every append evicts
  const auto nodes = pod_nodes();
  std::vector<float> frame(nodes.size() * telemetry::num_counters());
  for (auto& v : frame) v = static_cast<float>(rng.uniform());
  double t = static_cast<double>(kFrames) * kTickS;
  for (auto _ : state) {
    store.add_frame(t, frame);
    t += kTickS;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frame.size()) * state.iterations());
}
BENCHMARK(BM_StoreAddFrameEvicting);

void BM_StoreFramesIn(benchmark::State& state) {
  Rng rng(22);
  const auto store = full_store(rng);
  const double t_end = static_cast<double>(kFrames) * kTickS;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.frames_in(0.25 * t_end, 0.75 * t_end));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreFramesIn);

/// Whole-machine aggregate over a window of `range(0)` frames out of 512.
void BM_StoreAggregateAll(benchmark::State& state) {
  Rng rng(23);
  const auto store = full_store(rng);
  const auto window_frames = static_cast<double>(state.range(0));
  const double t0 = 100.0 * kTickS;
  const double t1 = t0 + (window_frames - 1.0) * kTickS;
  for (auto _ : state) benchmark::DoNotOptimize(store.aggregate_all(t0, t1));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreAggregateAll)->Arg(8)->Arg(64)->Arg(256);

/// 16-node job window aggregate (the per-candidate feature query).
void BM_StoreAggregateNodes(benchmark::State& state) {
  Rng rng(24);
  const auto store = full_store(rng);
  const auto managed = pod_nodes();
  cluster::NodeSet job_nodes(managed.begin() + 64, managed.begin() + 80);
  const double t0 = 400.0 * kTickS;
  const double t1 = 410.0 * kTickS;
  for (auto _ : state) benchmark::DoNotOptimize(store.aggregate_nodes(t0, t1, job_nodes));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreAggregateNodes);

}  // namespace

BENCHMARK_MAIN();
