// Fig. 3: F1 score of each candidate classifier under leave-one-app-out
// cross-validation, comparing all-node vs job-exclusive counter
// aggregation. The paper finds AdaBoost best and the two aggregation
// scopes comparable.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 3",
                      "Classifier F1 (leave-one-application-out CV, binary 1.5-sigma labels)",
                      opts);

  const core::Corpus corpus = bench::main_corpus(opts);
  const core::Labeler labeler(corpus);
  const auto binary =
      labeler.binary_dataset(corpus, telemetry::AggregationScope::AllNodes).class_counts();
  std::printf("label balance: %zu no-variation / %zu variation (%.1f%% positive)\n\n",
              binary[0], binary.size() > 1 ? binary[1] : 0,
              binary.size() > 1
                  ? 100.0 * static_cast<double>(binary[1]) /
                        static_cast<double>(binary[0] + binary[1])
                  : 0.0);

  const auto scores = core::compare_models(corpus, labeler);
  Table table({"model", "F1 (all nodes)", "F1 (job nodes)", "acc (all)", "acc (job)"});
  for (const auto& s : scores) {
    table.add_row({s.model, Table::num(s.f1_all_nodes, 3), Table::num(s.f1_job_nodes, 3),
                   Table::num(s.accuracy_all_nodes, 3), Table::num(s.accuracy_job_nodes, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape: all models F1 >= ~0.9 with AdaBoost best; both scopes comparable.\n");
  std::printf("best model by all-node F1: %s\n\n", core::best_model(scores).c_str());
  return 0;
}
