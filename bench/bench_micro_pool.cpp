// Micro-benchmarks of the task pool: dispatch overhead for the batch
// shapes this repo actually fans out (a handful of heavy bodies), and
// parallel_for scaling at 1/2/4 workers over a fixed amount of work.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/task_pool.hpp"

namespace {

using namespace rush;

/// A deterministic spin of `iters` multiply-xor rounds standing in for a
/// trial/tree-fit body; returns a value so the work cannot be elided.
std::uint64_t burn(std::uint64_t seed, std::size_t iters) {
  std::uint64_t h = seed | 1;
  for (std::size_t i = 0; i < iters; ++i) h = (h * 0x9e3779b97f4a7c15ULL) ^ (h >> 29);
  return h;
}

/// Pure dispatch overhead: empty-ish bodies, so the cost measured is
/// queueing, claiming, and the completion wait.
void BM_PoolDispatchOverhead(benchmark::State& state) {
  TaskPool pool(static_cast<int>(state.range(0)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  std::vector<std::uint64_t> out(n, 0);
  for (auto _ : state) {
    pool.parallel_for_indexed(n, [&](std::size_t i) { out[i] = i; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PoolDispatchOverhead)
    ->Args({1, 10})
    ->Args({4, 10})
    ->Args({4, 256})
    ->Unit(benchmark::kMicrosecond);

/// Fixed total work split over 10 tasks (the 2 x 5-trial experiment
/// shape), at pool widths 1/2/4. On a multi-core host ns_per_op should
/// fall roughly linearly with width; bench_baseline.py derives
/// trial_parallel_speedup from the 1-vs-4 ratio.
void BM_PoolScaling(benchmark::State& state) {
  TaskPool pool(static_cast<int>(state.range(0)));
  constexpr std::size_t kTasks = 10;
  constexpr std::size_t kItersPerTask = 400'000;
  std::vector<std::uint64_t> out(kTasks, 0);
  for (auto _ : state) {
    pool.parallel_for_indexed(kTasks, [&](std::size_t i) { out[i] = burn(i + 1, kItersPerTask); });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PoolScaling)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// The serial inline path (jobs == 1) against a hand-rolled loop — the
/// pool must cost nothing when parallelism is off.
void BM_PoolSerialInlineVsRawLoop(benchmark::State& state) {
  const bool use_pool = state.range(0) != 0;
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kItersPerTask = 2'000;
  std::vector<std::uint64_t> out(kTasks, 0);
  TaskPool pool(1);
  for (auto _ : state) {
    if (use_pool) {
      pool.parallel_for_indexed(kTasks,
                                [&](std::size_t i) { out[i] = burn(i + 1, kItersPerTask); });
    } else {
      for (std::size_t i = 0; i < kTasks; ++i) out[i] = burn(i + 1, kItersPerTask);
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PoolSerialInlineVsRawLoop)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Nested dispatch (experiment -> trial -> forest fit shape): the inner
/// dispatches run inline on workers, so this measures that the nesting
/// guard adds no queue traffic.
void BM_PoolNestedDispatch(benchmark::State& state) {
  TaskPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 32;
  std::vector<std::uint64_t> out(kOuter * kInner, 0);
  for (auto _ : state) {
    pool.parallel_for_indexed(kOuter, [&](std::size_t o) {
      pool.parallel_for_indexed(
          kInner, [&](std::size_t i) { out[o * kInner + i] = burn(o * kInner + i + 1, 500); });
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PoolNestedDispatch)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
