// Micro-benchmarks of the simulation substrate (google-benchmark):
// event-queue throughput, contention-model recomputation, canary probes,
// allocator churn, and counter-frame synthesis. Also times the
// alternative slowdown models called out as an ablation in DESIGN.md.
#include <benchmark/benchmark.h>

#include "cluster/allocator.hpp"
#include "cluster/congestion.hpp"
#include "cluster/network.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/schema.hpp"

namespace {

using namespace rush;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    Rng rng(1);
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < n; ++i)
      engine.schedule_at(rng.uniform(0.0, 1000.0), [&fired] { ++fired; });
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EnginePeriodicTasks(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t fired = 0;
    for (int i = 0; i < 16; ++i)
      engine.schedule_periodic(0.0, 30.0, [&fired] { ++fired; });
    engine.run_until(36000.0);
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EnginePeriodicTasks);

cluster::FatTree pod_tree() {
  cluster::FatTreeConfig cfg;
  cfg.pods = 1;
  return cluster::FatTree(cfg);
}

void BM_NetworkRecompute(benchmark::State& state) {
  const auto tree = pod_tree();
  cluster::NetworkModel net(tree);
  Rng rng(2);
  const auto jobs = static_cast<int>(state.range(0));
  for (int j = 0; j < jobs; ++j) {
    cluster::NodeSet nodes;
    const auto base = static_cast<cluster::NodeId>(rng.uniform_int(0, tree.num_nodes() - 17));
    for (int i = 0; i < 16; ++i) nodes.push_back(base + i);
    net.add_source(static_cast<cluster::SourceId>(j) + 1, nodes, 0.5,
                   cluster::TrafficPattern::AllToAll);
  }
  for (auto _ : state) {
    // Rate change dirties the model; the query forces a full recompute.
    net.set_rate(1, 0.4 + 0.2 * rng.uniform());
    benchmark::DoNotOptimize(net.slowdown(1));
  }
}
BENCHMARK(BM_NetworkRecompute)->Arg(4)->Arg(16)->Arg(30);

void BM_ProbeSlowdown(benchmark::State& state) {
  const auto tree = pod_tree();
  cluster::NetworkModel net(tree);
  Rng rng(3);
  for (int j = 0; j < 30; ++j) {
    cluster::NodeSet nodes;
    const auto base = static_cast<cluster::NodeId>(rng.uniform_int(0, tree.num_nodes() - 17));
    for (int i = 0; i < 16; ++i) nodes.push_back(base + i);
    net.add_source(static_cast<cluster::SourceId>(j) + 1, nodes, 0.5,
                   cluster::TrafficPattern::AllToAll);
  }
  cluster::NodeSet probe;
  for (int i = 0; i < 16; ++i) probe.push_back(100 + i);
  for (auto _ : state) benchmark::DoNotOptimize(net.probe_slowdown(probe, 0.8));
}
BENCHMARK(BM_ProbeSlowdown);

void BM_CongestionCurve(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state)
    benchmark::DoNotOptimize(cluster::congestion_slowdown(rng.uniform(0.0, 2.0)));
}
BENCHMARK(BM_CongestionCurve);

/// Ablation: hard-threshold slowdown (max(1, u)) vs the smooth curve —
/// same query cost, radically different onset (see DESIGN.md §4.1).
void BM_HardThresholdCurve(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    const double u = rng.uniform(0.0, 2.0);
    benchmark::DoNotOptimize(u > 1.0 ? u : 1.0);
  }
}
BENCHMARK(BM_HardThresholdCurve);

void BM_AllocatorChurn(benchmark::State& state) {
  cluster::NodeSet managed;
  for (cluster::NodeId n = 0; n < 480; ++n) managed.push_back(n);
  Rng rng(5);
  for (auto _ : state) {
    cluster::NodeAllocator alloc(managed);
    std::vector<cluster::NodeSet> live;
    for (int step = 0; step < 200; ++step) {
      if (!live.empty() && (rng.bernoulli(0.5) || !alloc.can_allocate(16))) {
        alloc.release(live.back());
        live.pop_back();
      } else if (auto got = alloc.allocate(16)) {
        live.push_back(std::move(*got));
      }
    }
    benchmark::DoNotOptimize(alloc.free_count());
  }
}
BENCHMARK(BM_AllocatorChurn);

void BM_CounterFrameSynthesis(benchmark::State& state) {
  const auto tree = pod_tree();
  cluster::NetworkModel net(tree);
  cluster::LustreModel fs(480.0);
  sim::Engine engine;
  telemetry::CounterStore store(tree.nodes_in_pod(0), telemetry::num_counters(), 4);
  telemetry::CounterSampler sampler(engine, net, fs, store, telemetry::SamplerConfig{}, Rng(6));
  for (auto _ : state) sampler.sample_now();
  state.SetItemsProcessed(static_cast<std::int64_t>(512 * telemetry::num_counters()) *
                          state.iterations());
}
BENCHMARK(BM_CounterFrameSynthesis);

void BM_WindowAggregation(benchmark::State& state) {
  const auto tree = pod_tree();
  telemetry::CounterStore store(tree.nodes_in_pod(0), telemetry::num_counters(), 12);
  Rng rng(7);
  std::vector<float> frame(512 * telemetry::num_counters());
  for (int t = 0; t < 10; ++t) {
    for (auto& v : frame) v = static_cast<float>(rng.uniform());
    store.add_frame(static_cast<double>(t) * 30.0, frame);
  }
  cluster::NodeSet job_nodes;
  for (int i = 0; i < 16; ++i) job_nodes.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.aggregate_all(0.0, 300.0));
    benchmark::DoNotOptimize(store.aggregate_nodes(0.0, 300.0, job_nodes));
  }
}
BENCHMARK(BM_WindowAggregation);

}  // namespace

BENCHMARK_MAIN();
