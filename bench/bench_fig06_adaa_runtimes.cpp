// Fig. 6: run-time distribution per application in the ADAA experiment.
// RUSH shrinks the maximum and the spread while medians stay put.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/report.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 6", "Run-time distributions per app, ADAA", opts);

  core::ExperimentRunner runner = bench::make_runner(opts, bench::main_corpus(opts));
  const auto result = bench::experiment(opts, runner, core::ExperimentId::ADAA);

  const auto base = core::runtime_summaries(result.baseline);
  const auto rush = core::runtime_summaries(result.rush);

  Table table({"app", "policy", "n", "min", "q1", "median", "q3", "max"});
  for (const auto& [app, b] : base) {
    const auto& r = rush.at(app);
    table.add_row({app, "fcfs-easy", std::to_string(b.n), Table::num(b.min, 1),
                   Table::num(b.q1, 1), Table::num(b.median, 1), Table::num(b.q3, 1),
                   Table::num(b.max, 1)});
    table.add_row({"", "rush", std::to_string(r.n), Table::num(r.min, 1), Table::num(r.q1, 1),
                   Table::num(r.median, 1), Table::num(r.q3, 1), Table::num(r.max, 1)});
  }
  std::printf("\nRun times (seconds), pooled over trials:\n%s\n", table.render().c_str());

  Table deltas({"app", "max fcfs", "max rush", "improvement"});
  for (const auto& [app, improvement] :
       core::max_runtime_improvement(result.baseline, result.rush)) {
    deltas.add_row({app, Table::num(base.at(app).max, 1), Table::num(rush.at(app).max, 1),
                    Table::num(improvement, 1) + "%"});
  }
  std::printf("Maximum run-time improvement (paper: up to 5.8%%, no app regresses in WS/SS):\n%s\n",
              deltas.render().c_str());
  return 0;
}
