// Ablation: the paper claims the RUSH modification composes with other
// queue-ordering policies ("One common example is Shortest Job First").
// Run ADAA under FCFS+EASY and SJF+EASY, each with and without RUSH.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/task_pool.hpp"
#include "core/report.hpp"

using namespace rush;

int main(int argc, char** argv) {
  auto opts = bench::parse_options(argc, argv);
  if (opts.trials == 5) opts.trials = 3;
  bench::print_banner("Ablation", "RUSH composed with FCFS vs SJF queue ordering", opts);

  const core::Corpus corpus = bench::main_corpus(opts);
  core::ExperimentSpec spec = core::experiment_spec(core::ExperimentId::ADAA);

  // Both policy variants fan across the task pool into index-addressed
  // slots; rendering below stays serial (and ordered).
  const std::vector<std::string> policies{"fcfs", "sjf"};
  std::vector<core::ExperimentResult> results(policies.size());
  std::vector<std::unique_ptr<core::ExperimentRunner>> runners(policies.size());
  parallel_for_indexed(opts.jobs, policies.size(), [&](std::size_t i) {
    core::ExperimentConfig config;
    config.trials_per_policy = opts.trials;
    config.main_policy = policies[i];
    config.backfill_policy = policies[i];
    runners[i] = std::make_unique<core::ExperimentRunner>(corpus, config);
    results[i] = runners[i]->run(spec);
  });

  Table table({"scheduler", "variation runs", "makespan", "mean wait (s)"});
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const std::string& policy = policies[i];
    const core::ExperimentRunner& runner = *runners[i];
    const core::ExperimentResult& result = results[i];

    auto mean_wait = [](const std::vector<core::TrialResult>& trials) {
      double total = 0.0;
      std::size_t n = 0;
      for (const auto& trial : trials)
        for (const auto& job : trial.jobs) {
          total += job.wait_s;
          ++n;
        }
      return total / static_cast<double>(n);
    };
    table.add_row({policy + "+easy",
                   Table::num(core::mean_total_variation_runs(result.baseline,
                                                              runner.labeler()), 1),
                   Table::num(core::mean_makespan(result.baseline), 0) + " s",
                   Table::num(mean_wait(result.baseline), 1)});
    table.add_row({policy + "+easy+rush",
                   Table::num(core::mean_total_variation_runs(result.rush, runner.labeler()), 1),
                   Table::num(core::mean_makespan(result.rush), 0) + " s",
                   Table::num(mean_wait(result.rush), 1)});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("The Algorithm-2 hook reduces variation under either ordering policy — it is\n"
              "orthogonal to how R1 sorts the queue, as the paper argues (§IV-B).\n\n");
  return 0;
}
