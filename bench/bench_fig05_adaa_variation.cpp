// Fig. 5: number of runs with significant variation per application in
// the ADAA experiment, FCFS+EASY vs RUSH. The paper's headline: totals
// drop from ~17 to ~4 per trial, with the most variation-prone apps
// (Laghos, LBANN) near zero under RUSH.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/report.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 5", "Runs with significant variation (z > 1.5 sigma), ADAA", opts);

  core::ExperimentRunner runner = bench::make_runner(opts, bench::main_corpus(opts));
  const auto result = bench::experiment(opts, runner, core::ExperimentId::ADAA);

  const auto base = core::mean_variation_runs(result.baseline, runner.labeler());
  const auto rush = core::mean_variation_runs(result.rush, runner.labeler());

  Table table({"app", "FCFS+EASY", "RUSH", "reduction"});
  for (const auto& [app, count] : base) {
    const double r = rush.count(app) != 0 ? rush.at(app) : 0.0;
    table.add_row({app, Table::num(count, 1), Table::num(r, 1), Table::num(count - r, 1)});
  }
  const double total_base = core::mean_total_variation_runs(result.baseline, runner.labeler());
  const double total_rush = core::mean_total_variation_runs(result.rush, runner.labeler());
  table.add_row({"TOTAL", Table::num(total_base, 1), Table::num(total_rush, 1),
                 Table::num(total_base - total_rush, 1)});
  std::printf("\nMean runs with variation per trial (of %d jobs):\n%s\n",
              result.spec.num_jobs, table.render().c_str());
  std::printf("paper shape: per-app 1.5-3.5 -> 0-1.5; total 17 -> 4.\n");
  std::printf("measured: total %.1f -> %.1f (%.0f%% reduction)\n\n", total_base, total_rush,
              100.0 * (total_base - total_rush) / total_base);
  return 0;
}
