// Ablation of the RUSH design knobs called out in DESIGN.md §4:
//   - skip placement: Front ("remains at the top", the prose reading of
//     Algorithm 2) vs AfterFront ("push j after front", the pseudocode)
//   - delaying on "little variation" in addition to "variation"
//   - the skip threshold (10 in the paper)
// Each variant runs the ADAA workload with paired seeds against the same
// baseline.
#include <cstdio>
#include <iterator>
#include <memory>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/task_pool.hpp"
#include "core/report.hpp"

using namespace rush;

namespace {

struct Variant {
  const char* name;
  sched::SkipPlacement placement = sched::SkipPlacement::Front;
  bool delay_little = false;
  int skip_threshold = 10;
};

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::parse_options(argc, argv);
  // Ablations are exploratory: default to 3 trials to keep runtime modest.
  if (opts.trials == 5) opts.trials = 3;
  bench::print_banner("Ablation", "RUSH knobs: skip placement, delay set, skip threshold", opts);

  const core::Corpus corpus = bench::main_corpus(opts);
  core::ExperimentSpec spec = core::experiment_spec(core::ExperimentId::ADAA);

  const Variant variants[] = {
      {"paper default (Front, strict, 10)"},
      {"AfterFront placement", sched::SkipPlacement::AfterFront, false, 10},
      {"delay on little variation too", sched::SkipPlacement::Front, true, 10},
      {"skip threshold 3", sched::SkipPlacement::Front, false, 3},
      {"skip threshold 30", sched::SkipPlacement::Front, false, 30},
  };

  // Variants fan across the task pool into index-addressed slots; the
  // table renders serially afterwards, so row order is stable.
  constexpr std::size_t kVariants = std::size(variants);
  std::vector<core::ExperimentResult> results(kVariants);
  std::vector<std::unique_ptr<core::ExperimentRunner>> runners(kVariants);
  parallel_for_indexed(opts.jobs, kVariants, [&](std::size_t i) {
    const Variant& v = variants[i];
    core::ExperimentConfig config;
    config.trials_per_policy = opts.trials;
    config.skip_placement = v.placement;
    config.delay_on_little_variation = v.delay_little;
    config.skip_threshold = v.skip_threshold;
    runners[i] = std::make_unique<core::ExperimentRunner>(corpus, config);
    results[i] = runners[i]->run(spec);
  });

  Table table({"variant", "variation (fcfs)", "variation (rush)", "makespan delta", "skips"});
  for (std::size_t i = 0; i < kVariants; ++i) {
    const Variant& v = variants[i];
    const core::ExperimentResult& result = results[i];

    const double var_base =
        core::mean_total_variation_runs(result.baseline, runners[i]->labeler());
    const double var_rush = core::mean_total_variation_runs(result.rush, runners[i]->labeler());
    double skips = 0.0;
    for (const auto& trial : result.rush) skips += static_cast<double>(trial.total_skips);
    skips /= static_cast<double>(result.rush.size());
    const double delta =
        core::mean_makespan(result.rush) - core::mean_makespan(result.baseline);
    table.add_row({v.name, Table::num(var_base, 1), Table::num(var_rush, 1),
                   Table::num(delta, 0) + " s", Table::num(skips, 0)});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("Expected reading: placement barely matters (the queue is re-examined every\n"
              "pass); delaying on 'little variation' trades waits for a bit more reduction;\n"
              "a tiny skip threshold launches into congestion, a huge one stretches waits.\n\n");
  return 0;
}
