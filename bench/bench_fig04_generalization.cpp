// Fig. 4: generalization to unseen applications. ADPA runs {Laghos,
// LBANN, PENNANT} with a model trained on all data; PDPA runs the same
// workload with a model trained ONLY on {AMG, Kripke, sw4lite, SWFFT}.
// The paper finds only a slight increase in variation under PDPA.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/report.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 4", "Variation runs with full (ADPA) vs partial (PDPA) training",
                      opts);

  core::ExperimentRunner runner = bench::make_runner(opts, bench::main_corpus(opts));
  const auto adpa = bench::experiment(opts, runner, core::ExperimentId::ADPA);
  const auto pdpa = bench::experiment(opts, runner, core::ExperimentId::PDPA);

  Table table({"app", "ADPA fcfs", "ADPA rush", "PDPA fcfs", "PDPA rush"});
  const auto adpa_base = core::mean_variation_runs(adpa.baseline, runner.labeler());
  const auto adpa_rush = core::mean_variation_runs(adpa.rush, runner.labeler());
  const auto pdpa_base = core::mean_variation_runs(pdpa.baseline, runner.labeler());
  const auto pdpa_rush = core::mean_variation_runs(pdpa.rush, runner.labeler());
  for (const auto& [app, count] : adpa_base) {
    auto get = [&](const std::map<std::string, double>& m) {
      const auto it = m.find(app);
      return it == m.end() ? 0.0 : it->second;
    };
    table.add_row({app, Table::num(count, 1), Table::num(get(adpa_rush), 1),
                   Table::num(get(pdpa_base), 1), Table::num(get(pdpa_rush), 1)});
  }
  auto total = [&](const std::vector<core::TrialResult>& t) {
    return core::mean_total_variation_runs(t, runner.labeler());
  };
  table.add_row({"TOTAL", Table::num(total(adpa.baseline), 1), Table::num(total(adpa.rush), 1),
                 Table::num(total(pdpa.baseline), 1), Table::num(total(pdpa.rush), 1)});
  std::printf("\nMean variation runs per trial (150 jobs over Laghos/LBANN/PENNANT):\n%s\n",
              table.render().c_str());
  std::printf("paper shape: RUSH reduces variation in both; PDPA only slightly worse than\n"
              "ADPA, i.e. the model generalizes to applications it never trained on.\n\n");
  return 0;
}
