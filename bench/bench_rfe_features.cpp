// Feature selection (paper §IV-A): recursive feature elimination on the
// selected model, reporting the F1-vs-feature-count curve and which
// counter families survive. The paper keeps "the set with the highest F1
// score".
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "ml/rfe.hpp"
#include "ml/serialize.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Feature selection", "Recursive feature elimination on the 282 features",
                      opts);

  const core::Corpus corpus = bench::main_corpus(opts);
  const core::Labeler labeler(corpus);
  const ml::Dataset binary =
      labeler.binary_dataset(corpus, telemetry::AggregationScope::AllNodes);

  // Trees expose native importances; the paper runs RFE on those models.
  const auto prototype = ml::make_classifier("decision_forest");
  ml::RfeConfig cfg;
  cfg.min_features = 12;
  cfg.step_fraction = 0.25;
  cfg.cv_folds = 4;
  const ml::RfeResult result = ml::recursive_feature_elimination(*prototype, binary, cfg);

  Table curve({"features kept", "CV F1"});
  for (const auto& round : result.history)
    curve.add_row({std::to_string(round.num_features), Table::num(round.cv_f1, 3)});
  std::printf("\nElimination curve:\n%s\n", curve.render().c_str());
  std::printf("best set: %zu features, F1 %.3f\n\n", result.selected.size(), result.best_f1);

  // Which feature families survive?
  const auto names = telemetry::FeatureAssembler::feature_names();
  std::map<std::string, int> families;
  for (const std::size_t f : result.selected) {
    const std::string& name = names[f];
    std::string family = "workload class";
    if (name.find("sysclassib") != std::string::npos) family = "sysclassib";
    else if (name.find("opa_info") != std::string::npos) family = "opa_info";
    else if (name.find("lustre_client") != std::string::npos) family = "lustre_client";
    else if (str::starts_with(name, "canary_")) family = "MPI canary";
    ++families[family];
  }
  Table fam({"family", "selected features"});
  for (const auto& [family, count] : families) fam.add_row({family, std::to_string(count)});
  std::printf("Surviving feature families:\n%s\n", fam.render().c_str());
  return 0;
}
