// Fig. 11: mean wait time per application in ADAA, for the 80% of jobs
// submitted after the experiment start. RUSH spreads waits out — the
// variation-prone apps wait longer (they get pushed back), the
// compute-bound ones sometimes less.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/report.hpp"

using namespace rush;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_banner("Figure 11", "Mean wait time per app, ADAA (later 80% of jobs)", opts);

  core::ExperimentRunner runner = bench::make_runner(opts, bench::main_corpus(opts));
  const auto result = bench::experiment(opts, runner, core::ExperimentId::ADAA);

  const auto base = core::mean_wait_times(result.baseline, /*exclude_initial=*/true);
  const auto rush = core::mean_wait_times(result.rush, /*exclude_initial=*/true);
  Table table({"app", "fcfs-easy (s)", "rush (s)", "delta (s)"});
  for (const auto& [app, b] : base) {
    const double r = rush.at(app);
    table.add_row({app, Table::num(b, 1), Table::num(r, 1), Table::num(r - b, 1)});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("paper shape: RUSH waits vary more and skew higher for variation-prone apps\n"
              "(Laghos, sw4lite, LBANN) that get pushed back in the queue.\n\n");
  return 0;
}
