# Sanitizer toggles (layer 1 of the correctness harness).
#
# RUSH_SANITIZE is a comma- or semicolon-separated subset of
# {address, undefined, thread}; thread cannot be combined with address.
# Flags are applied globally so every library, test, bench, and example
# target — including gtest test discovery, which executes the binaries at
# build time — runs instrumented. Use via the presets:
#   cmake --preset asan-ubsan && cmake --build --preset asan-ubsan
#   ctest --preset asan-ubsan

set(RUSH_SANITIZE "" CACHE STRING
    "Sanitizers to enable: comma-separated subset of address,undefined,thread")

function(rush_enable_sanitizers)
  if(NOT RUSH_SANITIZE)
    return()
  endif()

  string(REPLACE "," ";" _rush_san_list "${RUSH_SANITIZE}")
  set(_rush_san_flags "")
  foreach(_san IN LISTS _rush_san_list)
    string(STRIP "${_san}" _san)
    if(_san STREQUAL "address")
      list(APPEND _rush_san_flags -fsanitize=address -fno-omit-frame-pointer)
    elseif(_san STREQUAL "undefined")
      list(APPEND _rush_san_flags -fsanitize=undefined -fno-sanitize-recover=undefined)
    elseif(_san STREQUAL "thread")
      list(APPEND _rush_san_flags -fsanitize=thread)
    else()
      message(FATAL_ERROR "RUSH_SANITIZE: unknown sanitizer '${_san}' "
                          "(expected address, undefined, or thread)")
    endif()
  endforeach()

  if("address" IN_LIST _rush_san_list AND "thread" IN_LIST _rush_san_list)
    message(FATAL_ERROR "RUSH_SANITIZE: address and thread sanitizers are mutually exclusive")
  endif()

  list(REMOVE_DUPLICATES _rush_san_flags)
  message(STATUS "RUSH: sanitizers enabled: ${RUSH_SANITIZE}")
  add_compile_options(${_rush_san_flags})
  add_link_options(${_rush_san_flags})
endfunction()

rush_enable_sanitizers()
