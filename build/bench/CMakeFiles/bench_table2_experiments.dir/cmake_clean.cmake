file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_experiments.dir/bench_table2_experiments.cpp.o"
  "CMakeFiles/bench_table2_experiments.dir/bench_table2_experiments.cpp.o.d"
  "bench_table2_experiments"
  "bench_table2_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
