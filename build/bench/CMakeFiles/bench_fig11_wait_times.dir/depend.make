# Empty dependencies file for bench_fig11_wait_times.
# This may be replaced when dependencies are built.
