file(REMOVE_RECURSE
  "CMakeFiles/rush_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/rush_bench_common.dir/bench_common.cpp.o.d"
  "librush_bench_common.a"
  "librush_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
