file(REMOVE_RECURSE
  "librush_bench_common.a"
)
