# Empty dependencies file for rush_bench_common.
# This may be replaced when dependencies are built.
