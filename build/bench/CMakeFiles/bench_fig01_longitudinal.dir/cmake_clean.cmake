file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_longitudinal.dir/bench_fig01_longitudinal.cpp.o"
  "CMakeFiles/bench_fig01_longitudinal.dir/bench_fig01_longitudinal.cpp.o.d"
  "bench_fig01_longitudinal"
  "bench_fig01_longitudinal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_longitudinal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
