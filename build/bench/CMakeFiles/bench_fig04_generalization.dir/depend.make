# Empty dependencies file for bench_fig04_generalization.
# This may be replaced when dependencies are built.
