# Empty dependencies file for bench_fig10_makespan.
# This may be replaced when dependencies are built.
