file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_makespan.dir/bench_fig10_makespan.cpp.o"
  "CMakeFiles/bench_fig10_makespan.dir/bench_fig10_makespan.cpp.o.d"
  "bench_fig10_makespan"
  "bench_fig10_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
