# Empty dependencies file for bench_fig07_pdpa_runtimes.
# This may be replaced when dependencies are built.
