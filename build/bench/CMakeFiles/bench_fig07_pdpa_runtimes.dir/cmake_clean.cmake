file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_pdpa_runtimes.dir/bench_fig07_pdpa_runtimes.cpp.o"
  "CMakeFiles/bench_fig07_pdpa_runtimes.dir/bench_fig07_pdpa_runtimes.cpp.o.d"
  "bench_fig07_pdpa_runtimes"
  "bench_fig07_pdpa_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_pdpa_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
