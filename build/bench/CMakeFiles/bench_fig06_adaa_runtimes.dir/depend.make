# Empty dependencies file for bench_fig06_adaa_runtimes.
# This may be replaced when dependencies are built.
