file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_adaa_runtimes.dir/bench_fig06_adaa_runtimes.cpp.o"
  "CMakeFiles/bench_fig06_adaa_runtimes.dir/bench_fig06_adaa_runtimes.cpp.o.d"
  "bench_fig06_adaa_runtimes"
  "bench_fig06_adaa_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_adaa_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
