file(REMOVE_RECURSE
  "CMakeFiles/bench_rfe_features.dir/bench_rfe_features.cpp.o"
  "CMakeFiles/bench_rfe_features.dir/bench_rfe_features.cpp.o.d"
  "bench_rfe_features"
  "bench_rfe_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rfe_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
