# Empty dependencies file for bench_rfe_features.
# This may be replaced when dependencies are built.
