# Empty dependencies file for bench_fig05_adaa_variation.
# This may be replaced when dependencies are built.
