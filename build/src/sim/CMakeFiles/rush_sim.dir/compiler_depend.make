# Empty compiler generated dependencies file for rush_sim.
# This may be replaced when dependencies are built.
