file(REMOVE_RECURSE
  "CMakeFiles/rush_sim.dir/engine.cpp.o"
  "CMakeFiles/rush_sim.dir/engine.cpp.o.d"
  "librush_sim.a"
  "librush_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
