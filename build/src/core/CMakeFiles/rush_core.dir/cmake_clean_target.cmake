file(REMOVE_RECURSE
  "librush_core.a"
)
