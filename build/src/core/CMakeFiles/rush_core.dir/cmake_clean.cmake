file(REMOVE_RECURSE
  "CMakeFiles/rush_core.dir/collector.cpp.o"
  "CMakeFiles/rush_core.dir/collector.cpp.o.d"
  "CMakeFiles/rush_core.dir/corpus.cpp.o"
  "CMakeFiles/rush_core.dir/corpus.cpp.o.d"
  "CMakeFiles/rush_core.dir/environment.cpp.o"
  "CMakeFiles/rush_core.dir/environment.cpp.o.d"
  "CMakeFiles/rush_core.dir/experiment.cpp.o"
  "CMakeFiles/rush_core.dir/experiment.cpp.o.d"
  "CMakeFiles/rush_core.dir/labeler.cpp.o"
  "CMakeFiles/rush_core.dir/labeler.cpp.o.d"
  "CMakeFiles/rush_core.dir/pipeline.cpp.o"
  "CMakeFiles/rush_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/rush_core.dir/report.cpp.o"
  "CMakeFiles/rush_core.dir/report.cpp.o.d"
  "CMakeFiles/rush_core.dir/result_io.cpp.o"
  "CMakeFiles/rush_core.dir/result_io.cpp.o.d"
  "CMakeFiles/rush_core.dir/rush_oracle.cpp.o"
  "CMakeFiles/rush_core.dir/rush_oracle.cpp.o.d"
  "CMakeFiles/rush_core.dir/session.cpp.o"
  "CMakeFiles/rush_core.dir/session.cpp.o.d"
  "CMakeFiles/rush_core.dir/swf.cpp.o"
  "CMakeFiles/rush_core.dir/swf.cpp.o.d"
  "librush_core.a"
  "librush_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
