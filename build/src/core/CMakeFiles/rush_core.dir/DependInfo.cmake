
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collector.cpp" "src/core/CMakeFiles/rush_core.dir/collector.cpp.o" "gcc" "src/core/CMakeFiles/rush_core.dir/collector.cpp.o.d"
  "/root/repo/src/core/corpus.cpp" "src/core/CMakeFiles/rush_core.dir/corpus.cpp.o" "gcc" "src/core/CMakeFiles/rush_core.dir/corpus.cpp.o.d"
  "/root/repo/src/core/environment.cpp" "src/core/CMakeFiles/rush_core.dir/environment.cpp.o" "gcc" "src/core/CMakeFiles/rush_core.dir/environment.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/rush_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/rush_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/labeler.cpp" "src/core/CMakeFiles/rush_core.dir/labeler.cpp.o" "gcc" "src/core/CMakeFiles/rush_core.dir/labeler.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/rush_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/rush_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/rush_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/rush_core.dir/report.cpp.o.d"
  "/root/repo/src/core/result_io.cpp" "src/core/CMakeFiles/rush_core.dir/result_io.cpp.o" "gcc" "src/core/CMakeFiles/rush_core.dir/result_io.cpp.o.d"
  "/root/repo/src/core/rush_oracle.cpp" "src/core/CMakeFiles/rush_core.dir/rush_oracle.cpp.o" "gcc" "src/core/CMakeFiles/rush_core.dir/rush_oracle.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/rush_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/rush_core.dir/session.cpp.o.d"
  "/root/repo/src/core/swf.cpp" "src/core/CMakeFiles/rush_core.dir/swf.cpp.o" "gcc" "src/core/CMakeFiles/rush_core.dir/swf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rush_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rush_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rush_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/rush_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/rush_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rush_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rush_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
