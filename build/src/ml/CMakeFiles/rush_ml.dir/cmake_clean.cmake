file(REMOVE_RECURSE
  "CMakeFiles/rush_ml.dir/adaboost.cpp.o"
  "CMakeFiles/rush_ml.dir/adaboost.cpp.o.d"
  "CMakeFiles/rush_ml.dir/dataset.cpp.o"
  "CMakeFiles/rush_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/rush_ml.dir/forest.cpp.o"
  "CMakeFiles/rush_ml.dir/forest.cpp.o.d"
  "CMakeFiles/rush_ml.dir/knn.cpp.o"
  "CMakeFiles/rush_ml.dir/knn.cpp.o.d"
  "CMakeFiles/rush_ml.dir/metrics.cpp.o"
  "CMakeFiles/rush_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/rush_ml.dir/rfe.cpp.o"
  "CMakeFiles/rush_ml.dir/rfe.cpp.o.d"
  "CMakeFiles/rush_ml.dir/scaler.cpp.o"
  "CMakeFiles/rush_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/rush_ml.dir/serialize.cpp.o"
  "CMakeFiles/rush_ml.dir/serialize.cpp.o.d"
  "CMakeFiles/rush_ml.dir/tree.cpp.o"
  "CMakeFiles/rush_ml.dir/tree.cpp.o.d"
  "CMakeFiles/rush_ml.dir/validation.cpp.o"
  "CMakeFiles/rush_ml.dir/validation.cpp.o.d"
  "librush_ml.a"
  "librush_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
