file(REMOVE_RECURSE
  "librush_ml.a"
)
