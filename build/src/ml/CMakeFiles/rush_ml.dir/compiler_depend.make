# Empty compiler generated dependencies file for rush_ml.
# This may be replaced when dependencies are built.
