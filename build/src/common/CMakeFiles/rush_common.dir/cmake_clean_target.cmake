file(REMOVE_RECURSE
  "librush_common.a"
)
