file(REMOVE_RECURSE
  "CMakeFiles/rush_common.dir/csv.cpp.o"
  "CMakeFiles/rush_common.dir/csv.cpp.o.d"
  "CMakeFiles/rush_common.dir/rng.cpp.o"
  "CMakeFiles/rush_common.dir/rng.cpp.o.d"
  "CMakeFiles/rush_common.dir/stats.cpp.o"
  "CMakeFiles/rush_common.dir/stats.cpp.o.d"
  "CMakeFiles/rush_common.dir/strings.cpp.o"
  "CMakeFiles/rush_common.dir/strings.cpp.o.d"
  "CMakeFiles/rush_common.dir/table.cpp.o"
  "CMakeFiles/rush_common.dir/table.cpp.o.d"
  "librush_common.a"
  "librush_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
