file(REMOVE_RECURSE
  "CMakeFiles/rush.dir/main.cpp.o"
  "CMakeFiles/rush.dir/main.cpp.o.d"
  "rush"
  "rush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
