# Empty compiler generated dependencies file for rush.
# This may be replaced when dependencies are built.
