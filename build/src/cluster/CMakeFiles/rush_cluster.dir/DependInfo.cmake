
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/allocator.cpp" "src/cluster/CMakeFiles/rush_cluster.dir/allocator.cpp.o" "gcc" "src/cluster/CMakeFiles/rush_cluster.dir/allocator.cpp.o.d"
  "/root/repo/src/cluster/background.cpp" "src/cluster/CMakeFiles/rush_cluster.dir/background.cpp.o" "gcc" "src/cluster/CMakeFiles/rush_cluster.dir/background.cpp.o.d"
  "/root/repo/src/cluster/lustre.cpp" "src/cluster/CMakeFiles/rush_cluster.dir/lustre.cpp.o" "gcc" "src/cluster/CMakeFiles/rush_cluster.dir/lustre.cpp.o.d"
  "/root/repo/src/cluster/network.cpp" "src/cluster/CMakeFiles/rush_cluster.dir/network.cpp.o" "gcc" "src/cluster/CMakeFiles/rush_cluster.dir/network.cpp.o.d"
  "/root/repo/src/cluster/topology.cpp" "src/cluster/CMakeFiles/rush_cluster.dir/topology.cpp.o" "gcc" "src/cluster/CMakeFiles/rush_cluster.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rush_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rush_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
