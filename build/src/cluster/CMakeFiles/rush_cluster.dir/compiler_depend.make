# Empty compiler generated dependencies file for rush_cluster.
# This may be replaced when dependencies are built.
