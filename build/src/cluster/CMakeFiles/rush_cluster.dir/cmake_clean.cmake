file(REMOVE_RECURSE
  "CMakeFiles/rush_cluster.dir/allocator.cpp.o"
  "CMakeFiles/rush_cluster.dir/allocator.cpp.o.d"
  "CMakeFiles/rush_cluster.dir/background.cpp.o"
  "CMakeFiles/rush_cluster.dir/background.cpp.o.d"
  "CMakeFiles/rush_cluster.dir/lustre.cpp.o"
  "CMakeFiles/rush_cluster.dir/lustre.cpp.o.d"
  "CMakeFiles/rush_cluster.dir/network.cpp.o"
  "CMakeFiles/rush_cluster.dir/network.cpp.o.d"
  "CMakeFiles/rush_cluster.dir/topology.cpp.o"
  "CMakeFiles/rush_cluster.dir/topology.cpp.o.d"
  "librush_cluster.a"
  "librush_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
