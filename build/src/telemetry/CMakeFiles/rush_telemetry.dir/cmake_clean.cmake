file(REMOVE_RECURSE
  "CMakeFiles/rush_telemetry.dir/canary.cpp.o"
  "CMakeFiles/rush_telemetry.dir/canary.cpp.o.d"
  "CMakeFiles/rush_telemetry.dir/features.cpp.o"
  "CMakeFiles/rush_telemetry.dir/features.cpp.o.d"
  "CMakeFiles/rush_telemetry.dir/sampler.cpp.o"
  "CMakeFiles/rush_telemetry.dir/sampler.cpp.o.d"
  "CMakeFiles/rush_telemetry.dir/schema.cpp.o"
  "CMakeFiles/rush_telemetry.dir/schema.cpp.o.d"
  "CMakeFiles/rush_telemetry.dir/store.cpp.o"
  "CMakeFiles/rush_telemetry.dir/store.cpp.o.d"
  "librush_telemetry.a"
  "librush_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
