file(REMOVE_RECURSE
  "librush_telemetry.a"
)
