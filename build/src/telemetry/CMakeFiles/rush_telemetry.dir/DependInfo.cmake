
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/canary.cpp" "src/telemetry/CMakeFiles/rush_telemetry.dir/canary.cpp.o" "gcc" "src/telemetry/CMakeFiles/rush_telemetry.dir/canary.cpp.o.d"
  "/root/repo/src/telemetry/features.cpp" "src/telemetry/CMakeFiles/rush_telemetry.dir/features.cpp.o" "gcc" "src/telemetry/CMakeFiles/rush_telemetry.dir/features.cpp.o.d"
  "/root/repo/src/telemetry/sampler.cpp" "src/telemetry/CMakeFiles/rush_telemetry.dir/sampler.cpp.o" "gcc" "src/telemetry/CMakeFiles/rush_telemetry.dir/sampler.cpp.o.d"
  "/root/repo/src/telemetry/schema.cpp" "src/telemetry/CMakeFiles/rush_telemetry.dir/schema.cpp.o" "gcc" "src/telemetry/CMakeFiles/rush_telemetry.dir/schema.cpp.o.d"
  "/root/repo/src/telemetry/store.cpp" "src/telemetry/CMakeFiles/rush_telemetry.dir/store.cpp.o" "gcc" "src/telemetry/CMakeFiles/rush_telemetry.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rush_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rush_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rush_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
