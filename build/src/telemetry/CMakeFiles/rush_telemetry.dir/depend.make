# Empty dependencies file for rush_telemetry.
# This may be replaced when dependencies are built.
