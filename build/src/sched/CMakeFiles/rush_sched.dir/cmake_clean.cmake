file(REMOVE_RECURSE
  "CMakeFiles/rush_sched.dir/policy.cpp.o"
  "CMakeFiles/rush_sched.dir/policy.cpp.o.d"
  "CMakeFiles/rush_sched.dir/scheduler.cpp.o"
  "CMakeFiles/rush_sched.dir/scheduler.cpp.o.d"
  "librush_sched.a"
  "librush_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
