# Empty compiler generated dependencies file for rush_sched.
# This may be replaced when dependencies are built.
