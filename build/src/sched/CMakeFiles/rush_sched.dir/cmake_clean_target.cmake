file(REMOVE_RECURSE
  "librush_sched.a"
)
