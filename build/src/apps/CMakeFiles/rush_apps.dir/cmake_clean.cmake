file(REMOVE_RECURSE
  "CMakeFiles/rush_apps.dir/execution.cpp.o"
  "CMakeFiles/rush_apps.dir/execution.cpp.o.d"
  "CMakeFiles/rush_apps.dir/noise.cpp.o"
  "CMakeFiles/rush_apps.dir/noise.cpp.o.d"
  "CMakeFiles/rush_apps.dir/profiler.cpp.o"
  "CMakeFiles/rush_apps.dir/profiler.cpp.o.d"
  "CMakeFiles/rush_apps.dir/profiles.cpp.o"
  "CMakeFiles/rush_apps.dir/profiles.cpp.o.d"
  "librush_apps.a"
  "librush_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
