
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/execution.cpp" "src/apps/CMakeFiles/rush_apps.dir/execution.cpp.o" "gcc" "src/apps/CMakeFiles/rush_apps.dir/execution.cpp.o.d"
  "/root/repo/src/apps/noise.cpp" "src/apps/CMakeFiles/rush_apps.dir/noise.cpp.o" "gcc" "src/apps/CMakeFiles/rush_apps.dir/noise.cpp.o.d"
  "/root/repo/src/apps/profiler.cpp" "src/apps/CMakeFiles/rush_apps.dir/profiler.cpp.o" "gcc" "src/apps/CMakeFiles/rush_apps.dir/profiler.cpp.o.d"
  "/root/repo/src/apps/profiles.cpp" "src/apps/CMakeFiles/rush_apps.dir/profiles.cpp.o" "gcc" "src/apps/CMakeFiles/rush_apps.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rush_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rush_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rush_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/rush_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
