file(REMOVE_RECURSE
  "librush_apps.a"
)
