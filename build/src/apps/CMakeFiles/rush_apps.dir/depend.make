# Empty dependencies file for rush_apps.
# This may be replaced when dependencies are built.
