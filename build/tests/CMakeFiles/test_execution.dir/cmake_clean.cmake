file(REMOVE_RECURSE
  "CMakeFiles/test_execution.dir/apps/test_execution.cpp.o"
  "CMakeFiles/test_execution.dir/apps/test_execution.cpp.o.d"
  "test_execution"
  "test_execution.pdb"
  "test_execution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
