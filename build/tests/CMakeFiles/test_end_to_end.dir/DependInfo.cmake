
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/test_end_to_end.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/test_end_to_end.dir/integration/test_end_to_end.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rush_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rush_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rush_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/rush_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/rush_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rush_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rush_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rush_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
