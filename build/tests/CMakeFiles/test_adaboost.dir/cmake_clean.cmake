file(REMOVE_RECURSE
  "CMakeFiles/test_adaboost.dir/ml/test_adaboost.cpp.o"
  "CMakeFiles/test_adaboost.dir/ml/test_adaboost.cpp.o.d"
  "test_adaboost"
  "test_adaboost.pdb"
  "test_adaboost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaboost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
