file(REMOVE_RECURSE
  "CMakeFiles/test_rfe.dir/ml/test_rfe.cpp.o"
  "CMakeFiles/test_rfe.dir/ml/test_rfe.cpp.o.d"
  "test_rfe"
  "test_rfe.pdb"
  "test_rfe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
