# Empty dependencies file for test_canary.
# This may be replaced when dependencies are built.
