file(REMOVE_RECURSE
  "CMakeFiles/test_canary.dir/telemetry/test_canary.cpp.o"
  "CMakeFiles/test_canary.dir/telemetry/test_canary.cpp.o.d"
  "test_canary"
  "test_canary.pdb"
  "test_canary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_canary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
