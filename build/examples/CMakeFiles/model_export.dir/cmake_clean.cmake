file(REMOVE_RECURSE
  "CMakeFiles/model_export.dir/model_export.cpp.o"
  "CMakeFiles/model_export.dir/model_export.cpp.o.d"
  "model_export"
  "model_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
