#include "ml/rfe.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/tree.hpp"

namespace rush::ml {
namespace {

/// Two informative features among many pure-noise columns.
Dataset needle_in_noise(std::size_t n, std::size_t noise_features, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names{"signal0", "signal1"};
  for (std::size_t f = 0; f < noise_features; ++f) names.push_back("noise" + std::to_string(f));
  Dataset d(names);
  std::vector<double> row(names.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double s0 = rng.uniform(-1.0, 1.0);
    const double s1 = rng.uniform(-1.0, 1.0);
    row[0] = s0;
    row[1] = s1;
    for (std::size_t f = 0; f < noise_features; ++f) row[2 + f] = rng.uniform(-1.0, 1.0);
    d.add_row(row, (s0 + s1) > 0.0 ? 1 : 0);
  }
  return d;
}

TEST(Rfe, RecoversInformativeFeaturesWithTreeImportances) {
  const Dataset d = needle_in_noise(400, 10, 1);
  Forest prototype(decision_forest_config(15));
  RfeConfig cfg;
  cfg.min_features = 2;
  cfg.cv_folds = 3;
  const RfeResult result = recursive_feature_elimination(prototype, d, cfg);
  // The two signal columns (indices 0, 1) must survive.
  EXPECT_TRUE(std::find(result.selected.begin(), result.selected.end(), 0u) !=
              result.selected.end());
  EXPECT_TRUE(std::find(result.selected.begin(), result.selected.end(), 1u) !=
              result.selected.end());
  EXPECT_GT(result.best_f1, 0.75);
}

TEST(Rfe, HistoryShrinksMonotonically) {
  const Dataset d = needle_in_noise(200, 8, 2);
  DecisionTree prototype;
  RfeConfig cfg;
  cfg.min_features = 2;
  cfg.cv_folds = 3;
  const RfeResult result = recursive_feature_elimination(prototype, d, cfg);
  ASSERT_GE(result.history.size(), 2u);
  for (std::size_t i = 1; i < result.history.size(); ++i)
    EXPECT_LT(result.history[i].num_features, result.history[i - 1].num_features);
  EXPECT_EQ(result.history.front().num_features, d.cols());
  EXPECT_EQ(result.history.back().num_features, cfg.min_features);
}

TEST(Rfe, SelectedIndicesAreSortedAndValid) {
  const Dataset d = needle_in_noise(200, 6, 3);
  DecisionTree prototype;
  RfeConfig cfg;
  cfg.min_features = 3;
  cfg.cv_folds = 3;
  const RfeResult result = recursive_feature_elimination(prototype, d, cfg);
  EXPECT_TRUE(std::is_sorted(result.selected.begin(), result.selected.end()));
  for (std::size_t f : result.selected) EXPECT_LT(f, d.cols());
  EXPECT_GE(result.selected.size(), cfg.min_features);
}

TEST(Rfe, FallsBackToCorrelationForImportanceFreeModels) {
  const Dataset d = needle_in_noise(300, 6, 4);
  Knn prototype(KnnConfig{.k = 5});
  RfeConfig cfg;
  cfg.min_features = 2;
  cfg.cv_folds = 3;
  const RfeResult result = recursive_feature_elimination(prototype, d, cfg);
  // Correlation ranking should also keep at least one signal column.
  const bool kept_signal =
      std::find(result.selected.begin(), result.selected.end(), 0u) != result.selected.end() ||
      std::find(result.selected.begin(), result.selected.end(), 1u) != result.selected.end();
  EXPECT_TRUE(kept_signal);
}

TEST(Rfe, MinFeaturesEqualToWidthIsANoOpRound) {
  const Dataset d = needle_in_noise(100, 2, 5);
  DecisionTree prototype;
  RfeConfig cfg;
  cfg.min_features = d.cols();
  cfg.cv_folds = 3;
  const RfeResult result = recursive_feature_elimination(prototype, d, cfg);
  EXPECT_EQ(result.selected.size(), d.cols());
  EXPECT_EQ(result.history.size(), 1u);
}

TEST(Rfe, RejectsBadConfig) {
  const Dataset d = needle_in_noise(50, 2, 6);
  DecisionTree prototype;
  RfeConfig bad;
  bad.step_fraction = 0.0;
  EXPECT_THROW((void)recursive_feature_elimination(prototype, d, bad), PreconditionError);
  bad = RfeConfig{};
  bad.min_features = 0;
  EXPECT_THROW((void)recursive_feature_elimination(prototype, d, bad), PreconditionError);
}

}  // namespace
}  // namespace rush::ml
