// Differential tests for the flat compiled inference plane and the
// presorted CART trainer.
//
// Two properties are asserted at byte granularity:
//  - training with presorted feature indices reproduces the exact node
//    arrays (thresholds, links, leaf probabilities, importances) of the
//    per-node-sort reference trainer, via save_body string equality;
//  - the compiled SoA predict paths reproduce the nested predict_proba
//    reference bit for bit, including across save/load round trips.
#include "ml/compiled.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "ml/adaboost.hpp"
#include "ml/forest.hpp"
#include "ml/tree.hpp"

namespace rush::ml {
namespace {

/// Three-class data over `cols` continuous features.
Dataset synthetic(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (std::size_t c = 0; c < cols; ++c) names.push_back("f" + std::to_string(c));
  Dataset d(names);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> x(cols);
    for (double& v : x) v = rng.uniform(0.0, 10.0);
    const int label = x[0] > 6.0 ? 2 : (x[1] > 5.0 ? 1 : 0);
    d.add_row(x, label);
  }
  return d;
}

/// Values drawn from a coarse grid so every feature carries heavy ties —
/// the case where the (value, row) tie-break order matters most.
Dataset tied(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"f0", "f1", "f2"});
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> x(3);
    for (double& v : x) v = static_cast<double>(rng.uniform_int(0, 4));
    const int label = (x[0] + x[1] > 4.0) ? 1 : 0;
    d.add_row(x, label);
  }
  return d;
}

std::string body_of(const Classifier& model) {
  std::ostringstream os;
  model.save_body(os);
  return os.str();
}

bool bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Compiled fast paths must agree with the nested predict_proba reference
/// byte for byte on every row of `probe`.
void expect_compiled_matches_reference(const Classifier& model, const Dataset& probe) {
  const auto k = static_cast<std::size_t>(model.num_classes());
  std::vector<double> into(k);
  std::vector<int> many(probe.rows());
  model.predict_many(probe, many);
  for (std::size_t i = 0; i < probe.rows(); ++i) {
    const auto reference = model.predict_proba(probe.row(i));
    ASSERT_EQ(reference.size(), k);
    model.predict_proba_into(probe.row(i), into);
    EXPECT_TRUE(bytes_equal(reference, into)) << "row " << i;
    int expected = 0;
    for (std::size_t c = 1; c < k; ++c)
      if (reference[c] > reference[expected]) expected = static_cast<int>(c);
    EXPECT_EQ(model.predict(probe.row(i)), expected) << "row " << i;
    EXPECT_EQ(model.predict_into(probe.row(i), into), expected) << "row " << i;
    EXPECT_EQ(many[i], expected) << "row " << i;
  }
}

TEST(PresortedTraining, ReproducesReferenceTreeExactly) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Dataset d = synthetic(300, 6, seed);
    TreeConfig ref_cfg;
    ref_cfg.presort = false;
    TreeConfig fast_cfg;
    fast_cfg.presort = true;
    DecisionTree reference(ref_cfg);
    DecisionTree fast(fast_cfg);
    reference.fit(d);
    fast.fit(d);
    EXPECT_EQ(body_of(reference), body_of(fast)) << "seed " << seed;
  }
}

TEST(PresortedTraining, ReproducesReferenceUnderTies) {
  const Dataset d = tied(400, 11);
  TreeConfig ref_cfg;
  ref_cfg.presort = false;
  TreeConfig fast_cfg;
  fast_cfg.presort = true;
  DecisionTree reference(ref_cfg);
  DecisionTree fast(fast_cfg);
  reference.fit(d);
  fast.fit(d);
  EXPECT_EQ(body_of(reference), body_of(fast));
}

TEST(PresortedTraining, ReproducesReferenceWithWeightsAndLeafFloor) {
  const Dataset d = synthetic(250, 5, 7);
  Rng rng(99);
  std::vector<double> weights(d.rows());
  for (double& w : weights) w = rng.uniform(0.1, 2.0);

  TreeConfig ref_cfg;
  ref_cfg.presort = false;
  ref_cfg.min_samples_leaf = 4;
  TreeConfig fast_cfg = ref_cfg;
  fast_cfg.presort = true;
  DecisionTree reference(ref_cfg);
  DecisionTree fast(fast_cfg);
  reference.fit(d, weights);
  fast.fit(d, weights);
  EXPECT_EQ(body_of(reference), body_of(fast));
}

TEST(PresortedTraining, ReproducesReferenceWithFeatureSubsampling) {
  // max_features draws candidates from the node RNG; the presorted path
  // must consume the identical stream.
  const Dataset d = synthetic(300, 8, 13);
  TreeConfig ref_cfg;
  ref_cfg.presort = false;
  ref_cfg.max_features = 3;
  ref_cfg.seed = 21;
  TreeConfig fast_cfg = ref_cfg;
  fast_cfg.presort = true;
  DecisionTree reference(ref_cfg);
  DecisionTree fast(fast_cfg);
  reference.fit(d);
  fast.fit(d);
  EXPECT_EQ(body_of(reference), body_of(fast));
}

TEST(PresortedTraining, RandomThresholdModeIsUnaffected) {
  // Extra-trees mode never presorts; the flag must not perturb its RNG
  // stream or its trees.
  const Dataset d = synthetic(300, 6, 17);
  TreeConfig a;
  a.random_thresholds = true;
  a.presort = true;
  TreeConfig b = a;
  b.presort = false;
  DecisionTree ta(a);
  DecisionTree tb(b);
  ta.fit(d);
  tb.fit(d);
  EXPECT_EQ(body_of(ta), body_of(tb));
}

TEST(PresortedTraining, ReproducesReferenceForestAndAdaBoost) {
  const Dataset d = synthetic(300, 6, 23);

  ForestConfig f_ref = decision_forest_config(12, 5);
  f_ref.presort = false;
  ForestConfig f_fast = f_ref;
  f_fast.presort = true;
  Forest forest_ref(f_ref);
  Forest forest_fast(f_fast);
  forest_ref.fit(d);
  forest_fast.fit(d);
  EXPECT_EQ(body_of(forest_ref), body_of(forest_fast));

  AdaBoostConfig a_ref;
  a_ref.num_rounds = 15;
  a_ref.presort = false;
  AdaBoostConfig a_fast = a_ref;
  a_fast.presort = true;
  AdaBoost ada_ref(a_ref);
  AdaBoost ada_fast(a_fast);
  ada_ref.fit(d);
  ada_fast.fit(d);
  EXPECT_EQ(body_of(ada_ref), body_of(ada_fast));
}

TEST(CompiledPlane, TreeMatchesNestedReference) {
  const Dataset train = synthetic(300, 6, 31);
  const Dataset probe = synthetic(120, 6, 32);
  DecisionTree tree;
  tree.fit(train);
  EXPECT_EQ(tree.compiled().node_count(), tree.node_count());
  expect_compiled_matches_reference(tree, probe);
}

TEST(CompiledPlane, ForestMatchesNestedReference) {
  const Dataset train = synthetic(300, 6, 41);
  const Dataset probe = synthetic(120, 6, 42);
  Forest forest(decision_forest_config(16, 3));
  forest.fit(train);
  EXPECT_EQ(forest.compiled().tree_count(), forest.tree_count());
  expect_compiled_matches_reference(forest, probe);
}

TEST(CompiledPlane, ExtraTreesMatchesNestedReference) {
  const Dataset train = synthetic(300, 6, 43);
  const Dataset probe = synthetic(120, 6, 44);
  Forest forest(extra_trees_config(16, 3));
  forest.fit(train);
  expect_compiled_matches_reference(forest, probe);
}

TEST(CompiledPlane, AdaBoostMatchesNestedReference) {
  const Dataset train = synthetic(300, 6, 51);
  const Dataset probe = synthetic(120, 6, 52);
  AdaBoostConfig cfg;
  cfg.num_rounds = 20;
  AdaBoost ada(cfg);
  ada.fit(train);
  EXPECT_EQ(ada.compiled().tree_count(), ada.stage_count());
  expect_compiled_matches_reference(ada, probe);
}

TEST(CompiledPlane, SurvivesSaveLoadRoundTrip) {
  // load_body must recompile: the loaded model's flat plane has to match
  // its own nested reference and the original's predictions exactly.
  const Dataset train = synthetic(300, 6, 61);
  const Dataset probe = synthetic(120, 6, 62);

  Forest original(decision_forest_config(12, 9));
  original.fit(train);
  std::stringstream ss;
  original.save_body(ss);
  Forest loaded;
  loaded.load_body(ss);
  expect_compiled_matches_reference(loaded, probe);
  for (std::size_t i = 0; i < probe.rows(); ++i) {
    EXPECT_TRUE(bytes_equal(original.predict_proba(probe.row(i)),
                            loaded.predict_proba(probe.row(i))));
    EXPECT_EQ(original.predict(probe.row(i)), loaded.predict(probe.row(i)));
  }

  AdaBoostConfig cfg;
  cfg.num_rounds = 12;
  AdaBoost ada(cfg);
  ada.fit(train);
  std::stringstream ss2;
  ada.save_body(ss2);
  AdaBoost ada_loaded;
  ada_loaded.load_body(ss2);
  expect_compiled_matches_reference(ada_loaded, probe);
  for (std::size_t i = 0; i < probe.rows(); ++i)
    EXPECT_EQ(ada.predict(probe.row(i)), ada_loaded.predict(probe.row(i)));
}

}  // namespace
}  // namespace rush::ml
