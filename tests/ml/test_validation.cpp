#include "ml/validation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "ml/tree.hpp"

namespace rush::ml {
namespace {

std::vector<int> imbalanced_labels(std::size_t n, double positive_rate, Rng& rng) {
  std::vector<int> labels(n);
  for (auto& y : labels) y = rng.bernoulli(positive_rate) ? 1 : 0;
  return labels;
}

TEST(StratifiedKFold, EveryRowAppearsExactlyOnce) {
  Rng rng(1);
  const auto labels = imbalanced_labels(103, 0.2, rng);
  const auto folds = stratified_kfold(labels, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(labels.size(), 0);
  for (const auto& fold : folds)
    for (std::size_t r : fold) ++seen[r];
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(StratifiedKFold, PreservesClassBalancePerFold) {
  Rng rng(2);
  std::vector<int> labels(200, 0);
  for (std::size_t i = 0; i < 40; ++i) labels[i] = 1;  // 20% positive
  const auto folds = stratified_kfold(labels, 4, rng);
  for (const auto& fold : folds) {
    std::size_t positives = 0;
    for (std::size_t r : fold)
      if (labels[r] == 1) ++positives;
    EXPECT_EQ(positives, 10u);  // 40 positives over 4 folds
    EXPECT_EQ(fold.size(), 50u);
  }
}

TEST(StratifiedKFold, PerClassCountsDifferByAtMostOne) {
  Rng rng(3);
  std::vector<int> labels(17, 0);
  for (std::size_t i = 0; i < 5; ++i) labels[i] = 1;
  const auto folds = stratified_kfold(labels, 3, rng);
  std::vector<std::size_t> pos_counts;
  for (const auto& fold : folds) {
    std::size_t p = 0;
    for (std::size_t r : fold)
      if (labels[r] == 1) ++p;
    pos_counts.push_back(p);
  }
  const auto [lo, hi] = std::minmax_element(pos_counts.begin(), pos_counts.end());
  EXPECT_LE(*hi - *lo, 1u);
}

TEST(StratifiedKFold, Preconditions) {
  Rng rng(4);
  std::vector<int> labels{0, 1};
  EXPECT_THROW((void)stratified_kfold(labels, 1, rng), PreconditionError);
  EXPECT_THROW((void)stratified_kfold(labels, 3, rng), PreconditionError);
}

TEST(LeaveOneGroupOut, OneFoldPerGroupInAscendingOrder) {
  const std::vector<int> groups{2, 0, 1, 0, 2, 2};
  const auto folds = leave_one_group_out(groups);
  ASSERT_EQ(folds.size(), 3u);
  EXPECT_EQ(folds[0], (std::vector<std::size_t>{1, 3}));  // group 0
  EXPECT_EQ(folds[1], (std::vector<std::size_t>{2}));     // group 1
  EXPECT_EQ(folds[2], (std::vector<std::size_t>{0, 4, 5}));
}

TEST(LeaveOneGroupOut, RequiresTwoGroups) {
  EXPECT_THROW((void)leave_one_group_out({1, 1, 1}), PreconditionError);
  EXPECT_THROW((void)leave_one_group_out({}), PreconditionError);
}

Dataset grouped_separable(std::size_t n_per_group, int groups, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"x0", "x1"});
  for (int g = 0; g < groups; ++g) {
    for (std::size_t i = 0; i < n_per_group; ++i) {
      const double x0 = rng.uniform(0.0, 10.0);
      d.add_row(std::vector<double>{x0, rng.uniform(0, 1)}, x0 > 5.0 ? 1 : 0, g);
    }
  }
  return d;
}

TEST(CrossValidate, HighScoreOnLearnableProblem) {
  const Dataset d = grouped_separable(80, 4, 5);
  const auto folds = leave_one_group_out(d.groups());
  DecisionTree prototype;
  const CvResult result = cross_validate(prototype, d, folds);
  ASSERT_EQ(result.folds.size(), 4u);
  EXPECT_GT(result.mean_f1(), 0.9);
  EXPECT_GT(result.mean_accuracy(), 0.9);
  EXPECT_GT(result.mean_macro_f1(), 0.9);
  for (const auto& fold : result.folds) EXPECT_EQ(fold.test_size, 80u);
}

TEST(CrossValidate, RandomLabelsScoreNearChance) {
  Rng rng(6);
  Dataset d({"x"});
  for (int i = 0; i < 400; ++i)
    d.add_row(std::vector<double>{rng.uniform(0, 1)}, rng.bernoulli(0.5) ? 1 : 0, i % 4);
  const auto folds = leave_one_group_out(d.groups());
  DecisionTree prototype(TreeConfig{.max_depth = 3});
  const CvResult result = cross_validate(prototype, d, folds);
  EXPECT_LT(result.mean_f1(), 0.75);
  EXPECT_GT(result.mean_accuracy(), 0.3);
}

TEST(CrossValidate, EmptyResultAggregatesToZero) {
  CvResult empty;
  EXPECT_EQ(empty.mean_f1(), 0.0);
  EXPECT_EQ(empty.mean_accuracy(), 0.0);
}

TEST(CrossValidate, RejectsOutOfRangeFoldIndices) {
  const Dataset d = grouped_separable(10, 2, 7);
  DecisionTree prototype;
  const std::vector<std::vector<std::size_t>> bad_folds{{999}};
  EXPECT_THROW((void)cross_validate(prototype, d, bad_folds), PreconditionError);
}

}  // namespace
}  // namespace rush::ml
