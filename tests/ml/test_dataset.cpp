#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace rush::ml {
namespace {

Dataset make_small() {
  Dataset d({"a", "b", "c"});
  d.add_row(std::vector<double>{1, 2, 3}, 0, 10);
  d.add_row(std::vector<double>{4, 5, 6}, 1, 20);
  d.add_row(std::vector<double>{7, 8, 9}, 0, 10);
  return d;
}

TEST(Dataset, BasicAccessors) {
  const Dataset d = make_small();
  EXPECT_EQ(d.rows(), 3u);
  EXPECT_EQ(d.cols(), 3u);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.label(1), 1);
  EXPECT_EQ(d.group(1), 20);
  EXPECT_DOUBLE_EQ(d.row(2)[1], 8.0);
  EXPECT_EQ(d.num_classes(), 2);
}

TEST(Dataset, DefaultConstructedInfersWidthAndNames) {
  Dataset d;
  EXPECT_TRUE(d.empty());
  d.add_row(std::vector<double>{1, 2}, 0);
  EXPECT_EQ(d.cols(), 2u);
  EXPECT_EQ(d.feature_names()[1], "f1");
  EXPECT_THROW(d.add_row(std::vector<double>{1, 2, 3}, 0), PreconditionError);
}

TEST(Dataset, ClassCounts) {
  const Dataset d = make_small();
  const auto counts = d.class_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(Dataset, DistinctGroups) {
  const Dataset d = make_small();
  EXPECT_EQ(d.distinct_groups(), (std::vector<int>{10, 20}));
}

TEST(Dataset, SubsetAllowsRepeats) {
  const Dataset d = make_small();
  const std::vector<std::size_t> rows{2, 2, 0};
  const Dataset s = d.subset(rows);
  ASSERT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s.row(0)[0], 7.0);
  EXPECT_DOUBLE_EQ(s.row(1)[0], 7.0);
  EXPECT_DOUBLE_EQ(s.row(2)[0], 1.0);
  EXPECT_EQ(s.label(2), 0);
}

TEST(Dataset, SelectFeaturesReordersColumns) {
  const Dataset d = make_small();
  const std::vector<std::size_t> cols{2, 0};
  const Dataset s = d.select_features(cols);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_EQ(s.feature_names(), (std::vector<std::string>{"c", "a"}));
  EXPECT_DOUBLE_EQ(s.row(0)[0], 3.0);
  EXPECT_DOUBLE_EQ(s.row(0)[1], 1.0);
}

TEST(Dataset, ColumnExtraction) {
  const Dataset d = make_small();
  EXPECT_EQ(d.column(1), (std::vector<double>{2, 5, 8}));
}

TEST(Dataset, SetLabelsReplacesAll) {
  Dataset d = make_small();
  d.set_labels({2, 1, 0});
  EXPECT_EQ(d.label(0), 2);
  EXPECT_EQ(d.num_classes(), 3);
  EXPECT_THROW(d.set_labels({1}), PreconditionError);
  EXPECT_THROW(d.set_labels({-1, 0, 0}), PreconditionError);
}

TEST(Dataset, CsvRoundTrip) {
  const Dataset d = make_small();
  std::stringstream ss;
  d.to_csv(ss);
  const Dataset back = Dataset::from_csv(ss);
  ASSERT_EQ(back.rows(), d.rows());
  ASSERT_EQ(back.cols(), d.cols());
  EXPECT_EQ(back.feature_names(), d.feature_names());
  for (std::size_t i = 0; i < d.rows(); ++i) {
    EXPECT_EQ(back.label(i), d.label(i));
    EXPECT_EQ(back.group(i), d.group(i));
    for (std::size_t f = 0; f < d.cols(); ++f) EXPECT_DOUBLE_EQ(back.row(i)[f], d.row(i)[f]);
  }
}

TEST(Dataset, FromCsvRejectsMalformedInput) {
  std::stringstream no_label("a,b\n1,2\n");
  EXPECT_THROW((void)Dataset::from_csv(no_label), ParseError);
  std::stringstream wrong_arity("a,label,group\n1,0\n");
  EXPECT_THROW((void)Dataset::from_csv(wrong_arity), ParseError);
  std::stringstream empty("");
  EXPECT_THROW((void)Dataset::from_csv(empty), ParseError);
}

TEST(Dataset, PreconditionViolations) {
  const Dataset d = make_small();
  EXPECT_THROW((void)d.row(3), PreconditionError);
  EXPECT_THROW((void)d.label(3), PreconditionError);
  EXPECT_THROW((void)d.column(9), PreconditionError);
  EXPECT_THROW((void)d.select_features(std::vector<std::size_t>{}), PreconditionError);
  EXPECT_THROW((void)d.select_features(std::vector<std::size_t>{7}), PreconditionError);
  const std::vector<std::size_t> bad_row{5};
  EXPECT_THROW((void)d.subset(bad_row), PreconditionError);
  Dataset named({"x"});
  EXPECT_THROW(named.add_row(std::vector<double>{1.0}, -1), PreconditionError);
}

}  // namespace
}  // namespace rush::ml
