#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/adaboost.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/tree.hpp"

namespace rush::ml {
namespace {

Dataset tiny_data(std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"x0", "x1"});
  for (int i = 0; i < 120; ++i) {
    const double x0 = rng.uniform(0.0, 10.0);
    d.add_row(std::vector<double>{x0, rng.uniform(0, 1)}, x0 > 5.0 ? 1 : 0);
  }
  return d;
}

TEST(Registry, MakesEveryKnownType) {
  for (const char* name :
       {"decision_tree", "decision_forest", "extra_trees", "adaboost", "knn"}) {
    const auto model = make_classifier(name);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->type_name(), name);
    EXPECT_FALSE(model->is_fitted());
  }
}

TEST(Registry, RejectsUnknownType) {
  EXPECT_THROW((void)make_classifier("svm"), ParseError);
  EXPECT_THROW((void)make_classifier(""), ParseError);
}

class SerializeRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(SerializeRoundTrip, PredictionsSurviveSaveLoad) {
  const Dataset d = tiny_data(7);
  auto model = make_classifier(GetParam());
  model->fit(d);
  std::stringstream ss;
  save_classifier(*model, ss);
  const auto loaded = load_classifier(ss);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->type_name(), model->type_name());
  EXPECT_EQ(loaded->num_classes(), model->num_classes());
  EXPECT_EQ(loaded->num_features(), model->num_features());
  for (std::size_t i = 0; i < d.rows(); ++i)
    EXPECT_EQ(loaded->predict(d.row(i)), model->predict(d.row(i)));
}

INSTANTIATE_TEST_SUITE_P(AllModels, SerializeRoundTrip,
                         ::testing::Values("decision_tree", "decision_forest", "extra_trees",
                                           "adaboost", "knn"));

TEST(Serialize, RefusesUnfittedModel) {
  DecisionTree tree;
  std::stringstream ss;
  EXPECT_THROW(save_classifier(tree, ss), PreconditionError);
}

TEST(Serialize, LoadRejectsWrongMagic) {
  std::stringstream ss("not-a-model 1\ntype decision_tree\n");
  EXPECT_THROW((void)load_classifier(ss), ParseError);
}

TEST(Serialize, LoadRejectsWrongVersion) {
  std::stringstream ss("rush-model 99\ntype decision_tree\n");
  EXPECT_THROW((void)load_classifier(ss), ParseError);
}

TEST(Serialize, LoadRejectsUnknownEmbeddedType) {
  std::stringstream ss("rush-model 1\ntype mystery\n");
  EXPECT_THROW((void)load_classifier(ss), ParseError);
}

TEST(Serialize, ForestFlavorSurvivesRoundTrip) {
  const Dataset d = tiny_data(8);
  Forest extra(extra_trees_config(5));
  extra.fit(d);
  std::stringstream ss;
  save_classifier(extra, ss);
  const auto loaded = load_classifier(ss);
  EXPECT_EQ(loaded->type_name(), "extra_trees");
}

}  // namespace
}  // namespace rush::ml
