#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rush::ml {
namespace {

TEST(ConfusionMatrix, CountsCells) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  EXPECT_EQ(cm.count(0, 0), 1u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.count(1, 1), 2u);
  EXPECT_EQ(cm.count(1, 0), 0u);
  EXPECT_EQ(cm.total(), 4u);
}

TEST(ConfusionMatrix, FromVectors) {
  const std::vector<int> y_true{0, 0, 1, 1, 1};
  const std::vector<int> y_pred{0, 1, 1, 1, 0};
  const ConfusionMatrix cm(y_true, y_pred, 2);
  EXPECT_EQ(cm.count(1, 1), 2u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 3.0 / 5.0);
}

TEST(ConfusionMatrix, PrecisionRecallF1KnownValues) {
  // tp=8, fp=2, fn=4 -> precision 0.8, recall 2/3, F1 = 8/(8+3) = 0.7272..
  ConfusionMatrix cm(2);
  for (int i = 0; i < 8; ++i) cm.add(1, 1);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  for (int i = 0; i < 4; ++i) cm.add(1, 0);
  for (int i = 0; i < 20; ++i) cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.8);
  EXPECT_NEAR(cm.recall(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.f1(1), 8.0 / 11.0, 1e-12);  // the paper's tp/(tp+(fp+fn)/2)
}

TEST(ConfusionMatrix, F1MatchesHarmonicMeanForm) {
  ConfusionMatrix cm(2);
  for (int i = 0; i < 5; ++i) cm.add(1, 1);
  for (int i = 0; i < 3; ++i) cm.add(0, 1);
  for (int i = 0; i < 2; ++i) cm.add(1, 0);
  const double p = cm.precision(1);
  const double r = cm.recall(1);
  EXPECT_NEAR(cm.f1(1), 2.0 * p * r / (p + r), 1e-12);
}

TEST(ConfusionMatrix, DegenerateCasesAreZeroNotNan) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  EXPECT_EQ(cm.precision(1), 0.0);
  EXPECT_EQ(cm.recall(1), 0.0);
  EXPECT_EQ(cm.f1(1), 0.0);
  EXPECT_EQ(ConfusionMatrix(2).accuracy(), 0.0);
}

TEST(ConfusionMatrix, MultiClassMacroF1) {
  ConfusionMatrix cm(3);
  // Perfect on class 0 (2 samples), perfect on class 1 (1), all class 2
  // misclassified as 0 (1 sample).
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 1);
  cm.add(2, 0);
  const double f1_0 = cm.f1(0);  // tp=2, fp=1, fn=0 -> 2/2.5
  EXPECT_NEAR(f1_0, 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(cm.f1(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
  EXPECT_NEAR(cm.macro_f1(), (0.8 + 1.0 + 0.0) / 3.0, 1e-12);
}

TEST(ConfusionMatrix, MergeAccumulates) {
  ConfusionMatrix a(2), b(2);
  a.add(1, 1);
  b.add(1, 0);
  b.add(0, 0);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(1, 0), 1u);
  ConfusionMatrix c(3);
  EXPECT_THROW(a.merge(c), PreconditionError);
}

TEST(ConfusionMatrix, BoundsChecking) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), PreconditionError);
  EXPECT_THROW(cm.add(0, -1), PreconditionError);
  EXPECT_THROW((void)cm.count(0, 5), PreconditionError);
  EXPECT_THROW(ConfusionMatrix(0), PreconditionError);
}

TEST(Scores, ConvenienceWrappers) {
  const std::vector<int> y_true{1, 1, 1, 0, 0, 0};
  const std::vector<int> y_pred{1, 1, 0, 1, 0, 0};
  EXPECT_NEAR(precision_score(y_true, y_pred), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(recall_score(y_true, y_pred), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(f1_score(y_true, y_pred), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(accuracy_score(y_true, y_pred), 4.0 / 6.0, 1e-12);
}

TEST(Scores, PerfectAndWorstCase) {
  const std::vector<int> y{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(f1_score(y, y), 1.0);
  const std::vector<int> inverted{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(f1_score(y, inverted), 0.0);
}

TEST(Scores, HandlesLabelsBeyondBinary) {
  const std::vector<int> y_true{0, 1, 2};
  const std::vector<int> y_pred{0, 1, 2};
  EXPECT_DOUBLE_EQ(accuracy_score(y_true, y_pred), 1.0);
}

}  // namespace
}  // namespace rush::ml
