#include "ml/forest.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rush::ml {
namespace {

/// Noisy concentric-ish data: label from a nonlinear rule + label noise.
Dataset noisy_rings(std::size_t n, std::uint64_t seed, double flip = 0.05) {
  Rng rng(seed);
  Dataset d({"x0", "x1", "junk"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    int label = (x0 * x0 + x1 * x1 > 0.5) ? 1 : 0;
    if (rng.bernoulli(flip)) label = 1 - label;
    d.add_row(std::vector<double>{x0, x1, rng.uniform(-1, 1)}, label);
  }
  return d;
}

double accuracy_on(const Classifier& model, const Dataset& d) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.rows(); ++i)
    if (model.predict(d.row(i)) == d.label(i)) ++correct;
  return static_cast<double>(correct) / static_cast<double>(d.rows());
}

ForestConfig small(std::size_t trees, bool extra) {
  ForestConfig cfg = extra ? extra_trees_config(trees) : decision_forest_config(trees);
  cfg.max_depth = 10;
  return cfg;
}

TEST(Forest, GeneralizesOnHeldOutData) {
  const Dataset train = noisy_rings(600, 1);
  const Dataset test = noisy_rings(300, 2);
  Forest forest(small(30, false));
  forest.fit(train);
  EXPECT_GT(accuracy_on(forest, test), 0.85);
}

TEST(Forest, ExtraTreesGeneralizeToo) {
  const Dataset train = noisy_rings(600, 3);
  const Dataset test = noisy_rings(300, 4);
  Forest extra(small(30, true));
  extra.fit(train);
  EXPECT_GT(accuracy_on(extra, test), 0.85);
}

TEST(Forest, TypeNameReflectsFlavor) {
  EXPECT_EQ(Forest(decision_forest_config()).type_name(), "decision_forest");
  EXPECT_EQ(Forest(extra_trees_config()).type_name(), "extra_trees");
}

TEST(Forest, TreeCountMatchesConfig) {
  const Dataset d = noisy_rings(200, 5);
  Forest forest(small(17, false));
  forest.fit(d);
  EXPECT_EQ(forest.tree_count(), 17u);
}

TEST(Forest, ProbaIsAveragedAndNormalized) {
  const Dataset d = noisy_rings(300, 6);
  Forest forest(small(20, false));
  forest.fit(d);
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> x{rng.uniform(-1, 1), rng.uniform(-1, 1), 0.0};
    const auto p = forest.predict_proba(x);
    double total = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Forest, DeterministicGivenSeed) {
  const Dataset d = noisy_rings(300, 8);
  Forest a(small(10, false)), b(small(10, false));
  a.fit(d);
  b.fit(d);
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    const std::vector<double> x{rng.uniform(-1, 1), rng.uniform(-1, 1), 0.0};
    EXPECT_EQ(a.predict(x), b.predict(x));
  }
}

TEST(Forest, DifferentSeedsDifferentModels) {
  const Dataset d = noisy_rings(300, 10);
  ForestConfig ca = small(10, false);
  ForestConfig cb = small(10, false);
  cb.seed = ca.seed + 1;
  Forest a(ca), b(cb);
  a.fit(d);
  b.fit(d);
  Rng rng(11);
  bool any_diff = false;
  for (int i = 0; i < 200 && !any_diff; ++i) {
    const std::vector<double> x{rng.uniform(-1, 1), rng.uniform(-1, 1), 0.0};
    if (a.predict_proba(x) != b.predict_proba(x)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Forest, ImportancesFavorInformativeFeatures) {
  const Dataset d = noisy_rings(500, 12, 0.0);
  Forest forest(small(20, false));
  forest.fit(d);
  const auto imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], imp[2]);  // junk feature is least important
  EXPECT_GT(imp[1], imp[2]);
  EXPECT_NEAR(imp[0] + imp[1] + imp[2], 1.0, 1e-9);
}

TEST(Forest, HonorsSampleWeights) {
  // All mass at one x but conflicting labels; weights decide the vote.
  Dataset d({"x"});
  for (int i = 0; i < 10; ++i) d.add_row(std::vector<double>{1.0}, 0);
  for (int i = 0; i < 10; ++i) d.add_row(std::vector<double>{1.0}, 1);
  std::vector<double> weights(20, 1.0);
  for (std::size_t i = 10; i < 20; ++i) weights[i] = 25.0;
  Forest forest(small(15, false));
  forest.fit(d, weights);
  EXPECT_EQ(forest.predict(std::vector<double>{1.0}), 1);
}

TEST(Forest, SerializationRoundTripPreservesPredictions) {
  const Dataset d = noisy_rings(300, 13);
  Forest forest(small(8, true));
  forest.fit(d);
  std::stringstream ss;
  forest.save_body(ss);
  Forest loaded;
  loaded.load_body(ss);
  EXPECT_EQ(loaded.tree_count(), forest.tree_count());
  EXPECT_EQ(loaded.type_name(), "extra_trees");
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(loaded.predict(d.row(i)), forest.predict(d.row(i)));
}

TEST(Forest, CloneConfigProducesUnfittedTwin) {
  Forest forest(small(5, false));
  const auto clone = forest.clone_config();
  EXPECT_FALSE(clone->is_fitted());
  EXPECT_EQ(clone->type_name(), forest.type_name());
}

TEST(Forest, PreconditionViolations) {
  Forest forest;
  EXPECT_THROW((void)forest.predict(std::vector<double>{1.0}), PreconditionError);
  ForestConfig bad;
  bad.num_trees = 0;
  EXPECT_THROW(Forest{bad}, PreconditionError);
}

}  // namespace
}  // namespace rush::ml
