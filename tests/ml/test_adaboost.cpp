#include "ml/adaboost.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rush::ml {
namespace {

Dataset xor_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"x0", "x1"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    d.add_row(std::vector<double>{x0, x1}, (x0 > 0) != (x1 > 0) ? 1 : 0);
  }
  return d;
}

Dataset three_bands(std::size_t n, std::uint64_t seed, double flip = 0.0) {
  Rng rng(seed);
  Dataset d({"x", "noise"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 3.0);
    int label = static_cast<int>(x);
    if (flip > 0.0 && rng.bernoulli(flip)) label = (label + 1) % 3;
    d.add_row(std::vector<double>{x, rng.uniform(0, 1)}, label);
  }
  return d;
}

double accuracy_on(const Classifier& model, const Dataset& d) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.rows(); ++i)
    if (model.predict(d.row(i)) == d.label(i)) ++correct;
  return static_cast<double>(correct) / static_cast<double>(d.rows());
}

/// Diagonal boundary: a single axis-aligned shallow tree approximates it
/// coarsely; boosting staircases toward it.
Dataset diagonal_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"x0", "x1"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    d.add_row(std::vector<double>{x0, x1}, x0 + 2.0 * x1 > 0.0 ? 1 : 0);
  }
  return d;
}

TEST(AdaBoost, BoostingBeatsASingleShallowTree) {
  const Dataset train = diagonal_data(500, 1);
  const Dataset test = diagonal_data(250, 2);
  AdaBoostConfig cfg;
  cfg.num_rounds = 40;
  cfg.base_max_depth = 1;
  AdaBoost boosted(cfg);
  boosted.fit(train);
  DecisionTree shallow(TreeConfig{.max_depth = 1});
  shallow.fit(train);
  EXPECT_GT(accuracy_on(boosted, test), accuracy_on(shallow, test) + 0.03);
  EXPECT_GT(accuracy_on(boosted, test), 0.9);
}

TEST(AdaBoost, MultiClassSamme) {
  const Dataset train = three_bands(600, 3, 0.05);
  const Dataset test = three_bands(300, 4, 0.0);
  AdaBoost model;
  model.fit(train);
  EXPECT_EQ(model.num_classes(), 3);
  EXPECT_GT(accuracy_on(model, test), 0.9);
}

TEST(AdaBoost, StopsEarlyOnPerfectStage) {
  // Trivially separable: the first stage is perfect, boosting stops.
  Rng rng(5);
  Dataset d({"x"});
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0.0, 2.0);
    d.add_row(std::vector<double>{x}, x > 1.0 ? 1 : 0);
  }
  AdaBoost model;
  model.fit(d);
  EXPECT_EQ(model.stage_count(), 1u);
  EXPECT_DOUBLE_EQ(accuracy_on(model, d), 1.0);
}

TEST(AdaBoost, SingleClassDataFallsBackGracefully) {
  Dataset d({"x"});
  for (int i = 0; i < 20; ++i) d.add_row(std::vector<double>{static_cast<double>(i)}, 0);
  AdaBoost model;
  model.fit(d);
  EXPECT_TRUE(model.is_fitted());
  EXPECT_EQ(model.predict(std::vector<double>{5.0}), 0);
}

TEST(AdaBoost, PredictProbaIsNormalized) {
  const Dataset d = xor_data(300, 7);
  AdaBoost model;
  model.fit(d);
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> x{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const auto p = model.predict_proba(x);
    double total = 0.0;
    for (double v : p) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(AdaBoost, InitialSampleWeightsBiasTheModel) {
  // Conflicting labels at the same point; external weights break the tie.
  Dataset d({"x"});
  for (int i = 0; i < 10; ++i) d.add_row(std::vector<double>{1.0}, 0);
  for (int i = 0; i < 10; ++i) d.add_row(std::vector<double>{1.0}, 1);
  std::vector<double> weights(20, 1.0);
  for (std::size_t i = 10; i < 20; ++i) weights[i] = 30.0;
  AdaBoost model;
  model.fit(d, weights);
  EXPECT_EQ(model.predict(std::vector<double>{1.0}), 1);
}

TEST(AdaBoost, ImportancesAreAlphaWeightedAndNormalized) {
  const Dataset d = xor_data(300, 9);
  AdaBoost model;
  model.fit(d);
  const auto imp = model.feature_importances();
  ASSERT_EQ(imp.size(), 2u);
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AdaBoost, DeterministicGivenSeed) {
  const Dataset d = xor_data(300, 10);
  AdaBoost a, b;
  a.fit(d);
  b.fit(d);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(a.predict(d.row(i)), b.predict(d.row(i)));
}

TEST(AdaBoost, SerializationRoundTripPreservesPredictions) {
  const Dataset d = three_bands(400, 11, 0.05);
  AdaBoostConfig cfg;
  cfg.num_rounds = 20;
  AdaBoost model(cfg);
  model.fit(d);
  std::stringstream ss;
  model.save_body(ss);
  AdaBoost loaded;
  loaded.load_body(ss);
  EXPECT_EQ(loaded.stage_count(), model.stage_count());
  EXPECT_EQ(loaded.num_classes(), model.num_classes());
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(loaded.predict(d.row(i)), model.predict(d.row(i)));
}

TEST(AdaBoost, LoadRejectsGarbage) {
  AdaBoost model;
  std::stringstream bad("classes 1\n");
  EXPECT_THROW(model.load_body(bad), ParseError);
}

TEST(AdaBoost, PreconditionViolations) {
  AdaBoost model;
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}), PreconditionError);
  AdaBoostConfig bad;
  bad.num_rounds = 0;
  EXPECT_THROW(AdaBoost{bad}, PreconditionError);
}

}  // namespace
}  // namespace rush::ml
