#include "ml/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rush::ml {
namespace {

/// Linearly separable 2-D data: label = x0 > threshold.
Dataset separable(std::size_t n, double threshold, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"x0", "x1"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(0.0, 10.0);
    const double x1 = rng.uniform(0.0, 10.0);
    d.add_row(std::vector<double>{x0, x1}, x0 > threshold ? 1 : 0);
  }
  return d;
}

/// XOR-style data a single axis-aligned split cannot separate.
Dataset xor_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"x0", "x1"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    d.add_row(std::vector<double>{x0, x1}, (x0 > 0) != (x1 > 0) ? 1 : 0);
  }
  return d;
}

double accuracy_on(const Classifier& model, const Dataset& d) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.rows(); ++i)
    if (model.predict(d.row(i)) == d.label(i)) ++correct;
  return static_cast<double>(correct) / static_cast<double>(d.rows());
}

TEST(DecisionTree, FitsSeparableDataPerfectly) {
  const Dataset d = separable(200, 5.0, 1);
  DecisionTree tree;
  tree.fit(d);
  EXPECT_TRUE(tree.is_fitted());
  EXPECT_DOUBLE_EQ(accuracy_on(tree, d), 1.0);
}

TEST(DecisionTree, LearnsTheRightThreshold) {
  const Dataset d = separable(2000, 7.0, 2);
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.predict(std::vector<double>{6.5, 5.0}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{7.5, 5.0}), 1);
}

TEST(DecisionTree, SolvesXorWithDepth) {
  const Dataset d = xor_data(400, 3);
  TreeConfig cfg;
  cfg.max_depth = 6;
  DecisionTree tree(cfg);
  tree.fit(d);
  EXPECT_GT(accuracy_on(tree, d), 0.95);
}

TEST(DecisionTree, DepthOneCannotSolveXor) {
  const Dataset d = xor_data(400, 3);
  TreeConfig cfg;
  cfg.max_depth = 1;
  DecisionTree stump(cfg);
  stump.fit(d);
  EXPECT_LT(accuracy_on(stump, d), 0.75);
  EXPECT_LE(stump.depth(), 2);
}

TEST(DecisionTree, RespectsMaxDepth) {
  const Dataset d = xor_data(500, 5);
  for (int depth : {1, 2, 4, 8}) {
    TreeConfig cfg;
    cfg.max_depth = depth;
    DecisionTree tree(cfg);
    tree.fit(d);
    EXPECT_LE(tree.depth(), depth + 1);
  }
}

TEST(DecisionTree, MinSamplesLeafLimitsGrowth) {
  const Dataset d = xor_data(200, 7);
  TreeConfig big_leaf;
  big_leaf.min_samples_leaf = 50;
  DecisionTree coarse(big_leaf);
  coarse.fit(d);
  DecisionTree fine;
  fine.fit(d);
  EXPECT_LT(coarse.node_count(), fine.node_count());
}

TEST(DecisionTree, PredictProbaSumsToOne) {
  const Dataset d = xor_data(300, 9);
  DecisionTree tree;
  tree.fit(d);
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const auto p = tree.predict_proba(x);
    double total = 0.0;
    for (double v : p) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(DecisionTree, SampleWeightsShiftTheBoundary) {
  // Two overlapping point masses; upweighting the minority flips leaves.
  Dataset d({"x"});
  for (int i = 0; i < 10; ++i) d.add_row(std::vector<double>{1.0}, 0);
  for (int i = 0; i < 10; ++i) d.add_row(std::vector<double>{1.0}, 1);
  d.add_row(std::vector<double>{2.0}, 1);
  std::vector<double> weights(21, 1.0);
  for (std::size_t i = 10; i < 20; ++i) weights[i] = 10.0;  // favor label 1 at x=1
  DecisionTree tree;
  tree.fit(d, weights);
  EXPECT_EQ(tree.predict(std::vector<double>{1.0}), 1);
}

TEST(DecisionTree, ImportancesConcentrateOnInformativeFeature) {
  const Dataset d = separable(500, 5.0, 11);
  DecisionTree tree;
  tree.fit(d);
  const auto imp = tree.feature_importances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], 0.9);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(DecisionTree, MulticlassLabels) {
  Rng rng(13);
  Dataset d({"x"});
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0.0, 3.0);
    d.add_row(std::vector<double>{x}, static_cast<int>(x));
  }
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.num_classes(), 3);
  EXPECT_EQ(tree.predict(std::vector<double>{0.5}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{1.5}), 1);
  EXPECT_EQ(tree.predict(std::vector<double>{2.5}), 2);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  Dataset d({"x"});
  for (int i = 0; i < 20; ++i) d.add_row(std::vector<double>{static_cast<double>(i)}, 1);
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(std::vector<double>{100.0}), 1);
}

TEST(DecisionTree, RandomThresholdModeStillSeparates) {
  const Dataset d = separable(500, 5.0, 17);
  TreeConfig cfg;
  cfg.random_thresholds = true;
  DecisionTree tree(cfg);
  tree.fit(d);
  EXPECT_GT(accuracy_on(tree, d), 0.97);
}

TEST(DecisionTree, DeterministicGivenSeed) {
  const Dataset d = xor_data(300, 19);
  TreeConfig cfg;
  cfg.max_features = 1;
  cfg.seed = 77;
  DecisionTree a(cfg), b(cfg);
  a.fit(d);
  b.fit(d);
  Rng rng(20);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    EXPECT_EQ(a.predict(x), b.predict(x));
  }
}

TEST(DecisionTree, SerializationRoundTripPreservesPredictions) {
  const Dataset d = xor_data(300, 21);
  DecisionTree tree;
  tree.fit(d);
  std::stringstream ss;
  tree.save_body(ss);
  DecisionTree loaded;
  loaded.load_body(ss);
  EXPECT_EQ(loaded.num_classes(), tree.num_classes());
  EXPECT_EQ(loaded.node_count(), tree.node_count());
  for (std::size_t i = 0; i < d.rows(); ++i)
    EXPECT_EQ(loaded.predict(d.row(i)), tree.predict(d.row(i)));
}

TEST(DecisionTree, LoadRejectsGarbage) {
  DecisionTree tree;
  std::stringstream bad("classes -1\n");
  EXPECT_THROW(tree.load_body(bad), ParseError);
  std::stringstream truncated("classes 2\nfeatures 2\nnodes 1\nbogus");
  EXPECT_THROW(tree.load_body(truncated), ParseError);
}

TEST(DecisionTree, PreconditionViolations) {
  DecisionTree tree;
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}), PreconditionError);  // unfitted
  const Dataset d = separable(50, 5.0, 23);
  tree.fit(d);
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}), PreconditionError);  // wrong arity
  EXPECT_THROW(tree.fit(d, std::vector<double>(3, 1.0)), PreconditionError);  // weight size
  TreeConfig bad;
  bad.max_depth = 0;
  EXPECT_THROW(DecisionTree{bad}, PreconditionError);
}

// Property sweep: the tree must reach high training accuracy on separable
// data across configurations.
struct TreeParam {
  int max_depth;
  bool random_thresholds;
  std::size_t max_features;
};

class TreeConfigSweep : public ::testing::TestWithParam<TreeParam> {};

TEST_P(TreeConfigSweep, SeparatesTrainingData) {
  const auto p = GetParam();
  TreeConfig cfg;
  cfg.max_depth = p.max_depth;
  cfg.random_thresholds = p.random_thresholds;
  cfg.max_features = p.max_features;
  const Dataset d = separable(300, 4.0, 31);
  DecisionTree tree(cfg);
  tree.fit(d);
  EXPECT_GT(accuracy_on(tree, d), 0.93);
}

INSTANTIATE_TEST_SUITE_P(Configs, TreeConfigSweep,
                         ::testing::Values(TreeParam{4, false, 0}, TreeParam{8, false, 1},
                                           TreeParam{12, true, 0}, TreeParam{8, true, 2},
                                           TreeParam{16, false, 2}));

}  // namespace
}  // namespace rush::ml
