#include "ml/knn.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rush::ml {
namespace {

Dataset two_blobs(std::size_t n, std::uint64_t seed, double spread = 0.3) {
  Rng rng(seed);
  Dataset d({"x0", "x1"});
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double cx = label == 0 ? -1.0 : 1.0;
    d.add_row(std::vector<double>{rng.normal(cx, spread), rng.normal(cx, spread)}, label);
  }
  return d;
}

TEST(Knn, ClassifiesBlobCenters) {
  Knn knn(KnnConfig{.k = 5});
  knn.fit(two_blobs(200, 1));
  EXPECT_EQ(knn.predict(std::vector<double>{-1.0, -1.0}), 0);
  EXPECT_EQ(knn.predict(std::vector<double>{1.0, 1.0}), 1);
}

TEST(Knn, KEqualsOneMemorizesTrainingData) {
  const Dataset d = two_blobs(100, 2);
  Knn knn(KnnConfig{.k = 1});
  knn.fit(d);
  for (std::size_t i = 0; i < d.rows(); ++i) EXPECT_EQ(knn.predict(d.row(i)), d.label(i));
}

TEST(Knn, StandardizationMakesScalesIrrelevant) {
  // Feature 1 is the informative one but lives on a tiny scale; without
  // standardization feature 0's noise would dominate the distance.
  Rng rng(3);
  Dataset d({"huge_noise", "tiny_signal"});
  for (int i = 0; i < 300; ++i) {
    const int label = i % 2;
    d.add_row(std::vector<double>{rng.uniform(-1000.0, 1000.0),
                                  (label == 0 ? -1.0 : 1.0) * 1e-4 + rng.normal(0.0, 1e-5)},
              label);
  }
  Knn knn(KnnConfig{.k = 7});
  knn.fit(d);
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    const int label = i % 2;
    const std::vector<double> x{rng.uniform(-1000.0, 1000.0), (label == 0 ? -1.0 : 1.0) * 1e-4};
    if (knn.predict(x) == label) ++correct;
  }
  EXPECT_GT(correct, 90);
}

TEST(Knn, DistanceWeightingBreaksTies) {
  // Two far label-1 points vs one adjacent label-0 point with k=3:
  // inverse-distance weighting favors the close neighbor.
  Dataset d({"x"});
  d.add_row(std::vector<double>{0.0}, 0);
  d.add_row(std::vector<double>{10.0}, 1);
  d.add_row(std::vector<double>{11.0}, 1);
  Knn weighted(KnnConfig{.k = 3, .distance_weighted = true});
  weighted.fit(d);
  EXPECT_EQ(weighted.predict(std::vector<double>{0.5}), 0);
  Knn uniform(KnnConfig{.k = 3, .distance_weighted = false});
  uniform.fit(d);
  EXPECT_EQ(uniform.predict(std::vector<double>{0.5}), 1);  // majority of 3
}

TEST(Knn, KLargerThanDatasetIsClamped) {
  Dataset d({"x"});
  d.add_row(std::vector<double>{0.0}, 0);
  d.add_row(std::vector<double>{1.0}, 1);
  Knn knn(KnnConfig{.k = 50});
  knn.fit(d);
  EXPECT_NO_THROW((void)knn.predict(std::vector<double>{0.2}));
}

TEST(Knn, ProbaIsNormalized) {
  Knn knn(KnnConfig{.k = 5});
  knn.fit(two_blobs(100, 4));
  const auto p = knn.predict_proba(std::vector<double>{0.0, 0.0});
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Knn, SerializationRoundTripPreservesPredictions) {
  const Dataset d = two_blobs(150, 5);
  Knn knn(KnnConfig{.k = 3});
  knn.fit(d);
  std::stringstream ss;
  knn.save_body(ss);
  Knn loaded;
  loaded.load_body(ss);
  EXPECT_EQ(loaded.config().k, 3u);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{rng.uniform(-2, 2), rng.uniform(-2, 2)};
    EXPECT_EQ(loaded.predict(x), knn.predict(x));
  }
}

TEST(Knn, IgnoresSampleWeights) {
  const Dataset d = two_blobs(100, 7);
  Knn a, b;
  a.fit(d);
  b.fit(d, std::vector<double>(d.rows(), 5.0));
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(a.predict(d.row(i)), b.predict(d.row(i)));
}

TEST(Knn, PreconditionViolations) {
  EXPECT_THROW(Knn(KnnConfig{.k = 0}), PreconditionError);
  Knn knn;
  EXPECT_THROW((void)knn.predict(std::vector<double>{1.0}), PreconditionError);
  knn.fit(two_blobs(20, 8));
  EXPECT_THROW((void)knn.predict(std::vector<double>{1.0}), PreconditionError);  // arity
}

}  // namespace
}  // namespace rush::ml
