#include "ml/scaler.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace rush::ml {
namespace {

Dataset make_data() {
  Dataset d({"x", "y", "const"});
  d.add_row(std::vector<double>{1.0, 100.0, 5.0}, 0);
  d.add_row(std::vector<double>{2.0, 200.0, 5.0}, 1);
  d.add_row(std::vector<double>{3.0, 300.0, 5.0}, 0);
  return d;
}

TEST(Scaler, TransformedColumnsHaveZeroMeanUnitVariance) {
  const Dataset d = make_data();
  StandardScaler scaler;
  scaler.fit(d);
  const Dataset t = scaler.transform(d);
  for (std::size_t f = 0; f < 2; ++f) {
    const auto col = t.column(f);
    EXPECT_NEAR(stats::mean(col), 0.0, 1e-12);
    EXPECT_NEAR(stats::variance(col), 1.0, 1e-9);
  }
}

TEST(Scaler, ConstantFeatureMapsToZero) {
  const Dataset d = make_data();
  StandardScaler scaler;
  scaler.fit(d);
  for (double v : scaler.transform(d).column(2)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Scaler, PreservesLabelsAndGroups) {
  const Dataset d = make_data();
  StandardScaler scaler;
  scaler.fit(d);
  const Dataset t = scaler.transform(d);
  EXPECT_EQ(t.labels(), d.labels());
  EXPECT_EQ(t.groups(), d.groups());
  EXPECT_EQ(t.feature_names(), d.feature_names());
}

TEST(Scaler, SingleVectorTransformMatchesDataset) {
  const Dataset d = make_data();
  StandardScaler scaler;
  scaler.fit(d);
  const auto v = scaler.transform(d.row(1));
  const Dataset t = scaler.transform(d);
  for (std::size_t f = 0; f < d.cols(); ++f) EXPECT_DOUBLE_EQ(v[f], t.row(1)[f]);
}

TEST(Scaler, SaveLoadRoundTrip) {
  const Dataset d = make_data();
  StandardScaler scaler;
  scaler.fit(d);
  std::stringstream ss;
  scaler.save(ss);
  StandardScaler loaded;
  loaded.load(ss);
  EXPECT_EQ(loaded.means(), scaler.means());
  EXPECT_EQ(loaded.stddevs(), scaler.stddevs());
}

TEST(Scaler, PreconditionViolations) {
  StandardScaler scaler;
  EXPECT_FALSE(scaler.is_fitted());
  EXPECT_THROW((void)scaler.transform(std::vector<double>{1.0}), PreconditionError);
  scaler.fit(make_data());
  EXPECT_THROW((void)scaler.transform(std::vector<double>{1.0}), PreconditionError);
  std::stringstream bad("not-a-scaler");
  StandardScaler loaded;
  EXPECT_THROW(loaded.load(bad), ParseError);
}

}  // namespace
}  // namespace rush::ml
