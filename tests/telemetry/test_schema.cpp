#include "telemetry/schema.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

namespace rush::telemetry {
namespace {

TEST(Schema, TableCountsMatchPaperTableOne) {
  EXPECT_EQ(num_counters(), 90u);
  EXPECT_EQ(counters_in_table(CounterTable::SysClassIb), 22u);
  EXPECT_EQ(counters_in_table(CounterTable::OpaInfo), 34u);
  EXPECT_EQ(counters_in_table(CounterTable::LustreClient), 34u);
}

TEST(Schema, QualifiedNamesAreUnique) {
  std::set<std::string> names;
  for (const CounterDef& def : counter_schema()) names.insert(qualified_name(def));
  EXPECT_EQ(names.size(), num_counters());
}

TEST(Schema, QualifiedNamesUseTablePrefixes) {
  bool saw_ib = false, saw_opa = false, saw_lustre = false;
  for (const CounterDef& def : counter_schema()) {
    const std::string q = qualified_name(def);
    if (q.rfind("sysclassib.", 0) == 0) saw_ib = true;
    if (q.rfind("opa_info.", 0) == 0) saw_opa = true;
    if (q.rfind("lustre_client.", 0) == 0) saw_lustre = true;
  }
  EXPECT_TRUE(saw_ib);
  EXPECT_TRUE(saw_opa);
  EXPECT_TRUE(saw_lustre);
}

TEST(Schema, ValuesAreNonNegative) {
  Rng rng(1);
  NodeSignals s;
  s.xmit_gbps = 3.0;
  s.recv_gbps = 3.0;
  s.edge_util = 0.8;
  s.pod_util = 0.4;
  s.io_read_gbps = 1.0;
  s.io_write_gbps = 0.5;
  s.io_pressure = 0.3;
  for (const CounterDef& def : counter_schema()) {
    for (int i = 0; i < 20; ++i) EXPECT_GE(synth_value(def, s, rng), 0.0);
  }
}

CounterDef find_counter(const char* name) {
  for (const CounterDef& def : counter_schema())
    if (std::string(def.name) == name) return def;
  ADD_FAILURE() << "counter not found: " << name;
  return counter_schema()[0];
}

double mean_value(const CounterDef& def, const NodeSignals& s, std::uint64_t seed) {
  Rng rng(seed);
  double sum = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) sum += synth_value(def, s, rng);
  return sum / n;
}

TEST(Schema, XmitCounterTracksNodeTraffic) {
  const CounterDef def = find_counter("port_xmit_data");
  NodeSignals lo, hi;
  lo.xmit_gbps = 0.5;
  hi.xmit_gbps = 5.0;
  EXPECT_GT(mean_value(def, hi, 2), 5.0 * mean_value(def, lo, 2));
}

TEST(Schema, CongestionWaitCountersHaveAKnee) {
  const CounterDef def = find_counter("portXmitWait");
  NodeSignals calm, congested;
  calm.edge_util = 0.3;  // below the knee: silent
  congested.edge_util = 1.0;
  EXPECT_NEAR(mean_value(def, calm, 3), 0.0, 1e-9);
  EXPECT_GT(mean_value(def, congested, 3), 1.0);
}

TEST(Schema, LustreBytesTrackIoRates) {
  const CounterDef def = find_counter("read_bytes");
  NodeSignals lo, hi;
  lo.io_read_gbps = 0.1;
  hi.io_read_gbps = 1.0;
  EXPECT_GT(mean_value(def, hi, 4), 5.0 * mean_value(def, lo, 4));
}

TEST(Schema, IoPressureCountersRespond) {
  const CounterDef def = find_counter("rpc_in_flight");
  NodeSignals healthy, pressured;
  pressured.io_pressure = 1.0;
  EXPECT_GT(mean_value(def, pressured, 5), mean_value(def, healthy, 5) * 2.0);
}

TEST(Schema, CacheHitRatioFallsUnderPressure) {
  const CounterDef def = find_counter("cache_hit_ratio");
  NodeSignals healthy, pressured;
  pressured.io_pressure = 1.0;
  EXPECT_LT(mean_value(def, pressured, 6), mean_value(def, healthy, 6));
}

TEST(Schema, ErrorCountersAreRareIntegers) {
  const CounterDef def = find_counter("symbol_error");
  Rng rng(7);
  NodeSignals s;
  s.edge_util = 0.5;
  for (int i = 0; i < 100; ++i) {
    const double v = synth_value(def, s, rng);
    EXPECT_EQ(v, std::floor(v));
    EXPECT_LT(v, 50.0);
  }
}

}  // namespace
}  // namespace rush::telemetry
