#include "telemetry/features.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/error.hpp"
#include "telemetry/schema.hpp"

namespace rush::telemetry {
namespace {

TEST(Features, CountMatchesPaper) {
  EXPECT_EQ(FeatureAssembler::kNumFeatures, 282u);
  EXPECT_EQ(FeatureAssembler::kCounterFeatures, 270u);
  EXPECT_EQ(FeatureAssembler::feature_names().size(), 282u);
}

TEST(Features, NamesAreUnique) {
  const auto names = FeatureAssembler::feature_names();
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(Features, NamesAreCached) {
  // feature_names() memoizes behind a function-local static: every call
  // must hand back the same vector instance.
  const auto* first = &FeatureAssembler::feature_names();
  const auto* second = &FeatureAssembler::feature_names();
  EXPECT_EQ(first, second);
}

TEST(Features, NamesFollowLayout) {
  const auto names = FeatureAssembler::feature_names();
  EXPECT_EQ(names[0], "min_sysclassib.port_xmit_data");
  EXPECT_EQ(names[1], "max_sysclassib.port_xmit_data");
  EXPECT_EQ(names[2], "mean_sysclassib.port_xmit_data");
  EXPECT_EQ(names[270], "canary_send_min");
  EXPECT_EQ(names[278], "canary_allreduce_mean");
  EXPECT_EQ(names[279], "class_compute");
  EXPECT_EQ(names[280], "class_network");
  EXPECT_EQ(names[281], "class_io");
}

class FeatureAssemblyTest : public ::testing::Test {
 protected:
  FeatureAssemblyTest() : store_({0, 1, 2, 3}, num_counters(), 10), assembler_(store_, 300.0) {
    // Two frames with node 0 hotter than the rest on every counter.
    std::vector<float> values(4 * num_counters(), 1.0F);
    for (std::size_t c = 0; c < num_counters(); ++c) values[c] = 5.0F;
    store_.add_frame(100.0, values);
    store_.add_frame(130.0, values);
    canary_.send_wait_s = {0.1, 0.2};
    canary_.recv_wait_s = {0.3, 0.4};
    canary_.allreduce_wait_s = {0.5, 0.6};
  }
  CounterStore store_;
  FeatureAssembler assembler_;
  CanaryResult canary_;
};

TEST_F(FeatureAssemblyTest, VectorHasExpectedSections) {
  const auto v = assembler_.assemble(150.0, AggregationScope::AllNodes, {0, 1}, canary_,
                                     WorkloadClass::Network);
  ASSERT_EQ(v.size(), FeatureAssembler::kNumFeatures);
  // Counter 0 over all nodes: min 1, max 5, mean 2.
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 5.0);
  EXPECT_DOUBLE_EQ(v[2], 2.0);
  // Canary block.
  EXPECT_DOUBLE_EQ(v[270], 0.1);
  EXPECT_DOUBLE_EQ(v[271], 0.2);
  // One-hot workload class.
  EXPECT_DOUBLE_EQ(v[279], 0.0);
  EXPECT_DOUBLE_EQ(v[280], 1.0);
  EXPECT_DOUBLE_EQ(v[281], 0.0);
}

TEST_F(FeatureAssemblyTest, JobScopeRestrictsToJobNodes) {
  // Job nodes {1, 2} exclude the hot node 0: max should be 1, not 5.
  const auto v = assembler_.assemble(150.0, AggregationScope::JobNodes, {1, 2}, canary_,
                                     WorkloadClass::Compute);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  // While all-node scope still sees the hot node.
  const auto all = assembler_.assemble(150.0, AggregationScope::AllNodes, {1, 2}, canary_,
                                       WorkloadClass::Compute);
  EXPECT_DOUBLE_EQ(all[1], 5.0);
}

TEST_F(FeatureAssemblyTest, AssembleIntoMatchesAssemble) {
  std::vector<double> out(FeatureAssembler::kNumFeatures);
  std::vector<Agg> scratch(store_.num_counters());
  for (auto scope : {AggregationScope::AllNodes, AggregationScope::JobNodes}) {
    const auto reference =
        assembler_.assemble(150.0, scope, {1, 2}, canary_, WorkloadClass::Network);
    assembler_.assemble_into(150.0, scope, {1, 2}, canary_, WorkloadClass::Network, out,
                             scratch);
    EXPECT_EQ(reference, out);
  }
}

TEST_F(FeatureAssemblyTest, StoreRevisionTracksContent) {
  const std::uint64_t before = store_.revision();
  std::vector<float> values(4 * num_counters(), 2.0F);
  store_.add_frame(200.0, values);
  EXPECT_EQ(store_.revision(), before + 1);
  store_.clear();
  EXPECT_EQ(store_.revision(), before + 2);
}

TEST_F(FeatureAssemblyTest, WindowExcludesOldFrames) {
  // At t=500 the frames at 100/130 fall outside the 300 s window.
  const auto v = assembler_.assemble(500.0, AggregationScope::AllNodes, {0}, canary_,
                                     WorkloadClass::Io);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  // Class one-hot is still present.
  EXPECT_DOUBLE_EQ(v[281], 1.0);
}

TEST(Features, WorkloadClassNames) {
  EXPECT_STREQ(workload_class_name(WorkloadClass::Compute), "compute");
  EXPECT_STREQ(workload_class_name(WorkloadClass::Network), "network");
  EXPECT_STREQ(workload_class_name(WorkloadClass::Io), "io");
}

TEST(Features, RejectsBadWindow) {
  CounterStore store({0}, num_counters(), 4);
  EXPECT_THROW(FeatureAssembler(store, 0.0), PreconditionError);
}

TEST(Features, StalenessOnEmptyStoreIsInfinite) {
  CounterStore store({0}, num_counters(), 4);
  const FeatureAssembler assembler(store, 300.0);
  const StalenessReport report = assembler.staleness(1000.0);
  EXPECT_TRUE(std::isinf(report.newest_frame_age_s));
  EXPECT_EQ(report.frames_in_window, 0u);
  EXPECT_EQ(report.corrupt_frames_in_window, 0u);
}

TEST(Features, StalenessTracksFrameAgeAndWindowPopulation) {
  CounterStore store({0}, num_counters(), 8);
  const FeatureAssembler assembler(store, 300.0);
  const std::vector<float> values(num_counters(), 1.0F);
  store.add_frame(200.0, values);
  store.add_frame(400.0, values);

  // Fresh data: both frames sit inside the [130, 430] look-back window.
  StalenessReport report = assembler.staleness(430.0);
  EXPECT_DOUBLE_EQ(report.newest_frame_age_s, 30.0);
  EXPECT_EQ(report.frames_in_window, 2u);

  // A sampler dropout later: the newest frame ages out of trust range
  // and the look-back window empties.
  report = assembler.staleness(900.0);
  EXPECT_DOUBLE_EQ(report.newest_frame_age_s, 500.0);
  EXPECT_EQ(report.frames_in_window, 0u);
}

TEST(Features, StalenessSurfacesCorruptFrames) {
  CounterStore store({0}, num_counters(), 8);
  const FeatureAssembler assembler(store, 300.0);
  std::vector<float> values(num_counters(), 1.0F);
  store.add_frame(100.0, values);
  values[3] = std::numeric_limits<float>::quiet_NaN();
  store.add_frame(130.0, values);

  const StalenessReport report = assembler.staleness(200.0);
  EXPECT_EQ(report.frames_in_window, 2u);
  EXPECT_EQ(report.corrupt_frames_in_window, 1u);
}

}  // namespace
}  // namespace rush::telemetry
