#include "telemetry/store.hpp"

#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

#include "common/error.hpp"

namespace rush::telemetry {
namespace {

constexpr std::size_t kCounters = 3;

cluster::NodeSet nodes3() { return {10, 20, 30}; }

std::vector<float> frame(std::initializer_list<float> values) {
  return std::vector<float>(values);
}

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : store_(nodes3(), kCounters, 4) {}
  CounterStore store_;
};

TEST_F(StoreTest, EmptyStoreReturnsZeros) {
  const auto aggs = store_.aggregate_all(0.0, 100.0);
  ASSERT_EQ(aggs.size(), kCounters);
  for (const Agg& a : aggs) {
    EXPECT_EQ(a.min, 0.0);
    EXPECT_EQ(a.max, 0.0);
    EXPECT_EQ(a.mean, 0.0);
  }
  EXPECT_EQ(store_.frames_in(0.0, 100.0), 0u);
  EXPECT_EQ(store_.latest(10, 0), 0.0);
}

TEST_F(StoreTest, SingleFrameAggregates) {
  // node-major: node10=(1,2,3), node20=(4,5,6), node30=(7,8,9)
  store_.add_frame(5.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  const auto aggs = store_.aggregate_all(0.0, 10.0);
  EXPECT_DOUBLE_EQ(aggs[0].min, 1.0);
  EXPECT_DOUBLE_EQ(aggs[0].max, 7.0);
  EXPECT_DOUBLE_EQ(aggs[0].mean, 4.0);
  EXPECT_DOUBLE_EQ(aggs[2].min, 3.0);
  EXPECT_DOUBLE_EQ(aggs[2].max, 9.0);
  EXPECT_DOUBLE_EQ(aggs[2].mean, 6.0);
}

TEST_F(StoreTest, SubsetAggregationMatchesManualComputation) {
  store_.add_frame(1.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  store_.add_frame(2.0, frame({2, 2, 2, 10, 10, 10, 0, 0, 0}));
  const auto aggs = store_.aggregate_nodes(0.0, 3.0, {10, 30});
  // Counter 0 over nodes {10,30} and both frames: values {1,7,2,0}.
  EXPECT_DOUBLE_EQ(aggs[0].min, 0.0);
  EXPECT_DOUBLE_EQ(aggs[0].max, 7.0);
  EXPECT_DOUBLE_EQ(aggs[0].mean, 2.5);
}

TEST_F(StoreTest, AllNodesEqualsSubsetOfEverything) {
  store_.add_frame(1.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  store_.add_frame(2.0, frame({9, 8, 7, 6, 5, 4, 3, 2, 1}));
  const auto all = store_.aggregate_all(0.0, 3.0);
  const auto subset = store_.aggregate_nodes(0.0, 3.0, nodes3());
  for (std::size_t c = 0; c < kCounters; ++c) {
    EXPECT_DOUBLE_EQ(all[c].min, subset[c].min);
    EXPECT_DOUBLE_EQ(all[c].max, subset[c].max);
    EXPECT_NEAR(all[c].mean, subset[c].mean, 1e-12);
  }
}

TEST_F(StoreTest, WindowFiltersByTime) {
  store_.add_frame(1.0, frame({1, 1, 1, 1, 1, 1, 1, 1, 1}));
  store_.add_frame(5.0, frame({5, 5, 5, 5, 5, 5, 5, 5, 5}));
  store_.add_frame(9.0, frame({9, 9, 9, 9, 9, 9, 9, 9, 9}));
  EXPECT_EQ(store_.frames_in(4.0, 6.0), 1u);
  const auto aggs = store_.aggregate_all(4.0, 6.0);
  EXPECT_DOUBLE_EQ(aggs[0].min, 5.0);
  EXPECT_DOUBLE_EQ(aggs[0].max, 5.0);
  // Window boundaries are inclusive.
  EXPECT_EQ(store_.frames_in(1.0, 9.0), 3u);
}

TEST_F(StoreTest, CapacityEvictsOldestFrames) {
  for (int i = 0; i < 6; ++i) {
    const auto v = static_cast<float>(i);
    store_.add_frame(static_cast<double>(i), frame({v, v, v, v, v, v, v, v, v}));
  }
  EXPECT_EQ(store_.frame_count(), 4u);        // capacity
  EXPECT_EQ(store_.frames_in(0.0, 1.0), 0u);  // evicted
  EXPECT_EQ(store_.frames_in(2.0, 5.0), 4u);
}

TEST_F(StoreTest, LatestReadsNewestFrame) {
  store_.add_frame(1.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  store_.add_frame(2.0, frame({10, 20, 30, 40, 50, 60, 70, 80, 90}));
  EXPECT_DOUBLE_EQ(store_.latest(20, 1), 50.0);
}

TEST_F(StoreTest, ClearDropsEverything) {
  store_.add_frame(1.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  store_.clear();
  EXPECT_EQ(store_.frame_count(), 0u);
}

TEST_F(StoreTest, PreconditionViolations) {
  EXPECT_THROW(store_.add_frame(1.0, std::vector<float>(5)), PreconditionError);  // wrong size
  store_.add_frame(5.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_THROW(store_.add_frame(4.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9})),
               PreconditionError);  // time went backwards
  EXPECT_THROW((void)store_.aggregate_nodes(0.0, 10.0, {99}), PreconditionError);  // unmanaged
  EXPECT_THROW((void)store_.latest(10, 99), PreconditionError);
  EXPECT_THROW(CounterStore(nodes3(), 0, 4), PreconditionError);
  EXPECT_THROW(CounterStore(nodes3(), 3, 0), PreconditionError);
  EXPECT_THROW(CounterStore({}, 3, 4), PreconditionError);
}

}  // namespace
}  // namespace rush::telemetry
