#include "telemetry/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace rush::telemetry {
namespace {

constexpr std::size_t kCounters = 3;

cluster::NodeSet nodes3() { return {10, 20, 30}; }

std::vector<float> frame(std::initializer_list<float> values) {
  return std::vector<float>(values);
}

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : store_(nodes3(), kCounters, 4) {}
  CounterStore store_;
};

TEST_F(StoreTest, EmptyStoreReturnsZeros) {
  const auto aggs = store_.aggregate_all(0.0, 100.0);
  ASSERT_EQ(aggs.size(), kCounters);
  for (const Agg& a : aggs) {
    EXPECT_EQ(a.min, 0.0);
    EXPECT_EQ(a.max, 0.0);
    EXPECT_EQ(a.mean, 0.0);
  }
  EXPECT_EQ(store_.frames_in(0.0, 100.0), 0u);
  EXPECT_EQ(store_.latest(10, 0), 0.0);
}

TEST_F(StoreTest, SingleFrameAggregates) {
  // node-major: node10=(1,2,3), node20=(4,5,6), node30=(7,8,9)
  store_.add_frame(5.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  const auto aggs = store_.aggregate_all(0.0, 10.0);
  EXPECT_DOUBLE_EQ(aggs[0].min, 1.0);
  EXPECT_DOUBLE_EQ(aggs[0].max, 7.0);
  EXPECT_DOUBLE_EQ(aggs[0].mean, 4.0);
  EXPECT_DOUBLE_EQ(aggs[2].min, 3.0);
  EXPECT_DOUBLE_EQ(aggs[2].max, 9.0);
  EXPECT_DOUBLE_EQ(aggs[2].mean, 6.0);
}

TEST_F(StoreTest, SubsetAggregationMatchesManualComputation) {
  store_.add_frame(1.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  store_.add_frame(2.0, frame({2, 2, 2, 10, 10, 10, 0, 0, 0}));
  const auto aggs = store_.aggregate_nodes(0.0, 3.0, {10, 30});
  // Counter 0 over nodes {10,30} and both frames: values {1,7,2,0}.
  EXPECT_DOUBLE_EQ(aggs[0].min, 0.0);
  EXPECT_DOUBLE_EQ(aggs[0].max, 7.0);
  EXPECT_DOUBLE_EQ(aggs[0].mean, 2.5);
}

TEST_F(StoreTest, AllNodesEqualsSubsetOfEverything) {
  store_.add_frame(1.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  store_.add_frame(2.0, frame({9, 8, 7, 6, 5, 4, 3, 2, 1}));
  const auto all = store_.aggregate_all(0.0, 3.0);
  const auto subset = store_.aggregate_nodes(0.0, 3.0, nodes3());
  for (std::size_t c = 0; c < kCounters; ++c) {
    EXPECT_DOUBLE_EQ(all[c].min, subset[c].min);
    EXPECT_DOUBLE_EQ(all[c].max, subset[c].max);
    EXPECT_NEAR(all[c].mean, subset[c].mean, 1e-12);
  }
}

TEST_F(StoreTest, WindowFiltersByTime) {
  store_.add_frame(1.0, frame({1, 1, 1, 1, 1, 1, 1, 1, 1}));
  store_.add_frame(5.0, frame({5, 5, 5, 5, 5, 5, 5, 5, 5}));
  store_.add_frame(9.0, frame({9, 9, 9, 9, 9, 9, 9, 9, 9}));
  EXPECT_EQ(store_.frames_in(4.0, 6.0), 1u);
  const auto aggs = store_.aggregate_all(4.0, 6.0);
  EXPECT_DOUBLE_EQ(aggs[0].min, 5.0);
  EXPECT_DOUBLE_EQ(aggs[0].max, 5.0);
  // Window boundaries are inclusive.
  EXPECT_EQ(store_.frames_in(1.0, 9.0), 3u);
}

TEST_F(StoreTest, CapacityEvictsOldestFrames) {
  for (int i = 0; i < 6; ++i) {
    const auto v = static_cast<float>(i);
    store_.add_frame(static_cast<double>(i), frame({v, v, v, v, v, v, v, v, v}));
  }
  EXPECT_EQ(store_.frame_count(), 4u);        // capacity
  EXPECT_EQ(store_.frames_in(0.0, 1.0), 0u);  // evicted
  EXPECT_EQ(store_.frames_in(2.0, 5.0), 4u);
}

TEST_F(StoreTest, LatestReadsNewestFrame) {
  store_.add_frame(1.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  store_.add_frame(2.0, frame({10, 20, 30, 40, 50, 60, 70, 80, 90}));
  EXPECT_DOUBLE_EQ(store_.latest(20, 1), 50.0);
}

TEST_F(StoreTest, ClearDropsEverything) {
  store_.add_frame(1.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  store_.clear();
  EXPECT_EQ(store_.frame_count(), 0u);
}

// --- binary-searched windows and prefix aggregates ----------------------

TEST_F(StoreTest, WindowBoundaryEdgeCases) {
  store_.add_frame(1.0, frame({1, 1, 1, 1, 1, 1, 1, 1, 1}));
  store_.add_frame(5.0, frame({5, 5, 5, 5, 5, 5, 5, 5, 5}));
  store_.add_frame(9.0, frame({9, 9, 9, 9, 9, 9, 9, 9, 9}));
  EXPECT_EQ(store_.frames_in(-10.0, 0.5), 0u);   // entirely before
  EXPECT_EQ(store_.frames_in(9.5, 100.0), 0u);   // entirely after
  EXPECT_EQ(store_.frames_in(2.0, 4.0), 0u);     // gap between frames
  EXPECT_EQ(store_.frames_in(5.0, 5.0), 1u);     // exact single timestamp
  EXPECT_EQ(store_.frames_in(1.0, 9.0), 3u);     // both endpoints inclusive
  EXPECT_EQ(store_.frames_in(6.0, 2.0), 0u);     // inverted window
  const auto empty = store_.aggregate_all(2.0, 4.0);
  EXPECT_DOUBLE_EQ(empty[0].mean, 0.0);
  const auto one = store_.aggregate_all(5.0, 5.0);
  EXPECT_DOUBLE_EQ(one[0].min, 5.0);
  EXPECT_DOUBLE_EQ(one[0].max, 5.0);
  EXPECT_DOUBLE_EQ(one[0].mean, 5.0);
}

TEST_F(StoreTest, DuplicateTimestampsAllLandInTheWindow) {
  store_.add_frame(3.0, frame({1, 1, 1, 1, 1, 1, 1, 1, 1}));
  store_.add_frame(3.0, frame({2, 2, 2, 2, 2, 2, 2, 2, 2}));
  store_.add_frame(3.0, frame({3, 3, 3, 3, 3, 3, 3, 3, 3}));
  EXPECT_EQ(store_.frames_in(3.0, 3.0), 3u);
  const auto aggs = store_.aggregate_all(3.0, 3.0);
  EXPECT_DOUBLE_EQ(aggs[0].min, 1.0);
  EXPECT_DOUBLE_EQ(aggs[0].max, 3.0);
  EXPECT_DOUBLE_EQ(aggs[0].mean, 2.0);
}

TEST_F(StoreTest, PrefixAggregatesSurviveEviction) {
  // Capacity is 4: frames 0 and 1 get evicted, the prefix base carries.
  for (int i = 0; i < 6; ++i) {
    const auto v = static_cast<float>(i);
    store_.add_frame(static_cast<double>(i), frame({v, v, v, v, v, v, v, v, v}));
  }
  const auto aggs = store_.aggregate_all(2.0, 5.0);
  EXPECT_DOUBLE_EQ(aggs[0].min, 2.0);
  EXPECT_DOUBLE_EQ(aggs[0].max, 5.0);
  EXPECT_DOUBLE_EQ(aggs[0].mean, 3.5);  // (2+3+4+5)/4
  // A window starting at the (evicted-into) front of the deque.
  const auto front = store_.aggregate_all(0.0, 3.0);
  EXPECT_DOUBLE_EQ(front[0].mean, 2.5);  // frames 2 and 3 remain
  // Subset aggregation over the same window agrees.
  const auto subset = store_.aggregate_nodes(2.0, 5.0, nodes3());
  EXPECT_NEAR(subset[0].mean, aggs[0].mean, 1e-12);
}

TEST_F(StoreTest, ClearResetsPrefixBase) {
  store_.add_frame(1.0, frame({7, 7, 7, 7, 7, 7, 7, 7, 7}));
  store_.clear();
  store_.add_frame(2.0, frame({1, 1, 1, 1, 1, 1, 1, 1, 1}));
  const auto aggs = store_.aggregate_all(0.0, 10.0);
  EXPECT_DOUBLE_EQ(aggs[0].mean, 1.0);
  EXPECT_NO_THROW(store_.audit_invariants());
}

TEST_F(StoreTest, AggregateAllMatchesAggregateNodesUnderChurn) {
  // Rolling appends with eviction: the prefix-sum fast path must keep
  // agreeing with the raw-value scan.
  for (int i = 0; i < 12; ++i) {
    const auto a = static_cast<float>(i % 5);
    const auto b = static_cast<float>((i * 3) % 7);
    const auto c = static_cast<float>(11 - i);
    store_.add_frame(static_cast<double>(i), frame({a, b, c, b, c, a, c, a, b}));
    const double t0 = std::max(0.0, static_cast<double>(i) - 2.0);
    const auto all = store_.aggregate_all(t0, static_cast<double>(i));
    const auto subset = store_.aggregate_nodes(t0, static_cast<double>(i), nodes3());
    for (std::size_t k = 0; k < kCounters; ++k) {
      EXPECT_DOUBLE_EQ(all[k].min, subset[k].min);
      EXPECT_DOUBLE_EQ(all[k].max, subset[k].max);
      EXPECT_NEAR(all[k].mean, subset[k].mean, 1e-9);
    }
  }
}

TEST_F(StoreTest, PreconditionViolations) {
  EXPECT_THROW(store_.add_frame(1.0, std::vector<float>(5)), PreconditionError);  // wrong size
  store_.add_frame(5.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_THROW(store_.add_frame(4.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9})),
               PreconditionError);  // time went backwards
  EXPECT_THROW((void)store_.aggregate_nodes(0.0, 10.0, {99}), PreconditionError);  // unmanaged
  EXPECT_THROW((void)store_.latest(10, 99), PreconditionError);
  EXPECT_THROW(CounterStore(nodes3(), 0, 4), PreconditionError);
  EXPECT_THROW(CounterStore(nodes3(), 3, 0), PreconditionError);
  EXPECT_THROW(CounterStore({}, 3, 4), PreconditionError);
}

TEST_F(StoreTest, NonFiniteReadingsAreQuarantinedAtIngest) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  store_.add_frame(10.0, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  store_.add_frame(20.0, frame({1, nan, 3, 4, 5, inf, 7, 8, 9}));

  // Aggregates stay finite: corrupt cells ingest as 0.
  const auto aggs = store_.aggregate_all(0.0, 30.0);
  for (const Agg& a : aggs) {
    EXPECT_TRUE(std::isfinite(a.min));
    EXPECT_TRUE(std::isfinite(a.max));
    EXPECT_TRUE(std::isfinite(a.mean));
  }
  EXPECT_DOUBLE_EQ(aggs[1].min, 0.0);  // the NaN cell became the minimum

  // ...but the corruption stays visible to staleness consumers.
  EXPECT_EQ(store_.corrupt_frames_in(0.0, 30.0), 1u);
  EXPECT_EQ(store_.corrupt_frames_in(0.0, 15.0), 0u);
  EXPECT_EQ(store_.corrupt_frames_in(15.0, 30.0), 1u);
}

TEST_F(StoreTest, CorruptFrameCountSurvivesUntilEviction) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  store_.add_frame(10.0, frame({1, nan, 3, 4, 5, 6, 7, 8, 9}));
  for (int i = 0; i < 4; ++i)  // capacity 4: pushes the corrupt frame out
    store_.add_frame(20.0 + i, frame({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(store_.frame_count(), 4u);
  EXPECT_EQ(store_.corrupt_frames_in(0.0, 100.0), 0u);
}

}  // namespace
}  // namespace rush::telemetry
