#include "telemetry/canary.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace rush::telemetry {
namespace {

cluster::FatTreeConfig small_config() {
  cluster::FatTreeConfig cfg;
  cfg.pods = 1;
  cfg.edges_per_pod = 4;
  cfg.nodes_per_edge = 8;
  cfg.node_link_gbps = 10.0;
  cfg.edge_uplink_gbps = 20.0;
  cfg.pod_uplink_gbps = 80.0;
  return cfg;
}

class CanaryTest : public ::testing::Test {
 protected:
  CanaryTest() : tree_(small_config()), net_(tree_) {}
  cluster::FatTree tree_;
  cluster::NetworkModel net_;
};

TEST_F(CanaryTest, ProducesPerNodeWaits) {
  MpiCanary canary(net_, CanaryConfig{}, Rng(1));
  const cluster::NodeSet nodes{0, 1, 8, 9};
  const CanaryResult result = canary.run(nodes);
  ASSERT_EQ(result.send_wait_s.size(), nodes.size());
  ASSERT_EQ(result.recv_wait_s.size(), nodes.size());
  ASSERT_EQ(result.allreduce_wait_s.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_GT(result.send_wait_s[i], 0.0);
    EXPECT_GT(result.recv_wait_s[i], 0.0);
    EXPECT_GT(result.allreduce_wait_s[i], 0.0);
  }
}

TEST_F(CanaryTest, SingleNodeYieldsZeroWaits) {
  MpiCanary canary(net_, CanaryConfig{}, Rng(1));
  const CanaryResult result = canary.run({3});
  EXPECT_EQ(result.send_wait_s, std::vector<double>{0.0});
}

TEST_F(CanaryTest, CongestionInflatesWaits) {
  CanaryConfig cfg;
  cfg.jitter = 0.0;  // deterministic comparison
  MpiCanary canary(net_, cfg, Rng(1));
  const cluster::NodeSet nodes{0, 1, 8, 9};  // straddles edges 0-1
  const CanaryResult calm = canary.run(nodes);
  net_.set_ambient_load(tree_.edge_uplink(0), 22.0);  // oversubscribed uplink
  const CanaryResult congested = canary.run(nodes);
  EXPECT_GT(stats::mean(congested.send_wait_s), 1.5 * stats::mean(calm.send_wait_s));
  EXPECT_GT(stats::mean(congested.allreduce_wait_s),
            1.5 * stats::mean(calm.allreduce_wait_s));
}

TEST_F(CanaryTest, ContainedPlacementIgnoresUplinkCongestion) {
  CanaryConfig cfg;
  cfg.jitter = 0.0;
  MpiCanary canary(net_, cfg, Rng(1));
  const cluster::NodeSet contained{0, 1, 2, 3};  // all on edge 0
  const CanaryResult calm = canary.run(contained);
  net_.set_ambient_load(tree_.edge_uplink(0), 30.0);
  const CanaryResult still_calm = canary.run(contained);
  EXPECT_NEAR(stats::mean(still_calm.send_wait_s), stats::mean(calm.send_wait_s), 1e-9);
}

TEST_F(CanaryTest, FeatureLayoutIsMinMaxMeanPerBenchmark) {
  CanaryResult r;
  r.send_wait_s = {1.0, 3.0};
  r.recv_wait_s = {2.0, 4.0};
  r.allreduce_wait_s = {10.0, 20.0};
  const auto f = r.features();
  EXPECT_DOUBLE_EQ(f[0], 1.0);   // send min
  EXPECT_DOUBLE_EQ(f[1], 3.0);   // send max
  EXPECT_DOUBLE_EQ(f[2], 2.0);   // send mean
  EXPECT_DOUBLE_EQ(f[3], 2.0);   // recv min
  EXPECT_DOUBLE_EQ(f[5], 3.0);   // recv mean
  EXPECT_DOUBLE_EQ(f[6], 10.0);  // allreduce min
  EXPECT_DOUBLE_EQ(f[8], 15.0);  // allreduce mean
}

TEST_F(CanaryTest, RecvWaitsExceedSendWaits) {
  CanaryConfig cfg;
  cfg.jitter = 0.0;
  MpiCanary canary(net_, cfg, Rng(1));
  const CanaryResult r = canary.run({0, 1, 8, 9});
  EXPECT_GT(stats::mean(r.recv_wait_s), stats::mean(r.send_wait_s));
}

TEST_F(CanaryTest, DeterministicWithSameSeed) {
  MpiCanary a(net_, CanaryConfig{}, Rng(42));
  MpiCanary b(net_, CanaryConfig{}, Rng(42));
  const auto ra = a.run({0, 1, 8, 9});
  const auto rb = b.run({0, 1, 8, 9});
  EXPECT_EQ(ra.send_wait_s, rb.send_wait_s);
  EXPECT_EQ(ra.allreduce_wait_s, rb.allreduce_wait_s);
}

TEST_F(CanaryTest, RejectsBadConfigAndInput) {
  CanaryConfig bad;
  bad.message_mb = 0.0;
  EXPECT_THROW(MpiCanary(net_, bad, Rng(1)), PreconditionError);
  MpiCanary canary(net_, CanaryConfig{}, Rng(1));
  EXPECT_THROW((void)canary.run({}), PreconditionError);
}

}  // namespace
}  // namespace rush::telemetry
