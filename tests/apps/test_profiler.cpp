#include "apps/profiler.hpp"

#include <gtest/gtest.h>

namespace rush::apps {
namespace {

RunRecord run_of(std::uint64_t id, const std::string& app, double duration) {
  RunRecord r;
  r.run_id = id;
  r.app = app;
  r.start_s = 0.0;
  r.end_s = duration;
  r.duration_s = duration;
  r.uncontended_s = duration;
  return r;
}

TEST(Profiler, DurationsForFiltersByAppInRecordOrder) {
  Profiler p;
  p.record(run_of(1, "Laghos", 410.0));
  p.record(run_of(2, "AMG", 95.0));
  p.record(run_of(3, "Laghos", 432.5));
  ASSERT_EQ(p.count(), 3u);

  EXPECT_EQ(p.durations_for("Laghos"), (std::vector<double>{410.0, 432.5}));
  EXPECT_EQ(p.durations_for("AMG"), (std::vector<double>{95.0}));
  EXPECT_TRUE(p.durations_for("Kripke").empty());
}

TEST(Profiler, AppsSeenIsFirstSeenOrderWithoutDuplicates) {
  Profiler p;
  p.record(run_of(1, "SWFFT", 120.0));
  p.record(run_of(2, "Laghos", 410.0));
  p.record(run_of(3, "SWFFT", 118.0));
  EXPECT_EQ(p.apps_seen(), (std::vector<std::string>{"SWFFT", "Laghos"}));

  p.clear();
  EXPECT_EQ(p.count(), 0u);
  EXPECT_TRUE(p.apps_seen().empty());
}

TEST(Profiler, SlowdownIsRelativeToUncontendedRun) {
  RunRecord r = run_of(1, "PENNANT", 150.0);
  r.uncontended_s = 100.0;
  EXPECT_DOUBLE_EQ(r.slowdown(), 1.5);
  r.uncontended_s = 0.0;  // degenerate record: no inflation claimed
  EXPECT_DOUBLE_EQ(r.slowdown(), 1.0);
}

}  // namespace
}  // namespace rush::apps
