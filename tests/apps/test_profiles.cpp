#include "apps/profiles.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rush::apps {
namespace {

TEST(Profiles, CatalogHasSevenPaperApps) {
  const auto apps = proxy_apps();
  ASSERT_EQ(apps.size(), 7u);
  const auto names = proxy_app_names();
  EXPECT_EQ(names, (std::vector<std::string>{"Kripke", "AMG", "Laghos", "SWFFT", "PENNANT",
                                             "sw4lite", "LBANN"}));
}

TEST(Profiles, ChannelFractionsSumToOne) {
  for (const AppProfile& app : proxy_apps()) {
    EXPECT_NEAR(app.compute_frac + app.network_frac + app.io_frac, 1.0, 1e-9) << app.name;
    EXPECT_GT(app.base_runtime_s, 0.0) << app.name;
    EXPECT_EQ(app.ref_nodes, 16) << app.name;
  }
}

TEST(Profiles, VariationProneOrdering) {
  // The paper's most variation-prone apps carry the largest stretchable
  // (network + I/O) share.
  const auto laghos = *find_app("Laghos");
  const auto lbann = *find_app("LBANN");
  const auto kripke = *find_app("Kripke");
  const auto pennant = *find_app("PENNANT");
  EXPECT_GT(laghos.network_frac + laghos.io_frac, kripke.network_frac + kripke.io_frac);
  EXPECT_GT(lbann.network_frac + lbann.io_frac, pennant.network_frac + pennant.io_frac);
}

TEST(Profiles, WorkloadClassesCoverAllThree) {
  bool compute = false, network = false, io = false;
  for (const AppProfile& app : proxy_apps()) {
    switch (app.workload) {
      case telemetry::WorkloadClass::Compute:
        compute = true;
        break;
      case telemetry::WorkloadClass::Network:
        network = true;
        break;
      case telemetry::WorkloadClass::Io:
        io = true;
        break;
    }
  }
  EXPECT_TRUE(compute);
  EXPECT_TRUE(network);
  EXPECT_TRUE(io);
}

TEST(Profiles, FindAppByName) {
  EXPECT_TRUE(find_app("AMG").has_value());
  EXPECT_EQ(find_app("AMG")->name, "AMG");
  EXPECT_FALSE(find_app("NotAnApp").has_value());
}

TEST(Profiles, ReferenceScaleIsIdentity) {
  for (const AppProfile& app : proxy_apps()) {
    const ChannelTimes strong = scaled_channels(app, app.ref_nodes, ScalingMode::Strong);
    EXPECT_NEAR(strong.total(), app.base_runtime_s, 1e-9) << app.name;
    const ChannelTimes weak = scaled_channels(app, app.ref_nodes, ScalingMode::Weak);
    EXPECT_NEAR(weak.total(), app.base_runtime_s, 1e-9) << app.name;
  }
}

TEST(Profiles, StrongScalingShrinksComputeGrowsComm) {
  const auto app = *find_app("Laghos");
  const ChannelTimes at16 = scaled_channels(app, 16, ScalingMode::Strong);
  const ChannelTimes at32 = scaled_channels(app, 32, ScalingMode::Strong);
  EXPECT_LT(at32.compute_s, at16.compute_s);
  EXPECT_GT(at32.network_s, at16.network_s);
  EXPECT_LT(at32.io_s, at16.io_s);
  // Amdahl: compute cannot shrink below the serial fraction.
  const ChannelTimes at_huge = scaled_channels(app, 4096, ScalingMode::Strong);
  EXPECT_GT(at_huge.compute_s,
            0.9 * app.serial_fraction * app.base_runtime_s * app.compute_frac);
}

TEST(Profiles, WeakScalingKeepsComputeConstant) {
  const auto app = *find_app("SWFFT");
  const ChannelTimes at8 = scaled_channels(app, 8, ScalingMode::Weak);
  const ChannelTimes at32 = scaled_channels(app, 32, ScalingMode::Weak);
  EXPECT_DOUBLE_EQ(at8.compute_s, at32.compute_s);
  EXPECT_DOUBLE_EQ(at8.io_s, at32.io_s);
  EXPECT_GT(at32.network_s, at8.network_s);
}

TEST(Profiles, StrongScalingSmallerNodeCountRunsLonger) {
  for (const AppProfile& app : proxy_apps()) {
    const double at8 = scaled_channels(app, 8, ScalingMode::Strong).total();
    const double at16 = scaled_channels(app, 16, ScalingMode::Strong).total();
    EXPECT_GT(at8, at16) << app.name;
  }
}

TEST(Profiles, ScaledChannelsRejectsBadNodeCount) {
  const auto app = *find_app("AMG");
  EXPECT_THROW((void)scaled_channels(app, 0, ScalingMode::Strong), PreconditionError);
}

}  // namespace
}  // namespace rush::apps
