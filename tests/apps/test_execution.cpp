#include "apps/execution.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace rush::apps {
namespace {

cluster::FatTreeConfig small_config() {
  cluster::FatTreeConfig cfg;
  cfg.pods = 1;
  cfg.edges_per_pod = 4;
  cfg.nodes_per_edge = 8;
  cfg.node_link_gbps = 10.0;
  cfg.edge_uplink_gbps = 20.0;
  cfg.pod_uplink_gbps = 80.0;
  return cfg;
}

AppProfile test_app(double net_frac = 0.5, double net_rate = 1.0) {
  AppProfile app;
  app.name = "test-app";
  app.base_runtime_s = 100.0;
  app.compute_frac = 1.0 - net_frac;
  app.network_frac = net_frac;
  app.io_frac = 0.0;
  app.net_gbps_per_node = net_rate;
  app.io_gbps_per_node = 0.0;
  app.pattern = cluster::TrafficPattern::AllToAll;
  app.noise_sigma = 0.0;  // deterministic run times for these tests
  // Make node-count scaling a no-op so runtimes equal base_runtime_s
  // regardless of the placement size used by a test.
  app.serial_fraction = 1.0;
  app.comm_scale_exponent = 0.0;
  return app;
}

struct World {
  World() : tree(small_config()), net(tree), fs(50.0) {
    ExecutionConfig cfg;
    cfg.os_noise = 0.0;
    exec.emplace(engine, net, fs, cfg, Rng(1));
  }
  sim::Engine engine;
  cluster::FatTree tree;
  cluster::NetworkModel net;
  cluster::LustreModel fs;
  std::optional<ExecutionModel> exec;
};

TEST(Execution, UncontendedRunMatchesBaseTime) {
  World w;
  std::optional<RunRecord> record;
  w.exec->launch(test_app(), {0, 1, 2, 3}, ScalingMode::Strong,
                 [&](const RunRecord& r) { record = r; });
  w.engine.run();
  ASSERT_TRUE(record.has_value());
  // Contained placement, no competing traffic: essentially no slowdown.
  EXPECT_NEAR(record->duration_s, 100.0, 1.0);
  EXPECT_NEAR(record->slowdown(), 1.0, 0.01);
  EXPECT_EQ(record->node_count, 4);
  EXPECT_EQ(record->app, "test-app");
}

TEST(Execution, RecordTimesAreConsistent) {
  World w;
  std::optional<RunRecord> record;
  w.engine.schedule_at(50.0, [&] {
    w.exec->launch(test_app(), {0, 1}, ScalingMode::Strong,
                   [&](const RunRecord& r) { record = r; });
  });
  w.engine.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_DOUBLE_EQ(record->start_s, 50.0);
  EXPECT_NEAR(record->end_s, record->start_s + record->duration_s, 1e-9);
}

TEST(Execution, CongestionStretchesRuntime) {
  World w;
  std::optional<RunRecord> record;
  // Saturate the edge-0 uplink for the whole run.
  w.net.set_ambient_load(w.tree.edge_uplink(0), 25.0);
  // Job straddles edges 0-1, so its all-to-all crosses the hot uplink.
  w.exec->launch(test_app(0.5, 1.0), {6, 7, 8, 9}, ScalingMode::Strong,
                 [&](const RunRecord& r) { record = r; });
  w.engine.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_GT(record->slowdown(), 1.3);
  EXPECT_GT(record->duration_s, 130.0);
}

TEST(Execution, ComputeBoundJobIsInsensitive) {
  World w;
  std::optional<RunRecord> record;
  w.net.set_ambient_load(w.tree.edge_uplink(0), 25.0);
  w.exec->launch(test_app(/*net_frac=*/0.05, 0.5), {6, 7, 8, 9}, ScalingMode::Strong,
                 [&](const RunRecord& r) { record = r; });
  w.engine.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_LT(record->slowdown(), 1.12);
}

TEST(Execution, MidRunContentionChangeIsIntegrated) {
  // Same job with contention applied only for the second half runs
  // noticeably shorter than one contended start to finish.
  auto run_with_window = [](double congest_from, double congest_until) {
    World w;
    std::optional<RunRecord> record;
    w.engine.schedule_at(congest_from, [&] {
      w.net.set_ambient_load(w.tree.edge_uplink(0), 25.0);
    });
    if (congest_until > congest_from) {
      w.engine.schedule_at(congest_until, [&] {
        w.net.set_ambient_load(w.tree.edge_uplink(0), 0.0);
      });
    }
    w.exec->launch(test_app(), {6, 7, 8, 9}, ScalingMode::Strong,
                   [&](const RunRecord& r) { record = r; });
    w.engine.run();
    return record->duration_s;
  };
  const double fully_contended = run_with_window(0.0, 1e9);
  const double half_contended = run_with_window(60.0, 1e9);
  const double clean = run_with_window(1e6, 0.0);  // congestion after the job
  EXPECT_GT(fully_contended, half_contended + 5.0);
  EXPECT_GT(half_contended, clean + 5.0);
}

TEST(Execution, ConcurrentJobsSlowEachOther) {
  World w;
  std::vector<RunRecord> records;
  const auto app = test_app(0.5, 4.0);  // heavy traffic
  // Both straddle the edge 0-1 boundary.
  w.exec->launch(app, {4, 5, 6, 7, 8, 9}, ScalingMode::Strong,
                 [&](const RunRecord& r) { records.push_back(r); });
  const double solo_projection = [&] {
    World solo;
    std::optional<RunRecord> r;
    solo.exec->launch(app, {4, 5, 6, 7, 8, 9}, ScalingMode::Strong,
                      [&](const RunRecord& rec) { r = rec; });
    solo.engine.run();
    return r->duration_s;
  }();
  w.exec->launch(app, {2, 3, 10, 11, 12, 13}, ScalingMode::Strong,
                 [&](const RunRecord& r) { records.push_back(r); });
  w.engine.run();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_GT(records[0].duration_s, solo_projection);
}

TEST(Execution, CompletionSpeedsUpSurvivors) {
  World w;
  std::vector<RunRecord> records;
  auto heavy = test_app(0.5, 6.0);
  heavy.base_runtime_s = 50.0;  // finishes first
  auto light = test_app(0.5, 0.5);
  light.base_runtime_s = 150.0;
  w.exec->launch(heavy, {4, 5, 6, 7, 8, 9}, ScalingMode::Strong,
                 [&](const RunRecord& r) { records.push_back(r); });
  w.exec->launch(light, {2, 3, 10, 11}, ScalingMode::Strong,
                 [&](const RunRecord& r) { records.push_back(r); });
  w.engine.run();
  ASSERT_EQ(records.size(), 2u);
  // The light job outlives the heavy one and is only contended while the
  // heavy one runs: its slowdown must be below a permanently-contended
  // projection.
  const RunRecord& light_rec = records[1];
  EXPECT_EQ(light_rec.app, "test-app");
  EXPECT_GT(light_rec.slowdown(), 1.0);
}

TEST(Execution, ProjectedEndTracksCompletion) {
  World w;
  std::optional<RunRecord> record;
  const auto id = w.exec->launch(test_app(), {0, 1, 2, 3}, ScalingMode::Strong,
                                 [&](const RunRecord& r) { record = r; });
  EXPECT_TRUE(w.exec->is_running(id));
  const double projected = w.exec->projected_end(id);
  w.engine.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_NEAR(projected, record->end_s, 1.0);  // no contention changes
  EXPECT_FALSE(w.exec->is_running(id));
  EXPECT_THROW((void)w.exec->projected_end(id), PreconditionError);
}

TEST(Execution, RunningCountTracksLifecycle) {
  World w;
  EXPECT_EQ(w.exec->running_count(), 0u);
  w.exec->launch(test_app(), {0, 1}, ScalingMode::Strong, nullptr);
  w.exec->launch(test_app(), {2, 3}, ScalingMode::Strong, nullptr);
  EXPECT_EQ(w.exec->running_count(), 2u);
  w.engine.run();
  EXPECT_EQ(w.exec->running_count(), 0u);
}

TEST(Execution, DestructorCleansUpSources) {
  World w;
  w.exec->launch(test_app(), {6, 7, 8, 9}, ScalingMode::Strong, nullptr);
  EXPECT_GT(w.net.node_xmit_gbps(6), 0.0);
  w.exec.reset();  // destroy with the job still running
  EXPECT_DOUBLE_EQ(w.net.node_xmit_gbps(6), 0.0);
  EXPECT_DOUBLE_EQ(w.fs.total_demand_gbps(), 0.0);
}

TEST(Execution, IntrinsicNoiseVariesRunTimes) {
  World w;
  auto noisy = test_app();
  noisy.noise_sigma = 0.05;
  std::vector<double> durations;
  for (int i = 0; i < 5; ++i) {
    w.exec->launch(noisy, {static_cast<cluster::NodeId>(2 * i),
                           static_cast<cluster::NodeId>(2 * i + 1)},
                   ScalingMode::Strong,
                   [&](const RunRecord& r) { durations.push_back(r.duration_s); });
  }
  w.engine.run();
  ASSERT_EQ(durations.size(), 5u);
  bool any_different = false;
  for (double d : durations)
    if (std::abs(d - durations[0]) > 1e-6) any_different = true;
  EXPECT_TRUE(any_different);
}

TEST(Execution, LaunchRejectsEmptyNodeSet) {
  World w;
  EXPECT_THROW((void)w.exec->launch(test_app(), {}, ScalingMode::Strong, nullptr),
               PreconditionError);
}

TEST(Execution, AbortNeverCompletesAndRemovesTraffic) {
  // The node-crash requeue path: an aborted run must not fire its
  // completion callback, and its traffic must leave the fabric.
  World w;
  bool completed = false;
  const ExecutionModel::RunId id = w.exec->launch(
      test_app(0.5, 2.0), {0, 1, 2, 3}, ScalingMode::Strong,
      [&](const RunRecord&) { completed = true; });
  w.engine.schedule_at(30.0, [&] { w.exec->abort(id); });
  w.engine.run();

  EXPECT_FALSE(completed);
  EXPECT_EQ(w.exec->running_count(), 0u);
  EXPECT_DOUBLE_EQ(w.net.link_load_gbps(w.tree.node_link(0)), 0.0);
}

TEST(Execution, AbortSpeedsUpSurvivors) {
  World w;
  std::optional<RunRecord> record;
  auto heavy = test_app(0.5, 6.0);
  heavy.base_runtime_s = 1000.0;  // would contend for the victim's whole life
  auto light = test_app(0.5, 0.5);
  light.base_runtime_s = 150.0;
  const ExecutionModel::RunId noisy =
      w.exec->launch(heavy, {4, 5, 6, 7, 8, 9}, ScalingMode::Strong, nullptr);
  w.exec->launch(light, {2, 3, 10, 11}, ScalingMode::Strong,
                 [&](const RunRecord& r) { record = r; });

  // Kill the noisy neighbor early; the survivor must finish close to its
  // uncontended time.
  w.engine.schedule_at(10.0, [&] { w.exec->abort(noisy); });
  w.engine.run();
  ASSERT_TRUE(record.has_value());
  EXPECT_GT(record->slowdown(), 1.0);
  EXPECT_LT(record->duration_s, 165.0);
}

TEST(Execution, AbortOfUnknownRunIsRejected) {
  World w;
  EXPECT_THROW(w.exec->abort(12345), PreconditionError);
}

}  // namespace
}  // namespace rush::apps
