#include "apps/noise.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace rush::apps {
namespace {

cluster::FatTreeConfig small_config() {
  cluster::FatTreeConfig cfg;
  cfg.pods = 1;
  cfg.edges_per_pod = 4;
  cfg.nodes_per_edge = 8;
  return cfg;
}

struct World {
  World() : tree(small_config()), net(tree) {}
  sim::Engine engine;
  cluster::FatTree tree;
  cluster::NetworkModel net;
};

cluster::NodeSet spread_nodes() { return {0, 8, 16, 24}; }  // one per edge

TEST(Noise, StartRegistersTrafficSource) {
  World w;
  NoiseJob noise(w.engine, w.net, spread_nodes(), NoiseConfig{}, Rng(1));
  EXPECT_FALSE(w.net.has_source(NoiseJob::kSourceId));
  noise.start();
  EXPECT_TRUE(w.net.has_source(NoiseJob::kSourceId));
  EXPECT_GT(w.net.link_load_gbps(w.tree.edge_uplink(0)), 0.0);
}

TEST(Noise, StopRemovesSource) {
  World w;
  NoiseJob noise(w.engine, w.net, spread_nodes(), NoiseConfig{}, Rng(1));
  noise.start();
  noise.stop();
  EXPECT_FALSE(w.net.has_source(NoiseJob::kSourceId));
  EXPECT_DOUBLE_EQ(w.net.link_load_gbps(w.tree.edge_uplink(0)), 0.0);
}

TEST(Noise, RateStaysWithinConfiguredRange) {
  World w;
  NoiseConfig cfg;
  cfg.rate_lo_gbps = 1.0;
  cfg.rate_hi_gbps = 5.0;
  NoiseJob noise(w.engine, w.net, spread_nodes(), cfg, Rng(2));
  noise.start();
  for (int i = 0; i < 100; ++i) {
    w.engine.run_until(w.engine.now() + cfg.change_period_s);
    EXPECT_GE(noise.current_rate_gbps(), cfg.rate_lo_gbps);
    EXPECT_LE(noise.current_rate_gbps(), cfg.rate_hi_gbps);
  }
}

TEST(Noise, RateVariesOverTime) {
  World w;
  NoiseJob noise(w.engine, w.net, spread_nodes(), NoiseConfig{}, Rng(3));
  noise.start();
  const double first = noise.current_rate_gbps();
  bool changed = false;
  for (int i = 0; i < 20 && !changed; ++i) {
    w.engine.run_until(w.engine.now() + 60.0);
    if (noise.current_rate_gbps() != first) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Noise, BurstsOccurAndAreHigh) {
  World w;
  NoiseConfig cfg;
  cfg.burst_start_probability = 0.5;  // force frequent bursts
  NoiseJob noise(w.engine, w.net, spread_nodes(), cfg, Rng(4));
  noise.start();
  bool saw_burst = false;
  const double burst_floor = cfg.rate_lo_gbps + 0.75 * (cfg.rate_hi_gbps - cfg.rate_lo_gbps);
  for (int i = 0; i < 60; ++i) {
    w.engine.run_until(w.engine.now() + cfg.change_period_s);
    if (noise.bursting()) {
      saw_burst = true;
      EXPECT_GE(noise.current_rate_gbps(), burst_floor);
    }
  }
  EXPECT_TRUE(saw_burst);
}

TEST(Noise, CalmPeriodsStayInLowerHalf) {
  World w;
  NoiseConfig cfg;
  cfg.burst_start_probability = 0.0;  // never burst
  NoiseJob noise(w.engine, w.net, spread_nodes(), cfg, Rng(5));
  noise.start();
  const double calm_ceiling = cfg.rate_lo_gbps + 0.5 * (cfg.rate_hi_gbps - cfg.rate_lo_gbps);
  for (int i = 0; i < 50; ++i) {
    w.engine.run_until(w.engine.now() + cfg.change_period_s);
    EXPECT_FALSE(noise.bursting());
    EXPECT_LE(noise.current_rate_gbps(), calm_ceiling + 1e-9);
  }
}

TEST(Noise, StartIsIdempotent) {
  World w;
  NoiseJob noise(w.engine, w.net, spread_nodes(), NoiseConfig{}, Rng(6));
  noise.start();
  noise.start();  // no double registration
  noise.stop();
  noise.stop();  // no double removal
}

TEST(Noise, RejectsBadConfig) {
  World w;
  EXPECT_THROW(NoiseJob(w.engine, w.net, {0}, NoiseConfig{}, Rng(1)), PreconditionError);
  NoiseConfig bad;
  bad.rate_hi_gbps = bad.rate_lo_gbps - 1.0;
  EXPECT_THROW(NoiseJob(w.engine, w.net, spread_nodes(), bad, Rng(1)), PreconditionError);
}

}  // namespace
}  // namespace rush::apps
