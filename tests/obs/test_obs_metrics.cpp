#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rush::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, HoldsLastValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Histogram, CountSumMinMaxMean) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty
  h.record(1.0);
  h.record(3.0);
  h.record(5.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 9.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, PercentilesOnUniformData) {
  // 1000 evenly spaced samples over [0, 100): percentiles should land
  // within one bucket width (1.0) of the exact quantile.
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.record(static_cast<double>(i) * 0.1);
  EXPECT_NEAR(h.percentile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(0.90), 90.0, 1.0);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 99.9);
}

TEST(Histogram, PercentileIsMonotoneInQ) {
  Histogram h(0.0, 1.0, 20);
  for (int i = 0; i < 500; ++i) h.record(static_cast<double>(i % 97) / 96.0);
  double prev = h.percentile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(Histogram, UnderflowOverflowClampToObservedExtremes) {
  Histogram h(0.0, 10.0, 10);
  h.record(-5.0);   // underflow bucket
  h.record(100.0);  // overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Quantiles never extrapolate beyond what was actually observed.
  EXPECT_GE(h.percentile(0.01), -5.0);
  EXPECT_LE(h.percentile(0.99), 100.0);
}

TEST(Histogram, SingleSampleAllPercentilesEqualIt) {
  Histogram h(0.0, 10.0, 10);
  h.record(7.25);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.25);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 7.25);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 7.25);
}

TEST(MetricsRegistry, InstrumentsAreStableAcrossLookups) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  a.inc(5);
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").value(), 5u);
  Histogram& h = reg.histogram("h", 0.0, 1.0, 4);
  // Later shape arguments are ignored for an existing name.
  EXPECT_EQ(&reg.histogram("h", 5.0, 9.0, 99), &h);
}

TEST(MetricsRegistry, SnapshotJsonContainsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("jobs").inc(3);
  reg.gauge("depth").set(2.5);
  Histogram& h = reg.histogram("wait", 0.0, 100.0, 10);
  h.record(10.0);
  h.record(20.0);
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"wait\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, SnapshotIsDeterministic) {
  auto build = [] {
    MetricsRegistry reg;
    reg.counter("b").inc(2);
    reg.counter("a").inc(1);
    reg.gauge("g").set(1.5);
    return reg.snapshot_json();
  };
  EXPECT_EQ(build(), build());
  // Keys come out sorted regardless of creation order.
  const std::string json = build();
  EXPECT_LT(json.find("\"a\":1"), json.find("\"b\":2"));
}

}  // namespace
}  // namespace rush::obs
