#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"

namespace rush::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, HoldsLastValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Histogram, CountSumMinMaxMean) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty
  h.record(1.0);
  h.record(3.0);
  h.record(5.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 9.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, PercentilesOnUniformData) {
  // 1000 evenly spaced samples over [0, 100): percentiles should land
  // within one bucket width (1.0) of the exact quantile.
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.record(static_cast<double>(i) * 0.1);
  EXPECT_NEAR(h.percentile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(0.90), 90.0, 1.0);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 99.9);
}

TEST(Histogram, PercentileIsMonotoneInQ) {
  Histogram h(0.0, 1.0, 20);
  for (int i = 0; i < 500; ++i) h.record(static_cast<double>(i % 97) / 96.0);
  double prev = h.percentile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(Histogram, UnderflowOverflowClampToObservedExtremes) {
  Histogram h(0.0, 10.0, 10);
  h.record(-5.0);   // underflow bucket
  h.record(100.0);  // overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Quantiles never extrapolate beyond what was actually observed.
  EXPECT_GE(h.percentile(0.01), -5.0);
  EXPECT_LE(h.percentile(0.99), 100.0);
}

TEST(Histogram, SingleSampleAllPercentilesEqualIt) {
  Histogram h(0.0, 10.0, 10);
  h.record(7.25);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.25);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 7.25);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 7.25);
}

TEST(Histogram, Log2BucketBoundariesArePowersOfTwo) {
  // [1,16) over 4 buckets: [1,2) [2,4) [4,8) [8,16), plus under/overflow.
  Histogram h(1.0, 16.0, 4, HistogramScale::Log2);
  h.record(1.0);
  h.record(2.0);
  h.record(3.999);
  h.record(4.0);
  h.record(8.0);
  h.record(15.999);
  h.record(0.5);   // underflow
  h.record(16.0);  // overflow (hi is exclusive)
  const auto b = h.buckets();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[3], 1u);
  EXPECT_EQ(b[4], 2u);
  EXPECT_EQ(b[5], 1u);
}

TEST(Histogram, Log2QueueDepthShapeDoesNotClipDeepQueues) {
  // The sched.queue_depth regression: the old uniform 0..256 shape
  // dumped every deep-queue sample into the overflow bucket, so p50/p99
  // saturated at 256. The Log2 shape the schedulers register (lo=1,
  // hi=16384, 28 buckets => 2 buckets per octave, bucket edges a factor
  // of sqrt(2) apart) resolves depth 4096 to within one geometric
  // bucket.
  Histogram h(1.0, 16384.0, 28, HistogramScale::Log2);
  for (int i = 0; i < 1000; ++i) h.record(4096.0);
  const double p50 = h.percentile(0.5);
  EXPECT_GE(p50, 4096.0 / 1.4143);
  EXPECT_LE(p50, 4096.0 * 1.4143);
  EXPECT_GT(p50, 256.0);  // the clipped value the uniform shape reported
  // Shallow depths still resolve: octave buckets are fine-grained at
  // the low end of the range.
  Histogram shallow(1.0, 16384.0, 28, HistogramScale::Log2);
  for (int i = 0; i < 1000; ++i) shallow.record(3.0);
  EXPECT_NEAR(shallow.percentile(0.5), 3.0, 1.25);
}

TEST(Histogram, Log2PercentileInterpolatesGeometrically) {
  Histogram h(1.0, 1024.0, 10, HistogramScale::Log2);  // one bucket per octave
  for (int i = 0; i < 1000; ++i) h.record(static_cast<double>(1 + (i % 1000)));
  // Monotone in q, and each quantile within one octave of the truth.
  double prev = h.percentile(0.0);
  for (double q = 0.1; q <= 0.9; q += 0.1) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    const double exact = q * 1000.0;
    EXPECT_GE(v, exact / 2.0) << "q=" << q;
    EXPECT_LE(v, exact * 2.0) << "q=" << q;
    prev = v;
  }
}

TEST(Histogram, Log2ZeroAndNegativeGoToUnderflowWithoutNan) {
  Histogram h(1.0, 256.0, 8, HistogramScale::Log2);
  h.record(0.0);
  h.record(-3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), -3.0);  // underflow reports observed min
  EXPECT_EQ(h.buckets()[0], 2u);
}

TEST(Histogram, Log2RequiresPositiveLowerBound) {
  EXPECT_THROW(Histogram(0.0, 256.0, 8, HistogramScale::Log2), PreconditionError);
  EXPECT_THROW(Histogram(-1.0, 256.0, 8, HistogramScale::Log2), PreconditionError);
}

TEST(MetricsRegistry, HistogramForwardsScale) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("depth", 1.0, 16.0, 4, HistogramScale::Log2);
  EXPECT_EQ(h.scale(), HistogramScale::Log2);
  h.record(3.0);  // lands in the [2,4) octave bucket, not uniform slot 1
  EXPECT_EQ(h.buckets()[2], 1u);
  // Scale defaults to Uniform for everyone else.
  EXPECT_EQ(reg.histogram("wait", 0.0, 10.0, 4).scale(), HistogramScale::Uniform);
}

TEST(MetricsRegistry, InstrumentsAreStableAcrossLookups) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  a.inc(5);
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").value(), 5u);
  Histogram& h = reg.histogram("h", 0.0, 1.0, 4);
  // Later shape arguments are ignored for an existing name.
  EXPECT_EQ(&reg.histogram("h", 5.0, 9.0, 99), &h);
}

TEST(MetricsRegistry, SnapshotJsonContainsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("jobs").inc(3);
  reg.gauge("depth").set(2.5);
  Histogram& h = reg.histogram("wait", 0.0, 100.0, 10);
  h.record(10.0);
  h.record(20.0);
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"wait\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, SnapshotIsDeterministic) {
  auto build = [] {
    MetricsRegistry reg;
    reg.counter("b").inc(2);
    reg.counter("a").inc(1);
    reg.gauge("g").set(1.5);
    return reg.snapshot_json();
  };
  EXPECT_EQ(build(), build());
  // Keys come out sorted regardless of creation order.
  const std::string json = build();
  EXPECT_LT(json.find("\"a\":1"), json.find("\"b\":2"));
}

}  // namespace
}  // namespace rush::obs
