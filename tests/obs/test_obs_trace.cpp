// EventTrace behaviour: zero-overhead no-op mode, and a round-trip that
// drives a real scheduler run into a trace, then parses every JSONL line
// with a strict little JSON reader and checks the schema invariants
// documented in docs/trace-format.md.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/execution.hpp"
#include "cluster/allocator.hpp"
#include "sim/engine.hpp"
#include "obs/manifest.hpp"
#include "sched/scheduler.hpp"

namespace rush::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON reader (objects, arrays, strings, numbers, bools,
// null). Fails the test on any syntax error; collects top-level scalar
// fields so assertions can inspect them.
// ---------------------------------------------------------------------------
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  /// Parses one complete JSON value; returns false on any syntax error
  /// or trailing garbage.
  bool parse_top(std::map<std::string, std::string>& top_fields) {
    top_ = &top_fields;
    skip_ws();
    if (!parse_value(/*depth=*/0)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool parse_string(std::string& out) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return false;
            pos_ += 4;  // not decoded; presence-checked only
            out += '?';
            break;
          }
          default: return false;
        }
        ++pos_;
      } else {
        out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool parse_number(std::string& out) {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return false;
    out = s_.substr(start, pos_ - start);
    return true;
  }
  bool parse_value(int depth, std::string* scalar_out = nullptr) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    std::string scratch;
    std::string& scalar = scalar_out ? *scalar_out : scratch;
    if (c == '{') {
      ++pos_;
      if (eat('}')) return true;
      do {
        std::string key;
        if (!parse_string(key)) return false;
        if (!eat(':')) return false;
        std::string value;
        if (!parse_value(depth + 1, &value)) return false;
        if (depth == 0 && top_ != nullptr && !value.empty()) (*top_)[key] = value;
      } while (eat(','));
      return eat('}');
    }
    if (c == '[') {
      ++pos_;
      if (eat(']')) return true;
      do {
        if (!parse_value(depth + 1)) return false;
      } while (eat(','));
      return eat(']');
    }
    if (c == '"') return parse_string(scalar);
    if (s_.compare(pos_, 4, "true") == 0) { pos_ += 4; scalar = "true"; return true; }
    if (s_.compare(pos_, 5, "false") == 0) { pos_ += 5; scalar = "false"; return true; }
    if (s_.compare(pos_, 4, "null") == 0) { pos_ += 4; scalar = "null"; return true; }
    return parse_number(scalar);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::map<std::string, std::string>* top_ = nullptr;
};

// ---------------------------------------------------------------------------
// A tiny deterministic scheduler world (no traffic, no noise).
// ---------------------------------------------------------------------------
sched::JobSpec quiet_spec(int nodes, double runtime_s) {
  apps::AppProfile app;
  app.name = "quiet";
  app.base_runtime_s = runtime_s;
  app.compute_frac = 1.0;
  app.network_frac = 0.0;
  app.io_frac = 0.0;
  app.net_gbps_per_node = 0.0;
  app.io_gbps_per_node = 0.0;
  app.noise_sigma = 0.0;
  app.serial_fraction = 1.0;
  sched::JobSpec spec;
  spec.app = app;
  spec.num_nodes = nodes;
  spec.walltime_estimate_s = runtime_s * 1.2;
  return spec;
}

class AlwaysVariation final : public sched::VariabilityOracle {
 public:
  sched::VariabilityPrediction predict(const sched::Job& job, const cluster::NodeSet&) override {
    // First attempt of every job is "variation"; retries pass.
    return job.skip_count == 0 ? sched::VariabilityPrediction::Variation
                               : sched::VariabilityPrediction::NoVariation;
  }
};

struct World {
  World() : tree(config()), net(tree), fs(1000.0),
            exec(engine, net, fs, exec_config(), Rng(1)),
            allocator(tree.nodes_in_pod(0)) {}

  static cluster::FatTreeConfig config() {
    cluster::FatTreeConfig cfg;
    cfg.pods = 1;
    cfg.edges_per_pod = 2;
    cfg.nodes_per_edge = 32;
    return cfg;
  }
  static apps::ExecutionConfig exec_config() {
    apps::ExecutionConfig cfg;
    cfg.os_noise = 0.0;
    return cfg;
  }

  sim::Engine engine;
  cluster::FatTree tree;
  cluster::NetworkModel net;
  cluster::LustreModel fs;
  apps::ExecutionModel exec;
  cluster::NodeAllocator allocator;
};

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

// ---------------------------------------------------------------------------

TEST(EventTrace, DisabledTraceWritesNothing) {
  EventTrace trace;  // no-op mode
  EXPECT_FALSE(trace.enabled());
  for (int i = 0; i < 1000; ++i) {
    trace.emit_job_submit(static_cast<double>(i), 1, "app", 16, 100.0);
    trace.emit_job_start(static_cast<double>(i), 1, 0.0, false, {1, 2, 3});
    trace.emit_job_end(static_cast<double>(i), 1, 50.0, 1.0, 0);
    trace.emit_predict(static_cast<double>(i), 1, "variation", 0xDEADBEEF);
    trace.emit_alg2_skip(static_cast<double>(i), 1, "variation", 1, 10);
    trace.emit_congestion_episode(static_cast<double>(i), 0.0, 3, 1.5);
  }
  trace.flush();
  EXPECT_EQ(trace.bytes_written(), 0u);
  EXPECT_EQ(trace.records_emitted(), 0u);
}

TEST(EventTrace, RoundTripThroughSchedulerRun) {
  std::ostringstream sink;
  {
    EventTrace trace(sink);
    ASSERT_TRUE(trace.enabled());

    World w;
    AlwaysVariation oracle;
    sched::SchedulerConfig sc;
    sc.rush_enabled = true;
    sc.min_reconsider_interval_s = 10.0;
    sc.retry_period_s = 15.0;
    sc.trace = &trace;
    sched::Scheduler scheduler(w.engine, w.allocator, w.exec,
                               std::make_unique<sched::FcfsPolicy>(),
                               std::make_unique<sched::FcfsPolicy>(), sc, &oracle);

    trace.emit_trial_start(w.engine.now(), "test", 7);
    for (int i = 0; i < 6; ++i) scheduler.submit(quiet_spec(16, 100.0));
    scheduler.submit_at(50.0, quiet_spec(16, 40.0));
    w.engine.run();
    ASSERT_EQ(scheduler.completed_count(), 7u);
    trace.emit_trial_end(w.engine.now(), "test", 7, scheduler.makespan(),
                         scheduler.total_skips());
    EXPECT_GT(scheduler.total_skips(), 0u);
    trace.flush();
    EXPECT_EQ(trace.bytes_written(), sink.str().size());
  }

  const auto lines = lines_of(sink.str());
  ASSERT_GE(lines.size(), 16u);  // 7 x (submit+start+end) + trial pair minus none

  double prev_t = -1.0;
  std::uint64_t prev_seq = 0;
  std::map<std::string, int> event_counts;
  for (const std::string& line : lines) {
    std::map<std::string, std::string> f;
    JsonReader reader(line);
    ASSERT_TRUE(reader.parse_top(f)) << "bad JSON: " << line;
    // Schema envelope: every record carries v/seq/t/ev.
    ASSERT_TRUE(f.contains("v") && f.contains("seq") && f.contains("t") && f.contains("ev"))
        << line;
    EXPECT_EQ(f["v"], std::to_string(EventTrace::kSchemaVersion));
    const double t = std::stod(f["t"]);
    const std::uint64_t seq = std::stoull(f["seq"]);
    EXPECT_GE(t, prev_t) << "sim time went backwards: " << line;
    if (prev_seq != 0) {
      EXPECT_EQ(seq, prev_seq + 1) << "seq gap: " << line;
    }
    prev_t = t;
    prev_seq = seq;

    const std::string ev = f["ev"];
    ++event_counts[ev];
    if (ev == "job_submit") {
      EXPECT_TRUE(f.contains("job") && f.contains("app") && f.contains("nodes") &&
                  f.contains("walltime_est_s"))
          << line;
    } else if (ev == "job_start") {
      EXPECT_TRUE(f.contains("job") && f.contains("wait_s") && f.contains("backfilled")) << line;
    } else if (ev == "job_end") {
      EXPECT_TRUE(f.contains("job") && f.contains("runtime_s") && f.contains("slowdown") &&
                  f.contains("skips"))
          << line;
    } else if (ev == "alg2_skip") {
      EXPECT_TRUE(f.contains("job") && f.contains("prediction") && f.contains("skip_count") &&
                  f.contains("skip_threshold"))
          << line;
      EXPECT_EQ(f["prediction"], "variation");
    } else if (ev == "trial_start" || ev == "trial_end") {
      EXPECT_TRUE(f.contains("policy") && f.contains("seed")) << line;
    }
  }
  EXPECT_EQ(event_counts["trial_start"], 1);
  EXPECT_EQ(event_counts["trial_end"], 1);
  EXPECT_EQ(event_counts["job_submit"], 7);
  EXPECT_EQ(event_counts["job_start"], 7);
  EXPECT_EQ(event_counts["job_end"], 7);
  EXPECT_GE(event_counts["alg2_skip"], 1);
}

TEST(EventTrace, PredictRecordCarriesHexFeatureHash) {
  std::ostringstream sink;
  EventTrace trace(sink);
  trace.emit_predict(1.5, 42, "no-variation", 0x0123456789abcdefULL);
  trace.flush();
  std::map<std::string, std::string> f;
  const std::string line = lines_of(sink.str()).at(0);
  JsonReader reader(line);
  ASSERT_TRUE(reader.parse_top(f));
  EXPECT_EQ(f["ev"], "predict");
  EXPECT_EQ(f["label"], "no-variation");
  EXPECT_EQ(f["feature_hash"], "0123456789abcdef");
}

TEST(FeatureHash, DeterministicAndSensitive) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.0, 3.000001};
  EXPECT_EQ(feature_hash(a), feature_hash(a));
  EXPECT_NE(feature_hash(a), feature_hash(b));
  EXPECT_NE(feature_hash({}), feature_hash({0.0}));
  // -0.0 and 0.0 compare equal; their hashes must too.
  EXPECT_EQ(feature_hash({-0.0}), feature_hash({0.0}));
}

TEST(RunManifest, JsonIsValidAndCarriesProvenance) {
  RunManifest m;
  m.tool = "test_tool";
  m.seed = 99;
  m.trials = 3;
  m.days = 2;
  m.trace_path = "/tmp/t.jsonl";
  m.extra.emplace_back("note", "hello \"world\"");
  const std::string json = manifest_json(m);
  std::map<std::string, std::string> f;
  JsonReader reader(json);
  ASSERT_TRUE(reader.parse_top(f)) << json;
  EXPECT_EQ(f["tool"], "test_tool");
  EXPECT_EQ(f["seed"], "99");
  EXPECT_TRUE(f.contains("git_sha"));
  EXPECT_TRUE(f.contains("build_type"));
  EXPECT_TRUE(f.contains("compiler"));
  EXPECT_TRUE(f.contains("schema"));
}

}  // namespace
}  // namespace rush::obs
