#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace rush::obs {
namespace {

TEST(JsonWriter, FieldsAndNumericElements) {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.field("name", "trial");
  w.field("ok", true);
  w.field("runs", std::uint64_t{3});
  w.begin_array("samples");
  w.element(0.25);
  w.element(1.5);
  w.element(std::uint64_t{7});
  w.end_array();
  w.end_object();
  EXPECT_EQ(out, R"({"name":"trial","ok":true,"runs":3,"samples":[0.25,1.5,7]})");
}

TEST(JsonWriter, RawElementAndRawFieldSpliceRenderedValues) {
  std::string inner;
  JsonWriter iw(inner);
  iw.begin_object();
  iw.field("line", 42);
  iw.end_object();

  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.raw_field("region", inner);
  w.begin_array("locations");
  w.raw_element(inner);
  w.raw_element(inner);
  w.end_array();
  w.end_object();
  EXPECT_EQ(out, R"({"region":{"line":42},"locations":[{"line":42},{"line":42}]})");
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.field("msg", "a\"b\\c\n\td\x01");
  w.end_object();
  EXPECT_EQ(out, "{\"msg\":\"a\\\"b\\\\c\\n\\td\\u0001\"}");
}

TEST(JsonWriter, NonFiniteDoublesRenderAsNull) {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.begin_array("v");
  w.element(std::numeric_limits<double>::infinity());
  w.element(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  w.end_object();
  EXPECT_EQ(out, R"({"v":[null,null]})");
}

}  // namespace
}  // namespace rush::obs
