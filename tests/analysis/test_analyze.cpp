// Tests for the rush_analyze static-analysis subsystem: lexer behaviour,
// the outline parser and cross-TU symbol index, each rule against its
// fixture tree (positive, negative, suppressed), the architecture DAG's
// own consistency, and the baseline round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/include_graph.hpp"
#include "analysis/lexer.hpp"
#include "analysis/outline.hpp"
#include "analysis/rules.hpp"
#include "analysis/symbols.hpp"

namespace ra = rush::analysis;

namespace {

std::filesystem::path fixtures() { return std::filesystem::path(RUSH_ANALYSIS_FIXTURES); }

ra::AnalyzeResult run(const std::string& subtree, std::set<std::string> only = {},
                      std::vector<std::string> ref_subtrees = {}) {
  ra::AnalyzeOptions options;
  options.root = fixtures() / subtree;
  options.only = std::move(only);
  for (const std::string& r : ref_subtrees) options.ref_roots.push_back(fixtures() / r);
  return ra::analyze(options, nullptr);
}

/// The unique function named `name` in an outline; fails the test if the
/// count is not exactly one.
const ra::FunctionDecl& fn_named(const ra::Outline& o, const std::string& name) {
  const ra::FunctionDecl* found = nullptr;
  int count = 0;
  for (const ra::FunctionDecl& f : o.functions) {
    if (f.name == name) {
      found = &f;
      ++count;
    }
  }
  EXPECT_EQ(count, 1) << name;
  if (found == nullptr) throw std::runtime_error("no function named " + name);
  return *found;
}

/// (file, key) pairs of all findings, for order-insensitive comparison.
std::multiset<std::pair<std::string, std::string>> file_keys(const ra::AnalyzeResult& r) {
  std::multiset<std::pair<std::string, std::string>> out;
  for (const ra::Finding& f : r.findings) out.insert({f.file, f.key});
  return out;
}

}  // namespace

// ---------------------------------------------------------------- lexer

TEST(AnalyzeLexer, CommentsStringsAndRawStringsAreOpaque) {
  const ra::SourceFile f = ra::lex_string("core/x.cpp",
      "// rand() here\n"
      "/* std::thread there */\n"
      "const char* s = \"rand()\";\n"
      "const char* r = R\"x(std::async 'y')x\";\n"
      "int real_token = 1;\n");
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (f.tokens[i].kind == ra::TokenKind::kIdentifier) {
      EXPECT_NE(f.tok(i), "rand");
      EXPECT_NE(f.tok(i), "thread");
      EXPECT_NE(f.tok(i), "async");
    }
  }
  // The raw string is one token and line numbers survive it.
  ASSERT_GE(f.tokens.size(), 2u);
  const ra::Token& lit = f.tokens[f.tokens.size() - 2];  // the `1` before `;`
  EXPECT_EQ(f.tok(lit), "1");
  EXPECT_EQ(lit.line, 5);
}

TEST(AnalyzeLexer, DigitSeparatorsDoNotOpenCharLiterals) {
  const ra::SourceFile f = ra::lex_string("core/x.cpp", "int big = 1'000'000; int after = 2;\n");
  std::vector<std::string> idents;
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (f.tokens[i].kind == ra::TokenKind::kIdentifier) idents.emplace_back(f.tok(i));
  }
  EXPECT_EQ(idents, (std::vector<std::string>{"int", "big", "int", "after"}));
}

TEST(AnalyzeLexer, DirectivesFoldContinuationsAndExtractIncludes) {
  const ra::SourceFile f = ra::lex_string("core/x.cpp",
      "#pragma once\n"
      "#include \"common/rng.hpp\"  // trailing comment\n"
      "#include <vector>\n"
      "#define WIDE(a, b) \\\n  ((a) + (b))\n"
      "int x = 0;\n");
  EXPECT_TRUE(f.has_pragma_once);
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].target, "common/rng.hpp");
  EXPECT_FALSE(f.includes[0].angled);
  EXPECT_TRUE(f.includes[1].angled);
  ASSERT_GE(f.directives.size(), 4u);
  EXPECT_EQ(f.directives[3].keyword, "define");
  // The continuation folded into one directive: the next token is `int` on line 6.
  EXPECT_EQ(f.tokens.front().line, 6);
}

TEST(AnalyzeLexer, AllowMarkersCoverOwnAndNextLine) {
  const ra::SourceFile f = ra::lex_string("core/x.cpp",
      "// rush-analyze: allow(naked-rand, raw-thread) reason here\n"
      "int x;\n"
      "int y;  // rush-lint: allow(unordered-iter)\n");
  EXPECT_TRUE(f.is_allowed(1, "naked-rand"));
  EXPECT_TRUE(f.is_allowed(2, "naked-rand"));
  EXPECT_TRUE(f.is_allowed(2, "raw-thread"));
  EXPECT_FALSE(f.is_allowed(3, "naked-rand"));
  EXPECT_TRUE(f.is_allowed(3, "unordered-iter"));  // legacy spelling
  EXPECT_FALSE(f.is_allowed(1, "unordered-iter"));
}

TEST(AnalyzeLexer, AnnotationsAttachStandaloneBelowAndTrailingInPlace) {
  const ra::SourceFile f = ra::lex_string("sched/x.hpp",
      "// rush: noalloc\n"
      "void pass();\n"
      "int depth_ = 0;  // rush: guarded_by(mu_)\n"
      "/* rush: pinned */\n"
      "int k;\n"
      "// rush-analyze: allow(naked-rand) not an annotation\n"
      "int no_annotation_here;\n");
  EXPECT_EQ(f.annotations_on(2), (std::vector<std::string>{"noalloc"}));
  EXPECT_TRUE(f.annotations_on(1).empty());  // standalone attaches below, not in place
  EXPECT_EQ(f.annotations_on(3), (std::vector<std::string>{"guarded_by(mu_)"}));
  EXPECT_EQ(f.annotations_on(5), (std::vector<std::string>{"pinned"}));
  // The allow-marker spelling has '-' after "rush" and is not an annotation.
  EXPECT_TRUE(f.annotations_on(6).empty());
  EXPECT_TRUE(f.annotations_on(7).empty());
}

// ----------------------------------------------------------- outline

TEST(AnalyzeOutline, MembersFunctionsAccessAndTraits) {
  const ra::SourceFile f = ra::lex_string("sched/q.hpp",
      "namespace rush::sched {\n"
      "class Queue {\n"
      " public:\n"
      "  Queue();\n"
      "  ~Queue();\n"
      "  void push(int job, double prio = 0.0);\n"
      "  [[nodiscard]] int depth() const noexcept { return depth_; }\n"
      "  static Queue make(int cap);\n"
      "  virtual void on_start(int id);\n"
      "  bool operator<(const Queue& o) const;\n"
      "  void run(std::unique_lock<std::mutex>& lock);\n"
      " protected:\n"
      "  void requeue(int id);\n"
      " private:\n"
      "  int depth_ = 0;\n"
      "  std::vector<int> jobs_{};\n"
      "};\n"
      "}  // namespace rush::sched\n");
  const ra::Outline o = ra::build_outline(f);

  const ra::FunctionDecl& push = fn_named(o, "push");
  EXPECT_EQ(push.qualified(), "Queue::push");
  EXPECT_EQ(push.access, ra::Access::kPublic);
  EXPECT_EQ(push.arity, 2);  // default argument still counts
  EXPECT_TRUE(push.has_params);
  EXPECT_FALSE(push.is_definition);
  EXPECT_FALSE(push.is_const);
  // `namespace rush::sched` splits into components.
  EXPECT_EQ(push.namespaces, (std::vector<std::string>{"rush", "sched"}));

  const ra::FunctionDecl& depth = fn_named(o, "depth");
  EXPECT_TRUE(depth.is_const);
  EXPECT_TRUE(depth.is_definition);
  EXPECT_TRUE(depth.inline_like);  // defined in-class
  EXPECT_FALSE(depth.has_params);

  EXPECT_TRUE(fn_named(o, "make").is_static);
  EXPECT_TRUE(fn_named(o, "on_start").is_virtual);
  EXPECT_TRUE(fn_named(o, "run").has_lock_param);
  EXPECT_EQ(fn_named(o, "requeue").access, ra::Access::kProtected);

  const ra::FunctionDecl& less = fn_named(o, "operator<");
  EXPECT_TRUE(less.is_operator);
  EXPECT_TRUE(less.is_const);

  int ctors = 0;
  for (const ra::FunctionDecl& fd : o.functions) ctors += fd.is_ctor_dtor ? 1 : 0;
  EXPECT_EQ(ctors, 2);  // Queue() and ~Queue()

  ASSERT_EQ(o.members.size(), 2u);
  EXPECT_EQ(o.members[0].name, "depth_");
  EXPECT_EQ(o.members[0].cls(), "Queue");
  EXPECT_EQ(o.members[0].line, 15);
  EXPECT_EQ(o.members[1].name, "jobs_");  // brace-initialized member
}

TEST(AnalyzeOutline, GnarlyTemplatesNestedClassesAndOutOfLineMembers) {
  const ra::SourceFile f = ra::lex_string("ml/t.cpp",
      "namespace rush::ml {\n"
      "template <typename T, std::size_t N>\n"
      "class Ring {\n"
      " public:\n"
      "  struct Slot {\n"
      "    void mark(int phase);\n"
      "    int phase_ = 0;\n"
      "  };\n"
      "  T& at(std::size_t i) { return data_[i % N]; }\n"
      " private:\n"
      "  std::array<T, N> data_{};\n"
      "};\n"
      "void Ring<double, 8>::Slot::mark(int phase) { phase_ = phase; }\n"
      "template <typename T>\n"
      "T clamp_unit(T v) { return v < T{0} ? T{0} : v; }\n"
      "double free_helper(std::map<int, double>& m, int k) { return m[k]; }\n"
      "}  // namespace rush::ml\n");
  const ra::Outline o = ra::build_outline(f);

  // Nested-class member declaration and its out-of-line definition.
  int marks = 0;
  for (const ra::FunctionDecl& fd : o.functions) {
    if (fd.name != "mark") continue;
    ++marks;
    EXPECT_EQ(fd.cls(), "Slot");
    if (fd.is_definition) {
      // Out-of-line path: template args stripped from the qualifiers.
      EXPECT_GE(fd.classes.size(), 2u);
      EXPECT_EQ(fd.classes.back(), "Slot");
    }
  }
  EXPECT_EQ(marks, 2);

  const ra::FunctionDecl& clamp = fn_named(o, "clamp_unit");
  EXPECT_TRUE(clamp.inline_like);  // template
  EXPECT_TRUE(clamp.is_definition);
  EXPECT_EQ(clamp.cls(), "");

  // Template args in a parameter type must not confuse the arity count.
  EXPECT_EQ(fn_named(o, "free_helper").arity, 2);

  // The nested member variable binds to the innermost class.
  bool phase_seen = false;
  for (const ra::MemberVar& m : o.members) {
    if (m.name == "phase_") {
      phase_seen = true;
      EXPECT_EQ(m.cls(), "Slot");
    }
  }
  EXPECT_TRUE(phase_seen);
}

TEST(AnalyzeOutline, AnnotationsBindToTheSpannedDeclaration) {
  const ra::SourceFile f = ra::lex_string("sched/a.cpp",
      "namespace rush::sched {\n"
      "// rush: noalloc\n"
      "void Fast::pass(int n,\n"
      "                double w) {\n"
      "  (void)n; (void)w;\n"
      "}\n"
      "void Fast::other() {}\n"
      "}  // namespace rush::sched\n");
  const ra::Outline o = ra::build_outline(f);
  EXPECT_TRUE(fn_named(o, "pass").has_annotation("noalloc"));
  EXPECT_FALSE(fn_named(o, "other").has_annotation("noalloc"));
}

TEST(AnalyzeOutline, MemberGuardParsesItsArgument) {
  const ra::SourceFile f = ra::lex_string("obs/g.hpp",
      "class R {\n"
      "  // rush: guarded_by(mu_)\n"
      "  int a_ = 0;\n"
      "  int b_ = 0;  // rush: guarded_by(other_mu_)\n"
      "  int c_ = 0;\n"
      "};\n");
  const ra::Outline o = ra::build_outline(f);
  ASSERT_EQ(o.members.size(), 3u);
  EXPECT_EQ(o.members[0].guard(), "mu_");
  EXPECT_EQ(o.members[1].guard(), "other_mu_");
  EXPECT_EQ(o.members[2].guard(), "");
}

// -------------------------------------------------------- symbol index

TEST(AnalyzeSymbols, PairsDeclarationsWithCrossTuDefinitions) {
  const ra::SourceFile hpp = ra::lex_string("sim/e.hpp",
      "class Engine {\n"
      " public:\n"
      "  void step(double dt);\n"
      "  void step(double dt, int substeps);\n"
      "};\n");
  const ra::SourceFile cpp = ra::lex_string("sim/e.cpp",
      "void Engine::step(double dt) { (void)dt; }\n"
      "void Engine::step(double dt, int substeps) { (void)dt; (void)substeps; }\n"
      "static void caller(Engine& e) { e.step(0.1); }\n");
  ra::SymbolIndex index;
  index.add_file(hpp, true);
  index.add_file(cpp, true);
  index.finalize();

  EXPECT_EQ(index.find_definitions("Engine", "step", 1).size(), 1u);
  EXPECT_EQ(index.find_definitions("Engine", "step", 2).size(), 1u);
  // No arity match falls back to every definition of the name rather
  // than claiming "no definition".
  EXPECT_EQ(index.find_definitions("Engine", "step", 5).size(), 2u);
  EXPECT_TRUE(index.find_definitions("Engine", "missing", 0).empty());

  // `step` is called; `caller` itself is referenced nowhere.
  EXPECT_TRUE(index.referenced("step"));
  EXPECT_FALSE(index.referenced("caller"));
}

// ------------------------------------------------------------- layer DAG

TEST(AnalyzeLayerDag, UpwardAndUndeclaredIncludesAreFindingsSuppressionWorks) {
  const ra::AnalyzeResult r = run("layering", {"layer-dag"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"common/bad_up.hpp", "sim/clock.hpp"},  // upward include
                {"plugins/widget.hpp", "plugins"},       // undeclared module
            }));
}

TEST(AnalyzeLayerDag, FaultsSitsBelowSchedAndCyclesAreCaught) {
  // The faults module may depend downward (sim) but not upward (sched);
  // the mutual include between the two fixture headers is also a cycle.
  const ra::AnalyzeResult r = run("faultdag", {"layer-dag", "include-cycle"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"faults/injector.hpp", "sched/hook.hpp"},              // upward include
                {"sched/hook.hpp", "sched/hook.hpp->faults/injector.hpp"},  // cycle back edge
            }));
}

TEST(AnalyzeLayerDag, RushDagIsAcyclicAndClosed) {
  const ra::LayerDag& dag = ra::rush_layer_dag();
  // Closed: every allowed dependency is itself a declared module.
  for (const auto& [mod, deps] : dag) {
    for (const std::string& dep : deps) {
      EXPECT_TRUE(dag.count(dep) > 0) << mod << " -> " << dep;
    }
  }
  // Acyclic: repeatedly strip modules whose deps are all stripped.
  std::set<std::string> remaining;
  for (const auto& [mod, deps] : dag) remaining.insert(mod);
  bool progress = true;
  while (progress && !remaining.empty()) {
    progress = false;
    for (auto it = remaining.begin(); it != remaining.end();) {
      const std::set<std::string>& deps = dag.at(*it);
      const bool free = std::none_of(deps.begin(), deps.end(), [&](const std::string& d) {
        return remaining.count(d) > 0;
      });
      if (free) {
        it = remaining.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  EXPECT_TRUE(remaining.empty()) << "cycle among remaining modules";
}

TEST(AnalyzeIncludeCycle, CycleIsReportedOnceStandaloneQuiet) {
  const ra::AnalyzeResult r = run("cycle", {"include-cycle"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "include-cycle");
  EXPECT_EQ(r.findings[0].key, "c.hpp->a.hpp");
  EXPECT_NE(r.findings[0].message.find("a.hpp -> b.hpp -> c.hpp -> a.hpp"),
            std::string::npos)
      << r.findings[0].message;
}

// ----------------------------------------------------------- determinism

TEST(AnalyzeNakedRand, FiresOnEveryFormRespectsHomeAndSuppressions) {
  const ra::AnalyzeResult r = run("determinism", {"naked-rand"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"core/bad_rand.cpp", "rand"},
                {"core/bad_rand.cpp", "srand"},
                {"core/bad_rand.cpp", "random_device"},
                {"core/bad_rand.cpp", "time"},
                {"core/bad_rand.cpp", "time"},
            }));
}

TEST(AnalyzeRawThread, FiresOnThreadAsyncOmpOutsidePool) {
  const ra::AnalyzeResult r = run("determinism", {"raw-thread"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"core/bad_thread.cpp", "thread"},
                {"core/bad_thread.cpp", "async"},
                {"core/bad_thread.cpp", "omp"},
            }));
}

TEST(AnalyzeUnorderedIter, SeesCrossFileMembersSkipsSortedCopiesAndScope) {
  const ra::AnalyzeResult r = run("determinism", {"unordered-iter"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"sched/bad_iter.cpp", "weights_"},
            }));
}

TEST(AnalyzeSchedLinearScan, FlagsMemberScansHonoursExemptionAndMarkers) {
  const ra::AnalyzeResult r = run("determinism", {"sched-linear-scan"});
  // queue_ and pending_ fire; the allow-markered running_ scan, the
  // local-container scan, and everything in reference_scheduler.cpp
  // (home-file exemption) stay quiet.
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"sched/bad_scan.cpp", "queue_"},
                {"sched/bad_scan.cpp", "pending_"},
            }));
}

// -------------------------------------------------------- header hygiene

TEST(AnalyzePragmaOnce, MissingGuardIsAFinding) {
  const ra::AnalyzeResult r = run("hygiene", {"pragma-once"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"obs/no_guard.hpp", "missing"},
            }));
}

TEST(AnalyzeHeaderDef, FlagsOnlyNonInlineNamespaceScopeDefinitions) {
  const ra::AnalyzeResult r = run("hygiene", {"header-def"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"obs/bad_defs.hpp", "parse_flag"},
                {"obs/bad_defs.hpp", "Writer::flush"},
                {"obs/bad_defs.hpp", "operator=="},
            }));
}

TEST(AnalyzeRedundantInclude, DuplicatesAndPrimaryHeaderEchoes) {
  const ra::AnalyzeResult r = run("hygiene", {"redundant-include"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"cluster/widget.cpp", "common/base.hpp"},
                {"obs/dup_include.hpp", "common/base.hpp"},
            }));
}

TEST(AnalyzeUnusedModuleInclude, UnreferencedModuleOnly) {
  const ra::AnalyzeResult r = run("hygiene", {"unused-module-include"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"telemetry/unused_inc.hpp", "sim/thing.hpp"},
            }));
}

// ------------------------------------------------------ contract rules

TEST(AnalyzeConstCast, FlaggedEverywhereMarkerAndOpaqueTextQuiet) {
  const ra::AnalyzeResult r = run("constcast", {"const-cast"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"obs/cast.cpp", "const_cast"},
            }));
}

TEST(AnalyzeMissingExpects, PairsDeclWithDefinitionHonoursExemptions) {
  const ra::AnalyzeResult r = run("expects", {"missing-expects"});
  // push (def without RUSH_EXPECTS) and the in-class reserve_hint fire;
  // drop (has RUSH_EXPECTS), const/no-param/private members, both marker
  // spellings, and the telemetry module stay quiet.
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"sched/queue.hpp", "MiniQueue::push"},
                {"sched/queue.hpp", "MiniQueue::reserve_hint"},
            }));
}

TEST(AnalyzeTraceSimTime, FirstArgumentMustCarrySimTime) {
  const ra::AnalyzeResult r = run("tracetime", {"trace-sim-time"});
  // now()/*_s/t first args are fine; a counter first arg and an empty
  // argument list fire; the allow-markered replay call stays quiet.
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"sim/emitter.cpp", "emit_event"},
                {"sim/emitter.cpp", "emit_tick"},
            }));
}

TEST(AnalyzeNoallocPath, ClosureOverSameModuleCalleesMemberScratchAllowed) {
  const ra::AnalyzeResult r = run("noalloc", {"noalloc-path"});
  // The annotated root's local vector + its growth fire; `new` fires in a
  // callee (reachability, not annotation, is the contract); the
  // trailing-underscore member scratch, the static local, the reference
  // binding, the allow-markered lazy init, and the unreachable
  // cold_setup stay quiet.
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"sched/fast.cpp", "pass:locals"},
                {"sched/fast.cpp", "pass:locals.push_back"},
                {"sched/fast.cpp", "helper:new"},
            }));
}

TEST(AnalyzeGuardedMember, TouchBeforeLockFiresHelpersAndCtorsExempt) {
  const ra::AnalyzeResult r = run("guarded", {"guarded-member"});
  // The pre-lock touch in peek_racy and the lockless in-class empty_racy
  // fire; locked methods, the *_locked helper, the lock-parameter
  // helper, the constructor, other.table_, and the allow-markered
  // size_estimate stay quiet.
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"obs/registry.cpp", "table_@peek_racy"},
                {"obs/registry.hpp", "table_@empty_racy"},
            }));
}

TEST(AnalyzeDeadSymbol, UnreferencedDefinitionsOnlyVirtualOperatorMainExempt) {
  const ra::AnalyzeResult r = run("deadsym", {"dead-symbol"});
  // orphan and bench_only are referenced nowhere in the tree; inline/
  // constexpr/template header API, the virtual override, the operator,
  // main, and the allow-markered tolerated stay quiet.
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"core/util.cpp", "orphan"},
                {"core/util.cpp", "bench_only"},
            }));
}

TEST(AnalyzeDeadSymbol, RefRootsKeepExternallyExercisedApiAlive) {
  const ra::AnalyzeResult r = run("deadsym", {"dead-symbol"}, {"deadsym_ref"});
  // bench_only is called from the reference tree, so only orphan remains;
  // the reference tree's own local_orphan is not a rule target.
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"core/util.cpp", "orphan"},
            }));
  EXPECT_EQ(r.stats.ref_files, 1u);
}

// ---------------------------------------------------------- integration

TEST(AnalyzeFullCatalogue, FixtureTreesProduceExactlyTheSeededFindings) {
  // Fixture functions are mostly unreferenced by construction, so the
  // full catalogue adds deterministic dead-symbol (and in sim/sched
  // trees missing-expects) findings on top of each tree's seeded rule.
  EXPECT_EQ(run("determinism").findings.size(), 25u);  // 5 rand + 3 thread + 1 iter + 2 scan + 2 expects + 12 dead
  EXPECT_EQ(run("hygiene").findings.size(), 8u);  // 1 guard + 3 defs + 2 redundant + 1 unused + 1 dead
  EXPECT_EQ(run("layering").findings.size(), 2u);
  EXPECT_EQ(run("cycle").findings.size(), 1u);
  EXPECT_EQ(run("faultdag").findings.size(), 2u);   // 1 upward include + 1 cycle
  EXPECT_EQ(run("expects").findings.size(), 9u);    // 2 expects + 7 dead
  EXPECT_EQ(run("tracetime").findings.size(), 3u);  // 2 trace + 1 dead
  EXPECT_EQ(run("noalloc").findings.size(), 8u);    // 3 noalloc + 3 expects + 2 dead
  EXPECT_EQ(run("guarded").findings.size(), 9u);    // 2 guarded + 7 dead
  EXPECT_EQ(run("deadsym").findings.size(), 2u);
  EXPECT_EQ(run("constcast").findings.size(), 4u);  // 1 cast + 3 dead
}

// -------------------------------------------------------------- baseline

TEST(AnalyzeBaseline, RoundTripSuppressesAndReportsStaleEntries) {
  const ra::AnalyzeResult raw = run("hygiene");
  ASSERT_FALSE(raw.findings.empty());

  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "rush_analyze_baseline.json";
  {
    ra::Baseline empty;
    std::ofstream out(path);
    out << empty.render(raw.findings);
  }

  ra::Baseline loaded = ra::Baseline::load(path);
  EXPECT_EQ(loaded.entries().size(), raw.findings.size());

  ra::AnalyzeOptions options;
  options.root = fixtures() / "hygiene";
  const ra::AnalyzeResult suppressed = ra::analyze(options, &loaded);
  EXPECT_TRUE(suppressed.findings.empty());
  EXPECT_EQ(suppressed.baselined.size(), raw.findings.size());
  EXPECT_TRUE(suppressed.unused_baseline.empty());
  std::filesystem::remove(path);
}

TEST(AnalyzeBaseline, StaleEntryIsReportedNotFatal) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "rush_analyze_stale.json";
  {
    std::ofstream out(path);
    out << R"({"version":1,"entries":[
      {"rule":"naked-rand","file":"core/gone.cpp","key":"rand","reason":"deleted file"}
    ]})";
  }
  ra::Baseline loaded = ra::Baseline::load(path);
  ra::AnalyzeOptions options;
  options.root = fixtures() / "cycle";
  const ra::AnalyzeResult r = ra::analyze(options, &loaded);
  ASSERT_EQ(r.unused_baseline.size(), 1u);
  EXPECT_EQ(r.unused_baseline[0].file, "core/gone.cpp");
  std::filesystem::remove(path);
}

TEST(AnalyzeBaseline, MissingFileMeansEmpty) {
  const ra::Baseline b = ra::Baseline::load("/nonexistent/rush/baseline.json");
  EXPECT_TRUE(b.entries().empty());
}

// ------------------------------------------------------------ reporting

TEST(AnalyzeReport, JsonAndHumanRendersCarryTheFindings) {
  const ra::AnalyzeResult r = run("cycle");
  const std::string human = ra::render_human(r);
  EXPECT_NE(human.find("include-cycle"), std::string::npos);
  const std::string json = ra::render_json(r);
  EXPECT_NE(json.find("\"findings\":["), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"include-cycle\""), std::string::npos);
}

TEST(AnalyzeCatalogue, EveryRuleIsDocumented) {
  std::set<std::string> names;
  for (const ra::RuleInfo& r : ra::rule_catalogue()) {
    EXPECT_FALSE(r.summary.empty()) << r.name;
    names.insert(r.name);
  }
  for (const char* expected :
       {"layer-dag", "include-cycle", "naked-rand", "raw-thread", "unordered-iter",
        "sched-linear-scan", "pragma-once", "header-def", "redundant-include",
        "unused-module-include", "const-cast", "missing-expects", "trace-sim-time",
        "noalloc-path", "guarded-member", "dead-symbol"}) {
    EXPECT_TRUE(names.count(expected) > 0) << expected;
  }
}

// ------------------------------------------------- analyzer cache/stats

TEST(AnalyzeDriver, LexCachePersistsAcrossRunsAndStatsCount) {
  ra::Analyzer analyzer;
  ra::AnalyzeOptions options;
  options.root = fixtures() / "hygiene";

  const ra::AnalyzeResult first = analyzer.run(options, nullptr);
  EXPECT_EQ(first.stats.files_analyzed, first.files_analyzed);
  EXPECT_EQ(first.stats.cache_hits, 0u);
  EXPECT_EQ(first.stats.files_lexed, first.files_analyzed);
  EXPECT_GT(first.stats.tokens, 0u);
  EXPECT_GE(first.stats.elapsed_s, 0.0);
  EXPECT_EQ(analyzer.cached_files(), first.files_analyzed);

  const ra::AnalyzeResult second = analyzer.run(options, nullptr);
  EXPECT_EQ(second.stats.files_lexed, 0u);
  EXPECT_EQ(second.stats.cache_hits, second.files_analyzed);
  EXPECT_EQ(file_keys(first), file_keys(second));  // cache changes nothing

  const std::string line = ra::render_stats(second.stats);
  EXPECT_NE(line.find("cached"), std::string::npos);
}

// ----------------------------------------------------------------- sarif

TEST(AnalyzeReport, SarifCarriesRulesResultsAndLocations) {
  const ra::AnalyzeResult r = run("cycle");
  const std::string sarif = ra::render_sarif(r);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"rush_analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"include-cycle\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"c.hpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":2"), std::string::npos);
  // Every catalogue rule is described in the driver metadata.
  for (const ra::RuleInfo& info : ra::rule_catalogue()) {
    EXPECT_NE(sarif.find("\"id\":\"" + info.name + "\""), std::string::npos) << info.name;
  }
}

TEST(AnalyzeBaseline, ContractRuleFindingsRoundTripThroughTheBaseline) {
  // Every new rule's finding must be suppressible by a (rule, file, key)
  // baseline entry, keeping --fix-baseline usable for incremental adoption.
  for (const std::string tree : {"expects", "tracetime", "noalloc", "guarded",
                                 "deadsym", "constcast"}) {
    const ra::AnalyzeResult raw = run(tree);
    ASSERT_FALSE(raw.findings.empty()) << tree;

    const std::filesystem::path path = std::filesystem::path(::testing::TempDir()) /
                                       ("rush_analyze_" + tree + "_baseline.json");
    {
      ra::Baseline empty;
      std::ofstream out(path);
      out << empty.render(raw.findings);
    }
    ra::Baseline loaded = ra::Baseline::load(path);
    ra::AnalyzeOptions options;
    options.root = fixtures() / tree;
    const ra::AnalyzeResult suppressed = ra::analyze(options, &loaded);
    EXPECT_TRUE(suppressed.findings.empty()) << tree;
    EXPECT_EQ(suppressed.baselined.size(), raw.findings.size()) << tree;
    std::filesystem::remove(path);
  }
}
