// Tests for the rush_analyze static-analysis subsystem: lexer behaviour,
// each rule against its fixture tree (positive, negative, suppressed),
// the architecture DAG's own consistency, and the baseline round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/include_graph.hpp"
#include "analysis/lexer.hpp"
#include "analysis/rules.hpp"

namespace ra = rush::analysis;

namespace {

std::filesystem::path fixtures() { return std::filesystem::path(RUSH_ANALYSIS_FIXTURES); }

ra::AnalyzeResult run(const std::string& subtree, std::set<std::string> only = {}) {
  ra::AnalyzeOptions options;
  options.root = fixtures() / subtree;
  options.only = std::move(only);
  return ra::analyze(options, nullptr);
}

/// (file, key) pairs of all findings, for order-insensitive comparison.
std::multiset<std::pair<std::string, std::string>> file_keys(const ra::AnalyzeResult& r) {
  std::multiset<std::pair<std::string, std::string>> out;
  for (const ra::Finding& f : r.findings) out.insert({f.file, f.key});
  return out;
}

}  // namespace

// ---------------------------------------------------------------- lexer

TEST(AnalyzeLexer, CommentsStringsAndRawStringsAreOpaque) {
  const ra::SourceFile f = ra::lex_string("core/x.cpp",
      "// rand() here\n"
      "/* std::thread there */\n"
      "const char* s = \"rand()\";\n"
      "const char* r = R\"x(std::async 'y')x\";\n"
      "int real_token = 1;\n");
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (f.tokens[i].kind == ra::TokenKind::kIdentifier) {
      EXPECT_NE(f.tok(i), "rand");
      EXPECT_NE(f.tok(i), "thread");
      EXPECT_NE(f.tok(i), "async");
    }
  }
  // The raw string is one token and line numbers survive it.
  ASSERT_GE(f.tokens.size(), 2u);
  const ra::Token& lit = f.tokens[f.tokens.size() - 2];  // the `1` before `;`
  EXPECT_EQ(f.tok(lit), "1");
  EXPECT_EQ(lit.line, 5);
}

TEST(AnalyzeLexer, DigitSeparatorsDoNotOpenCharLiterals) {
  const ra::SourceFile f = ra::lex_string("core/x.cpp", "int big = 1'000'000; int after = 2;\n");
  std::vector<std::string> idents;
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (f.tokens[i].kind == ra::TokenKind::kIdentifier) idents.emplace_back(f.tok(i));
  }
  EXPECT_EQ(idents, (std::vector<std::string>{"int", "big", "int", "after"}));
}

TEST(AnalyzeLexer, DirectivesFoldContinuationsAndExtractIncludes) {
  const ra::SourceFile f = ra::lex_string("core/x.cpp",
      "#pragma once\n"
      "#include \"common/rng.hpp\"  // trailing comment\n"
      "#include <vector>\n"
      "#define WIDE(a, b) \\\n  ((a) + (b))\n"
      "int x = 0;\n");
  EXPECT_TRUE(f.has_pragma_once);
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].target, "common/rng.hpp");
  EXPECT_FALSE(f.includes[0].angled);
  EXPECT_TRUE(f.includes[1].angled);
  ASSERT_GE(f.directives.size(), 4u);
  EXPECT_EQ(f.directives[3].keyword, "define");
  // The continuation folded into one directive: the next token is `int` on line 6.
  EXPECT_EQ(f.tokens.front().line, 6);
}

TEST(AnalyzeLexer, AllowMarkersCoverOwnAndNextLine) {
  const ra::SourceFile f = ra::lex_string("core/x.cpp",
      "// rush-analyze: allow(naked-rand, raw-thread) reason here\n"
      "int x;\n"
      "int y;  // rush-lint: allow(unordered-iter)\n");
  EXPECT_TRUE(f.is_allowed(1, "naked-rand"));
  EXPECT_TRUE(f.is_allowed(2, "naked-rand"));
  EXPECT_TRUE(f.is_allowed(2, "raw-thread"));
  EXPECT_FALSE(f.is_allowed(3, "naked-rand"));
  EXPECT_TRUE(f.is_allowed(3, "unordered-iter"));  // legacy spelling
  EXPECT_FALSE(f.is_allowed(1, "unordered-iter"));
}

// ------------------------------------------------------------- layer DAG

TEST(AnalyzeLayerDag, UpwardAndUndeclaredIncludesAreFindingsSuppressionWorks) {
  const ra::AnalyzeResult r = run("layering", {"layer-dag"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"common/bad_up.hpp", "sim/clock.hpp"},  // upward include
                {"plugins/widget.hpp", "plugins"},       // undeclared module
            }));
}

TEST(AnalyzeLayerDag, FaultsSitsBelowSchedAndCyclesAreCaught) {
  // The faults module may depend downward (sim) but not upward (sched);
  // the mutual include between the two fixture headers is also a cycle.
  const ra::AnalyzeResult r = run("faultdag", {"layer-dag", "include-cycle"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"faults/injector.hpp", "sched/hook.hpp"},              // upward include
                {"sched/hook.hpp", "sched/hook.hpp->faults/injector.hpp"},  // cycle back edge
            }));
}

TEST(AnalyzeLayerDag, RushDagIsAcyclicAndClosed) {
  const ra::LayerDag& dag = ra::rush_layer_dag();
  // Closed: every allowed dependency is itself a declared module.
  for (const auto& [mod, deps] : dag) {
    for (const std::string& dep : deps) {
      EXPECT_TRUE(dag.count(dep) > 0) << mod << " -> " << dep;
    }
  }
  // Acyclic: repeatedly strip modules whose deps are all stripped.
  std::set<std::string> remaining;
  for (const auto& [mod, deps] : dag) remaining.insert(mod);
  bool progress = true;
  while (progress && !remaining.empty()) {
    progress = false;
    for (auto it = remaining.begin(); it != remaining.end();) {
      const std::set<std::string>& deps = dag.at(*it);
      const bool free = std::none_of(deps.begin(), deps.end(), [&](const std::string& d) {
        return remaining.count(d) > 0;
      });
      if (free) {
        it = remaining.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  EXPECT_TRUE(remaining.empty()) << "cycle among remaining modules";
}

TEST(AnalyzeIncludeCycle, CycleIsReportedOnceStandaloneQuiet) {
  const ra::AnalyzeResult r = run("cycle", {"include-cycle"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "include-cycle");
  EXPECT_EQ(r.findings[0].key, "c.hpp->a.hpp");
  EXPECT_NE(r.findings[0].message.find("a.hpp -> b.hpp -> c.hpp -> a.hpp"),
            std::string::npos)
      << r.findings[0].message;
}

// ----------------------------------------------------------- determinism

TEST(AnalyzeNakedRand, FiresOnEveryFormRespectsHomeAndSuppressions) {
  const ra::AnalyzeResult r = run("determinism", {"naked-rand"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"core/bad_rand.cpp", "rand"},
                {"core/bad_rand.cpp", "srand"},
                {"core/bad_rand.cpp", "random_device"},
                {"core/bad_rand.cpp", "time"},
                {"core/bad_rand.cpp", "time"},
            }));
}

TEST(AnalyzeRawThread, FiresOnThreadAsyncOmpOutsidePool) {
  const ra::AnalyzeResult r = run("determinism", {"raw-thread"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"core/bad_thread.cpp", "thread"},
                {"core/bad_thread.cpp", "async"},
                {"core/bad_thread.cpp", "omp"},
            }));
}

TEST(AnalyzeUnorderedIter, SeesCrossFileMembersSkipsSortedCopiesAndScope) {
  const ra::AnalyzeResult r = run("determinism", {"unordered-iter"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"sched/bad_iter.cpp", "weights_"},
            }));
}

TEST(AnalyzeSchedLinearScan, FlagsMemberScansHonoursExemptionAndMarkers) {
  const ra::AnalyzeResult r = run("determinism", {"sched-linear-scan"});
  // queue_ and pending_ fire; the allow-markered running_ scan, the
  // local-container scan, and everything in reference_scheduler.cpp
  // (home-file exemption) stay quiet.
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"sched/bad_scan.cpp", "queue_"},
                {"sched/bad_scan.cpp", "pending_"},
            }));
}

// -------------------------------------------------------- header hygiene

TEST(AnalyzePragmaOnce, MissingGuardIsAFinding) {
  const ra::AnalyzeResult r = run("hygiene", {"pragma-once"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"obs/no_guard.hpp", "missing"},
            }));
}

TEST(AnalyzeHeaderDef, FlagsOnlyNonInlineNamespaceScopeDefinitions) {
  const ra::AnalyzeResult r = run("hygiene", {"header-def"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"obs/bad_defs.hpp", "parse_flag"},
                {"obs/bad_defs.hpp", "Writer::flush"},
                {"obs/bad_defs.hpp", "operator=="},
            }));
}

TEST(AnalyzeRedundantInclude, DuplicatesAndPrimaryHeaderEchoes) {
  const ra::AnalyzeResult r = run("hygiene", {"redundant-include"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"cluster/widget.cpp", "common/base.hpp"},
                {"obs/dup_include.hpp", "common/base.hpp"},
            }));
}

TEST(AnalyzeUnusedModuleInclude, UnreferencedModuleOnly) {
  const ra::AnalyzeResult r = run("hygiene", {"unused-module-include"});
  EXPECT_EQ(file_keys(r),
            (std::multiset<std::pair<std::string, std::string>>{
                {"telemetry/unused_inc.hpp", "sim/thing.hpp"},
            }));
}

// ---------------------------------------------------------- integration

TEST(AnalyzeFullCatalogue, FixtureTreesProduceExactlyTheSeededFindings) {
  EXPECT_EQ(run("determinism").findings.size(), 11u);  // 5 rand + 3 thread + 1 iter + 2 scan
  EXPECT_EQ(run("hygiene").findings.size(), 7u);      // 1 guard + 3 defs + 2 redundant + 1 unused
  EXPECT_EQ(run("layering").findings.size(), 2u);
  EXPECT_EQ(run("cycle").findings.size(), 1u);
  EXPECT_EQ(run("faultdag").findings.size(), 2u);  // 1 upward include + 1 cycle
}

// -------------------------------------------------------------- baseline

TEST(AnalyzeBaseline, RoundTripSuppressesAndReportsStaleEntries) {
  const ra::AnalyzeResult raw = run("hygiene");
  ASSERT_FALSE(raw.findings.empty());

  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "rush_analyze_baseline.json";
  {
    ra::Baseline empty;
    std::ofstream out(path);
    out << empty.render(raw.findings);
  }

  ra::Baseline loaded = ra::Baseline::load(path);
  EXPECT_EQ(loaded.entries().size(), raw.findings.size());

  ra::AnalyzeOptions options;
  options.root = fixtures() / "hygiene";
  const ra::AnalyzeResult suppressed = ra::analyze(options, &loaded);
  EXPECT_TRUE(suppressed.findings.empty());
  EXPECT_EQ(suppressed.baselined.size(), raw.findings.size());
  EXPECT_TRUE(suppressed.unused_baseline.empty());
  std::filesystem::remove(path);
}

TEST(AnalyzeBaseline, StaleEntryIsReportedNotFatal) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "rush_analyze_stale.json";
  {
    std::ofstream out(path);
    out << R"({"version":1,"entries":[
      {"rule":"naked-rand","file":"core/gone.cpp","key":"rand","reason":"deleted file"}
    ]})";
  }
  ra::Baseline loaded = ra::Baseline::load(path);
  ra::AnalyzeOptions options;
  options.root = fixtures() / "cycle";
  const ra::AnalyzeResult r = ra::analyze(options, &loaded);
  ASSERT_EQ(r.unused_baseline.size(), 1u);
  EXPECT_EQ(r.unused_baseline[0].file, "core/gone.cpp");
  std::filesystem::remove(path);
}

TEST(AnalyzeBaseline, MissingFileMeansEmpty) {
  const ra::Baseline b = ra::Baseline::load("/nonexistent/rush/baseline.json");
  EXPECT_TRUE(b.entries().empty());
}

// ------------------------------------------------------------ reporting

TEST(AnalyzeReport, JsonAndHumanRendersCarryTheFindings) {
  const ra::AnalyzeResult r = run("cycle");
  const std::string human = ra::render_human(r);
  EXPECT_NE(human.find("include-cycle"), std::string::npos);
  const std::string json = ra::render_json(r);
  EXPECT_NE(json.find("\"findings\":["), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"include-cycle\""), std::string::npos);
}

TEST(AnalyzeCatalogue, EveryRuleIsDocumented) {
  std::set<std::string> names;
  for (const ra::RuleInfo& r : ra::rule_catalogue()) {
    EXPECT_FALSE(r.summary.empty()) << r.name;
    names.insert(r.name);
  }
  for (const char* expected :
       {"layer-dag", "include-cycle", "naked-rand", "raw-thread", "unordered-iter",
        "sched-linear-scan", "pragma-once", "header-def", "redundant-include",
        "unused-module-include"}) {
    EXPECT_TRUE(names.count(expected) > 0) << expected;
  }
}
