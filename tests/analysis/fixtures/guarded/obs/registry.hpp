// guarded-member fixture: members annotated '// rush: guarded_by(G)' may
// only be touched after a lock of G (or from *_locked helpers, functions
// taking a lock parameter, and constructors/destructors).
#pragma once

#include <map>
#include <mutex>
#include <string>

namespace rush::obs {

class MiniRegistry {
 public:
  MiniRegistry() { table_["boot"] = 0; }  // quiet: constructor

  void set(const std::string& name, int v);
  [[nodiscard]] int get(const std::string& name) const;
  [[nodiscard]] int peek_racy(const std::string& name) const;  // finding in cpp
  void bump_locked(const std::string& name);
  void merge_from(const MiniRegistry& other);
  [[nodiscard]] int size_estimate() const;  // allow-markered in cpp

  // In-class definition touching the member without the lock -> finding.
  [[nodiscard]] bool empty_racy() const { return table_.empty(); }

 private:
  void apply(std::unique_lock<std::mutex>& lock, const std::string& name);

  mutable std::mutex mu_;
  // rush: guarded_by(mu_)
  std::map<std::string, int> table_;
};

}  // namespace rush::obs
