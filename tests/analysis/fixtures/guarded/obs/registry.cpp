#include "obs/registry.hpp"

namespace rush::obs {

void MiniRegistry::set(const std::string& name, int v) {
  const std::scoped_lock lock(mu_);
  table_[name] = v;  // quiet: locked first
}

int MiniRegistry::get(const std::string& name) const {
  std::unique_lock lock(mu_);
  const auto it = table_.find(name);
  return it == table_.end() ? 0 : it->second;
}

int MiniRegistry::peek_racy(const std::string& name) const {
  const auto it = table_.find(name);  // finding: no lock of mu_ taken
  const std::scoped_lock lock(mu_);
  return it == table_.end() ? 0 : it->second;
}

void MiniRegistry::bump_locked(const std::string& name) {
  ++table_[name];  // quiet: *_locked naming contract, caller holds mu_
}

void MiniRegistry::merge_from(const MiniRegistry& other) {
  const std::scoped_lock lock(mu_);
  for (const auto& [k, v] : other.table_) table_[k] += v;  // other.table_: not ours
}

int MiniRegistry::size_estimate() const {
  // rush-analyze: allow(guarded-member) monotonic size read, staleness is fine
  return static_cast<int>(table_.size());
}

void MiniRegistry::apply(std::unique_lock<std::mutex>& lock, const std::string& name) {
  table_[name] = static_cast<int>(lock.owns_lock());  // quiet: lock parameter
}

}  // namespace rush::obs
