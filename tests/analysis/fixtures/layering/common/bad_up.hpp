// VIOLATION: common is the bottom layer; it may not reach up into sim.
#pragma once
#include "sim/clock.hpp"
namespace rush { inline double stamp() { return sim::tick(); } }
