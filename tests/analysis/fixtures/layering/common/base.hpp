// Leaf utility: no dependencies, any layer may include it.
#pragma once
namespace rush { inline int base_answer() { return 42; } }
