// VIOLATION: module "plugins" is not declared in the architecture DAG.
#pragma once
#include "common/base.hpp"
namespace rush::plugins { inline int widget() { return rush::base_answer(); } }
