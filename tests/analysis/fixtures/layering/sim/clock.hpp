// Downward include: sim may depend on common.
#pragma once
#include "common/base.hpp"
namespace rush::sim { inline double tick() { return 0.5 * base_answer(); } }
