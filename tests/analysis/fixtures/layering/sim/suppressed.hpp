// Upward include justified with an inline allow marker: suppressed.
#pragma once
// rush-analyze: allow(layer-dag) fixture: proves inline suppression works
#include "apps/thing.hpp"
namespace rush::sim {
using BorrowedThing = apps::Thing;  // uses apps:: so only layer-dag is in play
inline int poke() { return 1; }
}  // namespace rush::sim
