#pragma once
#include "a.hpp"
namespace rush { struct C { A* peer; }; }
