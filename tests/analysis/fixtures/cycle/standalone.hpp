// Not part of the cycle; must stay quiet.
#pragma once
namespace rush { inline int lonely() { return 7; } }
