#pragma once
#include "c.hpp"
namespace rush { struct B { C* peer; }; }
