#pragma once
#include "b.hpp"
namespace rush { struct A { B* peer; }; }
