// trace-sim-time fixture: every EventTrace emit_* call site must pass
// the simulation time as its first argument.
namespace rush::sim {

struct FakeTrace {
  void emit_job_start(double t, int id);
  void emit_frame(double t, int node);
  void emit_event(int depth, int id);
  void emit_tick();
  void emit_done(double t, int id);
};

struct Engine {
  double now() const;
};

void drive(FakeTrace& tr, Engine& eng, double end_s, int queue_depth) {
  tr.emit_job_start(eng.now(), 1);   // quiet: now() call
  tr.emit_done(end_s, 2);            // quiet: *_s suffixed identifier
  double t = end_s;
  tr.emit_frame(t, 3);               // quiet: conventional single ident t
  tr.emit_event(queue_depth, 4);     // finding: first arg is not a time
  tr.emit_tick();                    // finding: no argument at all
  // rush-analyze: allow(trace-sim-time) replayed record carries its own stamp
  tr.emit_event(queue_depth, 5);
  emit_beacon(queue_depth);          // quiet: free function, not a trace emit
}

void emit_beacon(int depth);

}  // namespace rush::sim
