#include "core/util.hpp"

namespace rush::core {

int used_everywhere(int x) { return x + header_helper(x); }

int orphan(int x) { return used_everywhere(x) - 1; }

int bench_only(int x) { return x * 3; }

// rush-analyze: allow(dead-symbol) kept for the tutorial in docs/
int tolerated(int x) { return x - 7; }

int Base::hook(int x) { return x; }

bool Base::operator==(const Base& other) const { return this == &other; }

}  // namespace rush::core
