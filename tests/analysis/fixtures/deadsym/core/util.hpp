// dead-symbol fixture: non-inline functions defined in the analyzed tree
// must be referenced somewhere in it (or in a --ref-root tree).
#pragma once

namespace rush::core {

int used_everywhere(int x);
int orphan(int x);          // defined in util.cpp, referenced nowhere -> finding
int bench_only(int x);      // referenced only from the deadsym_ref tree
int tolerated(int x);       // allow-markered at its definition

// Inline-like definitions are header API; exempt.
inline int header_helper(int x) { return x + 1; }
constexpr int header_const(int x) { return x * 2; }
template <typename T>
T header_tmpl(T x) { return x; }

struct Base {
  virtual ~Base() = default;
  // Virtual dispatch hides references from a token index; exempt.
  virtual int hook(int x);
  // Operators are called by syntax, not by name; exempt.
  bool operator==(const Base& other) const;
};

}  // namespace rush::core
