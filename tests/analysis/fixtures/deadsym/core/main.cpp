#include "core/util.hpp"

// main is the root of the call graph; never dead.
int main() { return rush::core::used_everywhere(0); }
