// Reference-tree fixture (--ref-root): calls from here keep symbols in
// the analyzed tree alive but are never rule targets themselves.
#include "core/util.hpp"

namespace rush::harness {

int drive() { return rush::core::bench_only(2); }

// Would be a dead-symbol finding if this tree were analyzed directly.
int local_orphan() { return 9; }

}  // namespace rush::harness
