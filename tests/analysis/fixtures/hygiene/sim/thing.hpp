#pragma once
namespace rush::sim { inline int thing() { return 8; } }
