#pragma once
namespace rush { inline int base() { return 1; } }
