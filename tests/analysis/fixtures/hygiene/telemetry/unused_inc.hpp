// VIOLATION: includes sim/ but never names sim:: — dead coupling. The
// cluster/ include is used and must stay quiet.
#pragma once
#include "cluster/used.hpp"
#include "sim/thing.hpp"
namespace rush::telemetry { inline int probe() { return cluster::used(); } }
