// header-def fixture: three violations among a crowd of legal definitions.
#pragma once
#include <string>

namespace rush::obs {

class Writer {
 public:
  void flush();
  int size() const { return n_; }  // in-class body: implicitly inline
 private:
  int n_ = 0;
};

// VIOLATION: plain free function definition.
int parse_flag(const char* s) { return s != nullptr ? 1 : 0; }

// VIOLATION: out-of-class member definition without inline.
void Writer::flush() { n_ = 0; }

// VIOLATION: operator overload definition without inline.
bool operator==(const Writer& a, const Writer& b) { return &a == &b; }

// All legal:
inline int inlined() { return 1; }
constexpr int confined() { return 2; }
template <class T> T templated(T v) { return v; }
static int internal_linkage() { return 4; }
int declared_only(int x);
inline std::string trailing() noexcept { return "ok"; }
struct Pod { int a; int b; };
enum class Mode : int { kOff = 0, kOn = 1 };
namespace detail { inline int nested() { return 5; } }

}  // namespace rush::obs
