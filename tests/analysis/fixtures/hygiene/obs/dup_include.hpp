// VIOLATION: the same header included twice.
#pragma once
#include "common/base.hpp"
#include <string>
#include "common/base.hpp"
namespace rush::obs { inline int twice() { return rush::base(); } }
