// VIOLATION: no #pragma once.
namespace rush::obs { inline int naked() { return 3; } }
