#pragma once
#include "common/base.hpp"
namespace rush::cluster { struct Widget { int v = rush::base(); }; }
