#pragma once
namespace rush::cluster { inline int used() { return 9; } }
