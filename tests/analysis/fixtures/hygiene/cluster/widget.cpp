// VIOLATION: re-includes what the primary header already provides.
#include "cluster/widget.hpp"
#include "common/base.hpp"
namespace rush::cluster { int widget_value() { return Widget{}.v; } }
