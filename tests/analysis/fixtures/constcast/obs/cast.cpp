// const-cast fixture: const_cast is banned everywhere; const data may be
// shared across the task pool's worker threads.
namespace rush::obs {

int sanitize(const int* p) {
  int* w = const_cast<int*>(p);  // finding
  return *w;
}

int bridge(const int* p) {
  // rush-analyze: allow(const-cast) third-party API takes a non-const view
  return *const_cast<int*>(p);
}

// Mentions in comments or strings are opaque to the lexer: const_cast.
const char* describe() { return "const_cast"; }

}  // namespace rush::obs
