// missing-expects fixture: public members with parameters in sim/ or
// sched/ must validate preconditions in their definition.
#pragma once

namespace rush::sched {

class MiniQueue {
 public:
  // Definition in queue.cpp has no RUSH_EXPECTS -> finding (on this decl).
  void push(int job);
  // Definition in queue.cpp calls RUSH_EXPECTS -> quiet.
  void drop(int job);
  // Const members are reads; exempt.
  [[nodiscard]] int depth_after(int extra) const;
  // No parameters: nothing to validate.
  void clear();
  // In-class definition with parameters and no RUSH_EXPECTS -> finding.
  void reserve_hint(int n) { hint_ = n; }
  // rush-analyze: allow(missing-expects) trusted internal fast path
  void push_unchecked(int job);
  // Legacy spelling carried over from the retired Python linter.
  // rush-lint: allow(missing-expects)
  void requeue(int job);

 private:
  // Private members are not API surface; exempt.
  void compact(int from);

  int hint_ = 0;
};

}  // namespace rush::sched
