#include "sched/queue.hpp"

#define RUSH_EXPECTS(expr) ((void)(expr))

namespace rush::sched {

void MiniQueue::push(int job) { hint_ = job; }

void MiniQueue::drop(int job) {
  RUSH_EXPECTS(job >= 0);
  hint_ = -job;
}

int MiniQueue::depth_after(int extra) const { return hint_ + extra; }

void MiniQueue::clear() { hint_ = 0; }

void MiniQueue::push_unchecked(int job) { hint_ = job; }

void MiniQueue::requeue(int job) { hint_ = job; }

void MiniQueue::compact(int from) { hint_ -= from; }

}  // namespace rush::sched
