// Outside sim/ and sched/ the missing-expects contract does not apply.
#pragma once

namespace rush::telemetry {

class Probe {
 public:
  void sample(int node) { last_ = node; }

 private:
  int last_ = 0;
};

}  // namespace rush::telemetry
