// noalloc-path fixture: functions annotated '// rush: noalloc' and their
// same-module callees must not allocate per call.
#pragma once

#include <string>
#include <vector>

namespace rush::sched {

class FastPath {
 public:
  void pass(int n);
  void helper(int n);
  void leaf(int n);
  void cold_setup();  // not reachable from the annotated root: may allocate

 private:
  std::vector<int> scratch_;
  std::string label_;
  int last_ = 0;
};

}  // namespace rush::sched
