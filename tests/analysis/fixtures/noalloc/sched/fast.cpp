#include "sched/fast.hpp"

namespace rush::sched {

// rush: noalloc
void FastPath::pass(int n) {
  scratch_.clear();
  scratch_.push_back(n);            // quiet: trailing-underscore member scratch
  std::vector<int> locals;          // finding: per-call container construction
  locals.push_back(n);              // finding: growing a non-member container
  static std::vector<int> warm;     // quiet: static lives across calls
  const std::vector<int>& view = scratch_;  // quiet: reference, no construction
  last_ = static_cast<int>(view.size());
  helper(n);
}

void FastPath::helper(int n) {
  int* p = new int(n);              // finding: reachable from the noalloc root
  delete p;
  // rush-analyze: allow(noalloc-path) one-time lazy init, measured cold
  std::vector<int> lazy(4);
  last_ += static_cast<int>(lazy.size());
  label_.assign("warm");            // quiet: trailing-underscore member scratch
  leaf(n);
}

void FastPath::leaf(int n) { last_ += n; }

void FastPath::cold_setup() {
  scratch_.reserve(1024);
  std::vector<int> staging(16);
  last_ = static_cast<int>(staging.size());
}

}  // namespace rush::sched
