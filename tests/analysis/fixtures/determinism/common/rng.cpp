// The one home where hardware entropy is legal (seeding the root stream).
#include <random>
unsigned hardware_seed() { return std::random_device{}(); }
