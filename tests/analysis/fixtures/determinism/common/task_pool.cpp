// The pool implementation itself is the sanctioned std::thread home.
#include <thread>
void spin() { std::thread t([] {}); t.join(); }
